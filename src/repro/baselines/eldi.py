"""ELDI baseline (Baker et al., ISCA'21 + Litteken et al., QCE'22).

ELDI arranges atoms in a square grid and exploits long-distance Rydberg
interactions: its interaction radius covers diagonal neighbors, giving an
8-connected topology.  Qubits are ordered by a BFS traversal of the
interaction graph and placed along a boustrophedon (snake) path over a
compact centered region, so BFS-consecutive qubits are grid-adjacent;
out-of-range CZ gates are SWAP-routed.  No custom layout, no atom movement.

Runs on the shared :class:`~repro.pipeline.stage.PassPipeline` (its
``layout`` stage is the BFS ordering; caller-provided Graphine layouts are
not applicable and are ignored) and is registered under ``"eldi"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import math

import networkx as nx
import numpy as np

from repro.baselines.router import RouterConfig, SwapRouter
from repro.baselines.static_schedule import static_schedule
from repro.core.result import CompilationResult
from repro.layout.interaction_graph import build_interaction_graph
from repro.pipeline.compiler_base import StagedCompiler
from repro.pipeline.registry import register_compiler
from repro.pipeline.stage import CompileContext

__all__ = ["EldiCompiler", "EldiConfig"]

#: Interaction radius in grid pitches: sqrt(2) covers diagonal neighbors,
#: modelling ELDI's use of longer-distance interactions on the grid.
ELDI_RADIUS_PITCHES = 1.5


def _snake_sites(rows: int, cols: int, num_qubits: int) -> list[tuple[int, int]]:
    """Boustrophedon site order over a compact centered region.

    Qubits placed consecutively land on adjacent sites (including across
    row turns), so BFS-consecutive qubits -- e.g. a TFIM chain -- stay
    within nearest-neighbor interaction range and need no SWAPs at all.
    """
    side_cols = min(cols, math.isqrt(max(num_qubits - 1, 0)) + 1)
    side_rows = min(rows, -(-num_qubits // side_cols))
    row0 = (rows - side_rows) // 2
    col0 = (cols - side_cols) // 2
    sites: list[tuple[int, int]] = []
    for i in range(side_rows):
        row = row0 + i
        cols_range = range(side_cols) if i % 2 == 0 else range(side_cols - 1, -1, -1)
        for j in cols_range:
            sites.append((row, col0 + j))
    # Overflow (never needed when num_qubits <= rows*cols, but keep safe):
    if len(sites) < num_qubits:
        rest = [
            (r, c)
            for r in range(rows)
            for c in range(cols)
            if (r, c) not in set(sites)
        ]
        sites.extend(rest)
    return sites


def _bfs_qubit_order(graph: nx.Graph) -> list[int]:
    """Qubits ordered by BFS from the highest-weighted-degree node."""
    order: list[int] = []
    seen: set[int] = set()
    degree = dict(graph.degree(weight="weight"))
    remaining = sorted(graph.nodes, key=lambda q: (-degree.get(q, 0), q))
    for start in remaining:
        if start in seen:
            continue
        for node in nx.bfs_tree(graph, start):
            if node not in seen:
                seen.add(node)
                order.append(node)
    return order


@dataclass(frozen=True)
class EldiConfig:
    """ELDI knobs."""

    transpile_input: bool = True
    radius_pitches: float = ELDI_RADIUS_PITCHES
    router: RouterConfig = field(default_factory=RouterConfig)


@register_compiler()
class EldiCompiler(StagedCompiler):
    """Grid placement + SWAP routing baseline."""

    technique = "eldi"
    uses_layout = False
    config_type = EldiConfig

    def stage_layout(self, ctx: CompileContext) -> None:
        """ELDI's layout decision: a BFS ordering of the interaction graph."""
        spec = self.spec
        if ctx.basis.num_qubits > spec.num_sites:
            raise ValueError(
                f"{ctx.basis.num_qubits} qubits exceed {spec.name}'s "
                f"{spec.num_sites} sites"
            )
        graph = build_interaction_graph(ctx.basis)
        ctx.artifacts["qubit_order"] = _bfs_qubit_order(graph)

    def stage_placement(self, ctx: CompileContext) -> None:
        """Snake the BFS order over a compact centered grid region."""
        spec = self.spec
        num_qubits = ctx.basis.num_qubits
        sites = _snake_sites(spec.grid_rows, spec.grid_cols, num_qubits)
        pitch = spec.grid_pitch_um
        positions = np.zeros((num_qubits, 2), dtype=float)
        assigned_sites: list[tuple[int, int]] = [(-1, -1)] * num_qubits
        for qubit, site in zip(ctx.artifacts["qubit_order"], sites):
            r, c = site
            positions[qubit] = (c * pitch, r * pitch)
            assigned_sites[qubit] = site
        ctx.positions = positions
        ctx.sites = assigned_sites
        ctx.interaction_radius_um = self.config.radius_pitches * pitch
        ctx.blockade_radius_um = spec.blockade_radius_um(ctx.interaction_radius_um)

    def stage_schedule(self, ctx: CompileContext) -> None:
        """SWAP-route out-of-range CZs, then schedule statically."""
        router = SwapRouter(
            ctx.positions, ctx.interaction_radius_um, config=self.config.router
        )
        routed = router.route(ctx.basis)
        ctx.artifacts["routed"] = routed
        ctx.artifacts["schedule"] = static_schedule(
            routed.gates, ctx.positions, ctx.blockade_radius_um, self.spec
        )

    def stage_finalize(self, ctx: CompileContext) -> None:
        routed = ctx.artifacts["routed"]
        schedule = ctx.artifacts["schedule"]
        counts = ctx.basis.count_ops()
        ctx.result = CompilationResult(
            technique=self.technique,
            circuit_name=ctx.circuit.name,
            num_qubits=ctx.basis.num_qubits,
            spec=self.spec,
            layers=schedule.layers,
            num_cz=routed.num_cz_expanded,
            num_u3=counts.get("u3", 0),
            num_swaps=routed.num_swaps,
            runtime_us=schedule.runtime_us,
            interaction_radius_um=ctx.interaction_radius_um,
            blockade_radius_um=ctx.blockade_radius_um,
            footprint_sites=ctx.footprint(),
        )
