"""Graphine baseline (Patel et al., SC'23).

Graphine builds the same application-specific annealed layout Parallax
starts from (Steps 1-2) but keeps every atom static: out-of-range CZ gates
are SWAP-routed through the unit-disk connectivity graph of the layout.
Per the paper's methodology it is made hardware-compatible by discretizing
the layout and recomputing the interaction radius on the discretized
positions (so the topology stays connected).

Runs on the shared :class:`~repro.pipeline.stage.PassPipeline` and is
registered under ``"graphine"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.router import RouterConfig, SwapRouter
from repro.baselines.static_schedule import static_schedule
from repro.core.result import CompilationResult
from repro.hardware.grid import discretize_positions
from repro.layout.graphine import generate_layout
from repro.layout.placement import PlacementConfig
from repro.layout.radius import minimal_connected_radius
from repro.pipeline.compiler_base import StagedCompiler
from repro.pipeline.registry import register_compiler
from repro.pipeline.stage import CompileContext

__all__ = ["GraphineCompiler", "GraphineConfig"]


@dataclass(frozen=True)
class GraphineConfig:
    """Graphine-baseline knobs."""

    placement: PlacementConfig = field(default_factory=PlacementConfig)
    transpile_input: bool = True
    router: RouterConfig = field(default_factory=RouterConfig)


@register_compiler()
class GraphineCompiler(StagedCompiler):
    """Custom annealed layout + SWAP routing, no movement."""

    technique = "graphine"
    uses_layout = True
    config_type = GraphineConfig

    def stage_layout(self, ctx: CompileContext) -> None:
        """Annealed continuous layout (reused when the caller provides one)."""
        if ctx.layout is None:
            ctx.layout = generate_layout(ctx.basis, self.config.placement)
        if ctx.layout.num_qubits != ctx.basis.num_qubits:
            raise ValueError(
                f"layout has {ctx.layout.num_qubits} qubits but circuit has "
                f"{ctx.basis.num_qubits}"
            )

    def stage_placement(self, ctx: CompileContext) -> None:
        """Discretize onto the grid and recompute a connected radius."""
        positions, sites = discretize_positions(ctx.layout.unit_positions, self.spec)
        ctx.positions = positions
        ctx.sites = sites
        # Hardware compatibility: recompute the radius on the discretized
        # positions so the unit-disk topology is connected, and never below
        # one grid pitch.
        ctx.interaction_radius_um = max(
            minimal_connected_radius(positions),
            self.spec.grid_pitch_um * 1.05,
        )
        ctx.blockade_radius_um = self.spec.blockade_radius_um(
            ctx.interaction_radius_um
        )

    def stage_schedule(self, ctx: CompileContext) -> None:
        """SWAP-route out-of-range CZs, then schedule statically."""
        router = SwapRouter(
            ctx.positions, ctx.interaction_radius_um, config=self.config.router
        )
        routed = router.route(ctx.basis)
        ctx.artifacts["routed"] = routed
        ctx.artifacts["schedule"] = static_schedule(
            routed.gates, ctx.positions, ctx.blockade_radius_um, self.spec
        )

    def stage_finalize(self, ctx: CompileContext) -> None:
        routed = ctx.artifacts["routed"]
        schedule = ctx.artifacts["schedule"]
        counts = ctx.basis.count_ops()
        ctx.result = CompilationResult(
            technique=self.technique,
            circuit_name=ctx.circuit.name,
            num_qubits=ctx.basis.num_qubits,
            spec=self.spec,
            layers=schedule.layers,
            num_cz=routed.num_cz_expanded,
            num_u3=counts.get("u3", 0),
            num_swaps=routed.num_swaps,
            runtime_us=schedule.runtime_us,
            interaction_radius_um=ctx.interaction_radius_um,
            blockade_radius_um=ctx.blockade_radius_um,
            footprint_sites=ctx.footprint(),
        )
