"""Graphine baseline (Patel et al., SC'23).

Graphine builds the same application-specific annealed layout Parallax
starts from (Steps 1-2) but keeps every atom static: out-of-range CZ gates
are SWAP-routed through the unit-disk connectivity graph of the layout.
Per the paper's methodology it is made hardware-compatible by discretizing
the layout and recomputing the interaction radius on the discretized
positions (so the topology stays connected).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.router import RouterConfig, SwapRouter
from repro.baselines.static_schedule import static_schedule
from repro.circuit.circuit import QuantumCircuit
from repro.core.result import CompilationResult
from repro.hardware.grid import discretize_positions
from repro.hardware.spec import HardwareSpec
from repro.layout.graphine import GraphineLayout, generate_layout
from repro.layout.placement import PlacementConfig
from repro.layout.radius import minimal_connected_radius
from repro.transpile.pipeline import transpile

__all__ = ["GraphineCompiler", "GraphineConfig"]


@dataclass(frozen=True)
class GraphineConfig:
    """Graphine-baseline knobs."""

    placement: PlacementConfig = field(default_factory=PlacementConfig)
    transpile_input: bool = True
    router: RouterConfig = field(default_factory=RouterConfig)


class GraphineCompiler:
    """Custom annealed layout + SWAP routing, no movement."""

    technique = "graphine"

    def __init__(self, spec: HardwareSpec, config: GraphineConfig | None = None) -> None:
        self.spec = spec
        self.config = config or GraphineConfig()

    def compile(
        self,
        circuit: QuantumCircuit,
        layout: GraphineLayout | None = None,
    ) -> CompilationResult:
        basis = (
            transpile(circuit)
            if self.config.transpile_input
            else circuit.without({"barrier", "measure"})
        )
        spec = self.spec
        if layout is None:
            layout = generate_layout(basis, self.config.placement)
        positions, sites = discretize_positions(layout.unit_positions, spec)

        # Hardware compatibility: recompute the radius on the discretized
        # positions so the unit-disk topology is connected, and never below
        # one grid pitch.
        radius = max(
            minimal_connected_radius(positions),
            spec.grid_pitch_um * 1.05,
        )
        blockade = spec.blockade_radius_um(radius)
        router = SwapRouter(positions, radius, config=self.config.router)
        routed = router.route(basis)
        schedule = static_schedule(routed.gates, positions, blockade, spec)

        counts = basis.count_ops()
        rows = [s[0] for s in sites]
        cols = [s[1] for s in sites]
        footprint = (
            (max(rows) - min(rows) + 1) if rows else 0,
            (max(cols) - min(cols) + 1) if cols else 0,
        )
        return CompilationResult(
            technique=self.technique,
            circuit_name=circuit.name,
            num_qubits=basis.num_qubits,
            spec=spec,
            layers=schedule.layers,
            num_cz=routed.num_cz_expanded,
            num_u3=counts.get("u3", 0),
            num_swaps=routed.num_swaps,
            runtime_us=schedule.runtime_us,
            interaction_radius_um=radius,
            blockade_radius_um=blockade,
            footprint_sites=footprint,
        )
