"""SWAP routing over a fixed atom topology.

Atoms sit at fixed positions; two atoms are connected when within the
interaction radius.  A CZ between atoms that are not connected is resolved
by SWAPs -- each costing three CZ gates (the error mechanism the paper's
Fig. 9/10 quantify).  The router maintains the logical-to-physical mapping
as SWAPs permute states, mirroring how ELDI and Graphine execute circuits.

Two strategies:

- ``"shortest_path"`` (default, the classic baseline behaviour): walk one
  qubit's state along a shortest connectivity path until within range.
- ``"lookahead"`` (SABRE-style): greedily pick the single SWAP that most
  reduces the hop distance of the current gate plus a decayed sum over the
  next few upcoming two-qubit gates, so routing decisions also help future
  gates.  An ablation bench quantifies the difference.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Gate
from repro.hardware.geometry import within_radius_pairs

__all__ = ["SwapRouter", "RoutedCircuit", "RoutingError", "RouterConfig"]


@dataclass(frozen=True)
class RouterConfig:
    """Routing-strategy knobs.

    Attributes:
        strategy: ``"shortest_path"`` or ``"lookahead"``.
        window: number of upcoming two-qubit gates the lookahead scores.
        decay: geometric weight per future gate in the lookahead score.
        max_swaps_per_gate: safety cap on SWAPs spent routing one gate.
    """

    strategy: str = "shortest_path"
    window: int = 8
    decay: float = 0.5
    max_swaps_per_gate: int = 256

    def __post_init__(self) -> None:
        if self.strategy not in ("shortest_path", "lookahead"):
            raise ValueError(f"unknown routing strategy {self.strategy!r}")
        if self.window < 0 or not (0.0 <= self.decay <= 1.0):
            raise ValueError("window must be >= 0 and decay in [0, 1]")


class RoutingError(RuntimeError):
    """The topology cannot realize the circuit (disconnected graph)."""


@dataclass
class RoutedCircuit:
    """Routing outcome.

    Attributes:
        gates: physical-space gate list; ``swap`` gates appear explicitly.
        num_swaps: SWAPs inserted.
        final_mapping: logical qubit -> physical atom after execution.
    """

    gates: list[Gate]
    num_swaps: int
    final_mapping: dict[int, int]

    @property
    def num_cz_expanded(self) -> int:
        """Physical CZ count with each SWAP costing three CZs."""
        base = sum(1 for g in self.gates if g.name == "cz")
        return base + 3 * self.num_swaps


class SwapRouter:
    """Route a {u3, cz} circuit over fixed atom positions."""

    def __init__(
        self,
        positions: np.ndarray,
        interaction_radius: float,
        initial_mapping: dict[int, int] | None = None,
        config: RouterConfig | None = None,
    ) -> None:
        self.positions = np.asarray(positions, dtype=float)
        self.radius = float(interaction_radius)
        self.config = config or RouterConfig()
        n = self.positions.shape[0]
        self.graph = nx.Graph()
        self.graph.add_nodes_from(range(n))
        self.graph.add_edges_from(within_radius_pairs(self.positions, self.radius))
        if initial_mapping is None:
            initial_mapping = {q: q for q in range(n)}
        self._logical_to_physical = dict(initial_mapping)
        self._physical_to_logical = {p: q for q, p in initial_mapping.items()}
        if len(self._physical_to_logical) != len(self._logical_to_physical):
            raise ValueError("initial mapping is not injective")
        self._hops: dict[int, dict[int, int]] | None = None

    def _hop_distance(self, u: int, v: int) -> int:
        """BFS hop distance between physical atoms (cached all-pairs)."""
        if self._hops is None:
            self._hops = dict(nx.all_pairs_shortest_path_length(self.graph))
        try:
            return self._hops[u][v]
        except KeyError as exc:
            raise RoutingError(
                f"atoms {u} and {v} are disconnected at radius {self.radius:.3f}"
            ) from exc

    # -- mapping helpers ---------------------------------------------------------

    def physical(self, logical: int) -> int:
        """Current physical atom realizing ``logical``."""
        return self._logical_to_physical[logical]

    def _swap_physical(self, u: int, v: int) -> None:
        lu = self._physical_to_logical.get(u)
        lv = self._physical_to_logical.get(v)
        if lu is not None:
            self._logical_to_physical[lu] = v
        if lv is not None:
            self._logical_to_physical[lv] = u
        self._physical_to_logical[u], self._physical_to_logical[v] = lv, lu
        # Drop empty slots so the dict only holds real states.
        for key in (u, v):
            if self._physical_to_logical[key] is None:
                del self._physical_to_logical[key]

    def _connected(self, u: int, v: int) -> bool:
        d = self.positions[u] - self.positions[v]
        return float(np.hypot(d[0], d[1])) <= self.radius

    # -- routing --------------------------------------------------------------------

    def route(self, circuit: QuantumCircuit) -> RoutedCircuit:
        """Insert SWAPs so every CZ executes between connected atoms.

        Raises:
            RoutingError: if two interacting qubits lie in different
                connectivity components.
        """
        out: list[Gate] = []
        num_swaps = 0
        lookahead = self.config.strategy == "lookahead"
        gates = [g for g in circuit.gates if g.name not in ("barrier", "measure")]
        # Indices of upcoming two-qubit gates, for the lookahead window.
        two_qubit_at = [i for i, g in enumerate(gates) if g.num_qubits == 2]
        next_2q_pos = 0
        for i, gate in enumerate(gates):
            if gate.num_qubits == 1:
                out.append(Gate(gate.name, (self.physical(gate.qubits[0]),), gate.params))
                continue
            if gate.name != "cz":
                raise ValueError(f"router requires a {{u3, cz}} circuit, got {gate.name!r}")
            while next_2q_pos < len(two_qubit_at) and two_qubit_at[next_2q_pos] <= i:
                next_2q_pos += 1
            a, b = gate.qubits
            if not self._connected(self.physical(a), self.physical(b)):
                future = [
                    gates[j].qubits
                    for j in two_qubit_at[next_2q_pos:next_2q_pos + self.config.window]
                ]
                if lookahead:
                    num_swaps += self._route_lookahead(a, b, future, out)
                else:
                    num_swaps += self._route_shortest_path(a, b, out)
            out.append(Gate("cz", (self.physical(a), self.physical(b))))
        return RoutedCircuit(
            gates=out,
            num_swaps=num_swaps,
            final_mapping=dict(self._logical_to_physical),
        )

    def _route_shortest_path(self, a: int, b: int, out: list[Gate]) -> int:
        """Walk a's state along a shortest path until within range of b."""
        pa, pb = self.physical(a), self.physical(b)
        try:
            path = nx.shortest_path(self.graph, pa, pb)
        except nx.NetworkXNoPath as exc:
            raise RoutingError(
                f"atoms {pa} and {pb} are disconnected at radius "
                f"{self.radius:.3f}"
            ) from exc
        num_swaps = 0
        current = pa
        for step in path[1:-1]:
            out.append(Gate("swap", (current, step)))
            self._swap_physical(current, step)
            num_swaps += 1
            current = step
            if self._connected(current, pb):
                break
        if not self._connected(self.physical(a), pb):  # pragma: no cover
            raise RoutingError(f"routing failed for CZ {a},{b}")
        return num_swaps

    def _lookahead_score(self, future: list[tuple[int, int]]) -> float:
        """Decayed hop-distance sum of upcoming gates under the current map."""
        score = 0.0
        weight = self.config.decay
        for (fa, fb) in future:
            try:
                hops = self._hop_distance(self.physical(fa), self.physical(fb))
            except RoutingError:
                # A future pair spans disconnected components; routing it
                # will fail later regardless, so treat it as very far.
                hops = self.graph.number_of_nodes()
            score += weight * hops
            weight *= self.config.decay
        return score

    def _route_lookahead(
        self, a: int, b: int, future: list[tuple[int, int]], out: list[Gate]
    ) -> int:
        """SABRE-style greedy: each SWAP must shrink the current gate's hop
        distance; ties break on the decayed future-gate score."""
        num_swaps = 0
        while not self._connected(self.physical(a), self.physical(b)):
            if num_swaps >= self.config.max_swaps_per_gate:
                raise RoutingError(f"routing CZ {a},{b} exceeded the swap cap")
            pa, pb = self.physical(a), self.physical(b)
            current_hops = self._hop_distance(pa, pb)
            best: tuple[float, int, int] | None = None
            for endpoint in (pa, pb):
                for neighbor in self.graph.neighbors(endpoint):
                    self._swap_physical(endpoint, neighbor)
                    primary = self._hop_distance(self.physical(a), self.physical(b))
                    if primary < current_hops:
                        score = self._lookahead_score(future)
                        key = (score, endpoint, neighbor)
                        if best is None or key < best:
                            best = key
                    self._swap_physical(endpoint, neighbor)  # undo
            if best is None:  # pragma: no cover - a shortest-path step always exists
                raise RoutingError(f"no improving swap for CZ {a},{b}")
            _, u, w = best
            out.append(Gate("swap", (u, w)))
            self._swap_physical(u, w)
            num_swaps += 1
        return num_swaps
