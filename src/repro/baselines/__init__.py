"""Baseline compilers: ELDI and Graphine.

Both baselines place atoms on fixed (static) positions and route
out-of-range CZ gates with SWAP chains -- the behaviour Parallax eliminates.
Per the paper's methodology, they are made hardware-compatible: positions
are discretized to the grid and radii respect the blockade being 2.5x the
interaction radius.

- :class:`EldiCompiler` (Baker et al.): square-grid layout exploiting
  long-distance interactions (an interaction radius covering diagonal
  neighbors), compact BFS placement.
- :class:`GraphineCompiler` (Patel et al.): application-specific annealed
  layout (same Step 1/2 as Parallax) with no atom movement.
"""

from repro.baselines.router import SwapRouter, RoutedCircuit, RouterConfig
from repro.baselines.static_schedule import static_schedule
from repro.baselines.eldi import EldiCompiler
from repro.baselines.graphine_compiler import GraphineCompiler

__all__ = [
    "SwapRouter",
    "RouterConfig",
    "RoutedCircuit",
    "static_schedule",
    "EldiCompiler",
    "GraphineCompiler",
]
