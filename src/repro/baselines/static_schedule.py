"""Blockade-aware ASAP scheduling for static (no-movement) techniques.

ELDI and Graphine execute routed circuits on stationary atoms, so their
runtime is determined by dependency-respecting layers serialized by the
Rydberg blockade.  A SWAP occupies its layer for three sequential CZ
durations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.gate import Gate
from repro.core.result import CompiledLayer
from repro.hardware.spec import HardwareSpec

__all__ = ["static_schedule", "StaticSchedule"]


@dataclass(frozen=True)
class StaticSchedule:
    """Layered schedule and total runtime of a static-topology execution."""

    layers: list[CompiledLayer]
    runtime_us: float


def _gates_conflict(
    a: Gate, b: Gate, positions: np.ndarray, blockade_radius: float
) -> bool:
    """True when two 2-qubit gates cannot share a layer (blockade)."""
    for qa in a.qubits:
        for qb in b.qubits:
            d = positions[qa] - positions[qb]
            if float(np.hypot(d[0], d[1])) <= blockade_radius:
                return True
    return False


def static_schedule(
    gates: list[Gate],
    positions: np.ndarray,
    blockade_radius: float,
    spec: HardwareSpec,
) -> StaticSchedule:
    """Layer ``gates`` (on physical atoms) respecting blockade serialization.

    Greedy ASAP: each gate goes to the earliest layer after its operands are
    free in which it conflicts with no already-placed two-qubit gate.
    """
    positions = np.asarray(positions, dtype=float)
    layer_gates: list[list[Gate]] = []
    layer_two_qubit: list[list[Gate]] = []
    atom_free: dict[int, int] = {}

    for gate in gates:
        if gate.name in ("barrier", "measure"):
            continue
        earliest = max((atom_free.get(q, 0) for q in gate.qubits), default=0)
        placed_at = None
        if gate.num_qubits >= 2:
            level = earliest
            while True:
                while len(layer_gates) <= level:
                    layer_gates.append([])
                    layer_two_qubit.append([])
                conflict = any(
                    _gates_conflict(gate, other, positions, blockade_radius)
                    for other in layer_two_qubit[level]
                )
                if not conflict:
                    placed_at = level
                    break
                level += 1
        else:
            while len(layer_gates) <= earliest:
                layer_gates.append([])
                layer_two_qubit.append([])
            placed_at = earliest
        layer_gates[placed_at].append(gate)
        if gate.num_qubits >= 2:
            layer_two_qubit[placed_at].append(gate)
        for q in gate.qubits:
            atom_free[q] = placed_at + 1

    layers: list[CompiledLayer] = []
    total = 0.0
    for bucket in layer_gates:
        if not bucket:
            continue
        has_swap = any(g.name == "swap" for g in bucket)
        has_cz = any(g.name == "cz" for g in bucket)
        has_u3 = any(g.num_qubits == 1 for g in bucket)
        time_us = max(
            3.0 * spec.cz_time_us if has_swap else 0.0,
            spec.cz_time_us if has_cz else 0.0,
            spec.u3_time_us if has_u3 else 0.0,
        )
        total += time_us
        layers.append(CompiledLayer(gates=tuple(bucket), time_us=time_us))
    return StaticSchedule(layers=layers, runtime_us=total)
