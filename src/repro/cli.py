"""Command-line compiler driver.

Mirrors the paper's workflow: a QASM 2.0 file in, compilation statistics
out, for any of the three techniques::

    python -m repro.cli circuit.qasm --technique parallax --machine quera
    python -m repro.cli circuit.qasm --technique all --shots 8000
"""

from __future__ import annotations

import argparse
import sys

from repro.baselines.eldi import EldiCompiler
from repro.baselines.graphine_compiler import GraphineCompiler
from repro.core.compiler import ParallaxCompiler
from repro.core.parallel_shots import parallelization_factor, total_execution_time_us
from repro.hardware.spec import HardwareSpec
from repro.noise.fidelity import success_probability
from repro.qasm.parser import load_file
from repro.utils.tables import format_table

__all__ = ["main"]

_MACHINES = {
    "quera": HardwareSpec.quera_aquila,
    "atom": HardwareSpec.atom_computing,
}

_COMPILERS = {
    "parallax": ParallaxCompiler,
    "eldi": EldiCompiler,
    "graphine": GraphineCompiler,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="Compile an OpenQASM 2.0 circuit for a neutral-atom machine.",
    )
    parser.add_argument("qasm_file", help="path to an OpenQASM 2.0 file")
    parser.add_argument(
        "--technique",
        choices=[*_COMPILERS, "all"],
        default="parallax",
        help="compiler to run (default: parallax)",
    )
    parser.add_argument(
        "--machine",
        choices=sorted(_MACHINES),
        default="quera",
        help="target machine (default: quera, the 256-qubit system)",
    )
    parser.add_argument(
        "--aod-count",
        type=int,
        default=20,
        help="AOD rows/columns (default: 20, the paper's best)",
    )
    parser.add_argument(
        "--shots",
        type=int,
        default=0,
        help="if > 0, also report parallelized total execution time",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also dump the full compilation result(s) as JSON to PATH "
        "(one object, keyed by technique)",
    )
    args = parser.parse_args(argv)

    try:
        circuit = load_file(args.qasm_file)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    spec = _MACHINES[args.machine](aod_count=args.aod_count)
    techniques = list(_COMPILERS) if args.technique == "all" else [args.technique]

    rows = []
    json_payload: dict[str, dict] = {}
    for name in techniques:
        result = _COMPILERS[name](spec).compile(circuit)
        if args.json:
            from repro.core.serialize import result_to_dict

            json_payload[name] = result_to_dict(result)
        row = [
            name,
            result.num_cz,
            result.num_u3,
            result.num_swaps,
            result.num_layers,
            round(result.runtime_us, 1),
            f"{success_probability(result):.3e}",
        ]
        if args.shots > 0:
            factor = parallelization_factor(result, spec)
            total_s = total_execution_time_us(result, args.shots, spec=spec) / 1e6
            row.extend([factor, round(total_s, 4)])
        rows.append(row)

    headers = ["technique", "cz", "u3", "swaps", "layers", "runtime_us", "success"]
    if args.shots > 0:
        headers.extend(["parallel_copies", f"time_{args.shots}_shots_s"])
    print(
        format_table(
            headers, rows, title=f"{args.qasm_file} on {spec.name} "
            f"({circuit.num_qubits} qubits)"
        )
    )
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(json_payload, handle, indent=2)
        print(f"wrote JSON results to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
