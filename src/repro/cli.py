"""Command-line compiler driver.

Mirrors the paper's workflow: a circuit in (an OpenQASM 2.0 file or a named
Table III benchmark), compilation statistics out, for any registered
technique::

    python -m repro.cli circuit.qasm --technique parallax --machine quera
    python -m repro.cli --benchmark QAOA --technique all --jobs 3
    python -m repro.cli circuit.qasm --technique all --shots 8000
    python -m repro.cli --benchmark ADD --technique all --mc-shots 20000
    python -m repro.cli --sweep-summary sweep-out

Techniques are resolved by name through the
:mod:`repro.pipeline.registry`, benchmarks through
:mod:`repro.benchcircuits.registry`, and all compilation is routed through
the :func:`~repro.pipeline.batch.compile_many` batch engine (``--jobs`` fans
techniques out across processes, ``--cache-dir`` enables the persistent
on-disk compilation cache).

For multi-scenario evaluation use ``python -m repro.sweeps`` (grids,
stores, distributed workers); ``--sweep-summary DIR`` here is a read-only
view over such a store.  See README.md for the full CLI index.
"""

from __future__ import annotations

import argparse
import sys

from repro.benchcircuits.registry import BENCHMARKS, get_benchmark
from repro.core.parallel_shots import parallelization_factor, total_execution_time_us
from repro.hardware.spec import HardwareSpec
from repro.noise.fidelity import success_probability
from repro.pipeline.batch import compile_many
from repro.pipeline.cache import CompilationCache
from repro.pipeline.registry import available_techniques
from repro.qasm.parser import load_file
from repro.utils.profiling import PhaseTimer
from repro.utils.tables import format_table

__all__ = ["main"]

_MACHINES = {
    "quera": HardwareSpec.quera_aquila,
    "atom": HardwareSpec.atom_computing,
}


def main(argv: list[str] | None = None) -> int:
    techniques_available = available_techniques()
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="Compile an OpenQASM 2.0 circuit (or a named Table III "
        "benchmark) for a neutral-atom machine.",
    )
    parser.add_argument(
        "qasm_file",
        nargs="?",
        default=None,
        help="path to an OpenQASM 2.0 file (or use --benchmark)",
    )
    parser.add_argument(
        "--benchmark",
        default=None,
        metavar="ACRONYM",
        help="named Table III benchmark (e.g. QAOA) instead of a QASM file; "
        f"one of {sorted(BENCHMARKS)}",
    )
    parser.add_argument(
        "--corpus",
        default=None,
        metavar="DIR",
        help="register every .qasm file under DIR as a named workload, so "
        "--benchmark also accepts corpus workload ids (unparseable files "
        "are skipped with a warning)",
    )
    parser.add_argument(
        "--technique",
        choices=[*techniques_available, "all"],
        default="parallax",
        help="compiler to run (default: parallax)",
    )
    parser.add_argument(
        "--machine",
        choices=sorted(_MACHINES),
        default="quera",
        help="target machine (default: quera, the 256-qubit system)",
    )
    parser.add_argument(
        "--aod-count",
        type=int,
        default=20,
        help="AOD rows/columns (default: 20, the paper's best)",
    )
    parser.add_argument(
        "--shots",
        type=int,
        default=0,
        help="if > 0, also report parallelized total execution time",
    )
    parser.add_argument(
        "--mc-shots",
        type=int,
        default=0,
        metavar="N",
        help="if > 0, also sample N Monte Carlo noisy shots per technique "
        "(vectorized) and report the empirical success rate +/- stderr",
    )
    parser.add_argument(
        "--mc-seed",
        type=int,
        default=0,
        metavar="N",
        help="seed for the Monte Carlo shot sampler (default: 0)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="compile techniques in parallel over N processes (default: 1)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="persistent compilation cache directory (reruns become hits)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also dump the full compilation result(s) as JSON to PATH "
        "(one object, keyed by technique)",
    )
    parser.add_argument(
        "--sweep-summary",
        metavar="DIR",
        default=None,
        help="instead of compiling, summarize the sweep store at DIR "
        "(per-benchmark/technique marginals + technique crossovers)",
    )
    parser.add_argument(
        "--phase-report",
        action="store_true",
        help="also print aggregated per-stage compile timings "
        "(PhaseTimer totals, merged across --jobs workers)",
    )
    parser.add_argument(
        "--phase-report-json",
        metavar="PATH",
        default=None,
        help="dump the per-stage compile timings as JSON to PATH "
        '({"totals": {...seconds}, "counts": {...}})',
    )
    args = parser.parse_args(argv)

    if args.sweep_summary is not None:
        from repro.sweeps.analysis import ResultTable, render_store_summary
        from repro.sweeps.store import SweepStore

        store = SweepStore(args.sweep_summary)
        table = ResultTable.from_store(store)
        if not len(table):
            print(
                f"error: no readable sweep records in {args.sweep_summary}",
                file=sys.stderr,
            )
            return 1
        print(render_store_summary(table))
        print(f"store backend: {store.stats().describe()}")
        return 0

    if (args.qasm_file is None) == (args.benchmark is None):
        parser.error("provide exactly one of: a QASM file path, or --benchmark")

    if args.corpus is not None:
        from repro.qasm.corpus import activate_corpus

        try:
            corpus = activate_corpus(args.corpus)
        except ValueError as exc:
            parser.error(str(exc))
        for name, reason in corpus.skipped:
            print(f"corpus: skipped {name}: {reason}")
        print(corpus.summary_line)

    try:
        if args.benchmark is not None:
            circuit = get_benchmark(args.benchmark)
            source = f"benchmark {args.benchmark.upper()}"
        else:
            circuit = load_file(args.qasm_file)
            source = args.qasm_file
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    spec = _MACHINES[args.machine](aod_count=args.aod_count)
    techniques = (
        list(techniques_available) if args.technique == "all" else [args.technique]
    )
    cache = CompilationCache(args.cache_dir) if args.cache_dir else None
    pairs = compile_many(
        [circuit], techniques, [spec], workers=args.jobs, cache=cache,
        return_timings=True,
    )
    results = [result for result, _ in pairs]
    phase_timer = PhaseTimer()
    for _, stage_times in pairs:
        if stage_times:
            phase_timer.merge(stage_times)

    rows = []
    json_payload: dict[str, dict] = {}
    for name, result in zip(techniques, results):
        if args.json:
            from repro.core.serialize import result_to_dict

            json_payload[name] = result_to_dict(result)
        row = [
            name,
            result.num_cz,
            result.num_u3,
            result.num_swaps,
            result.num_layers,
            round(result.runtime_us, 1),
            f"{success_probability(result):.3e}",
        ]
        if args.mc_shots > 0:
            from repro.sim.noisy import NoisyShotSimulator

            outcome = NoisyShotSimulator(result, seed=args.mc_seed).run(
                args.mc_shots
            )
            row.append(f"{outcome.success_rate:.4f}+/-{outcome.stderr():.4f}")
        if args.shots > 0:
            factor = parallelization_factor(result, spec)
            total_s = total_execution_time_us(result, args.shots, spec=spec) / 1e6
            row.extend([factor, round(total_s, 4)])
        rows.append(row)

    headers = ["technique", "cz", "u3", "swaps", "layers", "runtime_us", "success"]
    if args.mc_shots > 0:
        headers.append(f"empirical_{args.mc_shots}")
    if args.shots > 0:
        headers.extend(["parallel_copies", f"time_{args.shots}_shots_s"])
    print(
        format_table(
            headers, rows, title=f"{source} on {spec.name} "
            f"({circuit.num_qubits} qubits)"
        )
    )
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(json_payload, handle, indent=2)
        print(f"wrote JSON results to {args.json}")
    if args.phase_report:
        print("per-stage compile timings (cache hits report no stages):")
        print(phase_timer.report())
    if args.phase_report_json:
        import json

        payload = {"totals": phase_timer.totals(), "counts": phase_timer.counts()}
        with open(args.phase_report_json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote phase timings to {args.phase_report_json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
