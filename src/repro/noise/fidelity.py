"""Estimated success probability of a compiled circuit."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.result import CompilationResult
from repro.hardware.spec import HardwareSpec
from repro.utils.validation import check_non_negative

__all__ = ["NoiseModelConfig", "decoherence_factor", "success_probability"]


@dataclass(frozen=True)
class NoiseModelConfig:
    """Which noise terms to include.

    Attributes:
        include_decoherence: qubit-wise exp(-t/T1 - t/T2) decay.
        include_readout: per-qubit readout error (off by default; the
            paper's Fig. 10 numbers calibrate to gate products only --
            see DESIGN.md).
        include_movement: per-move atom-loss error and per-trap-switch error.
        trap_switches_per_resolution: switches charged per trap-change event.
    """

    include_decoherence: bool = True
    include_readout: bool = False
    include_movement: bool = True
    trap_switches_per_resolution: int = 2


def decoherence_factor(
    runtime_us: float, num_qubits: int, spec: HardwareSpec
) -> float:
    """Qubit-wise hyperfine decoherence survival over ``runtime_us``.

    Each qubit decays as ``exp(-t/T1) * exp(-t/T2)``; the circuit survives
    when every qubit does, so the factors multiply across qubits.
    """
    check_non_negative("runtime_us", runtime_us)
    rate = 1.0 / spec.t1_us + 1.0 / spec.t2_us
    return math.exp(-num_qubits * runtime_us * rate)


def success_probability(
    result: CompilationResult,
    config: NoiseModelConfig | None = None,
) -> float:
    """Estimated probability that one shot of ``result`` succeeds.

    The product of per-component success rates: CZ gates (SWAPs already
    expanded to three CZs in ``result.num_cz``), U3 gates, optional
    movement/trap-switch losses, decoherence, and optional readout.
    """
    config = config or NoiseModelConfig()
    spec = result.spec
    prob = (1.0 - spec.cz_error) ** result.num_cz
    prob *= (1.0 - spec.u3_error) ** result.num_u3
    prob *= (1.0 - spec.ccz_error) ** result.num_ccz
    if config.include_movement:
        prob *= (1.0 - spec.move_error) ** result.num_moves
        switches = result.trap_change_events * config.trap_switches_per_resolution
        prob *= (1.0 - spec.trap_switch_error) ** switches
    if config.include_decoherence:
        prob *= decoherence_factor(result.runtime_us, result.num_qubits, spec)
    if config.include_readout:
        prob *= (1.0 - spec.readout_error) ** result.num_qubits
    return prob
