"""Estimated success probability of a compiled circuit."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.result import CompilationResult
from repro.hardware.spec import HardwareSpec, TRAP_SWITCHES_PER_RESOLUTION
from repro.utils.validation import check_non_negative

__all__ = [
    "ChannelProbabilities",
    "NoiseModelConfig",
    "channel_probabilities",
    "decoherence_factor",
    "success_probability",
]


@dataclass(frozen=True)
class NoiseModelConfig:
    """Which noise terms to include.

    Attributes:
        include_decoherence: qubit-wise exp(-t/T1 - t/T2) decay.
        include_readout: per-qubit readout error (off by default; the
            paper's Fig. 10 numbers calibrate to gate products only --
            see DESIGN.md).
        include_movement: per-move atom-loss error and per-trap-switch error.
        trap_switches_per_resolution: switches charged per trap-change event;
            defaults to the shared
            :data:`~repro.hardware.spec.TRAP_SWITCHES_PER_RESOLUTION`
            constant, the same assumption the runtime decomposition uses.
    """

    include_decoherence: bool = True
    include_readout: bool = False
    include_movement: bool = True
    trap_switches_per_resolution: int = TRAP_SWITCHES_PER_RESOLUTION


@dataclass(frozen=True)
class ChannelProbabilities:
    """Per-channel survival probabilities of one shot of a compiled circuit.

    The single source of the Table II error-channel arithmetic: both the
    closed-form :func:`success_probability` and the Monte Carlo sampler in
    :mod:`repro.sim.noisy` consume these numbers, so the analytic estimate
    and the empirical rate can never use different formulas.
    """

    gates: float
    movement: float = 1.0
    decoherence: float = 1.0
    readout: float = 1.0

    @property
    def product(self) -> float:
        """Probability that no channel fires: the shot succeeds."""
        return self.gates * self.movement * self.decoherence * self.readout


def decoherence_factor(
    runtime_us: float, num_qubits: int, spec: HardwareSpec
) -> float:
    """Qubit-wise hyperfine decoherence survival over ``runtime_us``.

    Each qubit decays as ``exp(-t/T1) * exp(-t/T2)``; the circuit survives
    when every qubit does, so the factors multiply across qubits.
    """
    check_non_negative("runtime_us", runtime_us)
    rate = 1.0 / spec.t1_us + 1.0 / spec.t2_us
    return math.exp(-num_qubits * runtime_us * rate)


def channel_probabilities(
    result: CompilationResult,
    config: NoiseModelConfig | None = None,
) -> ChannelProbabilities:
    """Survival probability of each Table II error channel for one shot.

    Channels excluded by ``config`` report probability 1.0 (they never
    fire), so the product is always the configured success estimate.
    """
    config = config or NoiseModelConfig()
    spec = result.spec
    gates = (
        (1.0 - spec.cz_error) ** result.num_cz
        * (1.0 - spec.u3_error) ** result.num_u3
        * (1.0 - spec.ccz_error) ** result.num_ccz
    )
    movement = 1.0
    if config.include_movement:
        switches = result.trap_change_events * config.trap_switches_per_resolution
        movement = (1.0 - spec.move_error) ** result.num_moves * (
            1.0 - spec.trap_switch_error
        ) ** switches
    decoherence = 1.0
    if config.include_decoherence:
        decoherence = decoherence_factor(result.runtime_us, result.num_qubits, spec)
    readout = 1.0
    if config.include_readout:
        readout = (1.0 - spec.readout_error) ** result.num_qubits
    return ChannelProbabilities(
        gates=gates, movement=movement, decoherence=decoherence, readout=readout
    )


def success_probability(
    result: CompilationResult,
    config: NoiseModelConfig | None = None,
) -> float:
    """Estimated probability that one shot of ``result`` succeeds.

    The product of per-component success rates: CZ gates (SWAPs already
    expanded to three CZs in ``result.num_cz``), U3 gates, optional
    movement/trap-switch losses, decoherence, and optional readout.
    """
    return channel_probabilities(result, config).product
