"""Noise model: estimated probability of success (Fig. 10's metric).

Follows the estimated-success-probability methodology the paper cites
(Graphine / VERITAS): the product of the success rates of every circuit
component, times a qubit-wise exponential decoherence decay driven by the
circuit runtime and the hyperfine T1/T2 times.  Atom loss is folded into T1
(as the paper's Section III states), and readout error is excluded by
default (see DESIGN.md Section 5 for the calibration showing the paper's
Fig. 10 numbers exclude it); both are exposed as options.
"""

from repro.noise.fidelity import (
    success_probability,
    channel_probabilities,
    decoherence_factor,
    ChannelProbabilities,
    NoiseModelConfig,
)

__all__ = [
    "success_probability",
    "channel_probabilities",
    "decoherence_factor",
    "ChannelProbabilities",
    "NoiseModelConfig",
]
