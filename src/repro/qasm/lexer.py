"""Tokenizer for OpenQASM 2.0 source text.

Every token carries its (1-based) line *and* column, and every lexical
error raises :class:`QasmSyntaxError` with both coordinates -- the parser
threads them through, so any malformed input is reported as ``line L, col
C: message`` instead of a raw traceback.  Both ``//`` line comments and
``/* ... */`` block comments are recognised; an unterminated block comment
or string is a lexical error at its opening position.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from collections.abc import Iterator

__all__ = ["Token", "tokenize", "QasmSyntaxError"]


class QasmSyntaxError(ValueError):
    """Raised for any lexical or syntactic error in QASM source.

    Attributes:
        line: 1-based source line of the error (0 when unknown).
        col: 1-based source column of the error (0 when unknown).
    """

    def __init__(self, message: str, line: int, col: int = 0) -> None:
        location = f"line {line}, col {col}" if col else f"line {line}"
        super().__init__(f"{location}: {message}")
        self.line = line
        self.col = col


@dataclass(frozen=True)
class Token:
    """One lexical token: kind tag, source text, and 1-based line/column."""

    kind: str
    text: str
    line: int
    col: int = 0


_KEYWORDS = {
    "OPENQASM", "include", "qreg", "creg", "gate", "opaque",
    "barrier", "measure", "reset", "if", "pi",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*)
  | (?P<block_comment>/\*)
  | (?P<real>(\d+\.\d*|\.\d+)([eE][+-]?\d+)?|\d+[eE][+-]?\d+)
  | (?P<int>\d+)
  | (?P<id>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<string>"[^"\n]*")
  | (?P<badstring>")
  | (?P<arrow>->)
  | (?P<eq>==)
  | (?P<sym>[{}()\[\];,+\-*/^])
  | (?P<ws>[ \t\r]+)
  | (?P<newline>\n)
    """,
    re.VERBOSE,
)

_BLOCK_COMMENT_END = re.compile(r"\*/")


def tokenize(source: str) -> Iterator[Token]:
    """Yield tokens from QASM source, skipping comments and whitespace.

    Raises:
        QasmSyntaxError: on any character that starts no valid token, an
            unterminated string literal, or an unterminated ``/* ...``
            block comment.
    """
    line = 1
    pos = 0
    line_start = 0  # offset of the first character of the current line
    length = len(source)
    while pos < length:
        col = pos - line_start + 1
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise QasmSyntaxError(
                f"unexpected character {source[pos]!r}", line, col
            )
        pos = match.end()
        kind = match.lastgroup
        text = match.group()
        if kind == "newline":
            line += 1
            line_start = pos
            continue
        if kind in ("ws", "comment"):
            continue
        if kind == "block_comment":
            end = _BLOCK_COMMENT_END.search(source, pos)
            if end is None:
                raise QasmSyntaxError("unterminated block comment", line, col)
            body = source[pos : end.start()]
            newlines = body.count("\n")
            if newlines:
                line += newlines
                line_start = pos + body.rfind("\n") + 1
            pos = end.end()
            continue
        if kind == "badstring":
            raise QasmSyntaxError("unterminated string literal", line, col)
        if kind == "id" and text in _KEYWORDS:
            yield Token("keyword", text, line, col)
        elif kind == "string":
            yield Token("string", text[1:-1], line, col)
        else:
            assert kind is not None
            yield Token(kind, text, line, col)
    yield Token("eof", "", line, pos - line_start + 1)
