"""Tokenizer for OpenQASM 2.0 source text."""

from __future__ import annotations

import re
from dataclasses import dataclass
from collections.abc import Iterator

__all__ = ["Token", "tokenize", "QasmSyntaxError"]


class QasmSyntaxError(ValueError):
    """Raised for any lexical or syntactic error in QASM source."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass(frozen=True)
class Token:
    """One lexical token: a kind tag, the source text, and its line number."""

    kind: str
    text: str
    line: int


_KEYWORDS = {
    "OPENQASM", "include", "qreg", "creg", "gate", "opaque",
    "barrier", "measure", "reset", "if", "pi",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*)
  | (?P<real>(\d+\.\d*|\.\d+)([eE][+-]?\d+)?|\d+[eE][+-]?\d+)
  | (?P<int>\d+)
  | (?P<id>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<string>"[^"\n]*")
  | (?P<arrow>->)
  | (?P<eq>==)
  | (?P<sym>[{}()\[\];,+\-*/^])
  | (?P<ws>[ \t\r]+)
  | (?P<newline>\n)
    """,
    re.VERBOSE,
)


def tokenize(source: str) -> Iterator[Token]:
    """Yield tokens from QASM source, skipping comments and whitespace.

    Raises:
        QasmSyntaxError: on any character that starts no valid token.
    """
    line = 1
    pos = 0
    length = len(source)
    while pos < length:
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise QasmSyntaxError(f"unexpected character {source[pos]!r}", line)
        pos = match.end()
        kind = match.lastgroup
        text = match.group()
        if kind == "newline":
            line += 1
            continue
        if kind in ("ws", "comment"):
            continue
        if kind == "id" and text in _KEYWORDS:
            yield Token("keyword", text, line)
        elif kind == "string":
            yield Token("string", text[1:-1], line)
        else:
            assert kind is not None
            yield Token(kind, text, line)
    yield Token("eof", "", line)
