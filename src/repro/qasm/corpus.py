"""External QASM workload corpora.

The sweep subsystem's benchmark axis is opened to the wild here: a *corpus*
is any directory of OpenQASM 2.0 files (a QASMBench checkout, an exported
suite, hand-written circuits).  :func:`scan_corpus` discovers and validates
every ``.qasm`` file, assigns each a **stable content-derived workload id**
(``<STEM>-<SHA256[:8]>``, uppercase -- renaming a file or re-scanning never
changes an id, editing its contents always does), and *skips with a
warning* any file the front-end rejects (the skip-with-warning contract:
one ``corpus: skipped <file>: <reason>`` line per rejected file, carried in
:attr:`Corpus.skipped` and emitted as a :class:`RuntimeWarning`; a corpus
with unsupported constructs degrades, it never aborts the sweep).

Registered workloads resolve through
:func:`repro.benchcircuits.registry.get_benchmark` exactly like Table III
acronyms, so a corpus id is a first-class benchmark everywhere: grids,
plans, stores, analyze columns.  Because distributed sweeps spawn worker
processes that rebuild the plan from scratch, :func:`activate_corpus`
records the directory in the ``REPRO_CORPUS`` environment variable
(``os.pathsep``-separated); any process that fails a registry lookup lazily
re-scans those directories first, so spawned workers resolve corpus ids
without explicit plumbing.
"""

from __future__ import annotations

import hashlib
import os
import re
import warnings
from dataclasses import dataclass
from pathlib import Path

from repro.circuit.circuit import QuantumCircuit
from repro.qasm.lexer import QasmSyntaxError
from repro.qasm.parser import parse_qasm

__all__ = [
    "CorpusWorkload",
    "Corpus",
    "workload_id",
    "scan_corpus",
    "register_corpus",
    "activate_corpus",
    "resolve_workload",
    "registered_workloads",
    "clear_corpus_registry",
    "CORPUS_ENV_VAR",
]

#: Environment variable naming the active corpus directories
#: (``os.pathsep``-separated).  Spawned sweep workers inherit it and lazily
#: re-register, so corpus ids resolve in any process of a fleet.
CORPUS_ENV_VAR = "REPRO_CORPUS"

_ID_SANITIZE_RE = re.compile(r"[^A-Za-z0-9_]+")


@dataclass(frozen=True)
class CorpusWorkload:
    """One validated corpus circuit.

    Attributes:
        workload_id: stable content-derived benchmark id (uppercase).
        path: source file the circuit was parsed from.
        checksum: full SHA-256 hex digest of the file text.
        num_qubits: qubit count of the parsed circuit.
        num_gates: gate count of the parsed circuit.
    """

    workload_id: str
    path: str
    checksum: str
    num_qubits: int
    num_gates: int


@dataclass(frozen=True)
class Corpus:
    """One scanned corpus directory.

    Attributes:
        directory: the scanned directory (as given).
        workloads: validated workloads, ordered by relative path.
        skipped: ``(relative path, reason)`` pairs for every rejected
            file, in the same deterministic order.
    """

    directory: str
    workloads: tuple
    skipped: tuple

    @property
    def workload_ids(self) -> tuple:
        return tuple(w.workload_id for w in self.workloads)

    @property
    def summary_line(self) -> str:
        """Stable machine-readable one-liner (``CORPUS dir=... ...``).

        Like the other line contracts (``RESUME``/``MERGE``/``STATS``, see
        ``docs/store-format.md``): the prefix and existing fields never
        change, new fields append at the end.
        """
        return (
            f"CORPUS dir={self.directory} workloads={len(self.workloads)} "
            f"skipped={len(self.skipped)}"
        )


def workload_id(stem: str, text: str) -> str:
    """The stable benchmark id for a corpus file: ``<STEM>-<SHA256[:8]>``.

    Uppercase (grid benchmark names are case-folded), with the stem
    sanitized to ``[A-Z0-9_]``.  A pure function of file *name stem* and
    *content* -- never of the directory, scan order, or mtime -- so ids
    survive re-scans, moves, and re-exports byte-for-byte.
    """
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()[:8].upper()
    stem = _ID_SANITIZE_RE.sub("_", stem).strip("_").upper() or "WORKLOAD"
    return f"{stem}-{digest}"


def scan_corpus(directory: str, pattern: str = "*.qasm") -> Corpus:
    """Discover and validate every QASM file under ``directory``.

    Files are scanned recursively in sorted relative-path order (the scan
    is deterministic for a given directory content).  Files the front-end
    rejects -- malformed QASM, unsupported constructs, non-UTF-8 bytes --
    are collected into :attr:`Corpus.skipped` and reported as one
    ``corpus: skipped <file>: <reason>`` :class:`RuntimeWarning` each;
    they never abort the scan.

    Raises:
        ValueError: when ``directory`` does not exist or matches no files.
    """
    root = Path(directory)
    if not root.is_dir():
        raise ValueError(f"corpus directory {directory!r} does not exist")
    paths = sorted(root.rglob(pattern), key=lambda p: p.relative_to(root).as_posix())
    if not paths:
        raise ValueError(
            f"corpus directory {directory!r} contains no {pattern} files"
        )
    workloads: list[CorpusWorkload] = []
    skipped: list[tuple[str, str]] = []
    for path in paths:
        relative = path.relative_to(root).as_posix()
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            reason = f"unreadable: {exc}"
            skipped.append((relative, reason))
            warnings.warn(f"corpus: skipped {relative}: {reason}", RuntimeWarning)
            continue
        try:
            circuit = parse_qasm(text)
        except QasmSyntaxError as exc:
            skipped.append((relative, str(exc)))
            warnings.warn(f"corpus: skipped {relative}: {exc}", RuntimeWarning)
            continue
        workloads.append(
            CorpusWorkload(
                workload_id=workload_id(path.stem, text),
                path=str(path),
                checksum=hashlib.sha256(text.encode("utf-8")).hexdigest(),
                num_qubits=circuit.num_qubits,
                num_gates=len(circuit),
            )
        )
    return Corpus(
        directory=str(directory),
        workloads=tuple(workloads),
        skipped=tuple(skipped),
    )


# -- registry ------------------------------------------------------------------

#: workload id -> source path; circuits are parsed on first resolution and
#: cached here, so registration is cheap and resolution is deterministic in
#: every process that scans the same directory.
_REGISTRY: dict[str, str] = {}
_CIRCUITS: dict[str, QuantumCircuit] = {}
_SCANNED_DIRS: set[str] = set()


def register_corpus(corpus: "Corpus | str") -> Corpus:
    """Make a corpus's workload ids resolvable as benchmarks (this process).

    Accepts a :class:`Corpus` or a directory path (scanned first).
    Idempotent: ids are content-derived, so re-registering the same
    directory is a no-op and two files with equal stem and content map to
    the same id.
    """
    if not isinstance(corpus, Corpus):
        corpus = scan_corpus(corpus)
    for workload in corpus.workloads:
        _REGISTRY[workload.workload_id] = workload.path
    _SCANNED_DIRS.add(os.path.abspath(corpus.directory))
    return corpus


def activate_corpus(directory: str) -> Corpus:
    """Register ``directory`` here *and* export it to spawned processes.

    Appends the directory to :data:`CORPUS_ENV_VAR` so worker processes
    (``--eval-jobs`` / ``--workers`` spawn children that rebuild the sweep
    plan) lazily re-scan it on their first failed benchmark lookup.
    """
    corpus = register_corpus(directory)
    absolute = os.path.abspath(directory)
    existing = [
        entry
        for entry in os.environ.get(CORPUS_ENV_VAR, "").split(os.pathsep)
        if entry
    ]
    if absolute not in existing:
        existing.append(absolute)
        os.environ[CORPUS_ENV_VAR] = os.pathsep.join(existing)
    return corpus


def _ensure_env_corpora() -> None:
    """Scan any ``REPRO_CORPUS`` directories not yet registered here."""
    for entry in os.environ.get(CORPUS_ENV_VAR, "").split(os.pathsep):
        if not entry:
            continue
        absolute = os.path.abspath(entry)
        if absolute in _SCANNED_DIRS:
            continue
        _SCANNED_DIRS.add(absolute)
        try:
            register_corpus(absolute)
        except ValueError:
            # A vanished directory must not break resolution of the others.
            continue


def resolve_workload(name: str) -> QuantumCircuit:
    """The circuit for a registered corpus workload id.

    Falls back to scanning the :data:`CORPUS_ENV_VAR` directories before
    giving up, so spawned workers resolve ids their parent registered.

    Raises:
        KeyError: when ``name`` matches no registered workload.
    """
    key = name.upper()
    if key not in _REGISTRY:
        _ensure_env_corpora()
    path = _REGISTRY.get(key)
    if path is None:
        raise KeyError(f"unknown corpus workload {name!r}")
    if key not in _CIRCUITS:
        text = Path(path).read_text(encoding="utf-8")
        circuit = parse_qasm(text)
        circuit.name = key
        _CIRCUITS[key] = circuit
    return _CIRCUITS[key]


def registered_workloads() -> dict:
    """Snapshot of the registered id -> source path mapping."""
    return dict(_REGISTRY)


def clear_corpus_registry() -> None:
    """Drop every registered workload (tests; does not touch the env var)."""
    _REGISTRY.clear()
    _CIRCUITS.clear()
    _SCANNED_DIRS.clear()
