"""OpenQASM 2.0 front-end.

The paper reads its 18 benchmarks from QASM 2.0 files.  Qiskit is not
available offline, so this package implements the subset of OpenQASM 2.0
those benchmarks need: ``qreg``/``creg`` declarations, ``include
"qelib1.inc"`` (whose standard gate definitions are built in), custom
``gate`` definitions with parameters, constant expressions over ``pi``,
``barrier`` and ``measure``, and register broadcasting.
"""

from repro.qasm.lexer import tokenize, Token, QasmSyntaxError
from repro.qasm.parser import parse_qasm, loads, load_file
from repro.qasm.exporter import to_qasm
from repro.qasm.corpus import (
    Corpus,
    CorpusWorkload,
    scan_corpus,
    register_corpus,
    activate_corpus,
    resolve_workload,
)

__all__ = [
    "tokenize",
    "Token",
    "QasmSyntaxError",
    "parse_qasm",
    "loads",
    "load_file",
    "to_qasm",
    "Corpus",
    "CorpusWorkload",
    "scan_corpus",
    "register_corpus",
    "activate_corpus",
    "resolve_workload",
]
