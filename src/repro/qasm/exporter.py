"""Export a :class:`QuantumCircuit` back to OpenQASM 2.0 text.

Round-tripping through the exporter and parser is exercised by the test
suite to validate both ends of the front-end.
"""

from __future__ import annotations

from repro.circuit.circuit import QuantumCircuit

__all__ = ["to_qasm"]


def _format_param(value: float) -> str:
    return f"{value!r}"


def to_qasm(circuit: QuantumCircuit, include_measure: bool = True) -> str:
    """Serialize ``circuit`` as OpenQASM 2.0 with a single register ``q``."""
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
    ]
    has_measure = any(g.name == "measure" for g in circuit.gates)
    if has_measure and include_measure:
        lines.append(f"creg c[{circuit.num_qubits}];")
    for gate in circuit.gates:
        operands = ", ".join(f"q[{q}]" for q in gate.qubits)
        if gate.name == "measure":
            if include_measure:
                q = gate.qubits[0]
                lines.append(f"measure q[{q}] -> c[{q}];")
            continue
        if gate.name == "barrier":
            lines.append(f"barrier {operands};")
            continue
        if gate.params:
            args = ",".join(_format_param(p) for p in gate.params)
            lines.append(f"{gate.name}({args}) {operands};")
        else:
            lines.append(f"{gate.name} {operands};")
    return "\n".join(lines) + "\n"
