"""Recursive-descent parser for OpenQASM 2.0.

Produces a :class:`~repro.circuit.circuit.QuantumCircuit` with all quantum
registers flattened into one index space (in declaration order).  Custom
``gate`` bodies are expanded inline at call sites, so the output circuit
contains only standard gates, barriers and measures.

Supported grammar (the subset QASMBench-style files use)::

    OPENQASM 2.0;
    include "qelib1.inc";
    qreg q[5]; creg c[5];
    gate name(params) qubits { body }
    opaque name qubits;
    u3(pi/2, 0, pi) q[0];
    cx q[0], q[1];
    h q;                  // register broadcast
    barrier q;
    measure q -> c;

Hardened against adversarial input: every malformed construct -- bad
headers, unterminated comments or strings, zero-size or duplicate
registers, out-of-range quantum *and* classical indices, recursive or
forward-referencing gate definitions, pathological numeric literals, and
deeply nested constant expressions -- raises :class:`QasmSyntaxError`
carrying the 1-based line and column, never a raw ``RecursionError`` /
``IndexError`` / ``KeyError``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Gate
from repro.qasm.lexer import Token, tokenize, QasmSyntaxError
from repro.qasm.qelib import is_standard_gate

__all__ = ["parse_qasm", "loads", "load_file"]

#: Hard cap on one register's declared size: a sweep workload never needs
#: more, and it bounds the memory an adversarial ``qreg q[99999999999]``
#: can demand before the resolver materializes index lists.
MAX_REGISTER_SIZE = 1 << 20

#: Hard cap on nested custom-gate expansion.  QASM 2.0 forbids recursive
#: definitions outright (enforced separately at definition time); this
#: bounds legal-but-deep definition chains so expansion can never turn
#: into an interpreter stack overflow.
MAX_GATE_EXPANSION_DEPTH = 64

#: Hard cap on constant-expression nesting (parens, unary signs, function
#: calls).  Beyond this the evaluator reports the position instead of
#: letting CPython raise ``RecursionError``.
MAX_EXPR_DEPTH = 200


@dataclass(frozen=True)
class _GateDef:
    """A user-defined gate: parameter names, qubit argument names, body."""

    name: str
    params: tuple[str, ...]
    qargs: tuple[str, ...]
    # body entries: (gate_name, param_expr_tokens, qubit_arg_names)
    body: tuple[tuple[str, tuple[tuple[Token, ...], ...], tuple[str, ...]], ...]


class _Parser:
    def __init__(self, source: str) -> None:
        self.tokens = list(tokenize(source))
        self.pos = 0
        self.qregs: dict[str, tuple[int, int]] = {}  # name -> (offset, size)
        self.cregs: dict[str, int] = {}
        self.gate_defs: dict[str, _GateDef] = {}
        self.gates: list[Gate] = []
        self.num_qubits = 0
        self.expansion_depth = 0

    # -- token helpers ------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if self.pos < len(self.tokens) - 1:
            self.pos += 1
        return token

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.advance()
        if token.kind != kind or (text is not None and token.text != text):
            want = f"{kind} {text!r}" if text else kind
            raise QasmSyntaxError(
                f"expected {want}, got {token.kind} {token.text!r}",
                token.line,
                token.col,
            )
        return token

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    def _int_value(self, token: Token) -> int:
        """``int()`` of an integer token, wrapping pathological literals
        (e.g. thousands of digits tripping CPython's conversion limit)."""
        try:
            return int(token.text)
        except ValueError as exc:
            raise QasmSyntaxError(
                f"invalid integer literal ({len(token.text)} digits)",
                token.line,
                token.col,
            ) from exc

    # -- top level ----------------------------------------------------------

    def parse(self) -> QuantumCircuit:
        self._parse_header()
        while self.peek().kind != "eof":
            self._parse_statement()
        if self.num_qubits == 0 and not self.gates:
            eof = self.peek()
            raise QasmSyntaxError(
                "program declares no quantum registers and no gates",
                eof.line,
                eof.col,
            )
        circuit = QuantumCircuit(max(self.num_qubits, 1), name="qasm")
        circuit.extend(self.gates)
        return circuit

    def _parse_header(self) -> None:
        if self.accept("keyword", "OPENQASM"):
            version = self.advance()
            if version.kind not in ("real", "int"):
                raise QasmSyntaxError(
                    f"expected a version number after OPENQASM, got "
                    f"{version.text!r}",
                    version.line,
                    version.col,
                )
            if version.text not in ("2.0", "2"):
                raise QasmSyntaxError(
                    f"unsupported OPENQASM version {version.text!r}",
                    version.line,
                    version.col,
                )
            self.expect("sym", ";")

    def _parse_statement(self) -> None:
        token = self.peek()
        if token.kind == "keyword":
            handler = {
                "include": self._parse_include,
                "qreg": self._parse_qreg,
                "creg": self._parse_creg,
                "gate": self._parse_gate_def,
                "opaque": self._parse_opaque,
                "barrier": self._parse_barrier,
                "measure": self._parse_measure,
                "reset": self._parse_reset,
                "if": self._parse_if,
            }.get(token.text)
            if handler is None:
                raise QasmSyntaxError(
                    f"unexpected keyword {token.text!r}", token.line, token.col
                )
            handler()
        elif token.kind == "id":
            self._parse_gate_call()
        else:
            raise QasmSyntaxError(
                f"unexpected token {token.kind} {token.text!r}",
                token.line,
                token.col,
            )

    def _parse_include(self) -> None:
        self.expect("keyword", "include")
        name = self.expect("string")
        self.expect("sym", ";")
        if name.text not in ("qelib1.inc",):
            raise QasmSyntaxError(
                f"only qelib1.inc includes are supported, got {name.text!r}",
                name.line,
                name.col,
            )

    def _parse_register_size(self, name: Token, kind: str) -> int:
        self.expect("sym", "[")
        size_token = self.expect("int")
        size = self._int_value(size_token)
        self.expect("sym", "]")
        self.expect("sym", ";")
        if size == 0:
            raise QasmSyntaxError(
                f"{kind} {name.text!r} has size 0",
                size_token.line,
                size_token.col,
            )
        if size > MAX_REGISTER_SIZE:
            raise QasmSyntaxError(
                f"{kind} {name.text!r} size {size} exceeds the supported "
                f"maximum {MAX_REGISTER_SIZE}",
                size_token.line,
                size_token.col,
            )
        return size

    def _check_register_name(self, name: Token) -> None:
        if name.text in self.qregs:
            raise QasmSyntaxError(
                f"duplicate qreg {name.text!r}", name.line, name.col
            )
        if name.text in self.cregs:
            raise QasmSyntaxError(
                f"duplicate creg {name.text!r}", name.line, name.col
            )

    def _parse_qreg(self) -> None:
        self.expect("keyword", "qreg")
        name = self.expect("id")
        size = self._parse_register_size(name, "qreg")
        self._check_register_name(name)
        self.qregs[name.text] = (self.num_qubits, size)
        self.num_qubits += size

    def _parse_creg(self) -> None:
        self.expect("keyword", "creg")
        name = self.expect("id")
        size = self._parse_register_size(name, "creg")
        self._check_register_name(name)
        self.cregs[name.text] = size

    def _parse_opaque(self) -> None:
        token = self.expect("keyword", "opaque")
        raise QasmSyntaxError(
            "opaque gates are not supported", token.line, token.col
        )

    def _parse_if(self) -> None:
        token = self.expect("keyword", "if")
        raise QasmSyntaxError(
            "classically-controlled gates are not supported",
            token.line,
            token.col,
        )

    def _parse_reset(self) -> None:
        token = self.expect("keyword", "reset")
        raise QasmSyntaxError("reset is not supported", token.line, token.col)

    # -- gate definitions ---------------------------------------------------

    def _parse_gate_def(self) -> None:
        self.expect("keyword", "gate")
        name_token = self.expect("id")
        name = name_token.text
        if name in self.gate_defs or is_standard_gate(name):
            raise QasmSyntaxError(
                f"redefinition of gate {name!r}", name_token.line, name_token.col
            )
        params: list[str] = []
        if self.accept("sym", "("):
            if not self.accept("sym", ")"):
                while True:
                    params.append(self.expect("id").text)
                    if self.accept("sym", ")"):
                        break
                    self.expect("sym", ",")
        qargs: list[str] = [self.expect("id").text]
        while self.accept("sym", ","):
            qargs.append(self.expect("id").text)
        if len(set(params)) != len(params) or len(set(qargs)) != len(qargs):
            raise QasmSyntaxError(
                f"duplicate argument names in gate {name!r} definition",
                name_token.line,
                name_token.col,
            )
        self.expect("sym", "{")
        body: list[tuple[str, tuple[tuple[Token, ...], ...], tuple[str, ...]]] = []
        while not self.accept("sym", "}"):
            if self.accept("keyword", "barrier"):
                # barriers inside gate bodies are no-ops after inlining
                while not self.accept("sym", ";"):
                    token = self.peek()
                    if token.kind == "eof":
                        raise QasmSyntaxError(
                            f"unterminated body of gate {name!r}",
                            token.line,
                            token.col,
                        )
                    self.advance()
                continue
            inner_token = self.expect("id")
            inner = inner_token.text
            # QASM 2.0 allows only previously-defined (or standard) gates in
            # a body: this is what statically rules out self- and
            # mutually-recursive definitions.
            if inner not in self.gate_defs and not is_standard_gate(inner):
                raise QasmSyntaxError(
                    f"gate {name!r} references undefined gate {inner!r} "
                    "(recursive and forward references are not allowed)",
                    inner_token.line,
                    inner_token.col,
                )
            exprs: list[tuple[Token, ...]] = []
            if self.accept("sym", "("):
                if not self.accept("sym", ")"):
                    while True:
                        exprs.append(tuple(self._collect_expr_tokens()))
                        if self.accept("sym", ")"):
                            break
                        self.expect("sym", ",")
            inner_qargs = [self.expect("id").text]
            while self.accept("sym", ","):
                inner_qargs.append(self.expect("id").text)
            self.expect("sym", ";")
            body.append((inner, tuple(exprs), tuple(inner_qargs)))
        self.gate_defs[name] = _GateDef(name, tuple(params), tuple(qargs), tuple(body))

    def _collect_expr_tokens(self) -> list[Token]:
        """Collect tokens of one expression up to (not consuming) ',' or ')'."""
        depth = 0
        collected: list[Token] = []
        while True:
            token = self.peek()
            if token.kind == "eof":
                raise QasmSyntaxError(
                    "unterminated expression", token.line, token.col
                )
            if depth == 0 and token.kind == "sym" and token.text in (",", ")"):
                return collected
            if token.kind == "sym" and token.text == "(":
                depth += 1
            elif token.kind == "sym" and token.text == ")":
                depth -= 1
            collected.append(self.advance())

    # -- gate calls ---------------------------------------------------------

    def _parse_gate_call(self) -> None:
        name_token = self.expect("id")
        name = name_token.text
        params: list[float] = []
        if self.accept("sym", "("):
            if not self.accept("sym", ")"):
                while True:
                    params.append(self._eval_expr(self._collect_expr_tokens(), {}))
                    if self.accept("sym", ")"):
                        break
                    self.expect("sym", ",")
        operands = [self._parse_operand()]
        while self.accept("sym", ","):
            operands.append(self._parse_operand())
        self.expect("sym", ";")
        for qubit_tuple in self._broadcast(operands, name_token):
            self._emit(name, params, qubit_tuple, name_token)

    def _parse_operand(self) -> tuple[str, int | None, Token]:
        token = self.expect("id")
        if self.accept("sym", "["):
            index = self._int_value(self.expect("int"))
            self.expect("sym", "]")
            return (token.text, index, token)
        return (token.text, None, token)

    def _resolve(self, operand: tuple[str, "int | None", Token]) -> list[int]:
        name, index, token = operand
        if name not in self.qregs:
            raise QasmSyntaxError(
                f"unknown qreg {name!r}", token.line, token.col
            )
        offset, size = self.qregs[name]
        if index is None:
            return list(range(offset, offset + size))
        if not (0 <= index < size):
            raise QasmSyntaxError(
                f"index {index} out of range for {name}[{size}]",
                token.line,
                token.col,
            )
        return [offset + index]

    def _broadcast(
        self, operands: "list[tuple[str, int | None, Token]]", at: Token
    ) -> list[tuple[int, ...]]:
        """Expand register operands per QASM broadcasting rules."""
        resolved = [self._resolve(op) for op in operands]
        lengths = {len(r) for r in resolved if len(r) > 1}
        if len(lengths) > 1:
            raise QasmSyntaxError(
                "mismatched register sizes in broadcast", at.line, at.col
            )
        width = lengths.pop() if lengths else 1
        out: list[tuple[int, ...]] = []
        for i in range(width):
            out.append(tuple(r[i] if len(r) > 1 else r[0] for r in resolved))
        return out

    def _emit(
        self, name: str, params: list[float], qubits: tuple[int, ...], at: Token
    ) -> None:
        if name in self.gate_defs:
            self._expand_custom(self.gate_defs[name], params, qubits, at)
            return
        if not is_standard_gate(name):
            raise QasmSyntaxError(f"unknown gate {name!r}", at.line, at.col)
        try:
            self.gates.append(Gate(name, qubits, tuple(params)))
        except ValueError as exc:
            raise QasmSyntaxError(str(exc), at.line, at.col) from exc

    def _expand_custom(
        self,
        definition: _GateDef,
        params: list[float],
        qubits: tuple[int, ...],
        at: Token,
    ) -> None:
        if len(params) != len(definition.params):
            raise QasmSyntaxError(
                f"gate {definition.name!r} expects {len(definition.params)} params, "
                f"got {len(params)}",
                at.line,
                at.col,
            )
        if len(qubits) != len(definition.qargs):
            raise QasmSyntaxError(
                f"gate {definition.name!r} expects {len(definition.qargs)} qubits, "
                f"got {len(qubits)}",
                at.line,
                at.col,
            )
        if self.expansion_depth >= MAX_GATE_EXPANSION_DEPTH:
            raise QasmSyntaxError(
                f"gate expansion deeper than {MAX_GATE_EXPANSION_DEPTH} "
                f"levels at {definition.name!r}",
                at.line,
                at.col,
            )
        env = dict(zip(definition.params, params))
        qmap = dict(zip(definition.qargs, qubits))
        self.expansion_depth += 1
        try:
            for inner_name, exprs, inner_qargs in definition.body:
                inner_params = [self._eval_expr(list(ts), env) for ts in exprs]
                try:
                    inner_qubits = tuple(qmap[a] for a in inner_qargs)
                except KeyError as exc:
                    raise QasmSyntaxError(
                        f"unknown qubit argument {exc.args[0]!r} in gate "
                        f"{definition.name!r}",
                        at.line,
                        at.col,
                    ) from exc
                self._emit(inner_name, inner_params, inner_qubits, at)
        finally:
            self.expansion_depth -= 1

    # -- barrier / measure --------------------------------------------------

    def _parse_barrier(self) -> None:
        self.expect("keyword", "barrier")
        operands = [self._parse_operand()]
        while self.accept("sym", ","):
            operands.append(self._parse_operand())
        self.expect("sym", ";")
        for op in operands:
            for q in self._resolve(op):
                self.gates.append(Gate("barrier", (q,)))

    def _parse_measure(self) -> None:
        self.expect("keyword", "measure")
        qop = self._parse_operand()
        self.expect("arrow")
        cop = self._parse_operand()
        self.expect("sym", ";")
        qubits = self._resolve(qop)
        # The classical target is not carried into the circuit (records are
        # keyed by qubit), but it is validated like any other operand:
        # silently accepting out-of-range creg indices hides corrupt files.
        cname, cindex, ctoken = cop
        if cname not in self.cregs:
            raise QasmSyntaxError(
                f"unknown creg {cname!r}", ctoken.line, ctoken.col
            )
        csize = self.cregs[cname]
        if cindex is not None and not (0 <= cindex < csize):
            raise QasmSyntaxError(
                f"index {cindex} out of range for {cname}[{csize}]",
                ctoken.line,
                ctoken.col,
            )
        targets = 1 if cindex is not None else csize
        if len(qubits) != targets:
            raise QasmSyntaxError(
                f"measure maps {len(qubits)} qubit(s) onto {targets} "
                f"classical bit(s)",
                ctoken.line,
                ctoken.col,
            )
        for q in qubits:
            self.gates.append(Gate("measure", (q,)))

    # -- expression evaluation ----------------------------------------------

    def _eval_expr(self, tokens: list[Token], env: dict[str, float]) -> float:
        """Evaluate a constant arithmetic expression over pi and gate params.

        Arithmetic faults (division by zero, power overflow, math-domain
        errors) surface as :class:`QasmSyntaxError` at the expression's
        position -- constant expressions must evaluate to a finite float.
        """
        evaluator = _ExprEval(tokens, env)
        try:
            value = evaluator.parse_expr()
            evaluator.expect_end()
        except QasmSyntaxError:
            raise
        except (ZeroDivisionError, OverflowError, ValueError) as exc:
            line, col = (tokens[0].line, tokens[0].col) if tokens else (0, 0)
            raise QasmSyntaxError(
                f"invalid constant expression: {exc}", line, col
            ) from exc
        return value


_FUNCTIONS = {
    "sin": math.sin, "cos": math.cos, "tan": math.tan,
    "exp": math.exp, "ln": math.log, "sqrt": math.sqrt,
    "asin": math.asin, "acos": math.acos, "atan": math.atan,
}


class _ExprEval:
    """Pratt-style evaluator for QASM constant expressions."""

    def __init__(self, tokens: list[Token], env: dict[str, float]) -> None:
        self.tokens = tokens
        self.env = env
        self.pos = 0
        self.depth = 0

    def _peek(self) -> Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def _enter(self, token: Token) -> None:
        self.depth += 1
        if self.depth > MAX_EXPR_DEPTH:
            raise QasmSyntaxError(
                f"expression nested deeper than {MAX_EXPR_DEPTH} levels",
                token.line,
                token.col,
            )

    def expect_end(self) -> None:
        if self.pos != len(self.tokens):
            token = self.tokens[self.pos]
            raise QasmSyntaxError(
                f"trailing tokens in expression at {token.text!r}",
                token.line,
                token.col,
            )

    def parse_expr(self) -> float:
        value = self.parse_term()
        while True:
            token = self._peek()
            if token and token.kind == "sym" and token.text in "+-":
                self._advance()
                rhs = self.parse_term()
                value = value + rhs if token.text == "+" else value - rhs
            else:
                return value

    def parse_term(self) -> float:
        value = self.parse_unary()
        while True:
            token = self._peek()
            if token and token.kind == "sym" and token.text in "*/":
                self._advance()
                rhs = self.parse_unary()
                value = value * rhs if token.text == "*" else value / rhs
            else:
                return value

    def parse_unary(self) -> float:
        token = self._peek()
        if token and token.kind == "sym" and token.text in "+-":
            self._advance()
            self._enter(token)
            try:
                value = self.parse_unary()
            finally:
                self.depth -= 1
            return -value if token.text == "-" else value
        return self.parse_power()

    def parse_power(self) -> float:
        base = self.parse_atom()
        token = self._peek()
        if token and token.kind == "sym" and token.text == "^":
            self._advance()
            return base ** self.parse_unary()
        return base

    def parse_atom(self) -> float:
        token = self._peek()
        if token is None:
            raise QasmSyntaxError("unexpected end of expression", 0, 0)
        if token.kind in ("int", "real"):
            self._advance()
            return float(token.text)
        if token.kind == "keyword" and token.text == "pi":
            self._advance()
            return math.pi
        if token.kind == "id":
            self._advance()
            if token.text in _FUNCTIONS:
                self._expect_sym("(")
                self._enter(token)
                try:
                    value = self.parse_expr()
                finally:
                    self.depth -= 1
                self._expect_sym(")")
                return _FUNCTIONS[token.text](value)
            if token.text in self.env:
                return self.env[token.text]
            raise QasmSyntaxError(
                f"unknown identifier {token.text!r}", token.line, token.col
            )
        if token.kind == "sym" and token.text == "(":
            self._advance()
            self._enter(token)
            try:
                value = self.parse_expr()
            finally:
                self.depth -= 1
            self._expect_sym(")")
            return value
        raise QasmSyntaxError(
            f"unexpected token {token.text!r}", token.line, token.col
        )

    def _expect_sym(self, text: str) -> None:
        token = self._peek()
        if token is None or token.kind != "sym" or token.text != text:
            line = token.line if token else 0
            col = token.col if token else 0
            raise QasmSyntaxError(f"expected {text!r} in expression", line, col)
        self._advance()


def parse_qasm(source: str) -> QuantumCircuit:
    """Parse OpenQASM 2.0 source text into a :class:`QuantumCircuit`.

    Raises:
        QasmSyntaxError: on any malformed input, carrying ``.line`` and
            ``.col``.  The explicit depth guards make a ``RecursionError``
            unreachable in practice; the safety net below keeps the
            contract even if one is missed.
    """
    try:
        return _Parser(source).parse()
    except RecursionError as exc:
        raise QasmSyntaxError("input too deeply nested", 0, 0) from exc


#: Alias matching the json/yaml naming convention.
loads = parse_qasm


def load_file(path: str) -> QuantumCircuit:
    """Parse an OpenQASM 2.0 file from ``path``.

    Raises:
        QasmSyntaxError: for malformed QASM *and* for files that are not
            valid UTF-8 text (binary garbage is a syntax error, not a
            crash).
        OSError: if the file cannot be read.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            source = handle.read()
        except UnicodeDecodeError as exc:
            raise QasmSyntaxError(f"not valid UTF-8 text ({exc.reason})", 0, 0) from exc
    return parse_qasm(source)
