"""Recursive-descent parser for OpenQASM 2.0.

Produces a :class:`~repro.circuit.circuit.QuantumCircuit` with all quantum
registers flattened into one index space (in declaration order).  Custom
``gate`` bodies are expanded inline at call sites, so the output circuit
contains only standard gates, barriers and measures.

Supported grammar (the subset QASMBench-style files use)::

    OPENQASM 2.0;
    include "qelib1.inc";
    qreg q[5]; creg c[5];
    gate name(params) qubits { body }
    opaque name qubits;
    u3(pi/2, 0, pi) q[0];
    cx q[0], q[1];
    h q;                  // register broadcast
    barrier q;
    measure q -> c;
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Gate
from repro.qasm.lexer import Token, tokenize, QasmSyntaxError
from repro.qasm.qelib import is_standard_gate

__all__ = ["parse_qasm", "loads", "load_file"]


@dataclass(frozen=True)
class _GateDef:
    """A user-defined gate: parameter names, qubit argument names, body."""

    name: str
    params: tuple[str, ...]
    qargs: tuple[str, ...]
    # body entries: (gate_name, param_expr_tokens, qubit_arg_names)
    body: tuple[tuple[str, tuple[tuple[Token, ...], ...], tuple[str, ...]], ...]


class _Parser:
    def __init__(self, source: str) -> None:
        self.tokens = list(tokenize(source))
        self.pos = 0
        self.qregs: dict[str, tuple[int, int]] = {}  # name -> (offset, size)
        self.cregs: dict[str, int] = {}
        self.gate_defs: dict[str, _GateDef] = {}
        self.gates: list[Gate] = []
        self.num_qubits = 0

    # -- token helpers ------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.advance()
        if token.kind != kind or (text is not None and token.text != text):
            want = f"{kind} {text!r}" if text else kind
            raise QasmSyntaxError(
                f"expected {want}, got {token.kind} {token.text!r}", token.line
            )
        return token

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    # -- top level ----------------------------------------------------------

    def parse(self) -> QuantumCircuit:
        self._parse_header()
        while self.peek().kind != "eof":
            self._parse_statement()
        circuit = QuantumCircuit(max(self.num_qubits, 1), name="qasm")
        circuit.extend(self.gates)
        return circuit

    def _parse_header(self) -> None:
        if self.accept("keyword", "OPENQASM"):
            version = self.advance()
            if version.text not in ("2.0", "2"):
                raise QasmSyntaxError(
                    f"unsupported OPENQASM version {version.text!r}", version.line
                )
            self.expect("sym", ";")

    def _parse_statement(self) -> None:
        token = self.peek()
        if token.kind == "keyword":
            handler = {
                "include": self._parse_include,
                "qreg": self._parse_qreg,
                "creg": self._parse_creg,
                "gate": self._parse_gate_def,
                "opaque": self._parse_opaque,
                "barrier": self._parse_barrier,
                "measure": self._parse_measure,
                "reset": self._parse_reset,
                "if": self._parse_if,
            }.get(token.text)
            if handler is None:
                raise QasmSyntaxError(f"unexpected keyword {token.text!r}", token.line)
            handler()
        elif token.kind == "id":
            self._parse_gate_call()
        else:
            raise QasmSyntaxError(
                f"unexpected token {token.kind} {token.text!r}", token.line
            )

    def _parse_include(self) -> None:
        self.expect("keyword", "include")
        name = self.expect("string")
        self.expect("sym", ";")
        if name.text not in ("qelib1.inc",):
            raise QasmSyntaxError(
                f"only qelib1.inc includes are supported, got {name.text!r}", name.line
            )

    def _parse_qreg(self) -> None:
        self.expect("keyword", "qreg")
        name = self.expect("id")
        self.expect("sym", "[")
        size = int(self.expect("int").text)
        self.expect("sym", "]")
        self.expect("sym", ";")
        if name.text in self.qregs:
            raise QasmSyntaxError(f"duplicate qreg {name.text!r}", name.line)
        self.qregs[name.text] = (self.num_qubits, size)
        self.num_qubits += size

    def _parse_creg(self) -> None:
        self.expect("keyword", "creg")
        name = self.expect("id")
        self.expect("sym", "[")
        size = int(self.expect("int").text)
        self.expect("sym", "]")
        self.expect("sym", ";")
        self.cregs[name.text] = size

    def _parse_opaque(self) -> None:
        token = self.expect("keyword", "opaque")
        raise QasmSyntaxError("opaque gates are not supported", token.line)

    def _parse_if(self) -> None:
        token = self.expect("keyword", "if")
        raise QasmSyntaxError(
            "classically-controlled gates are not supported", token.line
        )

    def _parse_reset(self) -> None:
        token = self.expect("keyword", "reset")
        raise QasmSyntaxError("reset is not supported", token.line)

    # -- gate definitions ---------------------------------------------------

    def _parse_gate_def(self) -> None:
        self.expect("keyword", "gate")
        name = self.expect("id").text
        params: list[str] = []
        if self.accept("sym", "("):
            if not self.accept("sym", ")"):
                while True:
                    params.append(self.expect("id").text)
                    if self.accept("sym", ")"):
                        break
                    self.expect("sym", ",")
        qargs: list[str] = [self.expect("id").text]
        while self.accept("sym", ","):
            qargs.append(self.expect("id").text)
        self.expect("sym", "{")
        body: list[tuple[str, tuple[tuple[Token, ...], ...], tuple[str, ...]]] = []
        while not self.accept("sym", "}"):
            if self.accept("keyword", "barrier"):
                # barriers inside gate bodies are no-ops after inlining
                while not self.accept("sym", ";"):
                    self.advance()
                continue
            inner = self.expect("id").text
            exprs: list[tuple[Token, ...]] = []
            if self.accept("sym", "("):
                if not self.accept("sym", ")"):
                    while True:
                        exprs.append(tuple(self._collect_expr_tokens()))
                        if self.accept("sym", ")"):
                            break
                        self.expect("sym", ",")
            inner_qargs = [self.expect("id").text]
            while self.accept("sym", ","):
                inner_qargs.append(self.expect("id").text)
            self.expect("sym", ";")
            body.append((inner, tuple(exprs), tuple(inner_qargs)))
        self.gate_defs[name] = _GateDef(name, tuple(params), tuple(qargs), tuple(body))

    def _collect_expr_tokens(self) -> list[Token]:
        """Collect tokens of one expression up to (not consuming) ',' or ')'."""
        depth = 0
        collected: list[Token] = []
        while True:
            token = self.peek()
            if token.kind == "eof":
                raise QasmSyntaxError("unterminated expression", token.line)
            if depth == 0 and token.kind == "sym" and token.text in (",", ")"):
                return collected
            if token.kind == "sym" and token.text == "(":
                depth += 1
            elif token.kind == "sym" and token.text == ")":
                depth -= 1
            collected.append(self.advance())

    # -- gate calls ---------------------------------------------------------

    def _parse_gate_call(self) -> None:
        name_token = self.expect("id")
        name = name_token.text
        params: list[float] = []
        if self.accept("sym", "("):
            if not self.accept("sym", ")"):
                while True:
                    params.append(self._eval_expr(self._collect_expr_tokens(), {}))
                    if self.accept("sym", ")"):
                        break
                    self.expect("sym", ",")
        operands = [self._parse_operand()]
        while self.accept("sym", ","):
            operands.append(self._parse_operand())
        self.expect("sym", ";")
        for qubit_tuple in self._broadcast(operands, name_token.line):
            self._emit(name, params, qubit_tuple, name_token.line)

    def _parse_operand(self) -> tuple[str, int | None]:
        name = self.expect("id").text
        if self.accept("sym", "["):
            index = int(self.expect("int").text)
            self.expect("sym", "]")
            return (name, index)
        return (name, None)

    def _resolve(self, operand: tuple[str, int | None], line: int) -> list[int]:
        name, index = operand
        if name not in self.qregs:
            raise QasmSyntaxError(f"unknown qreg {name!r}", line)
        offset, size = self.qregs[name]
        if index is None:
            return list(range(offset, offset + size))
        if not (0 <= index < size):
            raise QasmSyntaxError(f"index {index} out of range for {name}[{size}]", line)
        return [offset + index]

    def _broadcast(
        self, operands: list[tuple[str, int | None]], line: int
    ) -> list[tuple[int, ...]]:
        """Expand register operands per QASM broadcasting rules."""
        resolved = [self._resolve(op, line) for op in operands]
        lengths = {len(r) for r in resolved if len(r) > 1}
        if len(lengths) > 1:
            raise QasmSyntaxError("mismatched register sizes in broadcast", line)
        width = lengths.pop() if lengths else 1
        out: list[tuple[int, ...]] = []
        for i in range(width):
            out.append(tuple(r[i] if len(r) > 1 else r[0] for r in resolved))
        return out

    def _emit(
        self, name: str, params: list[float], qubits: tuple[int, ...], line: int
    ) -> None:
        if name in self.gate_defs:
            self._expand_custom(self.gate_defs[name], params, qubits, line)
            return
        if not is_standard_gate(name):
            raise QasmSyntaxError(f"unknown gate {name!r}", line)
        try:
            self.gates.append(Gate(name, qubits, tuple(params)))
        except ValueError as exc:
            raise QasmSyntaxError(str(exc), line) from exc

    def _expand_custom(
        self, definition: _GateDef, params: list[float], qubits: tuple[int, ...], line: int
    ) -> None:
        if len(params) != len(definition.params):
            raise QasmSyntaxError(
                f"gate {definition.name!r} expects {len(definition.params)} params, "
                f"got {len(params)}",
                line,
            )
        if len(qubits) != len(definition.qargs):
            raise QasmSyntaxError(
                f"gate {definition.name!r} expects {len(definition.qargs)} qubits, "
                f"got {len(qubits)}",
                line,
            )
        env = dict(zip(definition.params, params))
        qmap = dict(zip(definition.qargs, qubits))
        for inner_name, exprs, inner_qargs in definition.body:
            inner_params = [self._eval_expr(list(ts), env) for ts in exprs]
            try:
                inner_qubits = tuple(qmap[a] for a in inner_qargs)
            except KeyError as exc:
                raise QasmSyntaxError(
                    f"unknown qubit argument {exc.args[0]!r} in gate "
                    f"{definition.name!r}",
                    line,
                ) from exc
            self._emit(inner_name, inner_params, inner_qubits, line)

    # -- barrier / measure --------------------------------------------------

    def _parse_barrier(self) -> None:
        token = self.expect("keyword", "barrier")
        operands = [self._parse_operand()]
        while self.accept("sym", ","):
            operands.append(self._parse_operand())
        self.expect("sym", ";")
        for op in operands:
            for q in self._resolve(op, token.line):
                self.gates.append(Gate("barrier", (q,)))

    def _parse_measure(self) -> None:
        token = self.expect("keyword", "measure")
        qop = self._parse_operand()
        self.expect("arrow")
        self._parse_operand()  # classical target: recorded but unused
        self.expect("sym", ";")
        for q in self._resolve(qop, token.line):
            self.gates.append(Gate("measure", (q,)))

    # -- expression evaluation ----------------------------------------------

    def _eval_expr(self, tokens: list[Token], env: dict[str, float]) -> float:
        """Evaluate a constant arithmetic expression over pi and gate params."""
        evaluator = _ExprEval(tokens, env)
        value = evaluator.parse_expr()
        evaluator.expect_end()
        return value


_FUNCTIONS = {
    "sin": math.sin, "cos": math.cos, "tan": math.tan,
    "exp": math.exp, "ln": math.log, "sqrt": math.sqrt,
    "asin": math.asin, "acos": math.acos, "atan": math.atan,
}


class _ExprEval:
    """Pratt-style evaluator for QASM constant expressions."""

    def __init__(self, tokens: list[Token], env: dict[str, float]) -> None:
        self.tokens = tokens
        self.env = env
        self.pos = 0

    def _peek(self) -> Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect_end(self) -> None:
        if self.pos != len(self.tokens):
            token = self.tokens[self.pos]
            raise QasmSyntaxError(
                f"trailing tokens in expression at {token.text!r}", token.line
            )

    def parse_expr(self) -> float:
        value = self.parse_term()
        while True:
            token = self._peek()
            if token and token.kind == "sym" and token.text in "+-":
                self._advance()
                rhs = self.parse_term()
                value = value + rhs if token.text == "+" else value - rhs
            else:
                return value

    def parse_term(self) -> float:
        value = self.parse_unary()
        while True:
            token = self._peek()
            if token and token.kind == "sym" and token.text in "*/":
                self._advance()
                rhs = self.parse_unary()
                value = value * rhs if token.text == "*" else value / rhs
            else:
                return value

    def parse_unary(self) -> float:
        token = self._peek()
        if token and token.kind == "sym" and token.text == "-":
            self._advance()
            return -self.parse_unary()
        if token and token.kind == "sym" and token.text == "+":
            self._advance()
            return self.parse_unary()
        return self.parse_power()

    def parse_power(self) -> float:
        base = self.parse_atom()
        token = self._peek()
        if token and token.kind == "sym" and token.text == "^":
            self._advance()
            return base ** self.parse_unary()
        return base

    def parse_atom(self) -> float:
        token = self._peek()
        if token is None:
            raise QasmSyntaxError("unexpected end of expression", 0)
        if token.kind in ("int", "real"):
            self._advance()
            return float(token.text)
        if token.kind == "keyword" and token.text == "pi":
            self._advance()
            return math.pi
        if token.kind == "id":
            self._advance()
            if token.text in _FUNCTIONS:
                self._expect_sym("(")
                value = self.parse_expr()
                self._expect_sym(")")
                return _FUNCTIONS[token.text](value)
            if token.text in self.env:
                return self.env[token.text]
            raise QasmSyntaxError(f"unknown identifier {token.text!r}", token.line)
        if token.kind == "sym" and token.text == "(":
            self._advance()
            value = self.parse_expr()
            self._expect_sym(")")
            return value
        raise QasmSyntaxError(f"unexpected token {token.text!r}", token.line)

    def _expect_sym(self, text: str) -> None:
        token = self._peek()
        if token is None or token.kind != "sym" or token.text != text:
            line = token.line if token else 0
            raise QasmSyntaxError(f"expected {text!r} in expression", line)
        self._advance()


def parse_qasm(source: str) -> QuantumCircuit:
    """Parse OpenQASM 2.0 source text into a :class:`QuantumCircuit`."""
    return _Parser(source).parse()


#: Alias matching the json/yaml naming convention.
loads = parse_qasm


def load_file(path: str) -> QuantumCircuit:
    """Parse an OpenQASM 2.0 file from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_qasm(handle.read())
