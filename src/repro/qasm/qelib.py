"""Built-in ``qelib1.inc`` gate library.

OpenQASM 2.0 programs almost universally ``include "qelib1.inc"``.  Rather
than shipping and parsing the include file, the standard definitions are
registered here directly as expansion rules onto the IR's known gate names.
Gates the IR models natively (``u3``, ``cz``, ``cx``...) expand to
themselves; composite standard gates (``ccx``, ``cu3``...) are kept as named
IR gates so the transpiler can decompose them with its templates.
"""

from __future__ import annotations

from repro.circuit.gate import GATE_ARITY, GATE_NUM_PARAMS

__all__ = ["QELIB_GATES", "is_standard_gate"]

#: name -> (num_params, num_qubits) for every qelib1.inc gate we accept.
QELIB_GATES: dict[str, tuple[int, int]] = {
    name: (GATE_NUM_PARAMS.get(name, 0), arity)
    for name, arity in GATE_ARITY.items()
    if name not in ("barrier", "measure") and arity is not None
}


def is_standard_gate(name: str) -> bool:
    """True if ``name`` is a qelib1.inc standard gate known to the IR."""
    return name in QELIB_GATES
