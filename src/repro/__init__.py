"""Parallax reproduction: a zero-SWAP compiler for neutral atom quantum computers.

This package reproduces the system described in *"Parallax: A Compiler for
Neutral Atom Quantum Computers under Hardware Constraints"* (Ludmir & Patel,
SC 2024).  It contains:

- ``repro.circuit``       -- quantum circuit intermediate representation.
- ``repro.qasm``          -- OpenQASM 2.0 parser / exporter.
- ``repro.transpile``     -- transpiler to the {U3, CZ} basis with peephole
  optimization (substitute for the Qiskit transpiler used in the paper).
- ``repro.layout``        -- Graphine-style layout generation (dual annealing
  placement + minimal connected Rydberg radius).
- ``repro.hardware``      -- neutral-atom hardware model (SLM, AOD, atoms,
  grid discretization, Table II parameters).
- ``repro.core``          -- the Parallax compiler itself (AOD selection,
  recursive movement engine, Algorithm 1 scheduler, shot parallelization).
- ``repro.baselines``     -- ELDI and Graphine baseline compilers.
- ``repro.pipeline``      -- the unified staged pass pipeline, technique
  registry, content-addressed compilation cache, and the parallel
  batch-compilation engine shared by all techniques.
- ``repro.noise``         -- success-probability estimation.
- ``repro.timing``        -- runtime / total-execution-time models.
- ``repro.benchcircuits`` -- the 18 evaluation workloads (Table III).
- ``repro.experiments``   -- per-figure/table experiment runners.
- ``repro.sweeps``        -- declarative hardware/noise scenario sweeps over
  the batch engine, with a vectorized Monte Carlo evaluator, a resumable
  content-addressed result store (loose JSON + packed segment backends),
  and coordinator-free distributed work-stealing sweep workers.

See README.md for install/quickstart and docs/ for the architecture tour
and the store's on-disk format reference.
"""

from repro.circuit import Gate, QuantumCircuit
from repro.hardware import HardwareSpec
from repro.core import ParallaxCompiler, CompilationResult
from repro.baselines import EldiCompiler, GraphineCompiler
from repro.pipeline import (
    CompilationCache,
    CompilerRegistry,
    available_techniques,
    compile_many,
    get_compiler,
    register_compiler,
)

# Minor version bumps whenever the Monte Carlo engine's draw stream changes
# (sweep-store scenario keys hash this, so records from different engine
# generations can never be mixed by --resume).
__version__ = "1.1.0"

__all__ = [
    "Gate",
    "QuantumCircuit",
    "HardwareSpec",
    "ParallaxCompiler",
    "CompilationResult",
    "EldiCompiler",
    "GraphineCompiler",
    "CompilationCache",
    "CompilerRegistry",
    "available_techniques",
    "compile_many",
    "get_compiler",
    "register_compiler",
    "__version__",
]
