"""Pandas-free columnar aggregation over unified result rows.

This module is the single aggregation layer behind sweeps, the figure
runners, and the CLIs: everything that produces evaluation numbers --
``run_sweep`` records, the ``experiments/fig*`` compilations, ``python -m
repro.sweeps analyze`` and ``repro.cli --sweep-summary`` -- emits or
consumes the same flat :class:`ResultTable` rows, so marginals, pivots and
crossover detection are written exactly once.

Row schema
----------

One row per evaluated (benchmark, technique, scenario) point.  Columns, in
canonical order:

- **identity** -- ``benchmark``, ``technique``, ``spec_name``, ``shots``,
  ``seed`` (``shots``/``seed`` are ``None`` for analytic-only figure rows);
- **axes** -- one column per swept :class:`~repro.hardware.spec.HardwareSpec`
  field (named by the field, e.g. ``cz_error``; ``None`` on rows that did
  not override it), one ``noise_<field>`` column per
  :class:`~repro.noise.fidelity.NoiseModelConfig` field, plus any extra
  caller-supplied columns (e.g. ``aod_count``, ``return_home``);
- **compile metrics** -- ``num_cz``, ``num_u3``, ``num_ccz``, ``num_swaps``,
  ``num_moves``, ``trap_change_events``, ``num_layers``, ``runtime_us``;
- **analytic** -- ``analytic_success``, the closed-form success estimate;
- **empirical** -- ``success_rate``, ``stderr``, ``successes``,
  ``gate_failures``, ``movement_failures``, ``decoherence_failures``,
  ``readout_failures`` (all ``None`` on rows that were never Monte Carlo
  sampled).

Tables are duck-compatible with
:class:`~repro.experiments.common.ExperimentTable` (``title`` / ``headers``
/ ``rows``), so the markdown report renderer and ``format_table`` accept
either kind interchangeably.
"""

from __future__ import annotations

import csv
import io
import typing
from dataclasses import dataclass, fields as dataclass_fields

from repro.noise.fidelity import NoiseModelConfig, channel_probabilities
from repro.utils.tables import format_table

if typing.TYPE_CHECKING:
    from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence
    from repro.core.result import CompilationResult
    from repro.sweeps.store import SweepStore

__all__ = [
    "AGGREGATIONS",
    "ANALYTIC_COLUMNS",
    "Crossover",
    "IDENTITY_COLUMNS",
    "METRIC_COLUMNS",
    "OUTCOME_COLUMNS",
    "RESULT_COLUMNS",
    "ResultTable",
    "canonical_order",
    "crossover_payload",
    "marginal_payload",
    "pivot_payload",
    "record_row",
    "render_store_summary",
    "table_payload",
    "technique_summary",
]

#: Identity columns present on every row.
IDENTITY_COLUMNS: tuple[str, ...] = (
    "benchmark", "technique", "spec_name", "shots", "seed",
)
#: Compile-side metrics (from :class:`CompilationResult`).
RESULT_COLUMNS: tuple[str, ...] = (
    "num_cz", "num_u3", "num_ccz", "num_swaps", "num_moves",
    "trap_change_events", "num_layers", "runtime_us",
)
#: Closed-form success estimate.
ANALYTIC_COLUMNS: tuple[str, ...] = ("analytic_success",)
#: Monte Carlo outcome metrics (None on analytic-only rows).
OUTCOME_COLUMNS: tuple[str, ...] = (
    "success_rate", "stderr", "successes", "gate_failures",
    "movement_failures", "decoherence_failures", "readout_failures",
)
#: Every aggregatable (value) column; the complement is axis/identity space.
METRIC_COLUMNS: tuple[str, ...] = (
    RESULT_COLUMNS + ANALYTIC_COLUMNS + OUTCOME_COLUMNS
)

_NOISE_FIELDS: tuple[str, ...] = tuple(
    f.name for f in dataclass_fields(NoiseModelConfig)
)

_AGGREGATES: dict[str, "Callable[[list], float]"] = {
    "mean": lambda vs: sum(vs) / len(vs),
    "min": min,
    "max": max,
    "median": lambda vs: (
        sorted(vs)[len(vs) // 2]
        if len(vs) % 2
        else (sorted(vs)[len(vs) // 2 - 1] + sorted(vs)[len(vs) // 2]) / 2.0
    ),
    "sum": sum,
    "count": len,
}

#: Aggregation names :meth:`ResultTable.marginal` / :meth:`ResultTable.pivot`
#: accept -- the validation surface for callers (the query daemon rejects
#: anything else with a 400 before touching the table).
AGGREGATIONS: tuple[str, ...] = tuple(sorted(_AGGREGATES))


def canonical_order(names: "Iterable[str]") -> list[str]:
    """Column names in the canonical unified-row order.

    Identity columns first (fixed order), then axis/extra columns sorted
    by name, then the metric columns (fixed order).  Shared by every
    producer of unified rows -- :meth:`ResultTable.from_rows`, the packed
    segment columnar blocks, and the store's bulk loader -- so any two
    paths over the same records agree column-for-column (and therefore
    byte-for-byte in CSV output).
    """
    names = set(names)
    ordered = [c for c in IDENTITY_COLUMNS if c in names]
    known = set(IDENTITY_COLUMNS) | set(METRIC_COLUMNS)
    ordered += sorted(names - known)
    ordered += [c for c in METRIC_COLUMNS if c in names]
    return ordered


def record_row(record: "Mapping") -> dict:
    """Flatten one sweep-store record dict into a unified row.

    The single definition of the record -> row mapping: used by
    :meth:`ResultTable.from_records` at load time and by
    :mod:`repro.sweeps.segments` when sealing a segment's columnar block,
    so a packed store and its loose twin flatten identically.
    """
    scenario = record.get("scenario") or {}
    row: dict = {
        "benchmark": scenario.get("benchmark"),
        "technique": scenario.get("technique"),
        "spec_name": scenario.get("spec_name"),
        "shots": scenario.get("shots"),
        "seed": scenario.get("seed"),
    }
    for name, value in (scenario.get("spec_overrides") or {}).items():
        row[name] = value
    # Technique-config axes flatten bare like spec axes (records written
    # before the config-axis era simply lack the field).
    for name, value in (scenario.get("config_overrides") or {}).items():
        row[name] = value
    for name, value in (scenario.get("noise") or {}).items():
        row[f"noise_{name}"] = value
    row.update(record.get("result") or {})
    outcome = record.get("outcome") or {}
    for name in OUTCOME_COLUMNS:
        row[name] = outcome.get(name)
    row["analytic_success"] = record.get("analytic_success")
    return row


def _plain_values(values) -> list:
    """Normalize one column to a plain Python list of plain Python values.

    The zero-copy store path hands :class:`ResultTable` NumPy array views
    and lazily decoded sidecar columns; everything downstream (sort
    tokens, ``isinstance(v, int)`` axis detection, CSV formatting) assumes
    pure-Python scalars -- ``np.int64`` is *not* an ``int`` -- so columns
    normalize exactly once, here, at the access boundary.  Duck-typed
    (``materialize``/``tolist``) so this module needs neither NumPy nor
    :mod:`repro.sweeps.segments` imports.
    """
    materialize = getattr(values, "materialize", None)
    if materialize is not None:
        return materialize()
    tolist = getattr(values, "tolist", None)
    if tolist is not None:
        return tolist()
    return values if isinstance(values, list) else list(values)


def _sort_token(value: object) -> tuple:
    """Total order over mixed axis values (None < numbers < everything else)."""
    if value is None:
        return (0, 0.0, "")
    if isinstance(value, bool):
        return (1, float(value), "")
    if isinstance(value, (int, float)):
        return (1, float(value), "")
    return (2, 0.0, str(value))


@dataclass(frozen=True)
class Crossover:
    """One detected lead change between two series along a numeric axis.

    ``first`` leads (has the larger metric) below ``axis_value`` and
    ``second`` leads above it -- i.e. ``second`` *overtakes* ``first`` as
    the axis grows.  ``metric_value`` is the (interpolated) metric where
    the two series meet.
    """

    group: tuple
    first: str
    second: str
    axis: str
    axis_value: float
    metric: str
    metric_value: float

    def describe(self) -> str:
        prefix = "/".join(str(g) for g in self.group)
        prefix = f"{prefix}: " if prefix else ""
        return (
            f"{prefix}{self.second} overtakes {self.first} at "
            f"{self.axis}={self.axis_value:.6g} "
            f"({self.metric}={self.metric_value:.6g})"
        )

    def as_dict(self) -> dict:
        """JSON-ready mapping of every field plus the prose description
        (the ``/crossovers`` wire format; keys are append-only)."""
        return {
            "group": list(self.group),
            "first": self.first,
            "second": self.second,
            "axis": self.axis,
            "axis_value": self.axis_value,
            "metric": self.metric,
            "metric_value": self.metric_value,
            "description": self.describe(),
        }


class ResultTable:
    """An immutable columnar table of unified result rows.

    Construct through :meth:`from_records` (sweep record dicts),
    :meth:`from_store` (a :class:`~repro.sweeps.store.SweepStore`), or
    :meth:`from_compilations` (figure-runner compilations); combine with
    :meth:`concat`; aggregate with :meth:`marginal`, :meth:`pivot`, and
    :meth:`crossovers`; render with :meth:`render`, :meth:`to_csv`, or any
    consumer of the ``title``/``headers``/``rows`` protocol.
    """

    def __init__(
        self,
        columns: "Mapping[str, Sequence]",
        title: str = "results",
    ) -> None:
        # Columnar backends (NumPy views over an mmap'd sidecar, lazy
        # sidecar columns) are adopted without copying or decoding --
        # anything with ``materialize``/``tolist`` converts on first
        # access through ``_list`` instead.  Plain sequences are copied
        # into lists exactly as before.
        self._columns: dict = {
            name: (
                values
                if hasattr(values, "materialize") or hasattr(values, "tolist")
                else list(values)
            )
            for name, values in columns.items()
        }
        lengths = {len(values) for values in self._columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged columns: lengths {sorted(lengths)}")
        self.title = title

    def _list(self, name: str) -> list:
        """One column as a cached plain-Python list (the normalization
        boundary for lazy/NumPy-backed columns)."""
        values = self._columns[name]
        if type(values) is not list:
            values = _plain_values(values)
            self._columns[name] = values
        return values

    # -- construction ----------------------------------------------------------

    _canonical_order = staticmethod(canonical_order)

    @classmethod
    def from_rows(
        cls, rows: "Sequence[Mapping[str, object]]", title: str = "results"
    ) -> "ResultTable":
        """Build a table from row dicts (missing cells become ``None``)."""
        names = cls._canonical_order({k for row in rows for k in row})
        return cls(
            {name: [row.get(name) for row in rows] for name in names},
            title=title,
        )

    @classmethod
    def from_records(
        cls, records: "Iterable[Mapping]", title: str = "sweep results"
    ) -> "ResultTable":
        """Flatten sweep-store record dicts (the ``SCHEMA_VERSION`` payload
        documented in :mod:`repro.sweeps.store`) into unified rows."""
        return cls.from_rows([record_row(r) for r in records], title=title)

    @classmethod
    def from_store(
        cls, store: "SweepStore", title: str | None = None
    ) -> "ResultTable":
        """Load every readable record of ``store`` in key order.

        Stores holding packed segments (see :meth:`SweepStore.compact`)
        take the bulk fast path: segments with binary columnar sidecars
        are memory-mapped into zero-copy NumPy views (no JSON parse at
        all; gated >=5x over the JSON block at 10^5 records in
        ``benchmarks/test_perf_store_mmap.py``), sidecar-less segments
        parse their JSON columnar block in one read (~10x+ over loose at
        10^4 records, ``benchmarks/test_perf_store_load.py``) -- and both
        are identical, down to the CSV bytes, to the loose per-file path.
        Merged (generation-tagged) and freshly sealed segments read the
        same way; :meth:`SweepStore.merge` never changes these bytes.
        Pure loose stores stream through :meth:`SweepStore.records`.
        """
        title = title or f"sweep results ({store.directory})"
        loader = getattr(store, "analysis_columns", None)
        packed = loader() if loader is not None else None
        if packed is not None:
            names, columns = packed
            return cls(dict(zip(names, columns)), title=title)
        return cls.from_records(store.records(), title=title)

    @classmethod
    def from_compilations(
        cls,
        entries: "Iterable[tuple]",
        noise: NoiseModelConfig | None = None,
        title: str = "compilation results",
    ) -> "ResultTable":
        """Unified rows from compiled artifacts (no Monte Carlo sampling).

        Each entry is ``(benchmark, technique, CompilationResult)`` or
        ``(benchmark, technique, CompilationResult, extra_columns_dict)``.
        ``analytic_success`` is the channel-probability product under
        ``noise``; every empirical column is ``None``.
        """
        noise = noise or NoiseModelConfig()
        rows = []
        for entry in entries:
            benchmark, technique, result = entry[:3]
            extra = dict(entry[3]) if len(entry) > 3 else {}
            row = {
                "benchmark": benchmark,
                "technique": technique,
                "spec_name": result.spec.name,
                "shots": None,
                "seed": None,
                "analytic_success": channel_probabilities(result, noise).product,
                **{name: getattr(result, name) for name in RESULT_COLUMNS},
                **{name: None for name in OUTCOME_COLUMNS},
                **extra,
            }
            rows.append(row)
        return cls.from_rows(rows, title=title)

    @classmethod
    def concat(
        cls, tables: "Sequence[ResultTable]", title: str | None = None
    ) -> "ResultTable":
        """Stack tables row-wise (column sets are unioned, gaps are None)."""
        rows = [row for table in tables for row in table.row_dicts()]
        return cls.from_rows(
            rows, title=title or (tables[0].title if tables else "results")
        )

    # -- shape and access ------------------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        """Column names in canonical order."""
        return tuple(self._columns)

    @property
    def headers(self) -> tuple[str, ...]:
        """Alias of :attr:`names` (ExperimentTable rendering protocol)."""
        return self.names

    @property
    def rows(self) -> tuple[tuple, ...]:
        """Row tuples in column order (ExperimentTable rendering protocol)."""
        columns = [self._list(name) for name in self._columns]
        return tuple(zip(*columns)) if columns else ()

    def __len__(self) -> int:
        return len(next(iter(self._columns.values()), []))

    def column(self, name: str) -> list:
        """One column as a list; raises ``KeyError`` naming valid columns."""
        try:
            return list(self._list(name))
        except KeyError:
            raise KeyError(
                f"no column {name!r}; available: {list(self._columns)}"
            ) from None

    def row_dicts(self) -> list[dict]:
        """Every row as a ``{column: value}`` dict."""
        names = self.names
        return [dict(zip(names, row)) for row in self.rows]

    def distinct(self, name: str) -> list:
        """Sorted distinct non-None values of one column."""
        return sorted(
            {v for v in self.column(name) if v is not None}, key=_sort_token
        )

    def filter(self, **where: object) -> "ResultTable":
        """Rows whose columns equal every ``where`` value."""
        cols = {name: self.column(name) for name in where}
        keep = [
            i
            for i in range(len(self))
            if all(cols[name][i] == value for name, value in where.items())
        ]
        return ResultTable(
            {
                name: [values[i] for i in keep]
                for name, values in ((n, self._list(n)) for n in self._columns)
            },
            title=self.title,
        )

    def axes(self) -> tuple[str, ...]:
        """Columns that actually sweep: non-metric columns with >= 2
        distinct non-None values (``seed`` excluded -- it varies by
        construction, never as an axis)."""
        skip = set(METRIC_COLUMNS) | {"seed"}
        return tuple(
            name
            for name in self.names
            if name not in skip and len(self.distinct(name)) >= 2
        )

    def numeric_axes(self) -> tuple[str, ...]:
        """The :meth:`axes` whose values are all numeric (interpolatable)."""
        return tuple(
            name
            for name in self.axes()
            if all(
                isinstance(v, (int, float)) and not isinstance(v, bool)
                for v in self.distinct(name)
            )
        )

    # -- aggregation -----------------------------------------------------------

    def marginal(
        self,
        value: str = "analytic_success",
        over: str | None = None,
        group_by: "Sequence[str]" = ("benchmark", "technique"),
        agg: str = "mean",
    ) -> "ResultTable":
        """Aggregate ``value`` over every other axis.

        Groups rows by ``group_by`` (and, when given, each distinct value of
        the ``over`` axis), then applies ``agg`` (mean/median/min/max/sum/
        count) to the ``value`` column within each group; None cells are
        ignored.  Returns a new table with columns ``(*group_by, over?,
        value, "n")``, groups sorted, axis values in ascending order.
        """
        if agg not in _AGGREGATES:
            raise ValueError(f"unknown agg {agg!r}; one of {sorted(_AGGREGATES)}")
        group_by = tuple(group_by)
        key_cols = [self.column(name) for name in group_by]
        if over is not None:
            key_cols.append(self.column(over))
        values = self.column(value)
        groups: dict[tuple, list] = {}
        for i in range(len(self)):
            key = tuple(col[i] for col in key_cols)
            groups.setdefault(key, [])
            if values[i] is not None:
                groups[key].append(values[i])
        fn = _AGGREGATES[agg]
        out_names = [*group_by, *((over,) if over is not None else ()), value, "n"]
        out_rows = []
        for key in sorted(groups, key=lambda k: tuple(map(_sort_token, k))):
            vals = groups[key]
            aggregated = fn(vals) if vals else None
            out_rows.append(dict(zip(out_names, [*key, aggregated, len(vals)])))
        table = ResultTable.from_rows(out_rows, title=f"{agg}({value})")
        # from_rows canonicalizes column order; restore the declared one.
        return ResultTable(
            {name: table.column(name) for name in out_names},
            title=table.title,
        )

    def pivot(
        self,
        index: str,
        column: str,
        value: str,
        column_order: "Sequence" = (),
        name: "Callable[[object], str]" = str,
        agg: str = "mean",
    ) -> "ResultTable":
        """Spread ``column``'s values into columns of aggregated ``value``.

        One output row per distinct ``index`` value (first-appearance
        order preserved, so figure tables keep their benchmark order); a
        cell holding a single row's value keeps that value exactly,
        multiple rows are combined with ``agg``.  Missing cells are None.
        """
        if agg not in _AGGREGATES:
            raise ValueError(f"unknown agg {agg!r}; one of {sorted(_AGGREGATES)}")
        idx_vals = self.column(index)
        col_vals = self.column(column)
        values = self.column(value)
        index_order = list(dict.fromkeys(idx_vals))
        columns = (
            list(column_order) if column_order else self.distinct(column)
        )
        cells: dict[tuple, list] = {}
        for i in range(len(self)):
            if values[i] is not None:
                cells.setdefault((idx_vals[i], col_vals[i]), []).append(values[i])
        fn = _AGGREGATES[agg]
        out: dict[str, list] = {index: index_order}
        for col in columns:
            out[name(col)] = [
                (
                    None
                    if (iv, col) not in cells
                    else cells[iv, col][0]
                    if len(cells[iv, col]) == 1
                    else fn(cells[iv, col])
                )
                for iv in index_order
            ]
        return ResultTable(out, title=f"{value} by {column}")

    def crossovers(
        self,
        axis: str,
        value: str = "analytic_success",
        by: str = "technique",
        group_by: "Sequence[str]" = ("benchmark",),
        pairs: "Sequence[tuple[str, str]] | None" = None,
    ) -> list[Crossover]:
        """Detect lead changes between ``by`` series along a numeric axis.

        For every group and every pair of ``by`` values, the ``value``
        marginal is taken over ``axis`` (mean across all other axes), the
        two series are compared at their common axis points, and each sign
        change of the difference is located by monotone piecewise-linear
        interpolation between the bracketing points (exact zeros count as
        crossings at the grid point itself).  Answers questions like "at
        what cz_error does ELDI overtake Graphine?".
        """
        group_by = tuple(group_by)
        marg = self.marginal(
            value=value, over=axis, group_by=(*group_by, by), agg="mean"
        )
        series: dict[tuple, dict[str, dict[float, float]]] = {}
        rows = marg.row_dicts()
        for row in rows:
            group = tuple(row[g] for g in group_by)
            if row[value] is None or row[axis] is None:
                continue
            series.setdefault(group, {}).setdefault(row[by], {})[row[axis]] = row[
                value
            ]
        if pairs is None:
            names = self.distinct(by)
            pairs = [
                (a, b)
                for i, a in enumerate(names)
                for b in names[i + 1 :]
            ]
        found: list[Crossover] = []
        for group in sorted(series, key=lambda g: tuple(map(_sort_token, g))):
            per_tech = series[group]
            for a, b in pairs:
                sa, sb = per_tech.get(a), per_tech.get(b)
                if not sa or not sb:
                    continue
                xs = sorted(set(sa) & set(sb))
                if len(xs) < 2:
                    continue
                diffs = [sa[x] - sb[x] for x in xs]
                # Sign of the most recent nonzero difference: lets a lead
                # flip across a zero *plateau* (series exactly equal at
                # one or more consecutive grid points) still register.
                lead_sign = 0
                for i in range(len(xs) - 1):
                    d0, d1 = diffs[i], diffs[i + 1]
                    if d0 != 0.0:
                        lead_sign = 1 if d0 > 0 else -1
                    if d0 * d1 < 0.0:
                        # Strict sign change: interpolate the bracketing
                        # segment (both series are linear on it, so the
                        # crossing of the difference is exact).
                        t = d0 / (d0 - d1)
                        x_star = xs[i] + t * (xs[i + 1] - xs[i])
                        y_star = sa[xs[i]] + t * (sa[xs[i + 1]] - sa[xs[i]])
                    elif (
                        d0 == 0.0
                        and d1 != 0.0
                        and lead_sign * d1 < 0.0
                    ):
                        # The series touch exactly at grid points and the
                        # lead flips across the touch; report the last
                        # touching point (the plateau's right edge).
                        x_star, y_star = float(xs[i]), sa[xs[i]]
                    else:
                        continue
                    lead_after = a if d1 > 0 else b
                    first = b if lead_after == a else a
                    found.append(
                        Crossover(
                            group=group,
                            first=first,
                            second=lead_after,
                            axis=axis,
                            axis_value=float(x_star),
                            metric=value,
                            metric_value=float(y_star),
                        )
                    )
        return found

    # -- rendering -------------------------------------------------------------

    def render(self, title: str | None = None) -> str:
        """Aligned monospace rendering (figure-style text output)."""
        return format_table(
            list(self.headers),
            [list(row) for row in self.rows],
            title=title or self.title,
        )

    def iter_csv(self, chunk_rows: int = 2048) -> "Iterator[str]":
        """Yield the table's CSV in chunks of at most ``chunk_rows`` rows.

        The streaming form of :meth:`to_csv` -- the concatenation of the
        chunks is byte-identical to it (``to_csv`` is literally this
        generator joined), so a consumer reassembling a streamed extract
        (the query daemon's ``/csv`` endpoint) gets the same bytes as an
        in-process dump, while the producer never holds more than one
        chunk of rendered text at a time.  The header line rides in the
        first chunk.
        """
        if chunk_rows <= 0:
            raise ValueError(f"chunk_rows must be positive, got {chunk_rows}")
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.names)
        pending = 0
        for row in self.rows:
            writer.writerow(["" if v is None else v for v in row])
            pending += 1
            if pending >= chunk_rows:
                yield buffer.getvalue()
                buffer.seek(0)
                buffer.truncate(0)
                pending = 0
        tail = buffer.getvalue()
        if tail:
            yield tail

    def to_csv(self) -> str:
        """RFC-4180 CSV of the full table (None cells become empty)."""
        return "".join(self.iter_csv())


def technique_summary(
    table: ResultTable, metric: str = "analytic_success"
) -> ResultTable:
    """Per-(benchmark, technique) mean of ``metric`` plus empirical range.

    The shared aggregate behind the sweep CLI's end-of-run table,
    ``analyze``, and ``--sweep-summary``: one row per (benchmark,
    technique) with the mean of ``metric``, the contributing row count
    ``n``, and -- when the table carries Monte Carlo samples --
    ``empirical_mean`` / ``empirical_min`` / ``empirical_max`` of the
    success rate.  Extra columns are merged by group key, never by
    position, so the alignment cannot silently drift.
    """
    summary = table.marginal(value=metric, group_by=("benchmark", "technique"))
    columns = {name: summary.column(name) for name in summary.names}
    if any(v is not None for v in table.column("success_rate")):
        groups = list(zip(summary.column("benchmark"), summary.column("technique")))
        for label, agg in (
            ("empirical_mean", "mean"),
            ("empirical_min", "min"),
            ("empirical_max", "max"),
        ):
            marg = table.marginal(
                value="success_rate",
                group_by=("benchmark", "technique"),
                agg=agg,
            )
            by_group = {
                (bench, tech): value
                for bench, tech, value in zip(
                    marg.column("benchmark"),
                    marg.column("technique"),
                    marg.column("success_rate"),
                )
            }
            columns[label] = [by_group.get(group) for group in groups]
    return ResultTable(
        columns,
        title=f"{len(table)} rows -- mean {metric} by benchmark/technique",
    )


def render_store_summary(
    table: ResultTable,
    metric: str = "analytic_success",
    axis: str | None = None,
) -> str:
    """The shared ``analyze``/``--sweep-summary`` report for one table.

    Renders :func:`technique_summary` (mean ``metric`` plus the empirical
    range when the table was Monte Carlo sampled), names the detected
    sweep axes, and appends the crossover report along ``axis`` (or every
    numeric axis when unspecified).
    """
    if not len(table):
        return "no records"
    parts = [technique_summary(table, metric=metric).render()]
    axes = table.axes()
    parts.append(
        "axes: " + (", ".join(axes) if axes else "(none -- single point)")
    )
    crossover_axes = (axis,) if axis else table.numeric_axes()
    crossings: list[Crossover] = []
    for ax in crossover_axes:
        crossings.extend(table.crossovers(axis=ax, value=metric))
    parts.append(
        f"crossovers ({metric} vs {', '.join(crossover_axes) or 'n/a'}): "
        f"{len(crossings)} found"
    )
    parts.extend(f"  - {c.describe()}" for c in crossings)
    return "\n".join(parts)


# -- JSON-ready aggregation payloads -------------------------------------------
#
# The query daemon (:mod:`repro.sweeps.serve`) serves aggregations over HTTP
# and caches the rendered responses keyed by store generation.  These entry
# points are the cacheable surface: pure functions of (table, parameters)
# returning JSON-ready dicts, so one definition backs the wire format, the
# daemon's cache, and in-process callers that want the same shapes.  Every
# payload echoes its parameters under ``"params"`` and keeps its keys
# append-only, like the stable output-line contracts.


def table_payload(table: ResultTable) -> dict:
    """One table as a JSON-ready ``{title, names, rows}`` mapping.

    Rows are lists in :attr:`ResultTable.names` order with ``None`` for
    missing cells -- the dense transport format shared by ``/marginal``
    and ``/pivot`` (cell values are plain Python scalars by the time they
    cross :class:`ResultTable`'s access boundary, so the dict serializes
    with :func:`json.dumps` as-is).
    """
    return {
        "title": table.title,
        "names": list(table.names),
        "rows": [list(row) for row in table.rows],
    }


def marginal_payload(
    table: ResultTable,
    value: str = "analytic_success",
    over: str | None = None,
    group_by: "Sequence[str]" = ("benchmark", "technique"),
    agg: str = "mean",
) -> dict:
    """:meth:`ResultTable.marginal` as a JSON-ready payload.

    Raises ``ValueError``/``KeyError`` exactly like the method for unknown
    aggregates or columns; the daemon maps those to HTTP 400.
    """
    out = table.marginal(value=value, over=over, group_by=tuple(group_by), agg=agg)
    return {
        "params": {
            "value": value,
            "over": over,
            "group_by": list(group_by),
            "agg": agg,
        },
        **table_payload(out),
    }


def pivot_payload(
    table: ResultTable,
    index: str,
    column: str,
    value: str,
    agg: str = "mean",
) -> dict:
    """:meth:`ResultTable.pivot` as a JSON-ready payload (400 semantics as
    :func:`marginal_payload`)."""
    out = table.pivot(index=index, column=column, value=value, agg=agg)
    return {
        "params": {
            "index": index,
            "column": column,
            "value": value,
            "agg": agg,
        },
        **table_payload(out),
    }


def crossover_payload(
    table: ResultTable,
    axis: str,
    value: str = "analytic_success",
    by: str = "technique",
    group_by: "Sequence[str]" = ("benchmark",),
) -> dict:
    """:meth:`ResultTable.crossovers` as a JSON-ready payload."""
    found = table.crossovers(
        axis=axis, value=value, by=by, group_by=tuple(group_by)
    )
    return {
        "params": {
            "axis": axis,
            "value": value,
            "by": by,
            "group_by": list(group_by),
        },
        "count": len(found),
        "crossovers": [crossing.as_dict() for crossing in found],
    }
