"""Scenario sweeps: hardware/noise parameter grids over the batch engine.

This subsystem answers "how do the paper's conclusions move as the machine
moves?" at scale: a declarative grid of (circuit, technique, hardware spec,
noise model) scenarios is expanded deterministically, compiled through the
parallel batch engine, evaluated by the vectorized Monte Carlo shot
simulator, and persisted to a resumable content-addressed store.

Components
----------

- :mod:`repro.sweeps.grid` -- :class:`SweepGrid`, the declarative grid: a
  base :class:`~repro.hardware.spec.HardwareSpec` plus *spec axes* (any
  spec field -> list of values) and *noise axes* (any
  :class:`~repro.noise.fidelity.NoiseModelConfig` field -> values), crossed
  with benchmarks and techniques.  Expansion yields :class:`Scenario`
  objects in a fixed order with content-derived Monte Carlo seeds, so
  results never depend on worker count, completion order, or grid
  subsetting.  Spec fields only the noise model reads
  (:data:`~repro.sweeps.grid.NOISE_ONLY_SPEC_FIELDS`) are detected at
  expansion: scenarios differing only there share one compiled artifact.
- :mod:`repro.sweeps.runner` -- :func:`run_sweep`: dedups the grid's unique
  compile points, fans them through
  :func:`repro.experiments.common.compile_points` (process pool + shared
  compilation cache), then hands every pending scenario to the evaluation
  engine.
- :mod:`repro.sweeps.engine` -- the sharded evaluation phase:
  :func:`evaluate_tasks` partitions pending scenarios into contiguous
  chunks, fans the chunks over a ``ProcessPoolExecutor``
  (``eval_workers`` / ``--eval-jobs``), and has each worker sample its
  scenarios with the :class:`~repro.sim.noisy.NoisyShotSimulator`
  multinomial fast path and persist records one by one through the
  store's atomic writes -- bit-identical for any worker count, resumable
  even when killed mid-shard.
- :mod:`repro.sweeps.analysis` -- the unified aggregation layer:
  :class:`ResultTable`, a pandas-free columnar table of flat result rows
  shared with the figure runners, with marginals over any grid axis,
  pivots, pairwise technique-crossover detection (piecewise-linear
  interpolation), and text/CSV renderers.  ``python -m repro.sweeps
  analyze STORE`` and ``repro.cli --sweep-summary`` are thin shells over
  it.
- :mod:`repro.sweeps.store` -- :class:`SweepStore`: one atomically-written
  JSON record per scenario, named by a SHA-256 scenario address covering
  the circuit/config/spec/noise fingerprints plus shots, seed, and package
  version (see the module docstring for the exact record schema).  A killed
  sweep keeps every finished scenario; rerunning with ``resume`` skips them
  byte-for-byte.
- :mod:`repro.sweeps.segments` -- the packed store backend:
  :meth:`SweepStore.compact` seals loose records into immutable,
  checksummed, length-prefixed segment files behind a sharded manifest
  (16 key-prefix shard files plus an append-only delta log, checkpointed
  by merge), so publishing a segment costs O(new records) rather than
  O(store).  Resume semantics are untouched (corrupt or truncated data
  reads as missing-with-warning), but a full-store load becomes
  O(segments) bulk reads, and each segment's columnar block lets
  ``ResultTable.from_store`` materialize analysis columns without building
  per-record dicts (~10x+ faster at 10^4 records).
  :meth:`SweepStore.merge` rewrites accumulated small segments into large
  generation-tagged ones, checkpoints the manifest, and garbage-collects
  superseded files -- idempotent and kill-safe.
- :mod:`repro.sweeps.distributed` -- coordinator-free distributed sweeps:
  N independent :func:`run_worker` claim loops (one host or many hosts on
  a shared filesystem) steal pending work through atomically created
  lease files in the store (heartbeat by mtime, expired leases of crashed
  workers reclaimed after a TTL), evaluate it through the same engine,
  and converge on a store byte-identical to a single-process run for any
  worker count and any crash/restart interleaving.  With
  ``lease_range > 1`` workers claim contiguous ranges of the key-sorted
  plan (:func:`range_blocks`) so one lease file amortizes over hundreds
  of evaluations.  ``run_sweep(distributed=True, workers=N)`` /
  ``--workers N`` is the local spawn-and-join form;
  ``python -m repro.sweeps worker STORE`` joins a fleet from anywhere.
- :mod:`repro.sweeps.serve` -- the long-lived HTTP query daemon
  (``python -m repro.sweeps serve STORE``): :class:`SweepServer` answers
  ``/stats``, ``/columns``, ``/records/<key>``, ``/marginal``,
  ``/pivot``, ``/crossovers`` and chunk-streamed ``/csv`` off the
  store's mmap'd sidecar columns, caching hot :class:`ResultTable`
  aggregations per manifest generation; the generation token is the
  HTTP ``ETag``, so unchanged stores revalidate as 304s and a
  merge/compact/sweep landing underneath the live daemon invalidates
  every cache at its atomic manifest swap.
- ``python -m repro.sweeps`` -- the CLI: ``--preset smoke|default`` or
  explicit ``--benchmarks/--techniques/--spec-axis/--noise-axis``, with
  ``--jobs`` (compilation pool), ``--eval-jobs`` (evaluation pool),
  ``--workers`` (distributed claim-loop workers), ``--lease-range``
  (scenarios per lease), ``--shots``, ``--store``, ``--resume``,
  ``--seal`` (compact chunks as they complete) and ``--merge`` (compact
  generations after the run); plus the ``worker STORE`` subcommand (join
  a distributed fleet), ``compact STORE`` (pack an existing store),
  ``merge STORE`` (generational compaction), ``stats STORE`` (census),
  ``serve STORE`` (the HTTP query daemon) and ``analyze STORE`` for
  marginals, axis detection, and crossover reports.
  Run and worker print one stable machine-readable
  ``RESUME computed=N resumed=M ...`` line, compact prints
  ``COMPACT sealed=...``, merge prints ``MERGE sealed=...`` and stats
  prints ``STATS loose=...`` -- the grep contract CI and scripts rely on
  (see ``docs/store-format.md``).

Example::

    from repro.sweeps import SweepGrid, SweepStore, run_sweep

    grid = SweepGrid(
        benchmarks=("ADD", "QAOA"),
        techniques=("parallax", "graphine"),
        spec_axes={"cz_error": (0.0024, 0.0048, 0.0096)},
        noise_axes={"include_readout": (False, True)},
        shots=2000,
    )
    report = run_sweep(grid, SweepStore("sweep-out"), resume=True, workers=8)
    best = max(report.records, key=lambda r: r["outcome"]["success_rate"])
"""

from repro.sweeps.analysis import Crossover, ResultTable, render_store_summary
from repro.sweeps.grid import NOISE_ONLY_SPEC_FIELDS, Scenario, SweepGrid
from repro.sweeps.store import (
    SCHEMA_VERSION,
    CompactionReport,
    MergeReport,
    StoreStats,
    SweepStore,
    scenario_key,
)

__all__ = [
    "NOISE_ONLY_SPEC_FIELDS",
    "CompactionReport",
    "Crossover",
    "EvalTask",
    "MergeReport",
    "ResultTable",
    "Scenario",
    "StoreStats",
    "SweepGrid",
    "SweepPlan",
    "SweepReport",
    "SweepServer",
    "WorkerReport",
    "evaluate_tasks",
    "plan_sweep",
    "range_blocks",
    "render_store_summary",
    "run_distributed",
    "run_sweep",
    "run_worker",
    "serve_store",
    "SCHEMA_VERSION",
    "SweepStore",
    "scenario_key",
]

# The runner and the evaluation engine sit *above* repro.experiments.common
# (they dispatch compilations through it), while repro.experiments.common
# itself builds its unified tables on repro.sweeps.analysis.  Importing them
# lazily (PEP 562) keeps `import repro.experiments.common` free of the
# cycle while `from repro.sweeps import run_sweep` keeps working.
_LAZY = {
    "SweepPlan": "repro.sweeps.runner",
    "SweepReport": "repro.sweeps.runner",
    "plan_sweep": "repro.sweeps.runner",
    "run_sweep": "repro.sweeps.runner",
    "EvalTask": "repro.sweeps.engine",
    "evaluate_tasks": "repro.sweeps.engine",
    "WorkerReport": "repro.sweeps.distributed",
    "range_blocks": "repro.sweeps.distributed",
    "run_distributed": "repro.sweeps.distributed",
    "run_worker": "repro.sweeps.distributed",
    "SweepServer": "repro.sweeps.serve",
    "serve_store": "repro.sweeps.serve",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list:
    return sorted(set(globals()) | set(_LAZY))
