"""Command-line scenario-sweep driver.

Examples::

    python -m repro.sweeps --preset smoke --shots 200
    python -m repro.sweeps --jobs 8 --eval-jobs 8 --store sweep-out
    python -m repro.sweeps --store sweep-out --resume --jobs 8
    python -m repro.sweeps --eval-jobs 8 --seal --store sweep-out
    python -m repro.sweeps --workers 4 --store sweep-out
    python -m repro.sweeps --benchmarks ADD,QAOA --techniques parallax \\
        --spec-axis cz_error=0.0024,0.0048,0.0096 \\
        --noise-axis include_readout=false,true --shots 2000
    python -m repro.sweeps --corpus path/to/qasm-suite --techniques all \\
        --store sweep-out --shots 2000
    python -m repro.sweeps --benchmarks QAOA --techniques parallax \\
        --config-axis placement_seed=0,1,2 --config-axis return_home=true,false
    python -m repro.sweeps worker sweep-out --preset smoke --shots 200
    python -m repro.sweeps worker sweep-out --preset smoke --lease-range 64
    python -m repro.sweeps --eval-jobs 8 --seal --merge-every 4 --store sweep-out
    python -m repro.sweeps compact sweep-out
    python -m repro.sweeps merge sweep-out
    python -m repro.sweeps merge sweep-out --jobs 4
    python -m repro.sweeps stats sweep-out
    python -m repro.sweeps stats sweep-out --json
    python -m repro.sweeps serve sweep-out --port 8787
    python -m repro.sweeps analyze sweep-out
    python -m repro.sweeps analyze sweep-out --metric success_rate \\
        --axis cz_error --csv sweep-out.csv

``--store DIR`` persists every scenario record as it is evaluated;
rerunning with ``--resume`` skips everything already on disk, so an
interrupted sweep continues where it stopped.  ``--jobs`` shards the
compilation phase and ``--eval-jobs`` the Monte Carlo evaluation phase;
results are bit-identical for any value of either.  Every run prints one
stable machine-readable summary line (``RESUME computed=N resumed=M
scenarios=S compilations=C``, with any newer fields appended after these
four) for scripts and CI to grep -- see ``docs/store-format.md`` for the
full contract.

``--corpus DIR`` opens the workload axis: every ``.qasm`` file under DIR
becomes a sweep benchmark with a stable content-derived workload id
(``<STEM>-<SHA256[:8]>``); files the parser rejects are skipped with one
``corpus: skipped <file>: <reason>`` line each, followed by a stable
``CORPUS dir=... workloads=N skipped=K`` census line.  ``--config-axis
FIELD=V1,V2`` sweeps technique-config knobs (placement method/seed,
router strategy/window, scheduler seed, return-home) as ordinary grid
axes -- each combination compiles separately and lands in the store and
analyze output as ordinary columns.

``worker`` runs one coordinator-free work-stealing worker
(:mod:`repro.sweeps.distributed`): it claims pending scenario keys through
atomically-created lease files in the store, evaluates them, and exits
when the grid is complete.  Start any number of workers -- same host or
many hosts sharing the store's filesystem -- with the *same grid flags*;
the final store is byte-identical to a single-process run.  ``--workers N``
on a plain run is the local spawn-and-join form of the same thing.

``compact`` seals a store's loose per-scenario JSON files into packed,
checksummed segment files (:mod:`repro.sweeps.segments`) behind a
sharded, append-only manifest: resume semantics are unchanged, but a full
store load becomes O(segments) bulk reads -- the difference between
seconds and minutes at ~10^6 records -- and each new segment publishes
with one fsynced delta-log append, O(new records) not O(store).
Idempotent and safe to re-run at any time, including around a killed
previous compaction.  Prints one stable ``COMPACT sealed=N deduped=D
skipped=S segment=...`` line.  ``--seal`` on a sweep run compacts each
evaluation chunk as it completes instead.

``merge`` folds a store down to one fresh generation: loose records are
sealed, small segments rewrite into large generation-tagged ones, the
manifest delta log is checkpointed into fresh key-prefix shards, and
everything superseded is garbage-collected.  Idempotent, kill-safe at
every point, and the one-shot migration path for manifest-v1 stores.
Prints one stable ``MERGE sealed=... merged=... generation=...`` line.
``--merge`` on a sweep run merges once the sweep finishes; ``merge
--jobs N`` rewrites the merged segments over a process pool
(byte-identical output); ``--merge-every N`` on a run or worker folds
segments *mid-sweep* whenever the pending manifest delta count reaches
N, electing at most one merger at a time through the exclusive merge
lock.

``stats`` prints the store census -- one stable ``STATS loose=... ``
line plus a human-readable summary -- without running anything;
``stats --json`` emits the same fields as one JSON object.

``serve`` starts the long-lived HTTP query daemon
(:mod:`repro.sweeps.serve`): JSON ``/stats``, ``/columns``,
``/records/<key>``, ``/marginal``, ``/pivot``, ``/crossovers`` and
chunk-streamed ``/csv`` off the store's mmap'd sidecar columns, with hot
aggregations cached per manifest generation and the generation token
served as the HTTP ``ETag`` (clients revalidate with ``If-None-Match``;
a ``merge``/``compact``/sweep landing under the live daemon flips the
tag and fresh bytes are served).  Prints one stable ``SERVE ready
port=... store=... generation=... records=... etag=...`` line once the
socket is bound, then blocks until interrupted.

``analyze`` loads a store into the unified
:class:`~repro.sweeps.analysis.ResultTable` (bulk-reading packed segments
when present), prints per-(benchmark, technique) marginals, detects sweep
axes, and reports technique crossovers ("at what cz_error does ELDI
overtake Graphine?").
"""

from __future__ import annotations

import argparse
import sys

from repro.hardware.spec import HardwareSpec
from repro.sweeps.analysis import (
    METRIC_COLUMNS,
    ResultTable,
    render_store_summary,
    technique_summary,
)
from repro.sweeps.grid import SweepGrid
from repro.sweeps.store import SweepStore

__all__ = ["main"]

_MACHINES = {
    "quera": HardwareSpec.quera_aquila,
    "atom": HardwareSpec.atom_computing,
}


def _parse_value(token: str):
    """Axis value literal: int, float, bool, or bare string."""
    lowered = token.strip().lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for cast in (int, float):
        try:
            return cast(token)
        except ValueError:
            continue
    return token.strip()


def _parse_axes(entries: list[str] | None) -> dict:
    """``FIELD=v1,v2,...`` option strings -> axis mapping."""
    axes: dict = {}
    for entry in entries or []:
        name, _, values = entry.partition("=")
        if not values:
            raise argparse.ArgumentTypeError(
                f"axis {entry!r} must look like FIELD=VALUE[,VALUE...]"
            )
        axes[name.strip()] = tuple(_parse_value(v) for v in values.split(","))
    return axes


def _add_grid_arguments(parser: argparse.ArgumentParser) -> None:
    """Grid-shape flags shared by the run and worker entry points.

    Workers of one fleet must be started with identical grid flags: the
    grid is what determines the shared key set they steal work from.
    """
    parser.add_argument(
        "--preset",
        choices=("smoke", "default"),
        default="default",
        help="base grid: 'default' is 108 scenarios over CZ error, T2, and "
        "readout; 'smoke' is an 8-scenario CI grid (default: default)",
    )
    parser.add_argument(
        "--benchmarks", default=None, metavar="CSV",
        help="comma-separated Table III acronyms overriding the preset",
    )
    parser.add_argument(
        "--techniques", default=None, metavar="CSV",
        help="comma-separated technique names overriding the preset",
    )
    parser.add_argument(
        "--machine", choices=sorted(_MACHINES), default=None,
        help="base machine overriding the preset's (quera or atom)",
    )
    parser.add_argument(
        "--spec-axis", action="append", metavar="FIELD=V1,V2",
        help="sweep a HardwareSpec field (repeatable; overrides preset axes)",
    )
    parser.add_argument(
        "--noise-axis", action="append", metavar="FIELD=V1,V2",
        help="sweep a NoiseModelConfig field (repeatable; overrides preset axes)",
    )
    parser.add_argument(
        "--config-axis", action="append", metavar="FIELD=V1,V2",
        help="sweep a technique-config knob (repeatable): placement_method, "
        "placement_seed, scheduler_seed, return_home, router_strategy, "
        "router_window -- turns ablations into ordinary sweep axes",
    )
    parser.add_argument(
        "--corpus", default=None, metavar="DIR",
        help="register every .qasm file under DIR as a sweep benchmark "
        "(stable content-derived workload ids; unparseable files are "
        "skipped with a warning).  Without --benchmarks the grid runs "
        "over the whole corpus",
    )
    parser.add_argument(
        "--shots", type=int, default=1000, metavar="N",
        help="Monte Carlo shots per scenario (default: 1000)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="root seed the per-scenario content-derived seeds mix in "
        "(default: 0)",
    )
    parser.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="only run the first N scenarios of the grid (cannot change "
        "any scenario's seed or record)",
    )


def _grid_from_args(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> SweepGrid:
    """Build the grid the shared flags describe (parser.error on bad axes)."""
    preset = SweepGrid.smoke if args.preset == "smoke" else SweepGrid.default
    grid = preset(shots=args.shots, base_seed=args.seed)
    overrides: dict = {}
    if args.corpus:
        from repro.qasm.corpus import activate_corpus

        try:
            corpus = activate_corpus(args.corpus)
        except ValueError as exc:
            parser.error(str(exc))
        # Stable skip + summary lines (docs/store-format.md): one
        # 'corpus: skipped <file>: <reason>' line per rejected file, then
        # the CORPUS census line, printed for run and worker alike.
        for name, reason in corpus.skipped:
            print(f"corpus: skipped {name}: {reason}")
        print(corpus.summary_line)
        if not args.benchmarks:
            if not corpus.workloads:
                parser.error(
                    f"corpus {args.corpus!r} contains no parseable workloads"
                )
            overrides["benchmarks"] = corpus.workload_ids
    if args.benchmarks:
        overrides["benchmarks"] = tuple(
            b.strip().upper() for b in args.benchmarks.split(",")
        )
    if args.techniques:
        overrides["techniques"] = tuple(
            t.strip() for t in args.techniques.split(",")
        )
    if args.machine:
        overrides["base_spec"] = _MACHINES[args.machine]()
    try:
        if args.spec_axis:
            overrides["spec_axes"] = _parse_axes(args.spec_axis)
        if args.noise_axis:
            overrides["noise_axes"] = _parse_axes(args.noise_axis)
        if args.config_axis:
            overrides["config_axes"] = _parse_axes(args.config_axis)
        if overrides:
            from dataclasses import replace

            grid = replace(grid, **overrides)
    except (argparse.ArgumentTypeError, ValueError) as exc:
        parser.error(str(exc))
    if args.limit is not None and args.limit <= 0:
        parser.error("--limit must be positive")
    return grid


def _compact_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweeps compact",
        description="Seal a sweep store's loose JSON records into packed, "
        "checksummed segment files (resume-compatible, ~10x+ faster to "
        "load; idempotent, safe to re-run).  Prints one stable "
        "'COMPACT sealed=N deduped=D skipped=S segment=...' line for "
        "scripts to grep (see docs/store-format.md).",
    )
    parser.add_argument("store", help="sweep store directory to compact")
    args = parser.parse_args(argv)

    store = SweepStore(args.store)
    try:
        report = store.compact()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    # Generation/delta census comes from a fresh stats read, appended
    # after the four original fields (append-only line contract).
    stats = store.stats()
    print(
        f"COMPACT sealed={report.sealed} deduped={report.deduped} "
        f"skipped={report.skipped} segment={report.segment or '-'} "
        f"generation={stats.generation} deltas={stats.deltas}"
    )
    print(f"store: {store.directory} ({stats.describe()})")
    return 0


def _merge_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweeps merge",
        description="Fold a sweep store down to one fresh generation: seal "
        "loose records, rewrite small segments into large "
        "generation-tagged ones, checkpoint the manifest delta log into "
        "fresh shards, and garbage-collect superseded files.  Idempotent "
        "and kill-safe; also the one-shot migration path for "
        "manifest-v1 stores.  Prints one stable 'MERGE sealed=N merged=M "
        "segments=S generation=G gc_segments=X gc_manifest=Y' line for "
        "scripts to grep (see docs/store-format.md).",
    )
    parser.add_argument("store", help="sweep store directory to merge")
    parser.add_argument(
        "--target-records", type=int, default=None, metavar="N",
        help="records per merged segment (default: "
        f"{SweepStore.DEFAULT_MERGE_TARGET})",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="rewrite merged segments over an N-process pool (the output "
        "is byte-identical to a serial merge; default: serial)",
    )
    args = parser.parse_args(argv)
    if args.target_records is not None and args.target_records <= 0:
        parser.error("--target-records must be positive")
    if args.jobs is not None and args.jobs <= 0:
        parser.error("--jobs must be positive")

    store = SweepStore(args.store)
    try:
        report = store.merge(target_records=args.target_records, jobs=args.jobs)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(report.summary_line)
    print(f"store: {store.directory} ({store.stats().describe()})")
    return 0


def _stats_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweeps stats",
        description="Print a sweep store's census without running "
        "anything: loose/sealed record counts, segment and generation "
        "census, manifest shard/delta counts, and active leases.  One "
        "stable 'STATS loose=N sealed=N segments=N generation=G shards=S "
        "deltas=D leases=L' line for scripts to grep (see "
        "docs/store-format.md), then a human-readable summary.",
    )
    parser.add_argument("store", help="sweep store directory to inspect")
    parser.add_argument(
        "--json", action="store_true",
        help="emit the census as one JSON object (same fields as the "
        "STATS line) instead of prose, for fleet tooling",
    )
    args = parser.parse_args(argv)

    stats = SweepStore(args.store).stats()
    if args.json:
        import json

        print(json.dumps(stats.as_dict(), sort_keys=True))
        return 0
    print(stats.summary_line)
    print(f"store: {args.store} ({stats.describe()})")
    return 0


def _serve_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweeps serve",
        description="Serve a sweep store's aggregations over HTTP/JSON "
        "from a long-lived daemon: /stats, /columns, /records/<key>, "
        "/marginal, /pivot, /crossovers, and chunk-streamed /csv.  Hot "
        "ResultTable aggregations are cached per manifest generation; "
        "the generation token is the HTTP ETag, so unchanged stores "
        "answer If-None-Match with 304 and a concurrent merge/compact/"
        "sweep underneath the daemon invalidates everything at its "
        "atomic manifest swap.  Prints one stable 'SERVE ready port=... "
        "store=... generation=... records=... etag=...' line once the "
        "socket is bound (see docs/store-format.md), then blocks until "
        "interrupted.",
    )
    parser.add_argument("store", help="sweep store directory to serve")
    parser.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="address to bind (default: 127.0.0.1; use 0.0.0.0 to serve "
        "a fleet)",
    )
    parser.add_argument(
        "--port", type=int, default=0, metavar="N",
        help="port to bind (default: 0 = an ephemeral port, reported in "
        "the SERVE ready line)",
    )
    parser.add_argument(
        "--csv-chunk-rows", type=int, default=None, metavar="N",
        help="rows per streamed /csv chunk (default: 2048)",
    )
    args = parser.parse_args(argv)
    if args.port < 0 or args.port > 65535:
        parser.error("--port must be in [0, 65535]")
    if args.csv_chunk_rows is not None and args.csv_chunk_rows <= 0:
        parser.error("--csv-chunk-rows must be positive")

    from repro.sweeps.serve import DEFAULT_CSV_CHUNK_ROWS, serve_store

    try:
        return serve_store(
            args.store,
            host=args.host,
            port=args.port,
            csv_chunk_rows=args.csv_chunk_rows or DEFAULT_CSV_CHUNK_ROWS,
        )
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _analyze_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweeps analyze",
        description="Aggregate a sweep store: marginals per benchmark/"
        "technique, axis detection, and technique-crossover report.",
    )
    parser.add_argument("store", help="sweep store directory to analyze")
    parser.add_argument(
        "--metric", default="analytic_success", metavar="COLUMN",
        help="metric column to aggregate (default: analytic_success; "
        "e.g. success_rate, runtime_us, num_cz)",
    )
    parser.add_argument(
        "--axis", default=None, metavar="FIELD",
        help="restrict crossover detection to one numeric axis "
        "(default: every detected numeric axis)",
    )
    parser.add_argument(
        "--csv", default=None, metavar="PATH",
        help="also dump the full flat ResultTable as CSV to PATH",
    )
    args = parser.parse_args(argv)

    store = SweepStore(args.store)
    table = ResultTable.from_store(store)
    if not len(table):
        print(f"error: no readable records in {store.directory}", file=sys.stderr)
        return 1
    valid_metrics = [m for m in METRIC_COLUMNS if m in table.names]
    if args.metric not in valid_metrics:
        print(
            f"error: unknown metric {args.metric!r}; one of: "
            f"{', '.join(valid_metrics)}",
            file=sys.stderr,
        )
        return 1
    if args.axis is not None and args.axis not in table.numeric_axes():
        print(
            f"error: {args.axis!r} is not a numeric sweep axis of this store "
            f"(numeric axes: {', '.join(table.numeric_axes()) or 'none'})",
            file=sys.stderr,
        )
        return 1
    print(render_store_summary(table, metric=args.metric, axis=args.axis))
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(table.to_csv())
        print(f"wrote {len(table)} rows to {args.csv}")
    return 0


def _worker_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweeps worker",
        description="Run one coordinator-free work-stealing sweep worker: "
        "claim pending scenario keys of the given grid through atomic "
        "lease files in STORE, evaluate them, and exit when the grid is "
        "complete.  Start any number of workers with the same grid flags "
        "-- on one host or many hosts sharing STORE's filesystem -- and "
        "the final store is byte-identical to a single-process run, even "
        "across worker crashes (expired leases are reclaimed after "
        "--ttl).  Prints the same stable RESUME summary line as a plain "
        "run, with owner=/reclaimed=/contended= fields appended.",
    )
    parser.add_argument(
        "store", help="shared sweep store directory (created if missing)"
    )
    _add_grid_arguments(parser)
    parser.add_argument(
        "--owner", default=None, metavar="ID",
        help="lease-owner id; must be unique per worker "
        "(default: a host-pid-random id)",
    )
    parser.add_argument(
        "--ttl", type=float, default=None, metavar="SECONDS",
        help="lease heartbeat TTL; leases older than this are presumed "
        "abandoned (crashed worker) and reclaimed.  Size it above the "
        "slowest single compile (default: 60)",
    )
    parser.add_argument(
        "--seal", action="store_true",
        help="compact this worker's finished records into packed segments "
        "in batches (see the compact subcommand)",
    )
    parser.add_argument(
        "--merge-every", type=int, default=None, metavar="N",
        help="with --seal, fold segments once the store's pending manifest "
        "delta count reaches N (the exclusive merge lock elects at most "
        "one merging worker at a time; see the merge subcommand)",
    )
    parser.add_argument(
        "--lease-range", type=int, default=1, metavar="N",
        help="claim contiguous blocks of N key-sorted scenarios per lease "
        "file instead of one key per lease (amortizes lease metadata "
        "traffic over the block; every worker of a fleet must use the "
        "same value; default: 1)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress progress lines (the stable RESUME summary line "
        "still prints)",
    )
    args = parser.parse_args(argv)
    if args.ttl is not None and args.ttl <= 0:
        parser.error("--ttl must be positive")
    if args.merge_every is not None:
        if args.merge_every <= 0:
            parser.error("--merge-every must be positive")
        if not args.seal:
            parser.error("--merge-every requires --seal")
    if args.lease_range <= 0:
        parser.error("--lease-range must be positive")
    grid = _grid_from_args(parser, args)

    from repro.sweeps.distributed import run_worker
    from repro.sweeps.store import DEFAULT_LEASE_TTL_S

    store = SweepStore(args.store)
    report = run_worker(
        grid,
        store,
        owner=args.owner,
        ttl_s=args.ttl if args.ttl is not None else DEFAULT_LEASE_TTL_S,
        seal=args.seal,
        merge_every=args.merge_every,
        limit=args.limit,
        lease_range=args.lease_range,
        log=None if args.quiet else print,
    )
    # Machine-readable contract line, printed even under --quiet (same
    # fields as a plain run, worker fields appended; docs/store-format.md).
    print(report.summary_line)
    print(f"store: {store.directory} ({store.stats().describe()})")
    return 0


def _run_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweeps",
        description="Sweep (circuit x technique x hardware x noise) scenarios "
        "through the batch compiler and the sharded noisy-shot engine "
        "(or: `worker STORE` to join a distributed fleet, `compact STORE` "
        "to pack a store, `analyze STORE` to aggregate one).",
    )
    _add_grid_arguments(parser)
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="compilation process-pool size (default: 1); results are "
        "bit-identical for any value",
    )
    parser.add_argument(
        "--eval-jobs", type=int, default=1, metavar="N",
        help="evaluation process-pool size (default: 1); scenario chunks "
        "are sharded across workers that write straight to the store; "
        "records are bit-identical for any value",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="instead of the sharded pools, spawn N distributed "
        "work-stealing workers over --store (lease files, crash-safe; "
        "see the worker subcommand); records are byte-identical to any "
        "other mode",
    )
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="persist per-scenario records to DIR as they are evaluated "
        "(loose JSON; pack with the compact subcommand or --seal)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="skip scenarios already present in --store (byte-for-byte: "
        "corrupt or foreign-generation records are recomputed)",
    )
    parser.add_argument(
        "--seal", action="store_true",
        help="with --store, compact each evaluation chunk's records into "
        "packed segments as it completes (see the compact subcommand)",
    )
    parser.add_argument(
        "--merge", action="store_true",
        help="with --store, run a generational merge after the sweep "
        "finishes (see the merge subcommand): large segments, "
        "checkpointed manifest, superseded files collected",
    )
    parser.add_argument(
        "--merge-every", type=int, default=None, metavar="N",
        help="with --seal, fold segments mid-sweep whenever the pending "
        "manifest delta count reaches N, so long fleets never accumulate "
        "unbounded deltas (see the merge subcommand)",
    )
    parser.add_argument(
        "--lease-range", type=int, default=1, metavar="N",
        help="with --workers, claim contiguous blocks of N key-sorted "
        "scenarios per lease file (see the worker subcommand; default: 1)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress progress lines and the summary table (the stable "
        "RESUME summary line still prints)",
    )
    parser.add_argument(
        "--phase-report", action="store_true",
        help="also print aggregated per-stage compile timings "
        "(PhaseTimer totals, merged across compile workers; cache hits "
        "contribute no stages)",
    )
    parser.add_argument(
        "--phase-report-json", default=None, metavar="PATH",
        help="dump the aggregated per-stage compile timings as JSON to "
        'PATH ({"totals": {"<technique>.<stage>": seconds, ...}})',
    )
    args = parser.parse_args(argv)

    if args.resume and not args.store:
        parser.error("--resume requires --store")
    if args.seal and not args.store:
        parser.error("--seal requires --store")
    if args.merge and not args.store:
        parser.error("--merge requires --store")
    if args.merge_every is not None:
        if args.merge_every <= 0:
            parser.error("--merge-every must be positive")
        if not args.seal:
            parser.error("--merge-every requires --seal")
    if args.workers is not None and not args.store:
        parser.error("--workers requires --store")
    if args.workers is not None and args.workers <= 0:
        parser.error("--workers must be positive")
    if args.lease_range <= 0:
        parser.error("--lease-range must be positive")
    grid = _grid_from_args(parser, args)

    from repro.sweeps.runner import run_sweep

    store = SweepStore(args.store) if args.store else None
    log = None if args.quiet else print
    report = run_sweep(
        grid, store, resume=args.resume, workers=args.workers or args.jobs,
        eval_workers=args.eval_jobs, limit=args.limit, seal=args.seal,
        merge=args.merge, merge_every=args.merge_every,
        distributed=args.workers is not None,
        lease_range=args.lease_range, log=log,
    )

    if not args.quiet:
        summary = technique_summary(ResultTable.from_records(report.records))
        print(
            summary.render(
                title=f"{report.scenarios} scenarios, {args.shots} shots each -- "
                f"{report.computed} computed, {report.resumed} resumed, "
                f"{report.compilations} compilations, {report.elapsed_s:.1f}s",
            )
        )
    if args.phase_report:
        from repro.utils.profiling import format_phase_totals

        print("per-stage compile timings (cache hits contribute no stages):")
        print(format_phase_totals(report.phase_totals))
    if args.phase_report_json:
        import json

        with open(args.phase_report_json, "w", encoding="utf-8") as handle:
            json.dump({"totals": report.phase_totals}, handle, indent=2)
        print(f"wrote phase timings to {args.phase_report_json}")
    # One stable machine-readable line, printed even under --quiet: CI and
    # wrapper scripts key off it instead of the human-readable wording.
    print(report.summary_line)
    if store is not None:
        print(f"store: {store.directory} ({store.stats().describe()})")
        print(f"analyze with: python -m repro.sweeps analyze {store.directory}")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "analyze":
        return _analyze_main(argv[1:])
    if argv and argv[0] == "compact":
        return _compact_main(argv[1:])
    if argv and argv[0] == "worker":
        return _worker_main(argv[1:])
    if argv and argv[0] == "merge":
        return _merge_main(argv[1:])
    if argv and argv[0] == "stats":
        return _stats_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    return _run_main(argv)


if __name__ == "__main__":
    sys.exit(main())
