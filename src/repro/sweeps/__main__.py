"""Command-line scenario-sweep driver.

Examples::

    python -m repro.sweeps --preset smoke --shots 200
    python -m repro.sweeps --jobs 8 --store sweep-out
    python -m repro.sweeps --store sweep-out --resume --jobs 8
    python -m repro.sweeps --benchmarks ADD,QAOA --techniques parallax \\
        --spec-axis cz_error=0.0024,0.0048,0.0096 \\
        --noise-axis include_readout=false,true --shots 2000

``--store DIR`` persists every scenario record as it is evaluated;
rerunning with ``--resume`` skips everything already on disk, so an
interrupted sweep continues where it stopped.  Results are bit-identical
for any ``--jobs`` value.
"""

from __future__ import annotations

import argparse
import sys

from repro.hardware.spec import HardwareSpec
from repro.sweeps.grid import SweepGrid
from repro.sweeps.runner import run_sweep
from repro.sweeps.store import SweepStore
from repro.utils.tables import format_table

__all__ = ["main"]

_MACHINES = {
    "quera": HardwareSpec.quera_aquila,
    "atom": HardwareSpec.atom_computing,
}


def _parse_value(token: str):
    """Axis value literal: int, float, bool, or bare string."""
    lowered = token.strip().lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for cast in (int, float):
        try:
            return cast(token)
        except ValueError:
            continue
    return token.strip()


def _parse_axes(entries: list[str] | None) -> dict:
    """``FIELD=v1,v2,...`` option strings -> axis mapping."""
    axes: dict = {}
    for entry in entries or []:
        name, _, values = entry.partition("=")
        if not values:
            raise argparse.ArgumentTypeError(
                f"axis {entry!r} must look like FIELD=VALUE[,VALUE...]"
            )
        axes[name.strip()] = tuple(_parse_value(v) for v in values.split(","))
    return axes


def _summary_rows(records) -> list[list]:
    """Aggregate records into one row per (benchmark, technique)."""
    groups: dict[tuple[str, str], list] = {}
    for record in records:
        scenario = record["scenario"]
        groups.setdefault(
            (scenario["benchmark"], scenario["technique"]), []
        ).append(record)
    rows = []
    for (benchmark, technique), group in sorted(groups.items()):
        empirical = [r["outcome"]["success_rate"] for r in group]
        analytic = [r["analytic_success"] for r in group]
        rows.append(
            [
                benchmark,
                technique,
                len(group),
                f"{sum(analytic) / len(analytic):.4f}",
                f"{sum(empirical) / len(empirical):.4f}",
                f"{min(empirical):.4f}",
                f"{max(empirical):.4f}",
            ]
        )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweeps",
        description="Sweep (circuit x technique x hardware x noise) scenarios "
        "through the batch compiler and the vectorized noisy-shot engine.",
    )
    parser.add_argument(
        "--preset",
        choices=("smoke", "default"),
        default="default",
        help="base grid: 'default' is 108 scenarios over CZ error, T2, and "
        "readout; 'smoke' is an 8-scenario CI grid (default: default)",
    )
    parser.add_argument(
        "--benchmarks", default=None, metavar="CSV",
        help="comma-separated Table III acronyms overriding the preset",
    )
    parser.add_argument(
        "--techniques", default=None, metavar="CSV",
        help="comma-separated technique names overriding the preset",
    )
    parser.add_argument(
        "--machine", choices=sorted(_MACHINES), default=None,
        help="base machine overriding the preset's (quera or atom)",
    )
    parser.add_argument(
        "--spec-axis", action="append", metavar="FIELD=V1,V2",
        help="sweep a HardwareSpec field (repeatable; overrides preset axes)",
    )
    parser.add_argument(
        "--noise-axis", action="append", metavar="FIELD=V1,V2",
        help="sweep a NoiseModelConfig field (repeatable; overrides preset axes)",
    )
    parser.add_argument(
        "--shots", type=int, default=1000, metavar="N",
        help="Monte Carlo shots per scenario (default: 1000)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="root seed the per-scenario seeds derive from (default: 0)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="compilation process-pool size (default: 1); results are "
        "bit-identical for any value",
    )
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="persist per-scenario records to DIR (written as evaluated)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="skip scenarios already present in --store",
    )
    parser.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="only run the first N scenarios of the grid",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress lines"
    )
    args = parser.parse_args(argv)

    if args.resume and not args.store:
        parser.error("--resume requires --store")

    preset = SweepGrid.smoke if args.preset == "smoke" else SweepGrid.default
    grid = preset(shots=args.shots, base_seed=args.seed)
    overrides: dict = {}
    if args.benchmarks:
        overrides["benchmarks"] = tuple(
            b.strip().upper() for b in args.benchmarks.split(",")
        )
    if args.techniques:
        overrides["techniques"] = tuple(
            t.strip() for t in args.techniques.split(",")
        )
    if args.machine:
        overrides["base_spec"] = _MACHINES[args.machine]()
    try:
        if args.spec_axis:
            overrides["spec_axes"] = _parse_axes(args.spec_axis)
        if args.noise_axis:
            overrides["noise_axes"] = _parse_axes(args.noise_axis)
        if overrides:
            from dataclasses import replace

            grid = replace(grid, **overrides)
    except (argparse.ArgumentTypeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.limit is not None and args.limit <= 0:
        parser.error("--limit must be positive")

    store = SweepStore(args.store) if args.store else None
    log = None if args.quiet else print
    report = run_sweep(
        grid, store, resume=args.resume, workers=args.jobs,
        limit=args.limit, log=log,
    )

    print(
        format_table(
            ["benchmark", "technique", "scenarios", "analytic(mean)",
             "empirical(mean)", "empirical(min)", "empirical(max)"],
            _summary_rows(report.records),
            title=f"{report.scenarios} scenarios, {args.shots} shots each -- "
            f"{report.computed} computed, {report.resumed} resumed, "
            f"{report.compilations} compilations, {report.elapsed_s:.1f}s",
        )
    )
    if store is not None:
        print(f"store: {store.directory} ({len(store)} records)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
