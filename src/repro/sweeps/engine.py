"""Sharded scenario evaluation over a process pool.

The evaluation phase of a sweep -- Monte Carlo sampling every pending
scenario against its compiled artifact -- is embarrassingly parallel: each
scenario's record is a pure function of its :class:`EvalTask` (the compile
result, the effective spec/noise, and a content-derived seed fixed at grid
expansion).  :func:`evaluate_tasks` therefore partitions the pending tasks
into contiguous chunks, fans the chunks over a ``ProcessPoolExecutor``
(``workers`` > 1), and has every worker persist each record through the
store's atomic per-scenario writes as soon as it is computed.

Guarantees:

- **bit-identical for any worker count** -- no task reads another task's
  output or any shared RNG state, so sharding cannot change a single byte
  of any record;
- **resumable mid-shard** -- workers write records one at a time through
  :meth:`SweepStore.put` (atomic tmp-file + rename), so a sweep killed in
  the middle of a chunk keeps every finished scenario and a ``resume`` run
  only evaluates the missing ones;
- **degrades gracefully** -- when process pools are unavailable (sandboxed
  environments), evaluation falls back to the in-process path with
  identical results.

:func:`evaluate_task` -- one record as a pure function of one task -- is
also the evaluation core of the distributed claim-loop workers
(:mod:`repro.sweeps.distributed`): sharded pools and work-stealing
fleets (whether leasing one key or a whole key range at a time) differ
only in *who* runs each task, never in what it produces.
"""

from __future__ import annotations

import typing
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass

from repro.sim.noisy import NoisyShotSimulator
from repro.sweeps.store import SCHEMA_VERSION, SweepStore

if typing.TYPE_CHECKING:
    from collections.abc import Callable, Mapping, Sequence
    from repro.core.result import CompilationResult
    from repro.sweeps.grid import Scenario

__all__ = [
    "EvalTask",
    "evaluate_task",
    "evaluate_tasks",
    "maybe_merge_store",
    "partition_tasks",
]


@dataclass(frozen=True)
class EvalTask:
    """One fully-specified, picklable unit of evaluation work.

    Attributes:
        key: the scenario's store address (see
            :func:`repro.sweeps.store.scenario_key`).
        scenario: the scenario to sample (spec/noise/shots/seed).
        result: the compiled artifact, already carrying the scenario's
            *effective* spec (noise-only axes swapped in by the runner).
        fingerprints: the circuit/spec/config fingerprints recorded in the
            scenario section of the output record.
    """

    key: str
    scenario: "Scenario"
    result: "CompilationResult"
    fingerprints: "Mapping[str, str]"


def make_record(
    task: EvalTask, sim: NoisyShotSimulator, outcome
) -> dict:
    """Assemble the on-disk record payload for one evaluated task.

    Mirrors the store schema exactly (``schema_version``,
    ``engine_version`` and ``key`` included), so a freshly computed record
    and its store round-trip compare equal.
    """
    from repro import __version__

    scenario = task.scenario
    scenario_section = {
        "benchmark": scenario.benchmark,
        "technique": scenario.technique,
        "shots": scenario.shots,
        "seed": scenario.seed,
        "spec_name": scenario.spec.name,
        "spec_overrides": dict(scenario.spec_overrides),
        "noise": asdict(scenario.noise),
        "fingerprints": dict(task.fingerprints),
    }
    # Only present for grids with config axes: records of config-less
    # grids stay byte-identical to what older engines wrote, so resume
    # and merge across engine updates never rewrite a store.
    if scenario.config_overrides:
        scenario_section["config_overrides"] = dict(scenario.config_overrides)
    return {
        "schema_version": SCHEMA_VERSION,
        "engine_version": __version__,
        "key": task.key,
        "scenario": scenario_section,
        "result": {
            "num_cz": task.result.num_cz,
            "num_u3": task.result.num_u3,
            "num_ccz": task.result.num_ccz,
            "num_swaps": task.result.num_swaps,
            "num_moves": task.result.num_moves,
            "trap_change_events": task.result.trap_change_events,
            "num_layers": task.result.num_layers,
            "runtime_us": task.result.runtime_us,
        },
        "outcome": {
            "shots": outcome.shots,
            "successes": outcome.successes,
            "gate_failures": outcome.gate_failures,
            "movement_failures": outcome.movement_failures,
            "decoherence_failures": outcome.decoherence_failures,
            "readout_failures": outcome.readout_failures,
            "success_rate": outcome.success_rate,
            "stderr": outcome.stderr(),
        },
        "analytic_success": sim.analytic_success(),
    }


def evaluate_task(task: EvalTask) -> dict:
    """Sample one scenario; a pure function of the task content."""
    sim = NoisyShotSimulator(
        task.result, task.scenario.noise, seed=task.scenario.seed
    )
    outcome = sim.run(task.scenario.shots)
    return make_record(task, sim, outcome)


def partition_tasks(
    tasks: "Sequence[EvalTask]", chunks: int
) -> list[list[EvalTask]]:
    """Split ``tasks`` into at most ``chunks`` contiguous, balanced runs.

    Deterministic: sizes differ by at most one, earlier chunks take the
    remainder, order within and across chunks is preserved.
    """
    if chunks <= 0:
        raise ValueError(f"chunks must be positive, got {chunks}")
    chunks = min(chunks, len(tasks))
    if chunks == 0:
        return []
    base, extra = divmod(len(tasks), chunks)
    out = []
    start = 0
    for i in range(chunks):
        size = base + (1 if i < extra else 0)
        out.append(list(tasks[start : start + size]))
        start += size
    return out


def _evaluate_chunk(
    chunk: "Sequence[EvalTask]", store_dir: str | None
) -> list[dict]:
    """Worker entry: evaluate a chunk, persisting record-by-record."""
    store = SweepStore(store_dir) if store_dir else None
    records = []
    for task in chunk:
        record = evaluate_task(task)
        if store is not None:
            store.put(task.key, record)
        records.append(record)
    return records


def _seal_chunk(
    store: SweepStore | None,
    chunk: "Sequence[EvalTask]",
    emit: "Callable[[str], None]",
) -> None:
    """Driver-side sealing: pack one finished chunk's loose spills.

    Workers always spill loose records (atomic, resume-safe); with
    ``seal=True`` the driver compacts each chunk's keys into a packed
    segment the moment its future completes, so a long sweep finishes with
    its store already in bulk-load form.  Sealing failures degrade to
    leaving the records loose -- never to losing them.
    """
    if store is None:
        return
    try:
        report = store.compact(keys=[task.key for task in chunk])
    except OSError as exc:
        emit(f"sweep: could not seal chunk ({exc}); records stay loose")
        return
    if report.sealed:
        emit(
            f"sweep: sealed {report.sealed} records into {report.segment}"
        )


def maybe_merge_store(
    store: SweepStore | None,
    merge_every: int | None,
    emit: "Callable[[str], None]",
    label: str = "sweep",
) -> None:
    """Opportunistic merge once the pending delta count crosses a threshold.

    The shared helper behind ``--merge-every``: a cheap
    :meth:`SweepStore.pending_deltas` census decides whether to fold, and
    the store's exclusive merge lock elects at most one merger per fleet
    (contenders skip silently and retry at their next seal boundary).
    Failures never lose records -- deltas just stay pending.
    """
    if store is None or not merge_every:
        return
    try:
        report = store.maybe_merge(merge_every)
    except OSError as exc:
        emit(f"{label}: opportunistic merge failed ({exc}); deltas stay pending")
        return
    if report is not None:
        emit(f"{label}: {report.summary_line}")


def evaluate_tasks(
    tasks: "Sequence[EvalTask]",
    *,
    store: SweepStore | None = None,
    workers: int = 1,
    chunk_size: int | None = None,
    seal: bool = False,
    merge_every: int | None = None,
    log: "Callable[[str], None] | None" = None,
) -> list[dict]:
    """Evaluate every task, in task order, optionally sharded.

    Args:
        tasks: the pending evaluation units.
        store: optional store; every record is persisted atomically the
            moment it is computed (by the worker that computed it), so an
            interrupted run keeps its progress at scenario granularity.
        workers: evaluation process-pool size; ``1`` runs in-process.
            Records are bit-identical for any value.
        chunk_size: tasks per dispatched chunk; defaults to spreading the
            work over ~4 chunks per worker (amortizes pickling while
            keeping the pool busy near the tail).
        seal: with a store, compact each chunk's freshly spilled loose
            records into a packed segment as its future completes (the
            in-process path seals once at the end).  Record *content* is
            unaffected -- only the on-disk backend changes.
        merge_every: with a store and ``seal``, fold segments via
            :meth:`SweepStore.maybe_merge` whenever the pending delta
            count reaches this threshold (checked at each seal boundary),
            so long sweeps never accumulate unbounded manifest deltas.
        log: optional progress sink.

    Returns:
        One record dict per task, in task order.
    """
    emit = log or (lambda message: None)
    if not tasks:
        return []
    if workers > 1 and len(tasks) > 1:
        if chunk_size is None:
            chunk_size = max(1, -(-len(tasks) // (workers * 4)))
        chunks = partition_tasks(tasks, -(-len(tasks) // chunk_size))
        store_dir = str(store.directory) if store is not None else None
        # Only pool *unavailability* degrades to the in-process path:
        # OSError at executor creation (no /dev/shm, fork refused) or a
        # BrokenProcessPool while running (sandbox killed the children).
        # Exceptions raised *by* a task -- a failing store.put, say --
        # propagate untouched; silently re-running everything in-process
        # would mask the real failure and double the compute.
        pool = None
        try:
            pool = ProcessPoolExecutor(max_workers=min(workers, len(chunks)))
        except OSError:
            emit("sweep: process pool unavailable; evaluating in-process")
        if pool is not None:
            try:
                with pool:
                    futures = {
                        pool.submit(_evaluate_chunk, chunk, store_dir): i
                        for i, chunk in enumerate(chunks)
                    }
                    by_chunk: dict[int, list[dict]] = {}
                    pending = set(futures)
                    done_count = 0
                    while pending:
                        done, pending = wait(pending, return_when=FIRST_COMPLETED)
                        for future in done:
                            index = futures[future]
                            by_chunk[index] = future.result()
                            done_count += 1
                            if seal:
                                _seal_chunk(store, chunks[index], emit)
                                maybe_merge_store(store, merge_every, emit)
                        emit(
                            f"sweep: evaluated {done_count}/{len(chunks)} "
                            f"shards (workers={workers})"
                        )
                return [
                    record
                    for i in range(len(chunks))
                    for record in by_chunk[i]
                ]
            except BrokenProcessPool:
                emit("sweep: process pool broke; evaluating in-process")
    records = []
    for count, task in enumerate(tasks, start=1):
        record = evaluate_task(task)
        if store is not None:
            store.put(task.key, record)
        records.append(record)
        if count % 50 == 0:
            emit(f"sweep: evaluated {count}/{len(tasks)} scenarios")
    if seal:
        _seal_chunk(store, tasks, emit)
        maybe_merge_store(store, merge_every, emit)
    return records
