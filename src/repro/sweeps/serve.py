"""Long-lived HTTP query daemon over a sweep store.

``python -m repro.sweeps serve STORE [--port N]`` starts a stdlib-only
(:class:`http.server.ThreadingHTTPServer`) daemon that answers read
queries off the store's zero-copy substrate: bulk loads go through
:meth:`SweepStore.analysis_columns` (mmap'd binary sidecars served as
NumPy views), and hot :class:`~repro.sweeps.analysis.ResultTable`
aggregations are cached keyed by the store's *generation token* -- a
cheap stat-level fingerprint of the manifest root, the manifest shard/
delta files, and the loose-record census.  The token doubles as the HTTP
``ETag``, so clients revalidate with ``If-None-Match`` and get 304s for
free across unchanged generations, while a concurrent ``merge`` /
``compact`` / sweep writing underneath the live daemon flips the token
at its atomic manifest swap (or loose write) and every cache entry is
dropped: the daemon keeps serving *correct* bytes while a fleet writes
under it, it just pays one cold load per new generation.

Endpoints (all ``GET``, all JSON unless noted):

- ``/`` -- endpoint index;
- ``/stats`` -- the :meth:`SweepStore.stats` census plus the current etag;
- ``/columns`` -- column names, row count, detected axes;
- ``/records/<key>`` -- one raw record by scenario key (404 when absent);
- ``/marginal?value=&over=&group_by=&agg=`` -- a
  :func:`~repro.sweeps.analysis.marginal_payload`;
- ``/pivot?index=&column=&value=&agg=`` -- a
  :func:`~repro.sweeps.analysis.pivot_payload`;
- ``/crossovers?axis=&value=&by=&group_by=`` -- a
  :func:`~repro.sweeps.analysis.crossover_payload`;
- ``/csv`` -- the full flat table as ``text/csv``, streamed in chunked
  transfer encoding via :meth:`ResultTable.iter_csv`, byte-identical to
  ``python -m repro.sweeps analyze STORE --csv``.

Error contract: unknown endpoints and unknown record keys are 404,
invalid query parameters (unknown column, bad aggregate, non-numeric
crossover axis) are 400, and a store that cannot be loaded at all (the
directory vanished, the bulk read raised) is 503 -- each as a JSON
``{"error": ...}`` body, with a warning on the ``repro.sweeps.serve``
logger for the 5xx paths.  Success responses carry ``ETag`` and
``Cache-Control: no-cache`` (revalidate every time; revalidation is one
stat-level token check).

The daemon prints one stable machine-readable readiness line --
``SERVE ready port=... store=... generation=... records=... etag=...``
(fields append-only) -- once the socket is bound; scripts and CI wait on
it exactly like the ``RESUME``/``MERGE`` lines (see
``docs/store-format.md``).
"""

from __future__ import annotations

import hashlib
import json
import logging
import threading
import typing
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, unquote, urlsplit

from repro.sweeps import segments as seg
from repro.sweeps.analysis import (
    AGGREGATIONS,
    METRIC_COLUMNS,
    ResultTable,
    crossover_payload,
    marginal_payload,
    pivot_payload,
)
from repro.sweeps.store import SweepStore

if typing.TYPE_CHECKING:
    from collections.abc import Callable

__all__ = [
    "DEFAULT_CSV_CHUNK_ROWS",
    "SweepServer",
    "serve_store",
    "store_token",
]

#: Rows per streamed ``/csv`` chunk (one HTTP chunk per generator chunk).
DEFAULT_CSV_CHUNK_ROWS = 2048

#: Cached rendered payloads per store generation (LRU; /csv is never
#: body-cached -- it streams from the cached table instead).
DEFAULT_CACHE_PAYLOADS = 64

logger = logging.getLogger(__name__)


def store_token(directory: Path) -> str:
    """Cheap content token for the store's current read state.

    Hashes stat-level identity (name, mtime_ns, size) of the manifest
    root and every file under ``manifest/`` (shards and the append-only
    delta log), plus the sorted loose-record filenames.  Every way the
    store's readable contents can change moves at least one input:

    - ``merge`` / a full-checkpoint ``compact`` atomically swap
      ``MANIFEST.json`` (fresh inode: new mtime_ns) and rewrite shards;
    - an O(delta) ``compact`` grows the delta log;
    - a sweep writing records adds loose files (whose names are content
      addresses: a loose set's *names* pin its bytes).

    Pure stat calls over O(loose + 17) paths -- cheap enough to run per
    request, which is what makes ``If-None-Match`` revalidation nearly
    free.  The token is not a byte-level checksum: an in-place rewrite
    of a loose file with identical length and a colder mtime would be
    missed, but loose records are content-addressed and written
    atomically, so that cannot happen through any store API.
    """
    digest = hashlib.sha256()
    root = directory / seg.MANIFEST_NAME
    try:
        info = root.stat()
        digest.update(f"root:{info.st_mtime_ns}:{info.st_size}\n".encode())
    except OSError:
        digest.update(b"root:none\n")
    manifest_dir = directory / seg.MANIFEST_DIR_NAME
    try:
        manifest_files = sorted(manifest_dir.iterdir())
    except OSError:
        manifest_files = []
    for path in manifest_files:
        try:
            info = path.stat()
        except OSError:
            continue
        digest.update(
            f"m:{path.name}:{info.st_mtime_ns}:{info.st_size}\n".encode()
        )
    loose = sorted(
        path.name
        for path in directory.glob("*.json")
        if path.name != seg.MANIFEST_NAME
    )
    for name in loose:
        digest.update(f"l:{name}\n".encode())
    return digest.hexdigest()[:32]


class _StoreView:
    """One consistent, cache-carrying snapshot of the store.

    A view is pinned to the generation token observed when it was
    created: the lazily built :class:`ResultTable`, the stats census,
    and every rendered payload it holds were all computed from that
    state.  The server swaps the whole view atomically when the token
    moves, so a request never sees a table from one generation with a
    cached aggregate from another.
    """

    def __init__(
        self, directory: Path, token: str, cache_payloads: int
    ) -> None:
        self.token = token
        self.etag = f'"{token}"'
        self.directory = directory
        # A fresh SweepStore per view: its lazy manifest cache must not
        # outlive the generation the view is pinned to.
        self.store = SweepStore(directory)
        self._cache_payloads = cache_payloads
        self._lock = threading.RLock()
        self._table: ResultTable | None = None
        self._stats = None
        self._payloads: "OrderedDict[tuple, bytes]" = OrderedDict()

    def table(self) -> ResultTable:
        with self._lock:
            if self._table is None:
                self._table = ResultTable.from_store(self.store)
            return self._table

    def stats(self):
        with self._lock:
            if self._stats is None:
                self._stats = self.store.stats()
            return self._stats

    def payload(self, key: tuple, build: "Callable[[], dict]") -> bytes:
        """Rendered JSON body for ``key``, computed once per view."""
        with self._lock:
            cached = self._payloads.get(key)
            if cached is not None:
                self._payloads.move_to_end(key)
                return cached
            body = json.dumps(build(), sort_keys=True).encode("utf-8")
            self._payloads[key] = body
            while len(self._payloads) > self._cache_payloads:
                self._payloads.popitem(last=False)
            return body


class _ServeHandler(BaseHTTPRequestHandler):
    """Routes one request against the server's current store view."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-sweeps-serve/1.0"

    # -- plumbing --------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        logger.debug("%s %s", self.address_string(), format % args)

    def _client_etags(self) -> tuple[str, ...]:
        header = self.headers.get("If-None-Match", "")
        return tuple(tag.strip() for tag in header.split(",") if tag.strip())

    def _send_body(
        self,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        etag: str | None = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        if etag is not None:
            self.send_header("ETag", etag)
            self.send_header("Cache-Control", "no-cache")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_not_modified(self, etag: str) -> None:
        self.send_response(304)
        self.send_header("ETag", etag)
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_body(
            status, json.dumps({"error": message}).encode("utf-8")
        )

    def _reply(self, body: bytes, etag: str, content_type: str) -> None:
        """200 with ``body``, or 304 when the client already holds it."""
        tags = self._client_etags()
        if etag in tags or "*" in tags:
            self._send_not_modified(etag)
            return
        self._send_body(200, body, content_type=content_type, etag=etag)

    # -- request handling ------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server naming contract)
        try:
            self._route()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to answer
        except Exception as exc:  # pragma: no cover - last-resort guard
            logger.warning("serve: request %s failed: %s", self.path, exc)
            try:
                self._send_error_json(500, str(exc))
            except OSError:
                pass

    def _route(self) -> None:
        split = urlsplit(self.path)
        path = split.path
        if len(path) > 1:
            path = path.rstrip("/") or "/"
        query = parse_qs(split.query)
        server: SweepServer = self.server  # type: ignore[assignment]

        try:
            view = server.current_view()
        except OSError as exc:
            logger.warning(
                "serve: store %s is unreadable: %s",
                server.store_directory, exc,
            )
            self._send_error_json(503, f"store unavailable: {exc}")
            return

        if path == "/":
            self._reply(
                view.payload(("index",), _index_payload),
                view.etag, "application/json",
            )
            return
        if path == "/stats":
            self._get_stats(view)
            return
        if path == "/columns":
            self._get_table_payload(view, ("columns",), _columns_payload)
            return
        if path.startswith("/records/"):
            self._get_record(view, unquote(path[len("/records/") :]))
            return
        if path == "/marginal":
            self._get_aggregation(view, "marginal", query)
            return
        if path == "/pivot":
            self._get_aggregation(view, "pivot", query)
            return
        if path == "/crossovers":
            self._get_aggregation(view, "crossovers", query)
            return
        if path == "/csv":
            self._get_csv(view)
            return
        self._send_error_json(404, f"unknown endpoint {path!r}")

    # -- endpoints -------------------------------------------------------------

    def _get_stats(self, view: _StoreView) -> None:
        def build() -> dict:
            stats = view.stats()
            return {
                "store": str(view.directory),
                "etag": view.token,
                **stats.as_dict(),
            }

        self._reply(
            view.payload(("stats",), build), view.etag, "application/json"
        )

    def _get_table_payload(
        self, view: _StoreView, key: tuple, build: "Callable[[ResultTable], dict]"
    ) -> None:
        try:
            body = view.payload(key, lambda: build(view.table()))
        except OSError as exc:
            logger.warning(
                "serve: bulk load of %s failed: %s", view.directory, exc
            )
            self._send_error_json(503, f"store unavailable: {exc}")
            return
        self._reply(body, view.etag, "application/json")

    def _get_record(self, view: _StoreView, key: str) -> None:
        if not key or not all(c in "0123456789abcdef" for c in key):
            self._send_error_json(
                400, "record keys are lowercase hex scenario addresses"
            )
            return
        record = view.store.get(key)
        if record is None:
            self._send_error_json(404, f"no record for key {key!r}")
            return
        body = json.dumps(record, sort_keys=True).encode("utf-8")
        self._reply(body, view.etag, "application/json")

    def _get_aggregation(self, view: _StoreView, kind: str, query: dict) -> None:
        try:
            params = _aggregation_params(kind, query)
        except ValueError as exc:
            self._send_error_json(400, str(exc))
            return
        key = (kind, tuple(sorted(params.items())))

        def build() -> dict:
            table = view.table()
            if kind == "marginal":
                return marginal_payload(table, **params)
            if kind == "pivot":
                return pivot_payload(table, **params)
            axis = params["axis"]
            if axis not in table.numeric_axes():
                raise ValueError(
                    f"{axis!r} is not a numeric sweep axis of this store "
                    f"(numeric axes: {', '.join(table.numeric_axes()) or 'none'})"
                )
            return crossover_payload(table, **params)

        try:
            body = view.payload(key, build)
        except (KeyError, ValueError) as exc:
            # Unknown column / aggregate / axis: the entry points raise,
            # the daemon answers 400 with the same message.
            message = exc.args[0] if exc.args else str(exc)
            self._send_error_json(400, str(message))
            return
        except OSError as exc:
            logger.warning(
                "serve: bulk load of %s failed: %s", view.directory, exc
            )
            self._send_error_json(503, f"store unavailable: {exc}")
            return
        self._reply(body, view.etag, "application/json")

    def _get_csv(self, view: _StoreView) -> None:
        tags = self._client_etags()
        if view.etag in tags or "*" in tags:
            self._send_not_modified(view.etag)
            return
        try:
            table = view.table()
        except OSError as exc:
            logger.warning(
                "serve: bulk load of %s failed: %s", view.directory, exc
            )
            self._send_error_json(503, f"store unavailable: {exc}")
            return
        server: SweepServer = self.server  # type: ignore[assignment]
        self.send_response(200)
        self.send_header("Content-Type", "text/csv; charset=utf-8")
        self.send_header("ETag", view.etag)
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        # Chunked transfer encoding by hand: http.server does not frame
        # bodies itself, and /csv must stream -- a 10^6-row extract never
        # materializes as one string on the daemon side.
        for chunk in table.iter_csv(chunk_rows=server.csv_chunk_rows):
            data = chunk.encode("utf-8")
            self.wfile.write(f"{len(data):x}\r\n".encode("ascii"))
            self.wfile.write(data)
            self.wfile.write(b"\r\n")
        self.wfile.write(b"0\r\n\r\n")


def _index_payload() -> dict:
    return {
        "endpoints": {
            "/stats": "store census (loose/sealed/segments/generation/...)",
            "/columns": "column names, row count, detected axes",
            "/records/<key>": "one raw record by scenario key",
            "/marginal": "params: value, over, group_by, agg",
            "/pivot": "params: index, column, value, agg",
            "/crossovers": "params: axis, value, by, group_by",
            "/csv": "full flat table as chunk-streamed text/csv",
        },
        "aggregations": list(AGGREGATIONS),
    }


def _columns_payload(table: ResultTable) -> dict:
    return {
        "names": list(table.names),
        "rows": len(table),
        "axes": list(table.axes()),
        "numeric_axes": list(table.numeric_axes()),
        "metrics": [m for m in METRIC_COLUMNS if m in table.names],
    }


def _single(query: dict, name: str, default: str | None = None) -> str | None:
    """One scalar query parameter (repeats are a client error)."""
    values = query.get(name)
    if not values:
        return default
    if len(values) > 1:
        raise ValueError(f"parameter {name!r} given {len(values)} times")
    return values[0]


def _aggregation_params(kind: str, query: dict) -> dict:
    """Parse and validate one aggregation endpoint's query parameters.

    Raises ``ValueError`` (HTTP 400) on unknown parameters, repeated
    parameters, or a bad aggregate name; column existence is validated
    downstream by the payload entry points against the live table.
    """
    allowed = {
        "marginal": ("value", "over", "group_by", "agg"),
        "pivot": ("index", "column", "value", "agg"),
        "crossovers": ("axis", "value", "by", "group_by"),
    }[kind]
    unknown = sorted(set(query) - set(allowed))
    if unknown:
        raise ValueError(
            f"unknown parameter(s) {', '.join(unknown)} for /{kind} "
            f"(accepted: {', '.join(allowed)})"
        )
    params: dict = {}
    for name in allowed:
        value = _single(query, name)
        if value is not None:
            params[name] = value
    if "group_by" in params:
        params["group_by"] = tuple(
            part.strip() for part in params["group_by"].split(",") if part.strip()
        )
    agg = params.get("agg")
    if agg is not None and agg not in AGGREGATIONS:
        raise ValueError(
            f"unknown agg {agg!r}; one of {', '.join(AGGREGATIONS)}"
        )
    if kind == "pivot":
        missing = [n for n in ("index", "column", "value") if n not in params]
        if missing:
            raise ValueError(
                f"/pivot requires parameter(s): {', '.join(missing)}"
            )
    if kind == "crossovers" and "axis" not in params:
        raise ValueError("/crossovers requires parameter: axis")
    return params


class SweepServer(ThreadingHTTPServer):
    """The query daemon: a threading HTTP server over one store directory.

    One live :class:`_StoreView` at a time, swapped atomically whenever
    :func:`store_token` observes a new generation; requests in flight
    keep the view they started with (a reference), so a merge landing
    mid-response never mixes generations within one body.
    """

    daemon_threads = True

    def __init__(
        self,
        directory: str | Path,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_payloads: int = DEFAULT_CACHE_PAYLOADS,
        csv_chunk_rows: int = DEFAULT_CSV_CHUNK_ROWS,
    ) -> None:
        self.store_directory = Path(directory)
        if not self.store_directory.is_dir():
            raise OSError(
                f"sweep store directory {self.store_directory} does not exist"
            )
        if cache_payloads <= 0:
            raise ValueError(
                f"cache_payloads must be positive, got {cache_payloads}"
            )
        if csv_chunk_rows <= 0:
            raise ValueError(
                f"csv_chunk_rows must be positive, got {csv_chunk_rows}"
            )
        self.cache_payloads = cache_payloads
        self.csv_chunk_rows = csv_chunk_rows
        self._view_lock = threading.Lock()
        self._view: _StoreView | None = None
        super().__init__((host, port), _ServeHandler)

    @property
    def port(self) -> int:
        return self.server_address[1]

    def current_view(self) -> _StoreView:
        """The view for the store's current generation token.

        Raises ``OSError`` (HTTP 503) when the store directory is gone --
        constructing a :class:`SweepStore` would silently *recreate* it
        and serve an empty table, which would turn an operational error
        into quietly wrong data.
        """
        if not self.store_directory.is_dir():
            raise OSError(
                f"store directory {self.store_directory} disappeared"
            )
        token = store_token(self.store_directory)
        with self._view_lock:
            view = self._view
            if view is None or view.token != token:
                view = _StoreView(
                    self.store_directory, token, self.cache_payloads
                )
                self._view = view
            return view

    def etag(self) -> str:
        """The current generation ETag (quoted, as sent on the wire)."""
        return self.current_view().etag

    @property
    def ready_line(self) -> str:
        """Stable machine-readable readiness line (``SERVE ready ...``);
        fields are append-only, like every other summary-line contract."""
        view = self.current_view()
        stats = view.stats()
        return (
            f"SERVE ready port={self.port} store={self.store_directory} "
            f"generation={stats.generation} "
            f"records={stats.loose + stats.sealed} etag={view.etag}"
        )


def serve_store(
    directory: str | Path,
    host: str = "127.0.0.1",
    port: int = 0,
    cache_payloads: int = DEFAULT_CACHE_PAYLOADS,
    csv_chunk_rows: int = DEFAULT_CSV_CHUNK_ROWS,
    log: "Callable[[str], None] | None" = print,
) -> int:
    """Run the daemon until interrupted (the ``serve`` CLI body).

    Binds, prints the ``SERVE ready`` line (flushed, so ``grep`` on a
    redirected log sees it immediately), and blocks in
    ``serve_forever``.  Returns 0 on a clean ``KeyboardInterrupt``.
    """
    server = SweepServer(
        directory, host=host, port=port,
        cache_payloads=cache_payloads, csv_chunk_rows=csv_chunk_rows,
    )
    try:
        if log is not None:
            log(server.ready_line)
            log(
                f"serving {server.store_directory} on "
                f"http://{host}:{server.port}/ (Ctrl-C to stop)"
            )
        import sys

        sys.stdout.flush()
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0
