"""Coordinator-free distributed sweep workers over a shared store.

A sweep store already has everything a fleet of independent hosts needs to
share work safely: content-addressed record keys (the same scenario always
maps to the same file name), atomic per-record writes, and records that are
pure functions of their scenario content.  This module adds the one missing
piece -- a **work-stealing claim loop** -- so N worker processes, on one
host or on many hosts mounting one filesystem, converge on exactly the
store a single-process :func:`~repro.sweeps.runner.run_sweep` would have
produced, byte for byte, with no leader and no shared state beyond the
store directory.

How it works
------------

Every worker independently expands the grid into the same deterministic
:class:`~repro.sweeps.runner.SweepPlan` (same scenarios, same keys, same
seeds), partitions the plan's key-sorted order into the same contiguous
**range blocks** of ``lease_range`` keys (one block per lease; blocks are
named ``range-<checksum of their keys>``, so every worker derives
identical names), then loops:

1. scan the blocks for ones still holding unstored keys, starting at an
   owner-derived offset so workers spread over the key space instead of
   stampeding the same prefix;
2. claim one block by atomically creating ``leases/<block>.lease``
   (:meth:`SweepStore.acquire_lease` -- ``O_CREAT | O_EXCL``, so exactly
   one of any number of racing workers wins); a lease whose heartbeat
   (file mtime) is older than the TTL is presumed to belong to a crashed
   worker and is reclaimed.  With ``lease_range=1`` (the default) a block
   is a single key and the lease is named by the key itself -- the
   original per-key protocol;
3. work through the block's missing keys: compile each scenario's compile
   point if this worker has not already (memoized per worker; with
   ``REPRO_CACHE_DIR`` set, all workers share one on-disk compilation
   cache), evaluate it through the same
   :func:`~repro.sweeps.engine.evaluate_task` the sharded engine uses,
   and persist the record with the store's atomic write.  The lease is
   heartbeat after every compile and on a TTL/3 cadence between
   evaluations -- hundreds of evaluations amortize one lease file's
   create/heartbeat/unlink instead of paying it per key, which is what
   keeps a networked filesystem alive at 10^5+ scenarios;
4. release the block and move on; when only live-leased blocks remain,
   wait briefly and re-scan (their owners will either finish them or
   crash and expire).

Crash safety falls out of purity: leases are *only* an efficiency device.
If a lease expires while its owner is merely slow (not dead), two workers
may evaluate the same scenario -- both compute byte-identical records and
the atomic write makes the duplication invisible.  A worker SIGKILLed
mid-block leaves a lease that expires after ``ttl_s`` and a store missing
that block's unfinished records (everything it already wrote is durable);
any surviving or replacement worker reclaims the block, skips the stored
keys, and the final store is indistinguishable from an uninterrupted run
-- for any ``lease_range``, worker count, or crash interleaving.

Entry points: :func:`run_worker` (one claim loop; the
``python -m repro.sweeps worker STORE`` CLI is a thin shell over it),
:func:`run_distributed` (spawn-and-join N local workers; what
``run_sweep(distributed=True, workers=N)`` delegates to).
"""

from __future__ import annotations

import time
import typing
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.core.serialize import short_checksum
from repro.experiments.common import ExperimentSettings, compile_points
from repro.sweeps.engine import evaluate_task, maybe_merge_store
from repro.sweeps.grid import SweepGrid
from repro.sweeps.runner import SweepReport, plan_sweep
from repro.sweeps.store import DEFAULT_LEASE_TTL_S, SweepStore, default_owner_id
from repro.utils.profiling import PhaseTimer

if typing.TYPE_CHECKING:
    from collections.abc import Callable
    from repro.core.result import CompilationResult

__all__ = ["WorkerReport", "range_blocks", "run_distributed", "run_worker"]

#: Keys sealed per --seal compaction batch inside a worker (amortizes the
#: manifest swap without letting a crash strand many unsealed records).
_SEAL_BATCH = 16

#: Seconds a worker sleeps after a full scan that made no progress (every
#: remaining key was live-leased by someone else) before re-scanning.
_IDLE_POLL_S = 0.1


@dataclass(frozen=True)
class WorkerReport:
    """Outcome of one worker's claim loop over a (possibly shared) store.

    ``computed + resumed == scenarios`` always holds on a clean exit: when
    the loop ends, every key of the plan is present in the store --
    ``computed`` of them written by this worker, the rest (``resumed``) by
    other workers or previous runs.  Summing ``computed`` over all workers
    of a fleet gives the number of scenarios evaluated, which equals the
    number that were missing except in two benign races: a lease that
    expires while its holder is slow-but-alive lets a second worker
    re-evaluate that scenario, and in ``seal=True`` fleets a peer's
    compaction can land mid-scan-round, hiding a just-sealed record from
    a worker that has not yet reloaded the manifest.  Both workers count
    the duplicate; the records are byte-identical, so the store is
    unaffected -- size the TTL above the slowest compile (and avoid
    ``seal`` when exact fleet totals matter) to avoid the wasted work.

    Attributes:
        owner: this worker's lease-owner id.
        scenarios: size of the plan the worker ran against.
        computed: records this worker evaluated and persisted.
        resumed: records present in the store but not computed here.
        reclaimed: expired leases (crashed or stalled workers) taken over.
        contended: claim attempts lost to another worker's live lease.
        compilations: unique compile points this worker compiled.
        elapsed_s: wall-clock duration of the claim loop.
        phase_totals: per-stage compile wall-clock seconds for this
            worker's own compilations (``"<technique>.<stage>"`` keys).
        ranges: range-block leases this worker acquired (equals the
            number of claims with ``lease_range=1``).
    """

    owner: str
    scenarios: int
    computed: int
    resumed: int
    reclaimed: int
    contended: int
    compilations: int
    elapsed_s: float
    phase_totals: dict = field(default_factory=dict)
    ranges: int = 0

    @property
    def summary_line(self) -> str:
        """Stable machine-readable one-liner, grep-compatible with
        :attr:`~repro.sweeps.runner.SweepReport.summary_line`.

        The ``RESUME computed=N resumed=M`` prefix is the same contract CI
        greps on single-process runs; worker-specific fields are appended
        after the shared five, never inserted.
        """
        return (
            f"RESUME computed={self.computed} resumed={self.resumed} "
            f"scenarios={self.scenarios} compilations={self.compilations} "
            f"compile_s={sum(self.phase_totals.values()):.3f} "
            f"owner={self.owner} reclaimed={self.reclaimed} "
            f"contended={self.contended} ranges={self.ranges}"
        )


def _rotated(items: list, owner: str) -> list:
    """Rotate the scan order by a stable owner-derived offset.

    Workers that all scan from position 0 would race every claim at the
    head of the list; starting each worker at a different point spreads
    the fleet over the key space.  Purely a contention optimization --
    claim order never affects record content.
    """
    if not items:
        return items
    offset = sum(owner.encode("utf-8")) % len(items)
    return items[offset:] + items[:offset]


def range_blocks(keys: "tuple[str, ...]", lease_range: int) -> "list[tuple[str, list[int]]]":
    """Partition a plan's keys into the lease blocks every worker shares.

    Blocks are contiguous runs of ``lease_range`` keys in *key-sorted*
    order, each named ``range-<checksum of its keys>``: pure functions of
    the plan, so every worker of a fleet -- including a replacement
    started after a crash -- computes identical blocks and identical
    lease-file names, with no coordination.  With ``lease_range=1`` the
    block name is the key itself, making the classic per-key protocol a
    special case of the range protocol (same lease files, same
    reclaim/TTL semantics, byte-identical stores).

    Returns ``[(lease_name, [plan indices]), ...]`` in key-sorted order.
    """
    if lease_range <= 0:
        raise ValueError(f"lease_range must be positive, got {lease_range}")
    order = sorted(range(len(keys)), key=keys.__getitem__)
    if lease_range == 1:
        return [(keys[i], [i]) for i in order]
    blocks = []
    for start in range(0, len(order), lease_range):
        indices = order[start : start + lease_range]
        name = "range-" + short_checksum("\n".join(keys[i] for i in indices))
        blocks.append((name, indices))
    return blocks


def run_worker(
    grid: SweepGrid,
    store: SweepStore,
    *,
    owner: str | None = None,
    ttl_s: float = DEFAULT_LEASE_TTL_S,
    seal: bool = False,
    merge_every: int | None = None,
    limit: int | None = None,
    lease_range: int = 1,
    settings: ExperimentSettings | None = None,
    log: "Callable[[str], None] | None" = None,
) -> WorkerReport:
    """Run one work-stealing claim loop until the grid is fully stored.

    Safe to run any number of times, concurrently with any number of other
    workers (same host or other hosts on a shared filesystem), against a
    store in any state: the loop only ever *adds* missing records, each
    byte-identical to what a single-process run would write.  Returns when
    every scenario of the plan is present in the store.

    Args:
        grid: the scenario grid to work on; all workers of a fleet must be
            given the same grid (it determines the shared key set).
        store: the shared store; leases live in its ``leases/`` directory.
        owner: lease-owner id; defaults to a collision-free
            host/pid/random id.  Must be unique per worker.
        ttl_s: lease heartbeat TTL; leases older than this are presumed
            abandoned and reclaimed.  Must comfortably exceed the longest
            single compile + evaluation (the worker heartbeats after each
            compile and at least every TTL/3 while working a block).
        seal: compact this worker's freshly written records into packed
            segments in batches (and once more on exit); content is
            unchanged, only the on-disk backend.
        merge_every: with ``seal``, check the store's pending delta count
            after each seal batch and fold segments once it crosses this
            threshold (``--merge-every``).  The exclusive merge lock
            elects at most one merging worker fleet-wide; contenders skip
            and retry at their next batch.  Safe under any crash
            interleaving -- merge is kill-safe at every write boundary.
        limit: work only the first ``limit`` scenarios of the grid.
        lease_range: keys per lease block (:func:`range_blocks`).  1 (the
            default) is the classic one-lease-per-key protocol; larger
            values amortize one lease file over up to that many
            evaluations, cutting lease-directory metadata traffic by the
            same factor.  Every worker of a fleet must use the same value
            (it determines the shared block names).
        settings: experiment settings (must match across the fleet).
        log: optional progress sink (e.g. ``print``).
    """
    start = time.perf_counter()
    owner = owner or default_owner_id()
    emit = log or (lambda message: None)
    plan = plan_sweep(grid, settings=settings, limit=limit)
    emit(
        f"worker {owner}: {len(plan)} scenarios over {store.directory} "
        f"(ttl={ttl_s:g}s, lease_range={lease_range})"
    )

    compiled: dict[tuple, "CompilationResult"] = {}
    phase_timer = PhaseTimer()
    computed = reclaimed = contended = ranges = 0
    unsealed: list[str] = []

    def flush_seal() -> None:
        nonlocal unsealed
        if not unsealed:
            return
        try:
            report = store.compact(keys=unsealed)
        except OSError as exc:
            emit(f"worker {owner}: could not seal ({exc}); records stay loose")
        else:
            if report.sealed:
                emit(
                    f"worker {owner}: sealed {report.sealed} records "
                    f"into {report.segment}"
                )
            maybe_merge_store(store, merge_every, emit, label=f"worker {owner}")
        unsealed = []

    def evaluate(index: int, lease_name: str, last_beat: float) -> float:
        """Compile (memoized), evaluate, and persist one plan index;
        returns the updated heartbeat timestamp."""
        nonlocal computed
        compile_id = plan.compile_ids[index]
        if compile_id not in compiled:
            benchmark, technique = plan.point_specs[compile_id][:2]
            emit(f"worker {owner}: compiling {benchmark}/{technique}")
            result, stage_times = compile_points(
                [plan.point_specs[compile_id]],
                settings=plan.settings,
                return_timings=True,
            )[0]
            compiled[compile_id] = result
            if stage_times:
                phase_timer.merge(stage_times)
            # Compilation can dwarf evaluation; re-arm the TTL so a
            # slow compile is not mistaken for a crash.
            store.refresh_lease(lease_name, owner)
            last_beat = time.monotonic()
        key = plan.keys[index]
        record = evaluate_task(plan.task(index, compiled[compile_id]))
        store.put(key, record)
        computed += 1
        if seal:
            unsealed.append(key)
            if len(unsealed) >= _SEAL_BATCH:
                flush_seal()
        if time.monotonic() - last_beat > ttl_s / 3.0:
            # Range blocks hold one lease across many evaluations; a
            # periodic heartbeat (instead of one per key) is what keeps
            # lease metadata traffic O(blocks), not O(keys).
            store.refresh_lease(lease_name, owner)
            last_beat = time.monotonic()
        return last_beat

    # Initial scan is a full *read* pass (like run_sweep's resume), not a
    # cheap existence pass: a corrupt or foreign-generation record reads as
    # missing here, so the worker reclaims and rewrites it -- distributed
    # runs self-heal damaged stores exactly like --resume does.
    store.manifest(reload=True)
    blocks = range_blocks(plan.keys, lease_range)
    pending = _rotated(
        [
            (name, indices)
            for name, indices in blocks
            if any(store.get(plan.keys[i]) is None for i in indices)
        ],
        owner,
    )
    while pending:
        progress = False
        next_round: list[tuple[str, list[int]]] = []
        for name, indices in pending:
            # Full read, not bare membership: a corrupt loose file *exists*
            # but must still be recomputed (self-healing, like --resume).
            missing = [i for i in indices if store.get(plan.keys[i]) is None]
            if not missing:
                continue
            claim = store.acquire_lease(name, owner, ttl_s=ttl_s)
            if claim is None:
                contended += 1
                next_round.append((name, indices))
                continue
            if claim == "reclaimed":
                reclaimed += 1
                emit(f"worker {owner}: reclaimed expired lease on {name[:18]}...")
            ranges += 1
            last_beat = time.monotonic()
            try:
                for index in missing:
                    if store.get(plan.keys[index]) is not None:
                        # Finished by another worker between our read and
                        # winning the (expired) lease.
                        continue
                    last_beat = evaluate(index, name, last_beat)
                    progress = True
            finally:
                store.release_lease(name, owner)
        pending = next_round
        if pending:
            # Peers compacting (--seal) delete sealed loose files, leaving
            # their records visible only through a newer manifest; reload
            # once per round so this worker's reads do not mistake a
            # peer-sealed record for missing work and re-evaluate it.
            # (A seal landing *mid-round* can still slip through -- the
            # duplicate evaluation is byte-identical and deduped by the
            # next compaction, so only wasted effort is at stake.)
            store.manifest(reload=True)
        if pending and not progress:
            # Everything left is live-leased by other workers: wait for
            # them to finish (their records appear) or crash (their leases
            # expire and become reclaimable).
            time.sleep(_IDLE_POLL_S)

    if seal:
        flush_seal()
    store.prune_lease_dir()
    resumed = len(plan) - computed
    elapsed = time.perf_counter() - start
    emit(
        f"worker {owner}: done -- {computed} computed, {resumed} resumed, "
        f"{reclaimed} reclaimed, {len(compiled)} compilations in {elapsed:.1f}s"
    )
    return WorkerReport(
        owner=owner,
        scenarios=len(plan),
        computed=computed,
        resumed=resumed,
        reclaimed=reclaimed,
        contended=contended,
        compilations=len(compiled),
        elapsed_s=elapsed,
        phase_totals=phase_timer.totals(),
        ranges=ranges,
    )


def _worker_entry(
    grid: SweepGrid,
    store_dir: str,
    ttl_s: float,
    seal: bool,
    merge_every: int | None,
    limit: int | None,
    lease_range: int,
    settings: ExperimentSettings | None,
) -> WorkerReport:
    """Picklable spawn target: one claim loop in a child process."""
    return run_worker(
        grid,
        SweepStore(store_dir),
        ttl_s=ttl_s,
        seal=seal,
        merge_every=merge_every,
        limit=limit,
        lease_range=lease_range,
        settings=settings,
    )


def run_distributed(
    grid: SweepGrid,
    store: SweepStore,
    *,
    workers: int = 2,
    ttl_s: float = DEFAULT_LEASE_TTL_S,
    seal: bool = False,
    merge_every: int | None = None,
    limit: int | None = None,
    lease_range: int = 1,
    settings: ExperimentSettings | None = None,
    log: "Callable[[str], None] | None" = None,
) -> SweepReport:
    """Spawn-and-join ``workers`` local claim-loop workers over ``store``.

    The local convenience form of the multi-host deployment (where each
    host runs ``python -m repro.sweeps worker`` itself): N child processes
    steal work from the shared store until the grid is complete, then the
    parent assembles the records in grid order.  The returned
    :class:`~repro.sweeps.runner.SweepReport` is record-for-record
    identical to a single-process :func:`~repro.sweeps.runner.run_sweep`
    over the same grid -- distributed runs inherently resume, so
    pre-existing records count as ``resumed``.

    Degrades to one in-process worker when process pools are unavailable
    (sandboxed environments), with identical results.
    """
    start = time.perf_counter()
    emit = log or (lambda message: None)
    if workers <= 0:
        raise ValueError(f"workers must be positive, got {workers}")
    plan = plan_sweep(grid, settings=settings, limit=limit)
    if log is not None:
        missing = sum(1 for _ in store.missing_keys(plan.keys))
        emit(
            f"sweep: {missing} of {len(plan)} scenarios missing "
            f"from {store.directory}"
        )

    reports: list[WorkerReport] = []
    pool = None
    if workers > 1:
        emit(
            f"sweep: spawning {workers} distributed workers "
            f"over {store.directory}"
        )
        try:
            pool = ProcessPoolExecutor(max_workers=workers)
        except OSError:
            emit("sweep: process pool unavailable; running one worker in-process")
    if pool is not None:
        try:
            with pool:
                futures = [
                    pool.submit(
                        _worker_entry,
                        grid,
                        str(store.directory),
                        ttl_s,
                        seal,
                        merge_every,
                        limit,
                        lease_range,
                        settings,
                    )
                    for _ in range(workers)
                ]
                for future in futures:
                    report = future.result()
                    reports.append(report)
                    emit(f"sweep: {report.summary_line}")
        except BrokenProcessPool:
            emit("sweep: process pool broke; finishing with one in-process worker")
            reports = []
    if not reports:
        reports = [
            run_worker(
                grid,
                store,
                ttl_s=ttl_s,
                seal=seal,
                merge_every=merge_every,
                limit=limit,
                lease_range=lease_range,
                settings=settings,
                log=log,
            )
        ]

    # Children wrote through their own SweepStore instances; drop this
    # instance's cached manifest before assembling (sealed runs would
    # otherwise read a pre-spawn index).
    store.manifest(reload=True)
    records = []
    for key in plan.keys:
        record = store.get(key)
        if record is None:
            raise RuntimeError(
                f"distributed sweep finished but {key[:12]}... is unreadable "
                f"in {store.directory}; rerun to recompute it"
            )
        records.append(record)
    computed = sum(report.computed for report in reports)
    fleet_timer = PhaseTimer()
    for report in reports:
        if report.phase_totals:
            fleet_timer.merge(report.phase_totals)
    return SweepReport(
        records=tuple(records),
        computed=computed,
        resumed=max(0, len(plan) - computed),
        compilations=sum(report.compilations for report in reports),
        elapsed_s=time.perf_counter() - start,
        phase_totals=fleet_timer.totals(),
    )
