"""Packed append-only segment files behind :class:`~repro.sweeps.store.SweepStore`.

One JSON file per scenario is ideal for resume (atomic, content-addressed,
safe under concurrent writers) but pathological to *load*: a million-record
analysis pays a million ``open``/``read``/``parse`` round trips.  This
module packs finished records into immutable, checksummed **segments** so a
full-store load is O(segments) bulk reads while every resume guarantee of
the loose format survives untouched.

Segment layout (``segment-NNNNNN.seg``, UTF-8 bytes)::

    SEG reproseg <format> <schema_version> <engine_version>\\n   header
    REC <key> <nbytes> <checksum16>\\n                           one frame
    <payload bytes>\\n                                             per record
    ...
    COL <nbytes> <checksum16>\\n                                 columnar
    <columnar payload bytes>\\n                                    block
    END <count> <keys_checksum16>\\n                             seal footer

- Every **record frame** carries the full record payload in the store's
  canonical JSON bytes (:func:`repro.core.serialize.canonical_dumps`), so a
  random-access read returns exactly the dict the loose file held --
  ``--resume`` stays byte-for-byte exact.
- The **columnar block** holds the same records flattened to the unified
  analysis row schema (:func:`repro.sweeps.analysis.record_row`) as
  ``{"keys": [...], "names": [...], "columns": {name: [...]}}``: one
  ``json.loads`` materializes an entire segment's worth of
  :class:`~repro.sweeps.analysis.ResultTable` columns without building a
  single per-record dict.  That block is what makes ``ResultTable.from_store``
  on a compacted store ~10x+ faster than the loose path (gated in
  ``benchmarks/test_perf_store_load.py``).
- The **footer** seals the segment.  A missing or malformed footer, a
  truncated tail, or a frame whose checksum disagrees degrades to
  *missing-with-warning* for the affected records -- exactly how a
  half-written loose file reads -- and never crashes ``--resume`` or
  ``analyze``.

Segments are immutable once written (atomic tmp + rename) and are only
reachable through the **manifest**, which maps every sealed key to
``(segment, offset, length, checksum)``.  Compaction writes new segment
files first and publishes them only afterwards, so readers and concurrent
loose-record writers never observe a partial compaction; a compactor
killed between the two steps leaves an orphan segment file that is simply
never referenced (and is garbage-collected by the next merge).

Manifest format v2 (``MANIFEST_VERSION = 2``) splits the index into three
pieces so publishing N new records costs O(N), not O(store):

- the **root** (``MANIFEST.json``) -- a small atomically-swapped JSON file
  carrying the store *generation*, the schema/engine stamp, the segment
  census, and a pointer per key-prefix **shard**;
- the **shards** (``manifest/shard-gGGGG-X.json``) -- the key -> entry
  mapping partitioned by the first hex character of the key (16 shards),
  each checksummed from the root so a corrupt shard degrades only its own
  keys to missing-with-warning;
- the **delta log** (``manifest/delta-gGGGG.log``) -- an append-only,
  fsynced journal of segments published since the last checkpoint, one
  ``D <checksum16> <canonical-json>`` line per segment.  Readers replay it
  over the shard contents; a torn or corrupt line is skipped with a
  warning (its segment stays orphaned until the next merge).

Each sealed segment may be shadowed by a **binary columnar sidecar**
(``segment-*.cols``): the same columnar block re-encoded as checksummed
little-endian typed arrays (int64/float64 + null bitmaps, offset-indexed
UTF-8 string pools) that ``analysis_columns()`` memory-maps and serves as
zero-copy NumPy views -- no JSON parse at all on the bulk-read path.
Sidecars are strictly an acceleration layer: they are registered in the
manifest (``sidecar_length``/``sidecar_checksum``, optional fields), a
store without them reads exactly as before, and a corrupt or missing
sidecar degrades to the JSON columnar block, then to the tolerant frame
scan, through the same warn-once ladder as every other corruption.

A **checkpoint** (:func:`write_manifest`) folds everything into fresh
shard files at a new generation and swaps the root -- the swap is the only
commit point, exactly as the v1 monolithic rewrite was.  **Merging**
(:meth:`~repro.sweeps.store.SweepStore.merge`) rewrites small segments
into large generation-tagged ``segment-gGGGG-NNNNNN.seg`` files,
checkpoints, and garbage-collects everything the new root no longer
references.  v1 roots still load (read-only) through the same
:func:`load_manifest`; one merge migrates them to v2.

Compaction is equally safe under concurrent distributed *claimers*
(:mod:`repro.sweeps.distributed`): lease files live in the store's
``leases/`` subdirectory, outside both the loose-record glob and the
segment/manifest namespace, so sealing neither sees nor disturbs
outstanding claims -- and a ``--seal``-ing worker whose keyed compaction
loses the compactor lock simply leaves those records loose for a later
pass.

The byte-level layout of every structure here is specified normatively in
``docs/store-format.md``.
"""

from __future__ import annotations

import dataclasses
import json
import mmap
import os
import re
import struct
import typing
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from repro.core.serialize import canonical_dumps, short_checksum
from repro.pipeline.cache import atomic_write_bytes

if typing.TYPE_CHECKING:
    from collections.abc import Callable, Iterator, Mapping, Sequence

__all__ = [
    "MANIFEST_DIR_NAME",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "SEGMENT_FORMAT_VERSION",
    "SEGMENT_MAGIC",
    "SEGMENT_PATTERN",
    "SHARD_IDS",
    "SIDECAR_FORMAT_VERSION",
    "SIDECAR_MAGIC",
    "SIDECAR_PATTERN",
    "LazyColumn",
    "Manifest",
    "SegmentColumns",
    "SegmentEntry",
    "append_manifest_delta",
    "delta_log_name",
    "gc_unreferenced",
    "generation_segment_namer",
    "iter_segment_records",
    "load_manifest",
    "materialize_column",
    "next_segment_name",
    "pack_segment",
    "pack_sidecar",
    "read_segment_columns",
    "read_segment_record",
    "read_segment_sidecar",
    "segment_generation",
    "shard_file_name",
    "shard_id",
    "sidecar_name",
    "sidecars_enabled",
    "use_sidecars",
    "write_manifest",
    "write_segment",
]

SEGMENT_MAGIC = "reproseg"
SEGMENT_FORMAT_VERSION = 1
MANIFEST_NAME = "MANIFEST.json"
MANIFEST_VERSION = 2
SEGMENT_PATTERN = "segment-*.seg"

SIDECAR_MAGIC = "reprocols"
SIDECAR_FORMAT_VERSION = 1
SIDECAR_PATTERN = "segment-*.cols"

#: Subdirectory holding manifest shards and delta logs (outside both the
#: loose-record ``*.json`` glob and the segment namespace).
MANIFEST_DIR_NAME = "manifest"

#: The 16 key-prefix shard identifiers (first hex character of the key).
SHARD_IDS = "0123456789abcdef"

#: A ``warn(dedup_key, message)`` sink; the store passes its deduplicating
#: warner so one bad file warns once per store, not once per access.
WarnFn = "Callable[[str, str], None]"


def _default_warn(dedup_key: str, message: str) -> None:
    warnings.warn(message, RuntimeWarning, stacklevel=4)


@dataclass(frozen=True)
class SegmentEntry:
    """Manifest pointer to one sealed record: where and what to verify.

    ``offset``/``length`` bound the payload bytes inside ``segment``;
    ``checksum`` is :func:`~repro.core.serialize.short_checksum` of exactly
    those bytes.
    """

    key: str
    segment: str
    offset: int
    length: int
    checksum: str


@dataclass(frozen=True)
class SegmentColumns:
    """Manifest pointer to one segment's columnar analysis block.

    ``sidecar_length``/``sidecar_checksum`` describe the segment's binary
    columnar sidecar (``segment-*.cols``) when one was written: a length
    of 0 means "no sidecar" (pre-sidecar stores, or the write was skipped/
    failed), and readers then use the JSON columnar block exactly as
    before -- both fields are optional on disk, so v2 manifests from
    older engines parse unchanged.
    """

    offset: int
    length: int
    checksum: str
    count: int
    sidecar_length: int = 0
    sidecar_checksum: str = ""


@dataclass(frozen=True)
class Manifest:
    """The store's sealed-record index, committed by an atomic root swap.

    Attributes:
        entries: key -> :class:`SegmentEntry` for every sealed record.
        segments: segment filename -> :class:`SegmentColumns`.
        schema_version: record schema the sealed records were written under.
        engine_version: package version that sealed them (sealed records
            are generation-checked exactly like loose ones).
        generation: checkpoint counter; bumped by every checkpoint
            (:func:`write_manifest`), left alone by delta appends.  v1
            roots load as generation 0.
        manifest_version: on-disk root format this index was loaded from
            (or will be written as); v1 indexes are read-only -- the first
            compaction or merge checkpoints them forward to v2.
        shard_count: non-empty key-prefix shards behind the root.
        delta_records: delta-log lines replayed on top of the checkpoint
            (0 right after a checkpoint; what :meth:`SweepStore.merge`
            folds down).
    """

    entries: dict
    segments: dict
    schema_version: int
    engine_version: str
    generation: int = 0
    manifest_version: int = MANIFEST_VERSION
    shard_count: int = 0
    delta_records: int = 0


def shard_id(key: str) -> str:
    """Key-prefix shard of ``key`` (one of :data:`SHARD_IDS`).

    Store keys are SHA-256 hex, so the first character partitions them
    uniformly; any non-hex key (hand-written test keys) is bucketed by the
    first character of its checksum instead, which keeps every key in
    exactly one of the 16 shards.
    """
    first = key[:1].lower()
    if first in SHARD_IDS:
        return first
    return short_checksum(key)[0]


def shard_file_name(generation: int, sid: str) -> str:
    """Shard file name inside ``manifest/`` for one generation."""
    return f"shard-g{generation:04d}-{sid}.json"


def delta_log_name(generation: int) -> str:
    """Delta-log file name inside ``manifest/`` for one generation."""
    return f"delta-g{generation:04d}.log"


def segment_generation(name: str) -> int:
    """Generation a segment file name was merged at (0 for unmerged
    ``segment-NNNNNN.seg`` compaction output)."""
    match = re.match(r"segment-g(\d+)-\d+\.seg$", name)
    return int(match.group(1)) if match else 0


# -- binary columnar sidecars --------------------------------------------------
#
# Sidecar layout (``segment-*.cols``, little-endian throughout)::
#
#     COLS reprocols <format>\n          ASCII magic line
#     <u32 header_length>                4 bytes, little-endian
#     <header bytes>                     canonical JSON, UTF-8
#     <zero padding to 8-byte alignment>
#     <payload buffers>                  each 8-byte aligned
#
# The header maps every analysis column (plus the key column) to a typed
# buffer spec ``{"kind", "data": [offset, length], ...}`` with offsets
# relative to the payload base.  Kinds: ``i8`` int64, ``f8`` float64,
# ``b1`` uint8 bools, ``s`` offset-indexed UTF-8 string pool (int64
# offsets, N+1 of them), ``j`` canonical-JSON list (mixed/exotic types),
# ``z`` all-None.  An optional ``nulls`` buffer is a little-endian-packed
# bitmap (1 = None).  The whole file is covered by the manifest's
# ``sidecar_checksum``, so readers verify once and then trust every
# buffer.  Full normative spec in ``docs/store-format.md``.

#: Process-wide sidecar switch: ``REPRO_NO_SIDECARS=1`` disables writing
#: sidecars at seal/merge time (reads still use any already on disk).
_sidecars_active: bool = os.environ.get("REPRO_NO_SIDECARS", "") != "1"


def sidecars_enabled() -> bool:
    """True when seal/merge should write binary columnar sidecars."""
    return _sidecars_active


@contextmanager
def use_sidecars(active: bool = True) -> "Iterator[None]":
    """Temporarily enable (or disable) sidecar writing process-wide --
    the benchmark baseline and parity-test switch, mirroring
    :func:`repro.utils.kernels.use_reference_kernels`."""
    global _sidecars_active
    previous = _sidecars_active
    _sidecars_active = bool(active)
    try:
        yield
    finally:
        _sidecars_active = previous


def sidecar_name(segment_name: str) -> str:
    """The binary columnar sidecar file backing one segment file."""
    if segment_name.endswith(".seg"):
        return segment_name[: -len(".seg")] + ".cols"
    return segment_name + ".cols"


class LazyColumn:
    """A sequence over one sidecar column, decoded on first access.

    Length is known up front (cheap ``len()`` for shape checks); the
    values decode once through ``load`` and are cached.  ``materialize``
    always returns pure-Python values (never NumPy scalars), which is
    what keeps downstream ``ResultTable`` aggregation and CSV bytes
    identical to the JSON columnar path.
    """

    __slots__ = ("_length", "_load", "_values")

    def __init__(self, length: int, load: "Callable[[], list]") -> None:
        self._length = length
        self._load = load
        self._values: list | None = None

    def materialize(self) -> list:
        if self._values is None:
            self._values = self._load()
            self._load = None  # type: ignore[assignment]
        return self._values

    def __len__(self) -> int:
        return self._length

    def __iter__(self):
        return iter(self.materialize())

    def __getitem__(self, index):
        return self.materialize()[index]


def materialize_column(values) -> list:
    """Normalize any column representation to a plain Python list.

    ``LazyColumn`` decodes (cached), NumPy arrays convert through
    ``tolist()`` (yielding pure-Python scalars -- ``np.int64`` is *not*
    an ``int`` to ``isinstance``, which would break sort tokens and CSV
    formatting downstream), and lists pass through.
    """
    mat = getattr(values, "materialize", None)
    if mat is not None:
        return mat()
    tolist = getattr(values, "tolist", None)
    if tolist is not None:
        return tolist()
    return values if isinstance(values, list) else list(values)


def pack_sidecar(
    keys: "Sequence[str]", names: "Sequence[str]", columns: "Mapping[str, list]"
) -> bytes:
    """Encode one segment's columnar block as binary sidecar bytes.

    Deterministic for a given block (keys first, then columns in ``names``
    order), so re-sealing the same records yields byte-identical sidecars.
    Raises on anything unencodable (callers then simply skip the sidecar;
    the JSON block remains authoritative).
    """
    import numpy as np

    count = len(keys)
    payload = bytearray()

    def add(blob: bytes) -> list[int]:
        pad = (-len(payload)) % 8
        payload.extend(b"\x00" * pad)
        offset = len(payload)
        payload.extend(blob)
        return [offset, len(blob)]

    def null_bitmap(values: list) -> bytes | None:
        mask = np.array([v is None for v in values], dtype=np.uint8)
        if not mask.any():
            return None
        return np.packbits(mask, bitorder="little").tobytes()

    def encode(values: list) -> dict:
        present = [v for v in values if v is not None]
        if not present:
            return {"kind": "z"}
        kinds = {type(v) for v in present}
        nulls = null_bitmap(values)
        if kinds == {bool}:
            data = np.array(
                [bool(v) for v in values], dtype=np.uint8
            ).tobytes()
            spec = {"kind": "b1", "data": add(data)}
        elif kinds == {int} and all(
            -(2**63) <= v < 2**63 for v in present
        ):
            data = np.array(
                [0 if v is None else v for v in values], dtype="<i8"
            ).tobytes()
            spec = {"kind": "i8", "data": add(data)}
        elif kinds == {float}:
            data = np.array(
                [0.0 if v is None else v for v in values], dtype="<f8"
            ).tobytes()
            spec = {"kind": "f8", "data": add(data)}
        elif kinds == {str}:
            blobs = [
                b"" if v is None else v.encode("utf-8") for v in values
            ]
            offsets = np.zeros(len(values) + 1, dtype="<i8")
            np.cumsum([len(b) for b in blobs], out=offsets[1:])
            spec = {
                "kind": "s",
                "offsets": add(offsets.tobytes()),
                "data": add(b"".join(blobs)),
            }
        else:
            # Mixed int/float, big ints, nested values: fall back to one
            # canonical-JSON list, which is exact for anything the JSON
            # columnar block itself can hold (nulls included).
            blob = canonical_dumps(list(values)).encode("utf-8")
            return {"kind": "j", "data": add(blob)}
        if nulls is not None:
            spec["nulls"] = add(nulls)
        return spec

    header = {
        "count": count,
        "first_key": str(keys[0]) if count else "",
        "last_key": str(keys[-1]) if count else "",
        "keys": encode([str(k) for k in keys]),
        "names": list(names),
        "columns": {name: encode(list(columns[name])) for name in names},
    }
    head = canonical_dumps(header).encode("utf-8")
    magic = f"COLS {SIDECAR_MAGIC} {SIDECAR_FORMAT_VERSION}\n".encode("ascii")
    prefix = magic + struct.pack("<I", len(head)) + head
    return prefix + b"\x00" * ((-len(prefix)) % 8) + bytes(payload)


def read_segment_sidecar(
    path: Path, columns: SegmentColumns, warn: "WarnFn" = _default_warn
) -> dict | None:
    """mmap one segment's binary sidecar into zero-copy analysis columns.

    Verifies the whole file against the manifest's ``sidecar_checksum``
    once, then serves columns straight from the mapping: null-free
    numeric columns come back as NumPy array *views* over the mmap (no
    copy, no parse), everything else as a :class:`LazyColumn` that
    decodes on first touch.  Returns ``{"keys", "names", "columns",
    "first_key", "last_key", "count"}``, or None (with one warning) on
    any integrity or decode failure -- callers then fall back to the
    JSON columnar block, which falls back to the frame scan: the same
    degradation ladder every other corruption takes.
    """
    if columns.sidecar_length <= 0:
        return None
    name = path.name
    try:
        import numpy as np
    except ImportError:
        return None
    try:
        with open(path, "rb") as handle:
            try:
                data = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            except (ValueError, OSError):
                data = handle.read()
    except OSError as exc:
        warn(
            f"{name}:sidecar",
            f"sweep store: columnar sidecar {name} is unreadable ({exc}); "
            f"falling back to the JSON columnar block",
        )
        return None
    if (
        len(data) != columns.sidecar_length
        or short_checksum(data) != columns.sidecar_checksum
    ):
        warn(
            f"{name}:sidecar",
            f"sweep store: columnar sidecar {name} fails its checksum; "
            f"falling back to the JSON columnar block",
        )
        return None
    try:
        magic = f"COLS {SIDECAR_MAGIC} {SIDECAR_FORMAT_VERSION}".encode("ascii")
        line_end = data.find(b"\n")
        if line_end < 0 or bytes(data[:line_end]) != magic:
            raise ValueError("bad sidecar magic")
        (head_length,) = struct.unpack(
            "<I", bytes(data[line_end + 1 : line_end + 5])
        )
        head_start = line_end + 5
        header = json.loads(bytes(data[head_start : head_start + head_length]))
        base = head_start + head_length
        base += (-base) % 8
        count = int(header["count"])

        def null_mask(spec: dict):
            offset, length = spec["nulls"]
            bits = np.frombuffer(
                data, dtype=np.uint8, count=length, offset=base + offset
            )
            return np.unpackbits(bits, bitorder="little", count=count)

        def apply_nulls(values: list, spec: dict) -> list:
            if "nulls" not in spec:
                return values
            mask = null_mask(spec).tolist()
            return [None if m else v for v, m in zip(values, mask)]

        def decode(spec: dict):
            kind = spec["kind"]
            if kind == "z":
                return LazyColumn(count, lambda: [None] * count)
            offset, length = spec["data"]
            if kind in ("i8", "f8"):
                array = np.frombuffer(
                    data,
                    dtype="<i8" if kind == "i8" else "<f8",
                    count=count,
                    offset=base + offset,
                )
                if "nulls" not in spec:
                    return array  # the zero-copy fast path
                return LazyColumn(
                    count, lambda: apply_nulls(array.tolist(), spec)
                )
            if kind == "b1":
                array = np.frombuffer(
                    data, dtype=np.uint8, count=count, offset=base + offset
                )
                return LazyColumn(
                    count,
                    lambda: apply_nulls(
                        [bool(v) for v in array.tolist()], spec
                    ),
                )
            if kind == "s":
                ooffset, _ = spec["offsets"]

                def load_strings() -> list:
                    bounds = np.frombuffer(
                        data, dtype="<i8", count=count + 1,
                        offset=base + ooffset,
                    ).tolist()
                    pool = bytes(data[base + offset : base + offset + length])
                    values = [
                        pool[bounds[i] : bounds[i + 1]].decode("utf-8")
                        for i in range(count)
                    ]
                    return apply_nulls(values, spec)

                return LazyColumn(count, load_strings)
            if kind == "j":
                return LazyColumn(
                    count,
                    lambda: list(
                        json.loads(
                            bytes(data[base + offset : base + offset + length])
                        )
                    ),
                )
            raise ValueError(f"unknown sidecar column kind {kind!r}")

        return {
            "keys": decode(header["keys"]),
            "names": list(header["names"]),
            "columns": {
                n: decode(spec) for n, spec in header["columns"].items()
            },
            "first_key": str(header.get("first_key", "")),
            "last_key": str(header.get("last_key", "")),
            "count": count,
        }
    except (KeyError, IndexError, TypeError, ValueError, struct.error,
            json.JSONDecodeError, UnicodeDecodeError):
        warn(
            f"{name}:sidecar",
            f"sweep store: columnar sidecar {name} is malformed; "
            f"falling back to the JSON columnar block",
        )
        return None


# -- segment encoding ----------------------------------------------------------


def pack_segment(
    records: "Sequence[dict]",
) -> tuple[bytes, list[tuple[str, int, int, str]], SegmentColumns, dict]:
    """Encode sealed ``records`` into one segment byte blob.

    Records must already be store-stamped (``key``/``schema_version``/
    ``engine_version`` present) and are framed in the given order; callers
    sort by key first so a sealed segment's frames -- and its columnar
    block -- are in ascending key order.

    Returns ``(blob, frames, columns, block)`` where ``frames`` holds one
    ``(key, payload_offset, payload_length, checksum)`` tuple per record
    and ``block`` is the un-serialized ``{"keys", "names", "columns"}``
    columnar mapping (what :func:`pack_sidecar` encodes).
    """
    from repro import __version__
    from repro.sweeps.analysis import record_row, canonical_order
    from repro.sweeps.store import SCHEMA_VERSION

    parts: list[bytes] = []
    frames: list[tuple[str, int, int, str]] = []
    header = (
        f"SEG {SEGMENT_MAGIC} {SEGMENT_FORMAT_VERSION} "
        f"{SCHEMA_VERSION} {__version__}\n"
    ).encode("utf-8")
    parts.append(header)
    pos = len(header)
    keys: list[str] = []
    for record in records:
        key = str(record["key"])
        payload = canonical_dumps(record).encode("utf-8")
        checksum = short_checksum(payload)
        frame_header = f"REC {key} {len(payload)} {checksum}\n".encode("utf-8")
        parts.append(frame_header)
        pos += len(frame_header)
        frames.append((key, pos, len(payload), checksum))
        parts.append(payload)
        parts.append(b"\n")
        pos += len(payload) + 1
        keys.append(key)

    rows = [record_row(record) for record in records]
    names = canonical_order({name for row in rows for name in row})
    block_data = {
        "keys": keys,
        "names": names,
        "columns": {n: [row.get(n) for row in rows] for n in names},
    }
    block = canonical_dumps(block_data).encode("utf-8")
    block_checksum = short_checksum(block)
    col_header = f"COL {len(block)} {block_checksum}\n".encode("utf-8")
    parts.append(col_header)
    columns = SegmentColumns(
        offset=pos + len(col_header),
        length=len(block),
        checksum=block_checksum,
        count=len(records),
    )
    parts.append(block)
    parts.append(b"\n")
    keys_checksum = short_checksum(",".join(keys))
    parts.append(f"END {len(keys)} {keys_checksum}\n".encode("utf-8"))
    return b"".join(parts), frames, columns, block_data


def next_segment_name(directory: Path) -> str:
    """First unused ``segment-NNNNNN.seg`` name (orphans count as used).

    Generation-tagged merge output (``segment-gGGGG-NNNNNN.seg``) lives in
    its own numbering space (:func:`generation_segment_namer`) and is
    ignored here.
    """
    highest = 0
    for path in directory.glob(SEGMENT_PATTERN):
        stem = path.name[len("segment-") : -len(".seg")]
        if stem.isdigit():
            highest = max(highest, int(stem))
    return f"segment-{highest + 1:06d}.seg"


def generation_segment_namer(generation: int) -> "Callable[[Path], str]":
    """A :func:`write_segment` namer for one merge generation's output.

    Numbers ``segment-gGGGG-NNNNNN.seg`` sequentially per generation;
    orphans from a merge killed before its checkpoint count as used, so a
    re-merge at the same target generation never collides with them.
    """
    prefix = f"segment-g{generation:04d}-"

    def namer(directory: Path) -> str:
        highest = 0
        for path in directory.glob(f"{prefix}*.seg"):
            stem = path.name[len(prefix) : -len(".seg")]
            if stem.isdigit():
                highest = max(highest, int(stem))
        return f"{prefix}{highest + 1:06d}.seg"

    return namer


def write_segment(
    directory: Path,
    records: "Sequence[dict]",
    namer: "Callable[[Path], str] | None" = None,
    name: str | None = None,
) -> tuple[str, list[SegmentEntry], SegmentColumns] | None:
    """Pack ``records`` and write them as a new immutable segment file.

    The write is atomic (tmp + rename); the segment is *not* yet visible to
    readers -- it becomes reachable only when the caller publishes it in
    the manifest.  The name (``namer`` defaults to plain compaction
    numbering, merge passes :func:`generation_segment_namer`; a parallel
    merge passes an explicit pre-computed ``name`` so its pool workers
    never race each other's directory scans) is reserved with an exclusive
    create first, so even a rogue second compactor (possible only after a
    stale lock was force-broken) can never overwrite an existing segment.
    Returns None when the filesystem refuses the write (or an explicit
    ``name`` already exists).

    When sidecars are enabled (:func:`sidecars_enabled`), the segment's
    binary columnar sidecar is written beside it and its length/checksum
    stamped into the returned :class:`SegmentColumns`; any sidecar
    failure publishes the segment without one -- the JSON block is always
    authoritative.
    """
    blob, frames, columns, block_data = pack_segment(records)
    if name is not None:
        try:
            (directory / name).touch(exist_ok=False)
        except OSError:
            return None
    else:
        for _ in range(1000):
            candidate = (namer or next_segment_name)(directory)
            try:
                (directory / candidate).touch(exist_ok=False)
            except FileExistsError:
                continue
            except OSError:
                return None
            name = candidate
            break
        if name is None:
            return None
    if not atomic_write_bytes(directory / name, blob):
        return None
    if sidecars_enabled():
        try:
            side = pack_sidecar(
                block_data["keys"], block_data["names"], block_data["columns"]
            )
        except (ImportError, OverflowError, TypeError, ValueError):
            side = None
        # The sidecar write goes through the same atomic_write_bytes as
        # every other durable write, so crash-injection harnesses cover
        # it; a plain failure (False) just publishes without a sidecar.
        if side is not None and atomic_write_bytes(
            directory / sidecar_name(name), side
        ):
            columns = dataclasses.replace(
                columns,
                sidecar_length=len(side),
                sidecar_checksum=short_checksum(side),
            )
    entries = [
        SegmentEntry(key=k, segment=name, offset=o, length=n, checksum=c)
        for k, o, n, c in frames
    ]
    return name, entries, columns


# -- segment decoding ----------------------------------------------------------


def _read_line(data: bytes, pos: int) -> tuple[str, int] | None:
    """Decode one ``\\n``-terminated ASCII line at ``pos``; None at EOF or
    on an unterminated (truncated) tail."""
    end = data.find(b"\n", pos)
    if end < 0:
        return None
    try:
        return data[pos:end].decode("utf-8"), end + 1
    except UnicodeDecodeError:
        return None


def iter_segment_records(
    data: bytes, source: str, warn: "WarnFn" = _default_warn
) -> "Iterator[tuple[str, dict]]":
    """Yield every intact ``(key, record)`` of one segment's bytes.

    Tolerant by design: a malformed header drops the whole segment, a
    corrupt or truncated frame drops that record *and everything after it*
    (framing can no longer be trusted), and a checksum mismatch drops just
    that record -- each with one warning through ``warn``.  Whatever
    prefix of the segment survives reads normally, mirroring how a
    half-written loose file degrades to missing-with-warning.
    """
    line = _read_line(data, 0)
    if line is None or not line[0].startswith(f"SEG {SEGMENT_MAGIC} "):
        warn(
            f"{source}:header",
            f"sweep store: segment {source} has no valid header; "
            f"treating its records as missing",
        )
        return
    header, pos = line
    fields = header.split()
    if len(fields) < 3 or fields[2] != str(SEGMENT_FORMAT_VERSION):
        warn(
            f"{source}:format",
            f"sweep store: segment {source} has unsupported format "
            f"{fields[2] if len(fields) > 2 else '?'!r} "
            f"(expected {SEGMENT_FORMAT_VERSION}); treating its records as missing",
        )
        return
    while True:
        line = _read_line(data, pos)
        if line is None:
            warn(
                f"{source}:truncated",
                f"sweep store: segment {source} is truncated before its "
                f"seal footer; records past the damage read as missing",
            )
            return
        text, pos = line
        if text.startswith("END "):
            return
        if text.startswith("COL "):
            # Skip over the columnar block to reach the footer.
            parts = text.split()
            if len(parts) != 3 or not parts[1].isdigit():
                warn(
                    f"{source}:columns-frame",
                    f"sweep store: segment {source} has a malformed "
                    f"columnar frame; remainder unreadable",
                )
                return
            pos += int(parts[1]) + 1
            continue
        parts = text.split()
        if len(parts) != 4 or parts[0] != "REC" or not parts[2].isdigit():
            warn(
                f"{source}:frame@{pos}",
                f"sweep store: segment {source} has a corrupt record frame; "
                f"records past the damage read as missing",
            )
            return
        _, key, length_text, checksum = parts
        length = int(length_text)
        payload = data[pos : pos + length]
        if len(payload) < length:
            warn(
                f"{source}:truncated",
                f"sweep store: segment {source} is truncated mid-record; "
                f"records past the damage read as missing",
            )
            return
        pos += length + 1
        if short_checksum(payload) != checksum:
            warn(
                f"{source}:{key[:12]}",
                f"sweep store: sealed record {key[:12]}... in {source} "
                f"fails its checksum; treating it as missing",
            )
            continue
        try:
            record = json.loads(payload)
        except json.JSONDecodeError:
            warn(
                f"{source}:{key[:12]}",
                f"sweep store: sealed record {key[:12]}... in {source} "
                f"is not valid JSON; treating it as missing",
            )
            continue
        if isinstance(record, dict):
            yield key, record


def read_segment_record(
    path: Path, entry: SegmentEntry, warn: "WarnFn" = _default_warn
) -> dict | None:
    """Random-access one sealed record through its manifest entry.

    Seeks straight to the payload, verifies its checksum, and parses it;
    any failure (missing segment, short read, checksum or JSON mismatch)
    reads as missing-with-warning, never an exception.
    """
    try:
        with open(path, "rb") as handle:
            handle.seek(entry.offset)
            payload = handle.read(entry.length)
    except OSError as exc:
        warn(
            f"{path.name}:missing",
            f"sweep store: manifest points at unreadable segment "
            f"{path.name} ({exc}); its records read as missing",
        )
        return None
    if len(payload) < entry.length or short_checksum(payload) != entry.checksum:
        warn(
            f"{path.name}:{entry.key[:12]}",
            f"sweep store: sealed record {entry.key[:12]}... in {path.name} "
            f"fails its checksum; treating it as missing",
        )
        return None
    try:
        record = json.loads(payload)
    except json.JSONDecodeError:
        warn(
            f"{path.name}:{entry.key[:12]}",
            f"sweep store: sealed record {entry.key[:12]}... in {path.name} "
            f"is not valid JSON; treating it as missing",
        )
        return None
    return record if isinstance(record, dict) else None


def read_segment_columns(
    path: Path, columns: SegmentColumns, warn: "WarnFn" = _default_warn
) -> dict | None:
    """Load one segment's columnar block (the bulk-analysis fast path).

    One seek + one read + one ``json.loads`` per segment.  Returns the
    ``{"keys", "names", "columns"}`` mapping, or None (with a warning) on
    any integrity failure -- callers then fall back to the per-frame scan,
    which salvages whatever records are intact.
    """
    try:
        with open(path, "rb") as handle:
            handle.seek(columns.offset)
            block = handle.read(columns.length)
    except OSError as exc:
        warn(
            f"{path.name}:missing",
            f"sweep store: manifest points at unreadable segment "
            f"{path.name} ({exc}); its records read as missing",
        )
        return None
    if len(block) < columns.length or short_checksum(block) != columns.checksum:
        warn(
            f"{path.name}:columns",
            f"sweep store: columnar block of {path.name} fails its "
            f"checksum; falling back to the record frames",
        )
        return None
    try:
        parsed = json.loads(block)
    except json.JSONDecodeError:
        warn(
            f"{path.name}:columns",
            f"sweep store: columnar block of {path.name} is not valid "
            f"JSON; falling back to the record frames",
        )
        return None
    if (
        not isinstance(parsed, dict)
        or not isinstance(parsed.get("keys"), list)
        or not isinstance(parsed.get("names"), list)
        or not isinstance(parsed.get("columns"), dict)
    ):
        warn(
            f"{path.name}:columns",
            f"sweep store: columnar block of {path.name} has an unexpected "
            f"shape; falling back to the record frames",
        )
        return None
    return parsed


# -- manifest ------------------------------------------------------------------


def _columns_payload(columns: SegmentColumns) -> dict:
    """Serialize one :class:`SegmentColumns` for the root or a delta line;
    sidecar keys are emitted only when a sidecar exists, keeping
    sidecar-free manifests byte-identical to pre-sidecar engines."""
    payload = {
        "count": columns.count,
        "columns_offset": columns.offset,
        "columns_length": columns.length,
        "columns_checksum": columns.checksum,
    }
    if columns.sidecar_length > 0:
        payload["sidecar_length"] = columns.sidecar_length
        payload["sidecar_checksum"] = columns.sidecar_checksum
    return payload


def _parse_entries(raw: dict) -> dict:
    """``{key: [segment, offset, length, checksum]}`` -> entry mapping."""
    return {
        key: SegmentEntry(
            key=key,
            segment=str(spec[0]),
            offset=int(spec[1]),
            length=int(spec[2]),
            checksum=str(spec[3]),
        )
        for key, spec in raw.items()
    }


def _parse_segments(raw: dict) -> dict:
    """``{name: {count, columns_*}}`` -> :class:`SegmentColumns` mapping.

    The ``sidecar_*`` keys are optional (absent on pre-sidecar manifests
    and on segments whose sidecar write was skipped), defaulting to "no
    sidecar" -- which is also how unknown-to-older-engines forward
    compatibility works: old readers simply ignore the extra keys.
    """
    return {
        name: SegmentColumns(
            offset=int(spec["columns_offset"]),
            length=int(spec["columns_length"]),
            checksum=str(spec["columns_checksum"]),
            count=int(spec["count"]),
            sidecar_length=int(spec.get("sidecar_length", 0)),
            sidecar_checksum=str(spec.get("sidecar_checksum", "")),
        )
        for name, spec in raw.items()
    }


def _replay_delta(
    directory: Path,
    delta_name: str,
    entries: dict,
    segments: dict,
    warn: "WarnFn",
) -> int:
    """Apply the delta log's segment publications onto ``entries``/
    ``segments`` in place; returns the number of lines applied.

    Each intact line is one segment published since the checkpoint.  A
    corrupt line (torn by a crash mid-append, or damaged on disk) is
    skipped with a warning -- its segment's records read as missing until
    the next merge folds the log -- and replay continues with the next
    line: the newline framing is restored by the next appender, so one bad
    line never hides later publications.
    """
    path = directory / MANIFEST_DIR_NAME / delta_name
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return 0
    except OSError as exc:
        warn(
            f"{delta_name}:unreadable",
            f"sweep store: unreadable manifest delta log {delta_name} "
            f"({exc}); segments published since the last checkpoint read "
            f"as missing",
        )
        return 0
    applied = 0
    lines = data.split(b"\n")
    if lines and lines[-1] != b"":
        warn(
            f"{delta_name}:torn",
            f"sweep store: manifest delta log {delta_name} has a torn "
            f"final line (appender crashed mid-write); that publication "
            f"reads as missing until the next merge",
        )
    for raw_line in lines[:-1] if lines else []:
        if not raw_line:
            continue
        parts = raw_line.split(b" ", 2)
        payload = None
        if len(parts) == 3 and parts[0] == b"D":
            checksum = parts[1].decode("ascii", errors="replace")
            if short_checksum(parts[2]) == checksum:
                try:
                    payload = json.loads(parts[2])
                except json.JSONDecodeError:
                    payload = None
        if not isinstance(payload, dict):
            warn(
                f"{delta_name}:corrupt-line",
                f"sweep store: skipping a corrupt line of manifest delta "
                f"log {delta_name}; its segment's records read as missing "
                f"until the next merge",
            )
            continue
        try:
            segment = str(payload["segment"])
            columns = payload["columns"]
            segments[segment] = SegmentColumns(
                offset=int(columns["columns_offset"]),
                length=int(columns["columns_length"]),
                checksum=str(columns["columns_checksum"]),
                count=int(columns["count"]),
                sidecar_length=int(columns.get("sidecar_length", 0)),
                sidecar_checksum=str(columns.get("sidecar_checksum", "")),
            )
            for key, spec in payload["entries"].items():
                entries[key] = SegmentEntry(
                    key=key,
                    segment=segment,
                    offset=int(spec[0]),
                    length=int(spec[1]),
                    checksum=str(spec[2]),
                )
        except (KeyError, IndexError, TypeError, ValueError, AttributeError):
            warn(
                f"{delta_name}:corrupt-line",
                f"sweep store: skipping a malformed line of manifest delta "
                f"log {delta_name}; its segment's records read as missing "
                f"until the next merge",
            )
            continue
        applied += 1
    return applied


def _load_manifest_v2(
    directory: Path, data: dict, warn: "WarnFn"
) -> Manifest | None:
    """Assemble a v2 index: root -> shards -> delta replay."""
    try:
        generation = int(data.get("generation") or 0)
        shards = data.get("shards") or {}
        segments = _parse_segments(data.get("segments") or {})
        delta_name = str(data.get("delta") or delta_log_name(generation))
    except (KeyError, TypeError, ValueError, AttributeError):
        warn(
            f"{MANIFEST_NAME}:malformed",
            f"sweep store: malformed manifest {MANIFEST_NAME}; sealed "
            f"records read as missing until the next compaction",
        )
        return None
    entries: dict = {}
    shard_count = 0
    for sid, spec in sorted(shards.items()):
        try:
            shard_file = str(spec["file"])
            want = str(spec["checksum"])
        except (KeyError, TypeError):
            warn(
                f"{MANIFEST_NAME}:shard-{sid}",
                f"sweep store: manifest shard pointer {sid!r} is "
                f"malformed; that shard's records read as missing",
            )
            continue
        path = directory / MANIFEST_DIR_NAME / shard_file
        try:
            blob = path.read_bytes()
        except OSError as exc:
            warn(
                f"{shard_file}:unreadable",
                f"sweep store: unreadable manifest shard {shard_file} "
                f"({exc}); its records read as missing until the next "
                f"merge",
            )
            continue
        if short_checksum(blob) != want:
            warn(
                f"{shard_file}:checksum",
                f"sweep store: manifest shard {shard_file} fails its "
                f"checksum; its records read as missing until the next "
                f"merge",
            )
            continue
        try:
            entries.update(_parse_entries(json.loads(blob)["entries"]))
        except (
            KeyError, IndexError, TypeError, ValueError,
            json.JSONDecodeError, AttributeError,
        ):
            warn(
                f"{shard_file}:malformed",
                f"sweep store: malformed manifest shard {shard_file}; "
                f"its records read as missing until the next merge",
            )
            continue
        shard_count += 1
    delta_records = _replay_delta(directory, delta_name, entries, segments, warn)
    return Manifest(
        entries=entries,
        segments=segments,
        schema_version=data.get("schema_version"),
        engine_version=data.get("engine_version"),
        generation=generation,
        manifest_version=MANIFEST_VERSION,
        shard_count=shard_count,
        delta_records=delta_records,
    )


def load_manifest(directory: Path, warn: "WarnFn" = _default_warn) -> Manifest | None:
    """Read the store's manifest; None when absent or unreadable.

    Dispatches on the root's ``manifest_version``: v1 monolithic roots
    load read-only (their first compaction or merge checkpoints them to
    v2), v2 roots assemble from shards plus delta replay.  An unreadable
    or malformed root degrades exactly like a corrupt record: the sealed
    records it pointed at read as missing-with-warning (loose records are
    unaffected), and the next compaction rebuilds it.
    """
    path = directory / MANIFEST_NAME
    if not path.exists():
        return None
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        warn(
            f"{MANIFEST_NAME}:unreadable",
            f"sweep store: unreadable manifest {path.name} ({exc}); "
            f"sealed records read as missing until the next compaction",
        )
        return None
    version = data.get("manifest_version") if isinstance(data, dict) else None
    if version == MANIFEST_VERSION:
        return _load_manifest_v2(directory, data, warn)
    if version != 1:
        warn(
            f"{MANIFEST_NAME}:version",
            f"sweep store: manifest {path.name} has unsupported version "
            f"{version!r}; sealed records read as missing",
        )
        return None
    try:
        entries = _parse_entries(data.get("entries") or {})
        segments = _parse_segments(data.get("segments") or {})
    except (KeyError, IndexError, TypeError, ValueError):
        warn(
            f"{MANIFEST_NAME}:malformed",
            f"sweep store: malformed manifest {path.name}; sealed records "
            f"read as missing until the next compaction",
        )
        return None
    return Manifest(
        entries=entries,
        segments=segments,
        schema_version=data.get("schema_version"),
        engine_version=data.get("engine_version"),
        generation=int(data.get("generation") or 0),
        manifest_version=1,
    )


def write_manifest(directory: Path, manifest: Manifest) -> bool:
    """Checkpoint ``manifest``: shard files first, then the atomic root
    swap (the commit point).

    Shards are written at ``manifest.generation`` -- callers bump the
    generation before checkpointing, so a crash after some shard writes
    but before the root swap leaves only unreferenced files (the old root
    still points at the old generation's shards; the next merge
    garbage-collects the strays).  Readers see either the old index or
    the new one, never a mix, exactly like the v1 monolithic rename.
    """
    manifest_dir = directory / MANIFEST_DIR_NAME
    try:
        manifest_dir.mkdir(parents=True, exist_ok=True)
    except OSError:
        return False
    by_shard: dict[str, dict] = {}
    for key, entry in sorted(manifest.entries.items()):
        by_shard.setdefault(shard_id(key), {})[key] = [
            entry.segment, entry.offset, entry.length, entry.checksum,
        ]
    shards = {}
    for sid, shard_entries in sorted(by_shard.items()):
        name = shard_file_name(manifest.generation, sid)
        blob = canonical_dumps(
            {"generation": manifest.generation, "entries": shard_entries}
        ).encode("utf-8")
        if not atomic_write_bytes(manifest_dir / name, blob):
            return False
        shards[sid] = {
            "file": name,
            "checksum": short_checksum(blob),
            "count": len(shard_entries),
        }
    payload = {
        "manifest_version": MANIFEST_VERSION,
        "schema_version": manifest.schema_version,
        "engine_version": manifest.engine_version,
        "generation": manifest.generation,
        "delta": delta_log_name(manifest.generation),
        "shards": shards,
        "segments": {
            name: _columns_payload(c)
            for name, c in sorted(manifest.segments.items())
        },
    }
    return atomic_write_bytes(
        directory / MANIFEST_NAME, canonical_dumps(payload).encode("utf-8")
    )


def append_manifest_delta(
    directory: Path,
    generation: int,
    segment: str,
    entries: "Sequence[SegmentEntry]",
    columns: SegmentColumns,
) -> bool:
    """Publish one freshly written segment with a single fsynced append.

    The O(delta) publication path: one line in the current generation's
    delta log instead of a full checkpoint rewrite.  The line only becomes
    meaningful through the already-committed root (which names this log),
    so the append itself is the commit -- readers replaying the log see
    the segment exactly when the line is durable.  If the log's tail is
    torn (a previous appender crashed mid-write), a newline is prepended
    first so the torn bytes collapse into one skippable bad line instead
    of corrupting this one.
    """
    payload = canonical_dumps(
        {
            "segment": segment,
            "entries": {
                e.key: [e.offset, e.length, e.checksum] for e in entries
            },
            "columns": _columns_payload(columns),
        }
    ).encode("utf-8")
    line = b"D " + short_checksum(payload).encode("ascii") + b" " + payload + b"\n"
    path = directory / MANIFEST_DIR_NAME / delta_log_name(generation)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        repair = b""
        try:
            with open(path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() > 0:
                    handle.seek(-1, os.SEEK_END)
                    if handle.read(1) != b"\n":
                        repair = b"\n"
        except FileNotFoundError:
            pass
        fd = os.open(path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
        try:
            os.write(fd, repair + line)
            os.fsync(fd)
        finally:
            os.close(fd)
    except OSError:
        return False
    return True


def gc_unreferenced(
    directory: Path, manifest: Manifest, warn: "WarnFn" = _default_warn
) -> tuple[int, int]:
    """Remove every segment and manifest file the committed root no longer
    references; returns ``(segments_removed, manifest_files_removed)``.

    Only safe *after* a checkpoint swap and under the compaction lock:
    anything unreferenced then is either superseded (its records were
    rewritten into the new generation) or an orphan from a killed
    compactor/merger.  A reader that loaded the previous root just before
    GC can transiently see its segments as missing-with-warning; a reload
    self-heals, and no committed data is ever touched.
    """
    live = set(manifest.segments)
    removed_segments = removed_manifest = 0
    for path in directory.glob(SEGMENT_PATTERN):
        if path.name in live:
            continue
        try:
            path.unlink()
            removed_segments += 1
        except OSError:
            pass
    # Sidecars are shadows of their segment: drop any whose segment is
    # gone or published without one.  Not counted -- a ``.cols`` is part
    # of its ``.seg`` for accounting purposes, so the segment GC counters
    # (which tests and the MERGE line contract pin down) are unchanged.
    live_sidecars = {
        sidecar_name(name)
        for name, columns in manifest.segments.items()
        if columns.sidecar_length > 0
    }
    for path in directory.glob(SIDECAR_PATTERN):
        if path.name in live_sidecars:
            continue
        try:
            path.unlink()
        except OSError:
            pass
    keep = {shard_file_name(manifest.generation, sid) for sid in SHARD_IDS}
    keep.add(delta_log_name(manifest.generation))
    manifest_dir = directory / MANIFEST_DIR_NAME
    if manifest_dir.is_dir():
        for path in manifest_dir.iterdir():
            if path.name in keep:
                continue
            try:
                path.unlink()
                removed_manifest += 1
            except OSError:
                pass
    return removed_segments, removed_manifest
