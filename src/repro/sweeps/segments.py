"""Packed append-only segment files behind :class:`~repro.sweeps.store.SweepStore`.

One JSON file per scenario is ideal for resume (atomic, content-addressed,
safe under concurrent writers) but pathological to *load*: a million-record
analysis pays a million ``open``/``read``/``parse`` round trips.  This
module packs finished records into immutable, checksummed **segments** so a
full-store load is O(segments) bulk reads while every resume guarantee of
the loose format survives untouched.

Segment layout (``segment-NNNNNN.seg``, UTF-8 bytes)::

    SEG reproseg <format> <schema_version> <engine_version>\\n   header
    REC <key> <nbytes> <checksum16>\\n                           one frame
    <payload bytes>\\n                                             per record
    ...
    COL <nbytes> <checksum16>\\n                                 columnar
    <columnar payload bytes>\\n                                    block
    END <count> <keys_checksum16>\\n                             seal footer

- Every **record frame** carries the full record payload in the store's
  canonical JSON bytes (:func:`repro.core.serialize.canonical_dumps`), so a
  random-access read returns exactly the dict the loose file held --
  ``--resume`` stays byte-for-byte exact.
- The **columnar block** holds the same records flattened to the unified
  analysis row schema (:func:`repro.sweeps.analysis.record_row`) as
  ``{"keys": [...], "names": [...], "columns": {name: [...]}}``: one
  ``json.loads`` materializes an entire segment's worth of
  :class:`~repro.sweeps.analysis.ResultTable` columns without building a
  single per-record dict.  That block is what makes ``ResultTable.from_store``
  on a compacted store ~10x+ faster than the loose path (gated in
  ``benchmarks/test_perf_store_load.py``).
- The **footer** seals the segment.  A missing or malformed footer, a
  truncated tail, or a frame whose checksum disagrees degrades to
  *missing-with-warning* for the affected records -- exactly how a
  half-written loose file reads -- and never crashes ``--resume`` or
  ``analyze``.

Segments are immutable once written (atomic tmp + rename) and are only
reachable through the **manifest** (``MANIFEST.json``), which maps every
sealed key to ``(segment, offset, length, checksum)``.  Compaction writes
new segment files first and publishes them with one atomic manifest swap,
so readers and concurrent loose-record writers never observe a partial
compaction; a compactor killed between the two steps leaves an orphan
segment file that is simply never referenced.

Compaction is equally safe under concurrent distributed *claimers*
(:mod:`repro.sweeps.distributed`): lease files live in the store's
``leases/`` subdirectory, outside both the loose-record glob and the
segment/manifest namespace, so sealing neither sees nor disturbs
outstanding claims -- and a ``--seal``-ing worker whose keyed compaction
loses the compactor lock simply leaves those records loose for a later
pass.

The byte-level layout of every structure here is specified normatively in
``docs/store-format.md``.
"""

from __future__ import annotations

import json
import typing
import warnings
from dataclasses import dataclass
from pathlib import Path

from repro.core.serialize import canonical_dumps, short_checksum
from repro.pipeline.cache import atomic_write_bytes

if typing.TYPE_CHECKING:
    from collections.abc import Callable, Iterator, Sequence

__all__ = [
    "MANIFEST_NAME",
    "SEGMENT_FORMAT_VERSION",
    "SEGMENT_MAGIC",
    "SEGMENT_PATTERN",
    "Manifest",
    "SegmentColumns",
    "SegmentEntry",
    "iter_segment_records",
    "load_manifest",
    "next_segment_name",
    "pack_segment",
    "read_segment_columns",
    "read_segment_record",
    "write_manifest",
    "write_segment",
]

SEGMENT_MAGIC = "reproseg"
SEGMENT_FORMAT_VERSION = 1
MANIFEST_NAME = "MANIFEST.json"
MANIFEST_VERSION = 1
SEGMENT_PATTERN = "segment-*.seg"

#: A ``warn(dedup_key, message)`` sink; the store passes its deduplicating
#: warner so one bad file warns once per store, not once per access.
WarnFn = "Callable[[str, str], None]"


def _default_warn(dedup_key: str, message: str) -> None:
    warnings.warn(message, RuntimeWarning, stacklevel=4)


@dataclass(frozen=True)
class SegmentEntry:
    """Manifest pointer to one sealed record: where and what to verify.

    ``offset``/``length`` bound the payload bytes inside ``segment``;
    ``checksum`` is :func:`~repro.core.serialize.short_checksum` of exactly
    those bytes.
    """

    key: str
    segment: str
    offset: int
    length: int
    checksum: str


@dataclass(frozen=True)
class SegmentColumns:
    """Manifest pointer to one segment's columnar analysis block."""

    offset: int
    length: int
    checksum: str
    count: int


@dataclass(frozen=True)
class Manifest:
    """The store's sealed-record index, swapped atomically on compaction.

    Attributes:
        entries: key -> :class:`SegmentEntry` for every sealed record.
        segments: segment filename -> :class:`SegmentColumns`.
        schema_version: record schema the sealed records were written under.
        engine_version: package version that sealed them (sealed records
            are generation-checked exactly like loose ones).
    """

    entries: dict
    segments: dict
    schema_version: int
    engine_version: str


# -- segment encoding ----------------------------------------------------------


def pack_segment(
    records: "Sequence[dict]",
) -> tuple[bytes, list[tuple[str, int, int, str]], SegmentColumns]:
    """Encode sealed ``records`` into one segment byte blob.

    Records must already be store-stamped (``key``/``schema_version``/
    ``engine_version`` present) and are framed in the given order; callers
    sort by key first so a sealed segment's frames -- and its columnar
    block -- are in ascending key order.

    Returns ``(blob, frames, columns)`` where ``frames`` holds one
    ``(key, payload_offset, payload_length, checksum)`` tuple per record.
    """
    from repro import __version__
    from repro.sweeps.analysis import record_row, canonical_order
    from repro.sweeps.store import SCHEMA_VERSION

    parts: list[bytes] = []
    frames: list[tuple[str, int, int, str]] = []
    header = (
        f"SEG {SEGMENT_MAGIC} {SEGMENT_FORMAT_VERSION} "
        f"{SCHEMA_VERSION} {__version__}\n"
    ).encode("utf-8")
    parts.append(header)
    pos = len(header)
    keys: list[str] = []
    for record in records:
        key = str(record["key"])
        payload = canonical_dumps(record).encode("utf-8")
        checksum = short_checksum(payload)
        frame_header = f"REC {key} {len(payload)} {checksum}\n".encode("utf-8")
        parts.append(frame_header)
        pos += len(frame_header)
        frames.append((key, pos, len(payload), checksum))
        parts.append(payload)
        parts.append(b"\n")
        pos += len(payload) + 1
        keys.append(key)

    rows = [record_row(record) for record in records]
    names = canonical_order({name for row in rows for name in row})
    block = canonical_dumps(
        {
            "keys": keys,
            "names": names,
            "columns": {n: [row.get(n) for row in rows] for n in names},
        }
    ).encode("utf-8")
    block_checksum = short_checksum(block)
    col_header = f"COL {len(block)} {block_checksum}\n".encode("utf-8")
    parts.append(col_header)
    columns = SegmentColumns(
        offset=pos + len(col_header),
        length=len(block),
        checksum=block_checksum,
        count=len(records),
    )
    parts.append(block)
    parts.append(b"\n")
    keys_checksum = short_checksum(",".join(keys))
    parts.append(f"END {len(keys)} {keys_checksum}\n".encode("utf-8"))
    return b"".join(parts), frames, columns


def next_segment_name(directory: Path) -> str:
    """First unused ``segment-NNNNNN.seg`` name (orphans count as used)."""
    highest = 0
    for path in directory.glob(SEGMENT_PATTERN):
        stem = path.name[len("segment-") : -len(".seg")]
        if stem.isdigit():
            highest = max(highest, int(stem))
    return f"segment-{highest + 1:06d}.seg"


def write_segment(
    directory: Path, records: "Sequence[dict]"
) -> tuple[str, list[SegmentEntry], SegmentColumns] | None:
    """Pack ``records`` and write them as a new immutable segment file.

    The write is atomic (tmp + rename); the segment is *not* yet visible to
    readers -- it becomes reachable only when the caller publishes it in
    the manifest.  The name is reserved with an exclusive create first, so
    even a rogue second compactor (possible only after a stale lock was
    force-broken) can never overwrite an existing segment.  Returns None
    when the filesystem refuses the write.
    """
    blob, frames, columns = pack_segment(records)
    name = None
    for _ in range(1000):
        candidate = next_segment_name(directory)
        try:
            (directory / candidate).touch(exist_ok=False)
        except FileExistsError:
            continue
        except OSError:
            return None
        name = candidate
        break
    if name is None:
        return None
    if not atomic_write_bytes(directory / name, blob):
        return None
    entries = [
        SegmentEntry(key=k, segment=name, offset=o, length=n, checksum=c)
        for k, o, n, c in frames
    ]
    return name, entries, columns


# -- segment decoding ----------------------------------------------------------


def _read_line(data: bytes, pos: int) -> tuple[str, int] | None:
    """Decode one ``\\n``-terminated ASCII line at ``pos``; None at EOF or
    on an unterminated (truncated) tail."""
    end = data.find(b"\n", pos)
    if end < 0:
        return None
    try:
        return data[pos:end].decode("utf-8"), end + 1
    except UnicodeDecodeError:
        return None


def iter_segment_records(
    data: bytes, source: str, warn: "WarnFn" = _default_warn
) -> "Iterator[tuple[str, dict]]":
    """Yield every intact ``(key, record)`` of one segment's bytes.

    Tolerant by design: a malformed header drops the whole segment, a
    corrupt or truncated frame drops that record *and everything after it*
    (framing can no longer be trusted), and a checksum mismatch drops just
    that record -- each with one warning through ``warn``.  Whatever
    prefix of the segment survives reads normally, mirroring how a
    half-written loose file degrades to missing-with-warning.
    """
    line = _read_line(data, 0)
    if line is None or not line[0].startswith(f"SEG {SEGMENT_MAGIC} "):
        warn(
            f"{source}:header",
            f"sweep store: segment {source} has no valid header; "
            f"treating its records as missing",
        )
        return
    header, pos = line
    fields = header.split()
    if len(fields) < 3 or fields[2] != str(SEGMENT_FORMAT_VERSION):
        warn(
            f"{source}:format",
            f"sweep store: segment {source} has unsupported format "
            f"{fields[2] if len(fields) > 2 else '?'!r} "
            f"(expected {SEGMENT_FORMAT_VERSION}); treating its records as missing",
        )
        return
    while True:
        line = _read_line(data, pos)
        if line is None:
            warn(
                f"{source}:truncated",
                f"sweep store: segment {source} is truncated before its "
                f"seal footer; records past the damage read as missing",
            )
            return
        text, pos = line
        if text.startswith("END "):
            return
        if text.startswith("COL "):
            # Skip over the columnar block to reach the footer.
            parts = text.split()
            if len(parts) != 3 or not parts[1].isdigit():
                warn(
                    f"{source}:columns-frame",
                    f"sweep store: segment {source} has a malformed "
                    f"columnar frame; remainder unreadable",
                )
                return
            pos += int(parts[1]) + 1
            continue
        parts = text.split()
        if len(parts) != 4 or parts[0] != "REC" or not parts[2].isdigit():
            warn(
                f"{source}:frame@{pos}",
                f"sweep store: segment {source} has a corrupt record frame; "
                f"records past the damage read as missing",
            )
            return
        _, key, length_text, checksum = parts
        length = int(length_text)
        payload = data[pos : pos + length]
        if len(payload) < length:
            warn(
                f"{source}:truncated",
                f"sweep store: segment {source} is truncated mid-record; "
                f"records past the damage read as missing",
            )
            return
        pos += length + 1
        if short_checksum(payload) != checksum:
            warn(
                f"{source}:{key[:12]}",
                f"sweep store: sealed record {key[:12]}... in {source} "
                f"fails its checksum; treating it as missing",
            )
            continue
        try:
            record = json.loads(payload)
        except json.JSONDecodeError:
            warn(
                f"{source}:{key[:12]}",
                f"sweep store: sealed record {key[:12]}... in {source} "
                f"is not valid JSON; treating it as missing",
            )
            continue
        if isinstance(record, dict):
            yield key, record


def read_segment_record(
    path: Path, entry: SegmentEntry, warn: "WarnFn" = _default_warn
) -> dict | None:
    """Random-access one sealed record through its manifest entry.

    Seeks straight to the payload, verifies its checksum, and parses it;
    any failure (missing segment, short read, checksum or JSON mismatch)
    reads as missing-with-warning, never an exception.
    """
    try:
        with open(path, "rb") as handle:
            handle.seek(entry.offset)
            payload = handle.read(entry.length)
    except OSError as exc:
        warn(
            f"{path.name}:missing",
            f"sweep store: manifest points at unreadable segment "
            f"{path.name} ({exc}); its records read as missing",
        )
        return None
    if len(payload) < entry.length or short_checksum(payload) != entry.checksum:
        warn(
            f"{path.name}:{entry.key[:12]}",
            f"sweep store: sealed record {entry.key[:12]}... in {path.name} "
            f"fails its checksum; treating it as missing",
        )
        return None
    try:
        record = json.loads(payload)
    except json.JSONDecodeError:
        warn(
            f"{path.name}:{entry.key[:12]}",
            f"sweep store: sealed record {entry.key[:12]}... in {path.name} "
            f"is not valid JSON; treating it as missing",
        )
        return None
    return record if isinstance(record, dict) else None


def read_segment_columns(
    path: Path, columns: SegmentColumns, warn: "WarnFn" = _default_warn
) -> dict | None:
    """Load one segment's columnar block (the bulk-analysis fast path).

    One seek + one read + one ``json.loads`` per segment.  Returns the
    ``{"keys", "names", "columns"}`` mapping, or None (with a warning) on
    any integrity failure -- callers then fall back to the per-frame scan,
    which salvages whatever records are intact.
    """
    try:
        with open(path, "rb") as handle:
            handle.seek(columns.offset)
            block = handle.read(columns.length)
    except OSError as exc:
        warn(
            f"{path.name}:missing",
            f"sweep store: manifest points at unreadable segment "
            f"{path.name} ({exc}); its records read as missing",
        )
        return None
    if len(block) < columns.length or short_checksum(block) != columns.checksum:
        warn(
            f"{path.name}:columns",
            f"sweep store: columnar block of {path.name} fails its "
            f"checksum; falling back to the record frames",
        )
        return None
    try:
        parsed = json.loads(block)
    except json.JSONDecodeError:
        warn(
            f"{path.name}:columns",
            f"sweep store: columnar block of {path.name} is not valid "
            f"JSON; falling back to the record frames",
        )
        return None
    if (
        not isinstance(parsed, dict)
        or not isinstance(parsed.get("keys"), list)
        or not isinstance(parsed.get("names"), list)
        or not isinstance(parsed.get("columns"), dict)
    ):
        warn(
            f"{path.name}:columns",
            f"sweep store: columnar block of {path.name} has an unexpected "
            f"shape; falling back to the record frames",
        )
        return None
    return parsed


# -- manifest ------------------------------------------------------------------


def load_manifest(directory: Path, warn: "WarnFn" = _default_warn) -> Manifest | None:
    """Read the store's manifest; None when absent or unreadable.

    An unreadable or malformed manifest degrades exactly like a corrupt
    record: the sealed records it pointed at read as missing-with-warning
    (loose records are unaffected), and the next compaction rebuilds it.
    """
    path = directory / MANIFEST_NAME
    if not path.exists():
        return None
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        warn(
            f"{MANIFEST_NAME}:unreadable",
            f"sweep store: unreadable manifest {path.name} ({exc}); "
            f"sealed records read as missing until the next compaction",
        )
        return None
    if not isinstance(data, dict) or data.get("manifest_version") != MANIFEST_VERSION:
        warn(
            f"{MANIFEST_NAME}:version",
            f"sweep store: manifest {path.name} has unsupported version "
            f"{data.get('manifest_version') if isinstance(data, dict) else '?'!r}; "
            f"sealed records read as missing",
        )
        return None
    try:
        entries = {
            key: SegmentEntry(
                key=key,
                segment=str(spec[0]),
                offset=int(spec[1]),
                length=int(spec[2]),
                checksum=str(spec[3]),
            )
            for key, spec in (data.get("entries") or {}).items()
        }
        segments = {
            name: SegmentColumns(
                offset=int(spec["columns_offset"]),
                length=int(spec["columns_length"]),
                checksum=str(spec["columns_checksum"]),
                count=int(spec["count"]),
            )
            for name, spec in (data.get("segments") or {}).items()
        }
    except (KeyError, IndexError, TypeError, ValueError):
        warn(
            f"{MANIFEST_NAME}:malformed",
            f"sweep store: malformed manifest {path.name}; sealed records "
            f"read as missing until the next compaction",
        )
        return None
    return Manifest(
        entries=entries,
        segments=segments,
        schema_version=data.get("schema_version"),
        engine_version=data.get("engine_version"),
    )


def write_manifest(directory: Path, manifest: Manifest) -> bool:
    """Atomically publish ``manifest`` (the compaction commit point).

    Readers see either the old manifest or the new one, never a mix; the
    rename is what makes compaction safe under concurrent record writers.
    """
    payload = {
        "manifest_version": MANIFEST_VERSION,
        "schema_version": manifest.schema_version,
        "engine_version": manifest.engine_version,
        "entries": {
            key: [e.segment, e.offset, e.length, e.checksum]
            for key, e in sorted(manifest.entries.items())
        },
        "segments": {
            name: {
                "count": c.count,
                "columns_offset": c.offset,
                "columns_length": c.length,
                "columns_checksum": c.checksum,
            }
            for name, c in sorted(manifest.segments.items())
        },
    }
    return atomic_write_bytes(
        directory / MANIFEST_NAME, canonical_dumps(payload).encode("utf-8")
    )
