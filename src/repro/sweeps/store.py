"""Resumable on-disk store for sweep results.

Finished scenarios live in one of two interchangeable backends inside the
same store directory:

- **loose records** -- one JSON file per scenario, named by the scenario's
  content address (see :func:`scenario_key`), written atomically so
  parallel jobs and interrupted runs never leave half-written entries.
  Ideal for resume: "skip every scenario whose file already exists", no
  journal, safe under concurrent writers.
- **packed segments** (:mod:`repro.sweeps.segments`) -- immutable,
  checksummed, length-prefixed segment files produced by
  :meth:`SweepStore.compact`, indexed by an atomically-swapped manifest.
  Ideal for load: a million-record analysis is O(segments) bulk reads
  instead of O(records) file opens, and each segment carries a columnar
  block that materializes :class:`~repro.sweeps.analysis.ResultTable`
  columns without per-record parsing.

Both backends answer :meth:`get`/:meth:`records` identically (loose wins
when a key exists in both), corrupt or truncated data always reads as
missing-with-warning, and each distinct problem warns **once per store
directory per process** (a 10^5-record scan over a few bad files must not
flood the log).  Warnings go both to :mod:`warnings` (``RuntimeWarning``)
and to the module logger ``repro.sweeps.store`` -- configure the latter
(e.g. ``logging.getLogger("repro.sweeps").setLevel(...)``) to control
store diagnostics in long-running workers.

A third kind of file supports **distributed sweeps**
(:mod:`repro.sweeps.distributed`): advisory *lease files* under
``leases/`` mark a scenario key as claimed by one worker.  A lease is
created atomically (``O_CREAT | O_EXCL``), carries its owner id, and is
heartbeat by file mtime; a lease whose heartbeat is older than the
caller's TTL is presumed abandoned (a SIGKILLed worker) and can be
reclaimed.  Leases are an *efficiency* mechanism only: records are pure
functions of their scenario content and :meth:`put` is atomic, so even a
duplicated evaluation writes byte-identical data.  Lease files are never
records -- iteration, compaction, and analysis ignore ``leases/``
entirely.

Record schema (``SCHEMA_VERSION = 2``)::

    {
      "schema_version": 2,
      "engine_version": "<repro.__version__ that computed the record>",
      "key": "<sha256 scenario address>",
      "scenario": {
        "benchmark", "technique", "shots", "seed",
        "spec_name", "spec_overrides": {field: value},
        "config_overrides": {field: value},   # only for config-axis grids
        "noise": {NoiseModelConfig fields},
        "fingerprints": {"circuit", "spec", "config"}
      },
      "result": {"num_cz", "num_u3", "num_ccz", "num_swaps", "num_moves",
                 "trap_change_events", "num_layers", "runtime_us"},
      "outcome": {"shots", "successes", "gate_failures",
                  "movement_failures", "decoherence_failures",
                  "readout_failures", "success_rate", "stderr"},
      "analytic_success": float
    }
"""

from __future__ import annotations

import heapq
import json
import logging
import mmap
import os
import socket
import time
import typing
import uuid
import warnings
from dataclasses import dataclass
from pathlib import Path

from repro.core.serialize import canonical_dumps
from repro.pipeline.cache import atomic_write_text
from repro.pipeline.fingerprint import fingerprint_obj
from repro.sweeps import segments as seg

if typing.TYPE_CHECKING:
    from collections.abc import Iterable, Iterator
    from repro.sweeps.grid import Scenario

__all__ = [
    "DEFAULT_LEASE_TTL_S",
    "LEASE_DIR_NAME",
    "SCHEMA_VERSION",
    "CompactionReport",
    "MergeReport",
    "StoreStats",
    "SweepStore",
    "default_owner_id",
    "scenario_key",
]

SCHEMA_VERSION = 2

#: Subdirectory holding distributed-claim lease files (never records).
LEASE_DIR_NAME = "leases"

#: Leases whose heartbeat (file mtime) is older than this are presumed
#: abandoned -- long enough to survive one slow compile, short enough that
#: a SIGKILLed worker's keys are reclaimed promptly.
DEFAULT_LEASE_TTL_S = 60.0

_UNLOADED = object()

#: Module logger for store diagnostics; see the module docstring.
logger = logging.getLogger(__name__)

#: (scope, problem) pairs already reported this process.  Module-level so
#: the many short-lived SweepStore instances one process opens (evaluation
#: workers open the store once per chunk) report each distinct problem
#: once, not once per instance.
_WARNED: set = set()


def _warn_once(scope: str, dedup_key: str, message: str, stacklevel: int = 5) -> None:
    """Report one store problem once per (directory, problem) per process.

    Routes through both the module logger (configurable, survives
    ``warnings`` filters in long-running workers) and :mod:`warnings`
    (visible in tests and interactive use).
    """
    entry = (scope, dedup_key)
    if entry in _WARNED:
        return
    _WARNED.add(entry)
    logger.warning(message)
    warnings.warn(message, RuntimeWarning, stacklevel=stacklevel)


def default_owner_id() -> str:
    """A collision-free lease-owner id: host, pid, and a random tail.

    Host + pid alone would collide when a pid is recycled mid-sweep (or
    across container restarts sharing one filesystem), so a random suffix
    makes every worker invocation distinct.
    """
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:8]}"


def scenario_key(
    scenario: "Scenario", circuit_fp: str, config_fp: str
) -> str:
    """Content address of one evaluated scenario.

    Hashes everything the stored record is a pure function of: the circuit
    and compile-config fingerprints (which pin the compiled artifact), the
    effective spec, the noise configuration, and the shot count and seed of
    the Monte Carlo run, plus the package version (results from older
    engine code must not be resumed into newer sweeps).

    Config-axis overrides are mixed in *only when present*: a technique's
    ``make_config`` drops knobs it does not consume (ELDI ignores placement
    seeds), so the config fingerprint alone cannot separate two scenarios
    on an axis a technique ignores -- but they are still distinct rows of
    the sweep.  Config-less grids hash the exact payload older engines
    hashed, so their existing stores keep resuming byte-identically.
    """
    from repro import __version__

    payload = {
        "benchmark": scenario.benchmark,
        "technique": scenario.technique,
        "circuit": circuit_fp,
        "config": config_fp,
        "spec": fingerprint_obj(scenario.spec),
        "noise": fingerprint_obj(scenario.noise),
        "shots": scenario.shots,
        "seed": scenario.seed,
        "version": __version__,
    }
    overrides = getattr(scenario, "config_overrides", ())
    if overrides:
        payload["config_overrides"] = dict(overrides)
    return fingerprint_obj(payload)


@dataclass(frozen=True)
class CompactionReport:
    """Outcome of one :meth:`SweepStore.compact` pass.

    Attributes:
        sealed: loose records packed into the new segment this pass.
        deduped: loose files removed because their key was already sealed
            (e.g. a previous compaction was killed between its manifest
            swap and its loose-file cleanup).
        skipped: loose files left untouched (unreadable, wrong schema, or
            foreign engine generation -- never silently destroyed).
        segment: filename of the newly sealed segment, or None when there
            was nothing to seal.
    """

    sealed: int
    deduped: int
    skipped: int
    segment: str | None


@dataclass(frozen=True)
class MergeReport:
    """Outcome of one :meth:`SweepStore.merge` pass.

    Attributes:
        sealed: loose records compacted into segments before merging.
        merged: sealed records rewritten into generation-tagged segments
            (0 when the store was already fully merged -- merge is
            idempotent).
        segments: generation-tagged segment files written this pass.
        generation: the store's manifest generation after the pass.
        gc_segments: superseded or orphaned segment files removed.
        gc_manifest: stale manifest shard/delta files removed.
    """

    sealed: int
    merged: int
    segments: int
    generation: int
    gc_segments: int
    gc_manifest: int

    @property
    def summary_line(self) -> str:
        """Stable machine-readable one-liner (``MERGE sealed=... ...``);
        fields are append-only, like every other summary-line contract."""
        return (
            f"MERGE sealed={self.sealed} merged={self.merged} "
            f"segments={self.segments} generation={self.generation} "
            f"gc_segments={self.gc_segments} gc_manifest={self.gc_manifest}"
        )


@dataclass(frozen=True)
class StoreStats:
    """Backend census of one store directory."""

    loose: int
    sealed: int
    segments: int
    leases: int = 0
    generation: int = 0
    shards: int = 0
    deltas: int = 0

    def describe(self) -> str:
        text = (
            f"{self.loose} loose + {self.sealed} sealed records "
            f"in {self.segments} segment(s)"
        )
        if self.generation:
            text += (
                f", generation {self.generation} "
                f"({self.shards} shard(s), {self.deltas} delta(s))"
            )
        if self.leases:
            text += f", {self.leases} active lease(s)"
        return text

    @property
    def summary_line(self) -> str:
        """Stable machine-readable one-liner (``STATS loose=... ...``) for
        the ``stats`` subcommand and scripts; fields are append-only."""
        return (
            f"STATS loose={self.loose} sealed={self.sealed} "
            f"segments={self.segments} generation={self.generation} "
            f"shards={self.shards} deltas={self.deltas} "
            f"leases={self.leases}"
        )

    def as_dict(self) -> dict:
        """The census as one JSON-ready mapping -- the same fields as the
        ``STATS`` line, in the same order, for ``stats --json`` and fleet
        tooling that shouldn't grep prose.  Keys are append-only, like
        the line's fields."""
        return {
            "loose": self.loose,
            "sealed": self.sealed,
            "segments": self.segments,
            "generation": self.generation,
            "shards": self.shards,
            "deltas": self.deltas,
            "leases": self.leases,
        }


class SweepStore:
    """Directory of per-scenario records, addressed by scenario key."""

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._manifest: object = _UNLOADED

    # -- warnings --------------------------------------------------------------

    def _warn(self, dedup_key: str, message: str) -> None:
        """Warn once per distinct problem per store directory per process.

        Every corrupt-data path funnels through here so a large scan over a
        store with a few bad files emits a few warnings, not one per access
        per iteration.  Deduplication is keyed on ``(directory, problem)``
        at module level (see :func:`_warn_once`), so reopening the store --
        which evaluation workers do once per chunk -- does not re-warn.
        """
        _warn_once(str(self.directory), dedup_key, message)

    # -- paths and manifest ----------------------------------------------------

    def path(self, key: str) -> Path:
        """Loose file backing ``key`` (exists iff stored loose)."""
        return self.directory / f"{key[:40]}.json"

    def loose_paths(self) -> "Iterator[Path]":
        """Every loose record file (the manifest is not a record)."""
        for path in self.directory.glob("*.json"):
            if path.name != seg.MANIFEST_NAME:
                yield path

    def manifest(self, reload: bool = False) -> "seg.Manifest | None":
        """The sealed-record index, lazily loaded and cached."""
        if reload or self._manifest is _UNLOADED:
            self._manifest = seg.load_manifest(self.directory, warn=self._warn)
        return self._manifest  # type: ignore[return-value]

    def _current_manifest(self) -> "seg.Manifest | None":
        """The manifest, if it indexes this schema + engine generation.

        A manifest written by an older package version is skipped whole
        (with one warning): its Monte Carlo numbers must never blend into
        a newer analysis, mirroring the per-record generation check on
        loose files.
        """
        from repro import __version__

        manifest = self.manifest()
        if manifest is None:
            return None
        if (
            manifest.schema_version != SCHEMA_VERSION
            or manifest.engine_version != __version__
        ):
            self._warn(
                f"{seg.MANIFEST_NAME}:generation",
                f"sweep store: skipping {len(manifest.entries)} sealed "
                f"records from engine {manifest.engine_version!r} / schema "
                f"{manifest.schema_version!r} (this is {__version__} / "
                f"{SCHEMA_VERSION}; recompact to refresh)",
            )
            return None
        return manifest

    # -- membership ------------------------------------------------------------

    def __contains__(self, key: object) -> bool:
        if not isinstance(key, str):
            return False
        if self.path(key).exists():
            return True
        manifest = self._current_manifest()
        return manifest is not None and key in manifest.entries

    def __len__(self) -> int:
        prefixes = {path.stem for path in self.loose_paths()}
        manifest = self._current_manifest()
        if manifest is not None:
            prefixes |= {key[:40] for key in manifest.entries}
        return len(prefixes)

    def stats(self) -> StoreStats:
        """Loose/sealed record counts, segment/generation census, and
        active leases."""
        manifest = self._current_manifest()
        return StoreStats(
            loose=sum(1 for _ in self.loose_paths()),
            sealed=len(manifest.entries) if manifest is not None else 0,
            segments=len(manifest.segments) if manifest is not None else 0,
            leases=sum(1 for _ in self.lease_paths()),
            generation=manifest.generation if manifest is not None else 0,
            shards=manifest.shard_count if manifest is not None else 0,
            deltas=manifest.delta_records if manifest is not None else 0,
        )

    def missing_keys(self, keys: "Iterable[str]") -> "Iterator[str]":
        """Yield every key of ``keys`` not yet stored, preserving order.

        The pending-work iterator behind the distributed claim loop: a
        worker scans the grid's keys through this, then races to lease
        each one.  Membership is existence-level (loose file present or
        key sealed in the current-generation manifest) -- cheap enough to
        re-scan every round -- so a corrupt record *is* counted as present
        here and only discovered (and recomputed) by :meth:`get` at resume
        time.
        """
        for key in keys:
            if key not in self:
                yield key

    # -- loose-record parsing --------------------------------------------------

    def _load(self, path: Path) -> dict | None:
        """Parse one loose record file; truncated/corrupt entries are
        *missing*.

        A kill mid-write on a filesystem without atomic rename can leave a
        half-written file behind; raising there would wedge every later
        ``--resume``, so unreadable records warn once and read as absent
        (the scenario is simply recomputed and the file overwritten).
        """
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            self._warn(
                f"{path.name}:unreadable",
                f"sweep store: treating unreadable record {path.name} as "
                f"missing ({exc})",
            )
            return None
        if not isinstance(record, dict):
            self._warn(
                f"{path.name}:non-object",
                f"sweep store: treating non-object record {path.name} as missing",
            )
            return None
        return record

    def _generation_ok(self, record: dict, source: str) -> bool:
        """Schema + engine generation gate shared by every read path."""
        from repro import __version__

        if record.get("schema_version") != SCHEMA_VERSION:
            self._warn(
                f"{source}:schema",
                f"sweep store: skipping record {source} with "
                f"schema_version={record.get('schema_version')!r} "
                f"(expected {SCHEMA_VERSION})",
            )
            return False
        if record.get("engine_version") != __version__:
            self._warn(
                f"{source}:engine",
                f"sweep store: skipping record {source} computed by "
                f"engine {record.get('engine_version')!r} (this is "
                f"{__version__}; rerun the sweep to refresh it)",
            )
            return False
        return True

    # -- point reads and writes ------------------------------------------------

    def get(self, key: str) -> dict | None:
        """The stored record for ``key``, or None (corrupt data counts as
        missing-with-warning, so an interrupted write is simply recomputed).

        Loose records win over sealed ones; a loose record that fails to
        parse falls back to the sealed copy when one exists.
        """
        path = self.path(key)
        if path.exists():
            record = self._load(path)
            if (
                record is not None
                and record.get("key") == key
                and self._generation_ok(record, path.name)
            ):
                return record
        manifest = self._current_manifest()
        if manifest is None:
            return None
        entry = manifest.entries.get(key)
        if entry is None:
            return None
        segment_path = self.directory / entry.segment
        if not segment_path.exists():
            self._warn(
                f"{entry.segment}:missing",
                f"sweep store: manifest points at missing segment "
                f"{entry.segment}; its records read as missing "
                f"(recompact to rebuild the index)",
            )
            return None
        record = seg.read_segment_record(segment_path, entry, warn=self._warn)
        if record is None or record.get("key") != key:
            return None
        if not self._generation_ok(record, f"{entry.segment}:{key[:12]}"):
            return None
        return record

    def put(self, key: str, record: dict) -> None:
        """Persist ``record`` under ``key`` atomically (as a loose file).

        The stamped ``key``/``schema_version``/``engine_version`` fields
        are authoritative (they overwrite any stale values in ``record``),
        and a failed write raises: a sweep whose store cannot persist must
        not keep reporting scenarios as safely computed.
        """
        from repro import __version__

        payload = {
            **record,
            "schema_version": SCHEMA_VERSION,
            "engine_version": __version__,
            "key": key,
        }
        if not atomic_write_text(self.path(key), canonical_dumps(payload)):
            raise OSError(f"failed to persist sweep record to {self.path(key)}")

    # -- leases (distributed claims) -------------------------------------------

    @property
    def lease_dir(self) -> Path:
        return self.directory / LEASE_DIR_NAME

    def lease_path(self, key: str) -> Path:
        """Lease file backing ``key`` (exists iff some worker claims it).

        ``key`` is any claimable resource name: a full scenario key (never
        truncated -- two keys sharing a long prefix must not share a lease
        file and silently serialize or cross-release each other) or a
        ``range-<checksum>`` block name from the range-lease protocol
        (:mod:`repro.sweeps.distributed`).
        """
        return self.lease_dir / f"{key}.lease"

    def lease_paths(self) -> "Iterator[Path]":
        """Every lease file currently on disk (live or expired)."""
        if not self.lease_dir.is_dir():
            return
        yield from self.lease_dir.glob("*.lease")

    def _write_lease(self, path: Path, key: str, owner: str) -> bool:
        """Atomically *claim* ``path`` for ``owner`` (O_CREAT | O_EXCL).

        The exclusive create is the claim; the JSON body (owner/pid/host)
        is informational.  A worker killed between create and write leaves
        an empty lease, which simply expires by TTL like any other.
        """
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except OSError:
            return False
        try:
            payload = canonical_dumps(
                {
                    "key": key,
                    "owner": owner,
                    "pid": os.getpid(),
                    "host": socket.gethostname(),
                    "acquired_at": time.time(),
                }
            )
            os.write(fd, payload.encode("utf-8"))
        finally:
            os.close(fd)
        return True

    def read_lease(self, key: str) -> dict | None:
        """The lease claiming ``key`` -- its JSON body plus ``age_s`` (the
        seconds since its last heartbeat) -- or None when unclaimed.

        An unreadable or half-written lease body reads as an *anonymous*
        claim (``owner`` None): it still blocks acquisition until its TTL
        expires, because some process did win the exclusive create.
        """
        path = self.lease_path(key)
        try:
            age = time.time() - path.stat().st_mtime
            body = json.loads(path.read_text(encoding="utf-8"))
        except OSError:
            return None
        except (json.JSONDecodeError, UnicodeDecodeError):
            body = {}
        if not isinstance(body, dict):
            body = {}
        return {"owner": body.get("owner"), "age_s": max(age, 0.0), **body}

    def acquire_lease(
        self, key: str, owner: str, ttl_s: float = DEFAULT_LEASE_TTL_S
    ) -> str | None:
        """Try to claim ``key`` for ``owner``; the distributed-claim core.

        Returns ``"acquired"`` (fresh claim), ``"reclaimed"`` (an expired
        lease -- heartbeat older than ``ttl_s`` -- was taken over), or
        ``None`` (a live lease holds the key; try another key and come
        back).

        Atomicity: creation is ``O_CREAT | O_EXCL``, so exactly one of any
        number of racing claimers wins.  Reclaiming an expired lease first
        *renames* it to a unique tombstone -- rename is atomic, so exactly
        one of the racing reclaimers succeeds and the losers see the key
        as contended -- and only then re-creates the lease, which means a
        fresh claim can never be destroyed by a slow reclaimer.
        """
        path = self.lease_path(key)
        self.lease_dir.mkdir(parents=True, exist_ok=True)
        if self._write_lease(path, key, owner):
            return "acquired"
        try:
            age = time.time() - path.stat().st_mtime
        except OSError:
            # Holder released between our create attempt and the stat.
            return "acquired" if self._write_lease(path, key, owner) else None
        if age <= ttl_s:
            return None
        tombstone = path.with_name(
            f"{path.name}.reclaim-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        )
        try:
            os.rename(path, tombstone)
        except OSError:
            return None  # another reclaimer won the rename
        try:
            tombstone.unlink()
        except OSError:
            pass
        if self._write_lease(path, key, owner):
            return "reclaimed"
        return None

    def refresh_lease(self, key: str, owner: str) -> bool:
        """Heartbeat ``owner``'s lease on ``key`` (bump its mtime).

        Returns False -- without touching anything -- when the lease is
        gone or owned by someone else (it expired and was reclaimed while
        we worked; the work is still safe to finish, since records are
        pure and writes atomic, but the caller should stop refreshing).
        """
        lease = self.read_lease(key)
        if lease is None or lease.get("owner") != owner:
            return False
        try:
            os.utime(self.lease_path(key))
        except OSError:
            return False
        return True

    def release_lease(self, key: str, owner: str) -> bool:
        """Drop ``owner``'s lease on ``key``; True when removed.

        Only the owner's own lease is removed: if the lease expired and
        another worker reclaimed it, releasing must not destroy *their*
        claim.  An orphaned lease (owner gone) is left to expire by TTL.

        A plain read-then-unlink would race a reclaimer (the lease could
        change hands between the two calls), so release renames the lease
        to a private tombstone first -- atomic, exactly one mover -- and
        verifies ownership on the tombstone.  A stranger's lease moved by
        mistake is restored with ``os.link`` (which refuses to clobber an
        even newer claim rather than overwrite it).
        """
        lease = self.read_lease(key)
        if lease is None or lease.get("owner") != owner:
            return False
        path = self.lease_path(key)
        tombstone = path.with_name(
            f"{path.name}.release-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        )
        try:
            os.rename(path, tombstone)
        except OSError:
            return False  # already gone (released or reclaimed-and-released)
        try:
            body = json.loads(tombstone.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            body = {}
        mine = isinstance(body, dict) and body.get("owner") == owner
        if not mine:
            # The lease changed hands between the read and the rename:
            # put the reclaimer's claim back (link is atomic and fails --
            # leaving their lease lost-to-TTL at worst -- if a third
            # claim appeared meanwhile, rather than destroying it).
            try:
                os.link(tombstone, path)
            except OSError:
                pass
        try:
            tombstone.unlink()
        except OSError:
            pass
        return mine

    def prune_lease_dir(self) -> None:
        """Remove the ``leases/`` directory if it is empty (cosmetic --
        keeps a cleanly finished distributed store byte-identical in
        layout to a single-process one)."""
        try:
            self.lease_dir.rmdir()
        except OSError:
            pass

    # -- iteration -------------------------------------------------------------

    def _segment_stream(self, name: str) -> "Iterator[tuple[str, dict]]":
        """Yield one segment's readable ``(key, record)`` pairs in file
        (= ascending key) order, memory-mapped so a whole-store stream
        never holds more than the records in flight."""
        path = self.directory / name
        if not path.exists():
            self._warn(
                f"{name}:missing",
                f"sweep store: manifest points at missing segment "
                f"{name}; its records read as missing "
                f"(recompact to rebuild the index)",
            )
            return
        try:
            with open(path, "rb") as handle:
                try:
                    data: "bytes | mmap.mmap" = mmap.mmap(
                        handle.fileno(), 0, access=mmap.ACCESS_READ
                    )
                except (ValueError, OSError):
                    data = handle.read()
        except OSError as exc:
            self._warn(
                f"{name}:missing",
                f"sweep store: manifest points at unreadable segment "
                f"{name} ({exc}); its records read as missing",
            )
            return
        for key, record in seg.iter_segment_records(data, name, warn=self._warn):
            if record.get("key") != key:
                continue
            if self._generation_ok(record, f"{name}:{key[:12]}"):
                yield key, record

    def _loose_stream(self) -> "Iterator[tuple[str, dict]]":
        """Yield readable loose ``(key, record)`` pairs in ascending
        filename (= key-prefix) order, one file in memory at a time."""
        for path in sorted(self.loose_paths()):
            record = self._load(path)
            if record is None:
                continue
            if not self._generation_ok(record, path.name):
                continue
            yield str(record.get("key") or path.stem), record

    def records(self) -> "Iterator[dict]":
        """Every readable same-generation record, in ascending key order.

        Iteration order is deterministic -- sorted by each record's
        embedded ``key`` (falling back to the filename for records missing
        one) -- so aggregation built on a store is reproducible across
        filesystems and directory-listing orders.  Unreadable,
        wrong-schema, or foreign ``engine_version`` entries are skipped
        with one warning each (the Monte Carlo draw stream differs
        between generations, so their numbers must never blend into one
        analysis).

        The merge is a *stream*: every backend is already in ascending
        key order (segments frame records sorted; loose filenames are the
        keys), so a heap merge yields globally sorted records with O(1)
        records in memory instead of materializing the whole store dict
        first.  Duplicate keys keep the last arrival of the run -- the
        heap is stable, sources are ordered segments-then-loose, so loose
        wins over sealed and later segments over earlier, exactly the old
        dict-overwrite precedence.
        """
        streams: list = []
        manifest = self._current_manifest()
        if manifest is not None:
            streams.extend(
                self._segment_stream(name) for name in sorted(manifest.segments)
            )
        streams.append(self._loose_stream())
        pending_key: str | None = None
        pending: dict | None = None
        for key, record in heapq.merge(*streams, key=lambda item: item[0]):
            if pending is not None and key != pending_key:
                yield pending
            pending_key, pending = key, record
        if pending is not None:
            yield pending

    # -- bulk analysis fast path -----------------------------------------------

    def analysis_columns(self) -> tuple[list[str], list] | None:
        """Unified analysis columns for the whole store, or None.

        The packed fast path behind ``ResultTable.from_store``.  Each
        sealed segment reads through a three-rung degradation ladder:

        1. **binary sidecar** (``segment-*.cols``), memory-mapped --
           null-free numeric columns come back as zero-copy NumPy views,
           everything else as lazily decoded columns; no JSON parse at
           all;
        2. **JSON columnar block** inside the segment -- one read + one
           ``json.loads`` yielding ready-made column lists (what every
           pre-sidecar store serves);
        3. **tolerant frame scan** -- salvages whatever records are
           intact when the block itself is damaged.

        Loose records (if any) are flattened through the same
        :func:`~repro.sweeps.analysis.record_row` used at seal time and
        merged in ascending-key order, so the resulting table -- down to
        its CSV bytes -- is identical to the loose per-file path
        whichever rung served each segment.

        Columns may be NumPy arrays or :class:`~repro.sweeps.segments.
        LazyColumn` objects as well as plain lists; all support ``len``/
        iteration/indexing, and :class:`ResultTable` normalizes to
        pure-Python values at the access boundary.

        Returns None when the store has no usable sealed segments (pure
        loose stores take the classic ``records()`` path).
        """
        from repro.sweeps.analysis import canonical_order, record_row

        manifest = self._current_manifest()
        if manifest is None or not manifest.segments:
            return None

        # One source per readable segment: {keys, columns, first_key,
        # last_key, count}, produced by whichever ladder rung answered.
        sources: list[dict] = []
        for name in sorted(manifest.segments):
            path = self.directory / name
            if not path.exists():
                self._warn(
                    f"{name}:missing",
                    f"sweep store: manifest points at missing segment "
                    f"{name}; its records read as missing "
                    f"(recompact to rebuild the index)",
                )
                continue
            meta = manifest.segments[name]
            if meta.sidecar_length > 0:
                side = seg.read_segment_sidecar(
                    self.directory / seg.sidecar_name(name), meta,
                    warn=self._warn,
                )
                if side is not None:
                    sources.append(side)
                    continue
            block = seg.read_segment_columns(path, meta, warn=self._warn)
            if block is not None:
                keys = block["keys"]
                sources.append(
                    {
                        "keys": keys,
                        "names": block["names"],
                        "columns": block["columns"],
                        "first_key": keys[0] if keys else "",
                        "last_key": keys[-1] if keys else "",
                        "count": len(keys),
                    }
                )
                continue
            try:
                data = path.read_bytes()
            except OSError:
                continue
            rows, keys = [], []
            for key, record in seg.iter_segment_records(data, name, warn=self._warn):
                if record.get("key") == key and self._generation_ok(
                    record, f"{name}:{key[:12]}"
                ):
                    keys.append(key)
                    rows.append(record_row(record))
            if keys:
                names = canonical_order({n for row in rows for n in row})
                sources.append(
                    {
                        "keys": keys,
                        "names": names,
                        "columns": {
                            n: [row.get(n) for row in rows] for n in names
                        },
                        "first_key": keys[0],
                        "last_key": keys[-1],
                        "count": len(keys),
                    }
                )

        loose_rows: list[tuple[str, dict]] = []
        for path in sorted(self.loose_paths()):
            record = self._load(path)
            if record is None or not self._generation_ok(record, path.name):
                continue
            loose_rows.append(
                (str(record.get("key") or path.stem), record_row(record))
            )

        if not sources and not loose_rows:
            return None
        if len(sources) == 1 and not loose_rows:
            # The common compacted-store case: the source's columns are
            # already complete and in ascending key order -- return them
            # as-is (zero-copy views stay views).
            columns = sources[0]["columns"]
            names = canonical_order(columns)
            return names, [columns[n] for n in names]

        if not loose_rows and all(s["count"] > 0 for s in sources):
            # Disjoint-range fast path: merged generations partition the
            # key space, so when the sources' [first_key, last_key]
            # ranges don't overlap, global key order is just the sources
            # laid end to end -- no dedup, no argsort, and each column
            # concatenates lazily (views materialize only when touched).
            ordered = sorted(sources, key=lambda s: s["first_key"])
            if all(
                ordered[i]["last_key"] < ordered[i + 1]["first_key"]
                for i in range(len(ordered) - 1)
            ):
                names = canonical_order(
                    {n for s in ordered for n in s["columns"]}
                )
                total = sum(s["count"] for s in ordered)
                try:
                    import numpy as np
                except ImportError:
                    np = None
                out = []
                for n in names:
                    parts = [
                        (s["columns"].get(n), s["count"]) for s in ordered
                    ]
                    if (
                        np is not None
                        and all(
                            isinstance(column, np.ndarray)
                            for column, _ in parts
                        )
                        and len({column.dtype for column, _ in parts}) == 1
                    ):
                        # All segments served this column as a sidecar
                        # view: one concatenation keeps it an ndarray --
                        # still no JSON parse, and downstream numeric
                        # aggregation stays vectorized.
                        out.append(
                            np.concatenate([column for column, _ in parts])
                        )
                        continue

                    def load(parts=parts) -> list:
                        values: list = []
                        for column, count in parts:
                            if column is None:
                                values.extend([None] * count)
                            else:
                                values.extend(seg.materialize_column(column))
                        return values

                    out.append(seg.LazyColumn(total, load))
                return names, out

        # General merge: later sources win on duplicate keys (loose last),
        # then one argsort permutation restores global key order.
        if loose_rows:
            names = canonical_order(
                {n for s in sources for n in s["columns"]}
                | {n for _, row in loose_rows for n in row}
            )
            sources = sources + [
                {
                    "keys": [key for key, _ in loose_rows],
                    "columns": {
                        n: [row.get(n) for _, row in loose_rows]
                        for n in names
                    },
                }
            ]
        else:
            names = canonical_order({n for s in sources for n in s["columns"]})
        key_lists = [seg.materialize_column(s["keys"]) for s in sources]
        claimed: dict[str, int] = {}
        for index, keys in enumerate(key_lists):
            for key in keys:
                claimed[key] = index
        all_keys: list[str] = []
        concat: dict[str, list] = {n: [] for n in names}
        for index, (keys, source) in enumerate(zip(key_lists, sources)):
            keep = [i for i, key in enumerate(keys) if claimed[key] == index]
            all_keys.extend(keys[i] for i in keep)
            for n in names:
                col = source["columns"].get(n)
                if col is None:
                    concat[n].extend([None] * len(keep))
                else:
                    values = seg.materialize_column(col)
                    concat[n].extend(values[i] for i in keep)
        order = sorted(range(len(all_keys)), key=all_keys.__getitem__)
        return names, [[concat[n][i] for i in order] for n in names]

    # -- compaction ------------------------------------------------------------

    #: Locks older than this are presumed abandoned (a compactor killed
    #: between acquire and release) and are broken by the next compaction.
    _LOCK_STALE_S = 3600.0

    def _acquire_compaction_lock(self) -> Path | None:
        """Exclusive advisory lock serializing compactors on one store.

        O_CREAT|O_EXCL makes acquisition atomic on any local filesystem.
        Without it, two concurrent compactions (a ``--seal`` sweep plus an
        operator running ``compact``) could each build a manifest from a
        stale read and publish one that omits the other's freshly sealed
        entries -- after the loser already unlinked its loose files, that
        is silent data loss.  Contention is not an error: the caller skips
        compaction and every record simply stays loose.
        """
        import time

        lock = self.directory / "COMPACT.lock"
        for attempt in (0, 1):
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    age = time.time() - lock.stat().st_mtime
                except OSError:
                    continue  # holder just released; retry
                if attempt == 0 and age > self._LOCK_STALE_S:
                    try:
                        lock.unlink()
                    except OSError:
                        pass
                    continue
                return None
            except OSError:
                return None
            try:
                os.write(fd, str(os.getpid()).encode("ascii"))
            finally:
                os.close(fd)
            return lock
        return None

    def compact(self, keys: "Iterable[str] | None" = None) -> CompactionReport:
        """Seal loose records into a new immutable packed segment.

        Gathers every readable current-generation loose record (or only
        those in ``keys``), writes them -- sorted by key -- into one new
        segment file, publishes the segment with an atomic manifest swap,
        and only then deletes the sealed loose files.  Consequences:

        - **idempotent**: keys already sealed are never resealed; their
          stray loose duplicates are just removed;
        - **kill-safe**: a compactor killed before the manifest swap
          leaves an orphan segment (ignored forever) and every loose file
          intact; killed after the swap, the next pass removes the
          now-duplicate loose files;
        - **safe under concurrent writers**: evaluation workers keep
          writing *other* loose records at any time -- compaction only
          unlinks files it just sealed, and readers switch index
          atomically at the manifest rename.  Concurrent *compactors* are
          serialized by an exclusive lock file; the loser skips (records
          stay loose) rather than risk publishing a stale manifest.

        Unreadable or foreign-generation loose files are skipped, never
        destroyed.

        Publication cost: on a store whose manifest is already format v2,
        the new segment is published with one fsynced append to the
        current generation's delta log -- O(new records), not O(store).
        Stores with no manifest yet, or with a v1 (or foreign-generation)
        root, get a full v2 checkpoint at the next generation instead,
        which is also what migrates a v1 store forward.
        """
        lock = self._acquire_compaction_lock()
        if lock is None:
            self._warn(
                "compact:locked",
                f"sweep store: another compaction of {self.directory} is in "
                f"progress; leaving records loose (rerun compact later)",
            )
            return CompactionReport(sealed=0, deduped=0, skipped=0, segment=None)
        try:
            return self._compact_locked(keys)
        finally:
            try:
                lock.unlink()
            except OSError:
                pass

    def _compact_locked(self, keys: "Iterable[str] | None" = None) -> CompactionReport:
        """:meth:`compact` body; caller must hold the compaction lock."""
        from repro import __version__

        # Re-read the manifest under the lock: this instance's cache
        # may predate another process's compaction.
        self._manifest = _UNLOADED
        raw = self.manifest()
        manifest = self._current_manifest()
        sealed_keys = set(manifest.entries) if manifest is not None else set()
        wanted = None if keys is None else set(keys)

        # With an explicit key set (the --seal per-chunk path), visit
        # only those keys' own files -- the loose filename is derived
        # from the key -- instead of parsing the whole directory per
        # chunk, which would make a sealed sweep quadratic in size.
        if wanted is None:
            candidates = sorted(self.loose_paths())
        else:
            candidates = sorted({self.path(key) for key in wanted})

        to_seal: list[tuple[Path, str, dict]] = []
        deduped = skipped = 0
        for path in candidates:
            if not path.exists():
                continue
            record = self._load(path)
            if record is None:
                skipped += 1
                continue
            key = record.get("key")
            if not isinstance(key, str) or not key:
                skipped += 1
                continue
            if not self._generation_ok(record, path.name):
                skipped += 1
                continue
            if wanted is not None and key not in wanted:
                continue
            if key in sealed_keys:
                deduped += 1
                try:
                    path.unlink()
                except OSError:
                    pass
                continue
            to_seal.append((path, key, record))
        if not to_seal:
            return CompactionReport(
                sealed=0, deduped=deduped, skipped=skipped, segment=None
            )

        to_seal.sort(key=lambda item: item[1])
        written = seg.write_segment(
            self.directory, [record for _, _, record in to_seal]
        )
        if written is None:
            raise OSError(
                f"failed to write packed segment in {self.directory}"
            )
        name, entries, columns = written

        old_entries = dict(manifest.entries) if manifest is not None else {}
        old_segments = dict(manifest.segments) if manifest is not None else {}
        for entry in entries:
            old_entries[entry.key] = entry
        old_segments[name] = columns
        if manifest is not None and manifest.manifest_version >= seg.MANIFEST_VERSION:
            # O(delta) publish: one fsynced line in the current
            # generation's delta log; the root is untouched.
            if not seg.append_manifest_delta(
                self.directory, manifest.generation, name, entries, columns
            ):
                raise OSError(
                    f"failed to append manifest delta in {self.directory}; "
                    f"loose records were kept"
                )
            new_manifest = seg.Manifest(
                entries=old_entries,
                segments=old_segments,
                schema_version=SCHEMA_VERSION,
                engine_version=__version__,
                generation=manifest.generation,
                manifest_version=manifest.manifest_version,
                shard_count=manifest.shard_count,
                delta_records=manifest.delta_records + 1,
            )
        else:
            # No usable index yet (fresh store, v1 root, or a foreign
            # generation's root): full checkpoint at the next generation.
            # ``raw`` (the pre-generation-gate read) supplies the base so
            # a foreign root's delta log is never reused.
            generation = (raw.generation if raw is not None else 0) + 1
            new_manifest = seg.Manifest(
                entries=old_entries,
                segments=old_segments,
                schema_version=SCHEMA_VERSION,
                engine_version=__version__,
                generation=generation,
                manifest_version=seg.MANIFEST_VERSION,
                shard_count=len({seg.shard_id(k) for k in old_entries}),
                delta_records=0,
            )
            if not seg.write_manifest(self.directory, new_manifest):
                raise OSError(
                    f"failed to swap manifest in {self.directory}; "
                    f"loose records were kept"
                )
        self._manifest = new_manifest
        for path, _, _ in to_seal:
            try:
                path.unlink()
            except OSError:
                pass
        return CompactionReport(
            sealed=len(to_seal), deduped=deduped, skipped=skipped,
            segment=name,
        )

    #: Records per generation-tagged segment a merge aims for: large
    #: enough that a 10^5-record store collapses to a dozen-odd segments,
    #: small enough that one segment's bulk read stays cheap.
    DEFAULT_MERGE_TARGET = 8192

    def pending_deltas(self) -> int:
        """Delta-log lines accumulated behind the current v2 root.

        A cheap census for opportunistic-merge triggers (``--merge-every``):
        one small root read plus one newline count over the delta log --
        no shard loads, no delta replay, no manifest cache invalidation.
        Returns 0 for stores without a readable v2 root.
        """
        try:
            data = json.loads(
                (self.directory / seg.MANIFEST_NAME).read_text(encoding="utf-8")
            )
        except (OSError, json.JSONDecodeError):
            return 0
        if (
            not isinstance(data, dict)
            or data.get("manifest_version") != seg.MANIFEST_VERSION
        ):
            return 0
        try:
            generation = int(data.get("generation") or 0)
            delta = str(data.get("delta") or seg.delta_log_name(generation))
        except (TypeError, ValueError):
            return 0
        try:
            raw = (self.directory / seg.MANIFEST_DIR_NAME / delta).read_bytes()
        except OSError:
            return 0
        return raw.count(b"\n")

    def maybe_merge(
        self,
        threshold: int,
        target_records: int | None = None,
        jobs: int | None = None,
    ) -> MergeReport | None:
        """Merge only when the pending delta count has crossed ``threshold``.

        The ``--merge-every N`` primitive: drivers and ``--seal``-ing
        workers call this after each sealed chunk, and whichever caller
        first observes N pending deltas folds them (election is the
        existing exclusive merge lock -- losers skip without warning
        noise, which is why the lock file is pre-checked here instead of
        letting :meth:`merge` warn about perfectly healthy contention).
        Returns the :class:`MergeReport` when a merge ran, else None.
        """
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if (self.directory / "COMPACT.lock").exists():
            return None
        if self.pending_deltas() < threshold:
            return None
        return self.merge(target_records=target_records, jobs=jobs)

    def _write_merge_segments(
        self, chunks: list, generation: int, jobs: int | None
    ) -> "Iterator[tuple | None]":
        """Write the merge's output segments, serially or via a pool.

        Caller must hold the compaction lock.  Names are pre-computed
        with the same highest-existing-index scan as
        :func:`~repro.sweeps.segments.generation_segment_namer`, so the
        serial and parallel paths produce identically named (and
        byte-identical) segments; orphans from a previous killed merge
        still count as used.  Pool failures (no fork support, workers
        OOM-killed) fall back to serial writes with freshly scanned
        names, skipping any segments the dead pool already left behind.
        """
        if not chunks:
            return
        namer = seg.generation_segment_namer(generation)
        if jobs is not None and jobs > 1 and len(chunks) > 1:
            from concurrent.futures import ProcessPoolExecutor
            from concurrent.futures.process import BrokenProcessPool

            first = namer(self.directory)
            base = int(first[len(f"segment-g{generation:04d}-") : -len(".seg")])
            names = [
                f"segment-g{generation:04d}-{base + index:06d}.seg"
                for index in range(len(chunks))
            ]
            try:
                with ProcessPoolExecutor(
                    max_workers=min(jobs, len(chunks))
                ) as pool:
                    # Collected eagerly: a pool that breaks mid-map must
                    # leave *nothing* yielded, so the serial fallback
                    # rewrites every chunk exactly once (the dead pool's
                    # finished segments become orphans, collected by the
                    # next merge's GC).
                    results = list(
                        pool.map(
                            _merge_chunk,
                            [str(self.directory)] * len(chunks),
                            chunks,
                            names,
                            [seg.sidecars_enabled()] * len(chunks),
                        )
                    )
            except (OSError, BrokenProcessPool):
                self._warn(
                    "merge:pool",
                    f"sweep store: parallel merge pool failed for "
                    f"{self.directory}; falling back to serial rewrites",
                )
            else:
                yield from results
                return
        for chunk in chunks:
            yield seg.write_segment(self.directory, chunk, namer=namer)

    def merge(
        self,
        target_records: int | None = None,
        jobs: int | None = None,
    ) -> MergeReport:
        """Fold the store down to one fresh generation: seal loose records,
        rewrite every live segment into large generation-tagged
        ``segment-gGGGG-NNNNNN.seg`` files, checkpoint the manifest (delta
        log folded into new shards), and garbage-collect everything the
        new root no longer references.

        Properties:

        - **idempotent**: a store already at a single generation with an
          empty delta log is rewritten zero times (``merged=0``); only GC
          of stray orphans runs.
        - **kill-safe at every point**: new segments and shards are
          invisible until the atomic root swap; a merge killed before the
          swap leaves only orphans (collected by the next merge), killed
          after it leaves only superseded files (same).  Every key reads
          identically before, during, and after.
        - **concurrent-compactor-safe**: serialized by the same exclusive
          lock as :meth:`compact`; the loser skips.
        - **migration**: a v1-root store comes out the other side as a v2
          sharded store -- this is the one-shot upgrade path.

        ``jobs`` > 1 rewrites the output segments through a process pool
        (names pre-computed under the lock, so workers never race each
        other's directory scans).  Each segment write is independently
        atomic and invisible until the single checkpoint swap at the end,
        so the parallel path is kill-safe at exactly the same points as
        the serial one and converges on a byte-identical store; a pool
        that cannot start or dies mid-rewrite falls back to the serial
        path (re-reserving fresh segment names past any orphans the dead
        workers left -- the next merge collects those).

        A foreign-generation root (older engine/schema) is refused whole:
        merging would garbage-collect data this engine cannot re-read.
        """
        from repro import __version__

        target = target_records or self.DEFAULT_MERGE_TARGET
        if target <= 0:
            raise ValueError(f"target_records must be positive, got {target}")
        if jobs is not None and jobs <= 0:
            raise ValueError(f"jobs must be positive, got {jobs}")
        lock = self._acquire_compaction_lock()
        if lock is None:
            self._warn(
                "merge:locked",
                f"sweep store: another compaction of {self.directory} is in "
                f"progress; skipping merge (rerun later)",
            )
            return MergeReport(
                sealed=0, merged=0, segments=0, generation=0,
                gc_segments=0, gc_manifest=0,
            )
        try:
            self._manifest = _UNLOADED
            root_exists = (self.directory / seg.MANIFEST_NAME).exists()
            raw = self.manifest()
            if root_exists and raw is None:
                # Corrupt or unsupported root: compact() can rebuild an
                # index, but GC against a broken one would delete data.
                self._warn(
                    "merge:unreadable-root",
                    f"sweep store: refusing to merge {self.directory} over "
                    f"an unreadable manifest; run compact first",
                )
                return MergeReport(
                    sealed=0, merged=0, segments=0, generation=0,
                    gc_segments=0, gc_manifest=0,
                )
            if raw is not None and self._current_manifest() is None:
                self._warn(
                    "merge:foreign-root",
                    f"sweep store: refusing to merge {self.directory}: its "
                    f"manifest belongs to engine {raw.engine_version!r} / "
                    f"schema {raw.schema_version!r} (this engine cannot "
                    f"re-read what merge would garbage-collect)",
                )
                return MergeReport(
                    sealed=0, merged=0, segments=0,
                    generation=raw.generation,
                    gc_segments=0, gc_manifest=0,
                )

            sealed = self._compact_locked(None).sealed
            manifest = self._current_manifest()
            if manifest is None:
                # Nothing loose, nothing sealed: an empty store.
                return MergeReport(
                    sealed=sealed, merged=0, segments=0, generation=0,
                    gc_segments=0, gc_manifest=0,
                )

            needs_rewrite = (
                manifest.manifest_version < seg.MANIFEST_VERSION
                or manifest.delta_records > 0
                or any(
                    seg.segment_generation(name) != manifest.generation
                    for name in manifest.segments
                )
            )
            merged = 0
            new_segments_written = 0
            if needs_rewrite:
                # Bulk-read every live record, grouped by segment (one
                # file read per segment, never per record).
                records_by_key: dict[str, dict] = {}
                for name in sorted(manifest.segments):
                    path = self.directory / name
                    try:
                        data = path.read_bytes()
                    except OSError as exc:
                        self._warn(
                            f"{name}:missing",
                            f"sweep store: manifest points at unreadable "
                            f"segment {name} ({exc}); its records read as "
                            f"missing",
                        )
                        continue
                    for key, record in seg.iter_segment_records(
                        data, name, warn=self._warn
                    ):
                        entry = manifest.entries.get(key)
                        if entry is None or entry.segment != name:
                            continue
                        if record.get("key") != key:
                            continue
                        if self._generation_ok(record, f"{name}:{key[:12]}"):
                            records_by_key[key] = record
                lost = len(manifest.entries) - len(records_by_key)
                if lost:
                    self._warn(
                        "merge:unreadable-records",
                        f"sweep store: {lost} sealed record(s) of "
                        f"{self.directory} are unreadable and stay missing "
                        f"after the merge (they already read as missing)",
                    )

                new_generation = manifest.generation + 1
                ordered = sorted(records_by_key)
                chunks = [
                    [records_by_key[k] for k in ordered[start : start + target]]
                    for start in range(0, len(ordered), target)
                ]
                new_entries: dict = {}
                new_cols: dict = {}
                for written in self._write_merge_segments(
                    chunks, new_generation, jobs
                ):
                    if written is None:
                        raise OSError(
                            f"failed to write merged segment in {self.directory}"
                        )
                    name, entries, columns = written
                    for entry in entries:
                        new_entries[entry.key] = entry
                    new_cols[name] = columns
                manifest = seg.Manifest(
                    entries=new_entries,
                    segments=new_cols,
                    schema_version=SCHEMA_VERSION,
                    engine_version=__version__,
                    generation=new_generation,
                    manifest_version=seg.MANIFEST_VERSION,
                    shard_count=len({seg.shard_id(k) for k in new_entries}),
                    delta_records=0,
                )
                if not seg.write_manifest(self.directory, manifest):
                    raise OSError(
                        f"failed to checkpoint manifest in {self.directory}; "
                        f"the previous generation is untouched"
                    )
                self._manifest = manifest
                merged = len(ordered)
                new_segments_written = len(new_cols)

            gc_segments, gc_manifest = seg.gc_unreferenced(
                self.directory, manifest, warn=self._warn
            )
            return MergeReport(
                sealed=sealed,
                merged=merged,
                segments=new_segments_written,
                generation=manifest.generation,
                gc_segments=gc_segments,
                gc_manifest=gc_manifest,
            )
        finally:
            try:
                lock.unlink()
            except OSError:
                pass

    # -- maintenance -----------------------------------------------------------

    def clear(self) -> None:
        """Delete every record file, segment, lease, and the manifest."""
        for path in list(self.loose_paths()):
            try:
                path.unlink()
            except OSError:
                pass
        for pattern in (seg.SEGMENT_PATTERN, seg.SIDECAR_PATTERN):
            for path in self.directory.glob(pattern):
                try:
                    path.unlink()
                except OSError:
                    pass
        if self.lease_dir.is_dir():
            # Leases plus any crash-orphaned reclaim/release tombstones.
            for path in list(self.lease_dir.iterdir()):
                try:
                    path.unlink()
                except OSError:
                    pass
        self.prune_lease_dir()
        try:
            (self.directory / seg.MANIFEST_NAME).unlink()
        except OSError:
            pass
        manifest_dir = self.directory / seg.MANIFEST_DIR_NAME
        if manifest_dir.is_dir():
            for path in list(manifest_dir.iterdir()):
                try:
                    path.unlink()
                except OSError:
                    pass
            try:
                manifest_dir.rmdir()
            except OSError:
                pass
        self._manifest = _UNLOADED
        # A cleared store is new data: re-arm its warning dedup so problems
        # in the directory's next life are reported afresh.
        scope = str(self.directory)
        for entry in [e for e in _WARNED if e[0] == scope]:
            _WARNED.discard(entry)


def _merge_chunk(
    directory: str, records: list, name: str, sidecars: bool = True
) -> tuple | None:
    """One parallel-merge pool task: write one pre-named output segment.

    Module-level so it pickles into spawn-start pools.  The parent's
    sidecar switch rides along explicitly (a spawned worker re-reads the
    environment, not the parent's in-process toggle).  Returns what
    :func:`~repro.sweeps.segments.write_segment` returns; publication
    stays entirely with the parent, so a worker killed here leaves only
    an orphan file.
    """
    with seg.use_sidecars(sidecars):
        return seg.write_segment(Path(directory), records, name=name)
