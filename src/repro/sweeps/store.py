"""Resumable on-disk store for sweep results.

One JSON file per scenario, named by the scenario's content address (see
:func:`scenario_key`), written atomically so parallel jobs and interrupted
runs never leave half-written entries.  Resuming a sweep is then just "skip
every scenario whose file already exists" -- no journal, no index, safe
under concurrent writers.

Record schema (``SCHEMA_VERSION = 2``)::

    {
      "schema_version": 2,
      "engine_version": "<repro.__version__ that computed the record>",
      "key": "<sha256 scenario address>",
      "scenario": {
        "benchmark", "technique", "shots", "seed",
        "spec_name", "spec_overrides": {field: value},
        "noise": {NoiseModelConfig fields},
        "fingerprints": {"circuit", "spec", "config"}
      },
      "result": {"num_cz", "num_u3", "num_ccz", "num_swaps", "num_moves",
                 "trap_change_events", "num_layers", "runtime_us"},
      "outcome": {"shots", "successes", "gate_failures",
                  "movement_failures", "decoherence_failures",
                  "readout_failures", "success_rate", "stderr"},
      "analytic_success": float
    }
"""

from __future__ import annotations

import json
import os
import typing
import warnings
from pathlib import Path

from repro.pipeline.cache import atomic_write_text
from repro.pipeline.fingerprint import fingerprint_obj

if typing.TYPE_CHECKING:
    from collections.abc import Iterator
    from repro.sweeps.grid import Scenario

__all__ = ["SCHEMA_VERSION", "SweepStore", "scenario_key"]

SCHEMA_VERSION = 2


def scenario_key(
    scenario: "Scenario", circuit_fp: str, config_fp: str
) -> str:
    """Content address of one evaluated scenario.

    Hashes everything the stored record is a pure function of: the circuit
    and compile-config fingerprints (which pin the compiled artifact), the
    effective spec, the noise configuration, and the shot count and seed of
    the Monte Carlo run, plus the package version (results from older
    engine code must not be resumed into newer sweeps).
    """
    from repro import __version__

    return fingerprint_obj(
        {
            "benchmark": scenario.benchmark,
            "technique": scenario.technique,
            "circuit": circuit_fp,
            "config": config_fp,
            "spec": fingerprint_obj(scenario.spec),
            "noise": fingerprint_obj(scenario.noise),
            "shots": scenario.shots,
            "seed": scenario.seed,
            "version": __version__,
        }
    )


class SweepStore:
    """Directory of per-scenario JSON records, addressed by scenario key."""

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path(self, key: str) -> Path:
        """File backing ``key`` (exists iff the scenario was evaluated)."""
        return self.directory / f"{key[:40]}.json"

    def __contains__(self, key: object) -> bool:
        return isinstance(key, str) and self.path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def _load(self, path: Path) -> dict | None:
        """Parse one record file; truncated/corrupt entries are *missing*.

        A kill mid-write on a filesystem without atomic rename can leave a
        half-written file behind; raising there would wedge every later
        ``--resume``, so unreadable records warn once and read as absent
        (the scenario is simply recomputed and the file overwritten).
        """
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            warnings.warn(
                f"sweep store: treating unreadable record {path.name} as "
                f"missing ({exc})",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        if not isinstance(record, dict):
            warnings.warn(
                f"sweep store: treating non-object record {path.name} as missing",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        return record

    def get(self, key: str) -> dict | None:
        """The stored record for ``key``, or None (corrupt files count as
        missing-with-warning, so an interrupted write is simply recomputed)."""
        path = self.path(key)
        if not path.exists():
            return None
        record = self._load(path)
        if record is None or record.get("key") != key:
            return None
        if record.get("schema_version") != SCHEMA_VERSION:
            return None
        return record

    def put(self, key: str, record: dict) -> None:
        """Persist ``record`` under ``key`` atomically.

        The stamped ``key``/``schema_version``/``engine_version`` fields
        are authoritative (they overwrite any stale values in ``record``),
        and a failed write raises: a sweep whose store cannot persist must
        not keep reporting scenarios as safely computed.
        """
        from repro import __version__

        payload = {
            **record,
            "schema_version": SCHEMA_VERSION,
            "engine_version": __version__,
            "key": key,
        }
        text = json.dumps(payload, indent=None, sort_keys=True)
        if not atomic_write_text(self.path(key), text):
            raise OSError(f"failed to persist sweep record to {self.path(key)}")

    def records(self) -> "Iterator[dict]":
        """Every readable same-generation record, in ascending key order.

        Iteration order is deterministic -- sorted by each record's
        embedded ``key`` (falling back to the filename for records missing
        one) -- so aggregation built on a store is reproducible across
        filesystems and directory-listing orders.  Unreadable,
        wrong-schema, or foreign ``engine_version`` entries (left behind
        when a store directory is reused across package upgrades -- the
        Monte Carlo draw stream differs between generations, so their
        numbers must never blend into one analysis) are skipped with a
        warning.
        """
        from repro import __version__

        loaded = []
        for path in sorted(self.directory.glob("*.json")):
            record = self._load(path)
            if record is None:
                continue
            if record.get("schema_version") != SCHEMA_VERSION:
                warnings.warn(
                    f"sweep store: skipping record {path.name} with "
                    f"schema_version={record.get('schema_version')!r} "
                    f"(expected {SCHEMA_VERSION})",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            if record.get("engine_version") != __version__:
                warnings.warn(
                    f"sweep store: skipping record {path.name} computed by "
                    f"engine {record.get('engine_version')!r} (this is "
                    f"{__version__}; rerun the sweep to refresh it)",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            loaded.append((str(record.get("key") or path.stem), record))
        loaded.sort(key=lambda item: item[0])
        for _, record in loaded:
            yield record

    def clear(self) -> None:
        """Delete every record file (used by tests and --no-resume runs)."""
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
            except OSError:
                pass
