"""Execute a :class:`~repro.sweeps.grid.SweepGrid` end to end.

The grid is first expanded into a :class:`SweepPlan` by
:func:`plan_sweep` -- the deterministic work list (scenarios, store keys,
deduplicated compile points) that every execution strategy shares.  The
runner then separates the two costs of a sweep and shards each across its
own process pool:

1. **Compilation** -- the unique ``(benchmark, technique, compile spec)``
   points behind the scenario list (noise-only spec axes collapse here) are
   deduplicated and fanned through the parallel batch engine
   (:func:`repro.experiments.common.compile_points`, ``workers`` processes,
   shared content-addressed cache).
2. **Evaluation** -- every pending scenario becomes an
   :class:`~repro.sweeps.engine.EvalTask` and is sampled by
   :func:`~repro.sweeps.engine.evaluate_tasks`: in-process when
   ``eval_workers == 1``, otherwise chunked over a ``ProcessPoolExecutor``
   whose workers write each finished record straight through the store's
   atomic per-scenario files.

Every scenario's compile config and Monte Carlo seed are fixed before any
work runs, so the produced records are bit-identical for any ``workers`` or
``eval_workers`` value.  With a :class:`~repro.sweeps.store.SweepStore`
attached, each record is persisted as soon as it is evaluated;
``resume=True`` then skips every scenario already on disk, which is what
lets an interrupted sweep -- killed even mid-shard -- restart without
recomputation.

A third execution strategy, ``run_sweep(distributed=True, workers=N)``,
replaces the two pools with N coordinator-free work-stealing workers over
the store's lease protocol (:mod:`repro.sweeps.distributed`) -- same
plan, same records, byte-identical store.
"""

from __future__ import annotations

import time
import typing
from dataclasses import dataclass, field, replace

from repro.experiments.common import (
    ExperimentSettings,
    compile_points,
    prepared_circuit,
    settings_config_factory,
)
from repro.pipeline.fingerprint import fingerprint_config, fingerprint_circuit, fingerprint_spec
from repro.sweeps.engine import EvalTask, evaluate_tasks
from repro.sweeps.grid import SweepGrid
from repro.sweeps.store import SweepStore, scenario_key
from repro.utils.profiling import PhaseTimer

if typing.TYPE_CHECKING:
    from collections.abc import Callable
    from repro.core.result import CompilationResult

__all__ = ["SweepPlan", "SweepReport", "plan_sweep", "run_sweep"]


@dataclass(frozen=True)
class SweepReport:
    """Outcome of one sweep run.

    Attributes:
        records: one record dict per scenario, in grid order (see
            :mod:`repro.sweeps.store` for the schema).
        computed: scenarios evaluated in this run.
        resumed: scenarios served from the store without recomputation.
        compilations: unique compile points dispatched this run.
        elapsed_s: wall-clock duration of the run.
        phase_totals: aggregated per-stage compile wall-clock seconds,
            keyed ``"<technique>.<stage>"`` and merged across workers
            (empty when every compilation was a cache hit).
    """

    records: tuple
    computed: int
    resumed: int
    compilations: int
    elapsed_s: float
    phase_totals: dict = field(default_factory=dict)

    @property
    def scenarios(self) -> int:
        return len(self.records)

    @property
    def compile_s(self) -> float:
        """Total compile wall-clock seconds across all stages and workers."""
        return float(sum(self.phase_totals.values()))

    @property
    def summary_line(self) -> str:
        """Stable machine-readable one-liner for scripts and CI.

        The ``key=value`` fields are a compatibility contract: CI greps
        ``RESUME computed=0 resumed=N`` to assert a no-op resume, so the
        prefix and the first two fields must never be reworded (append new
        fields at the end instead).
        """
        return (
            f"RESUME computed={self.computed} resumed={self.resumed} "
            f"scenarios={self.scenarios} compilations={self.compilations} "
            f"compile_s={self.compile_s:.3f}"
        )


@dataclass(frozen=True)
class SweepPlan:
    """The fully-determined work list one grid expands to.

    Everything a worker needs to evaluate any scenario of the grid --
    scenarios, store keys, deduplicated compile points, and fingerprints --
    computed once, before any work runs.  Both the single-process runner
    and every distributed claim-loop worker build the *same* plan from the
    same grid, which is what makes their outputs byte-identical: keys,
    seeds, and task contents are pure functions of grid content.

    Attributes:
        settings: the experiment settings the compile configs derive from.
        scenarios: the (possibly ``limit``-truncated) scenario list, in
            grid order.
        keys: ``scenarios[i]``'s store address, aligned by index.
        compile_ids: ``scenarios[i]``'s compile-point identity, aligned by
            index (scenarios differing only in noise-only fields share one;
            scenarios differing in a config axis never do).
        point_specs: compile id -> the point tuple
            :func:`repro.experiments.common.compile_points` takes --
            ``(benchmark, technique, compile_spec)``, with the scenario's
            ``config_overrides`` appended as a fourth element when
            non-empty; insertion-ordered by first use.
        fingerprints: ``scenarios[i]``'s circuit/spec/config fingerprints,
            aligned by index (recorded in the output record).
    """

    settings: ExperimentSettings
    scenarios: tuple
    keys: tuple
    compile_ids: tuple
    point_specs: dict = field(repr=False)
    fingerprints: tuple = field(repr=False)

    def __len__(self) -> int:
        return len(self.scenarios)

    def task(self, index: int, result: "CompilationResult") -> EvalTask:
        """The evaluation task for ``scenarios[index]`` given its compiled
        artifact (swapping the effective spec onto it for noise-only axes:
        error rates never influence compilation)."""
        scenario = self.scenarios[index]
        if scenario.spec != result.spec:
            result = replace(result, spec=scenario.spec)
        return EvalTask(
            key=self.keys[index],
            scenario=scenario,
            result=result,
            fingerprints=self.fingerprints[index],
        )


def plan_sweep(
    grid: SweepGrid,
    settings: ExperimentSettings | None = None,
    limit: int | None = None,
) -> SweepPlan:
    """Expand ``grid`` into its deterministic :class:`SweepPlan`.

    Pure with respect to grid content: scenario order, store keys, Monte
    Carlo seeds, and compile-point dedup depend only on the grid (and
    ``settings``), never on the calling process, worker count, or wall
    clock.
    """
    settings = settings or ExperimentSettings()
    if limit is not None and limit <= 0:
        raise ValueError(f"limit must be positive, got {limit}")
    scenarios = grid.scenarios()
    if limit is not None:
        scenarios = scenarios[:limit]

    # One config factory per distinct config-overrides point: config axes
    # replace fields of the base settings, and the factory output is what
    # the store key's config fingerprint hashes.
    factories: dict[tuple, object] = {
        (): settings_config_factory(settings)
    }
    circuit_fps: dict[str, str] = {}
    config_fps: dict[tuple, str] = {}
    keys: list[str] = []
    compile_ids: list[tuple] = []
    fingerprints: list[dict] = []
    point_specs: dict[tuple, tuple] = {}
    for scenario in scenarios:
        benchmark = scenario.benchmark
        overrides = scenario.config_overrides
        if overrides not in factories:
            factories[overrides] = settings_config_factory(
                replace(settings, **dict(overrides))
            )
        if benchmark not in circuit_fps:
            circuit_fps[benchmark] = fingerprint_circuit(prepared_circuit(benchmark))
        compile_id = (
            benchmark,
            scenario.technique,
            fingerprint_spec(scenario.compile_spec),
            overrides,
        )
        if compile_id not in config_fps:
            config_fps[compile_id] = fingerprint_config(
                factories[overrides](
                    scenario.technique,
                    prepared_circuit(benchmark),
                    scenario.compile_spec,
                )
            )
            point = (benchmark, scenario.technique, scenario.compile_spec)
            point_specs[compile_id] = point + (overrides,) if overrides else point
        compile_ids.append(compile_id)
        keys.append(
            scenario_key(scenario, circuit_fps[benchmark], config_fps[compile_id])
        )
        fingerprints.append(
            {
                "circuit": circuit_fps[benchmark],
                "spec": fingerprint_spec(scenario.spec),
                "config": config_fps[compile_id],
            }
        )
    return SweepPlan(
        settings=settings,
        scenarios=tuple(scenarios),
        keys=tuple(keys),
        compile_ids=tuple(compile_ids),
        point_specs=point_specs,
        fingerprints=tuple(fingerprints),
    )


def run_sweep(
    grid: SweepGrid,
    store: SweepStore | None = None,
    *,
    resume: bool = False,
    workers: int = 1,
    eval_workers: int = 1,
    limit: int | None = None,
    seal: bool = False,
    merge: bool = False,
    merge_every: int | None = None,
    distributed: bool = False,
    lease_range: int = 1,
    settings: ExperimentSettings | None = None,
    log: "Callable[[str], None] | None" = None,
) -> SweepReport:
    """Evaluate every scenario of ``grid``; returns records in grid order.

    Args:
        grid: the scenario grid to expand and evaluate.
        store: optional on-disk store; every evaluated record is persisted
            immediately (so a killed run keeps its progress).  Required
            when ``distributed=True``.
        resume: with a store, skip scenarios whose records already exist;
            without it, existing entries are recomputed and overwritten.
        workers: process-pool size for the compilation phase.  With
            ``distributed=True`` this is instead the number of spawned
            claim-loop worker processes (each compiles its own claims).
        eval_workers: process-pool size for the evaluation phase
            (``--eval-jobs``); records are bit-identical for any value.
            Ignored when ``distributed=True``.
        limit: only evaluate the first ``limit`` scenarios of the grid
            (truncation cannot shift any scenario's content-derived seed).
        seal: with a store, compact each evaluation chunk's loose records
            into packed segments as it completes (``--seal``), so the run
            ends with a bulk-loadable store; record content is unchanged.
        merge: with a store, run :meth:`SweepStore.merge` after the sweep
            finishes (``--merge``): loose records are sealed, small
            segments fold into large generation-tagged ones, and the
            manifest is checkpointed; record content is unchanged.
        merge_every: with a store and ``seal``, opportunistically fold
            segments *mid-sweep* whenever the pending manifest delta
            count reaches this threshold (``--merge-every``; see
            :meth:`SweepStore.maybe_merge`).  Requires ``seal=True`` --
            deltas only accumulate from sealing.  In distributed runs
            each worker checks at its own seal boundaries and the
            exclusive merge lock elects at most one merger at a time.
        distributed: spawn ``workers`` independent work-stealing workers
            over the store's lease protocol instead of the two sharded
            pools (see :mod:`repro.sweeps.distributed`).  Distributed runs
            always resume -- the claim loop is idempotent over whatever is
            already stored -- and produce records byte-identical to any
            other mode.
        lease_range: with ``distributed=True``, keys per lease block
            (``--lease-range``; see
            :func:`repro.sweeps.distributed.range_blocks`).  1 keeps the
            classic per-key protocol.
        settings: experiment settings the compile configs derive from
            (defaults match the figure runners, so compilations are shared).
        log: optional progress sink (e.g. ``print``).
    """
    emit_merge = log or (lambda message: None)
    if merge_every is not None:
        if merge_every <= 0:
            raise ValueError(f"merge_every must be positive, got {merge_every}")
        if not seal:
            raise ValueError("merge_every requires seal=True (deltas only accumulate from sealing)")
    if distributed:
        from repro.sweeps.distributed import run_distributed

        if store is None:
            raise ValueError("distributed=True requires a store")
        report = run_distributed(
            grid,
            store,
            workers=workers,
            seal=seal,
            merge_every=merge_every,
            limit=limit,
            lease_range=lease_range,
            settings=settings,
            log=log,
        )
        if merge:
            emit_merge(f"sweep: {store.merge().summary_line}")
        return report
    start = time.perf_counter()
    emit = log or (lambda message: None)
    plan = plan_sweep(grid, settings=settings, limit=limit)
    scenarios, keys = plan.scenarios, plan.keys
    emit(f"sweep: {len(scenarios)} scenarios ({grid.size} grid points)")

    records: list = [None] * len(scenarios)
    resumed = 0
    if store is not None and resume:
        for index, key in enumerate(keys):
            record = store.get(key)
            if record is not None:
                records[index] = record
                resumed += 1
        emit(f"sweep: resumed {resumed} scenarios from {store.directory}")

    pending = [i for i, record in enumerate(records) if record is None]

    # Dedup compile points across pending scenarios (order-preserving).
    point_order: list[tuple] = []
    seen_points: set[tuple] = set()
    for index in pending:
        compile_id = plan.compile_ids[index]
        if compile_id not in seen_points:
            seen_points.add(compile_id)
            point_order.append(compile_id)
    compiled: dict[tuple, "CompilationResult"] = {}
    phase_timer = PhaseTimer()
    if point_order:
        emit(
            f"sweep: compiling {len(point_order)} unique points "
            f"for {len(pending)} scenarios (workers={workers})"
        )
        pairs = compile_points(
            [plan.point_specs[cid] for cid in point_order],
            settings=plan.settings,
            workers=workers,
            return_timings=True,
        )
        compiled = dict(zip(point_order, (result for result, _ in pairs)))
        for _, stage_times in pairs:
            if stage_times:
                phase_timer.merge(stage_times)

    tasks = [plan.task(index, compiled[plan.compile_ids[index]]) for index in pending]
    if tasks:
        emit(
            f"sweep: evaluating {len(tasks)} scenarios "
            f"(eval_workers={eval_workers})"
        )
    computed_records = evaluate_tasks(
        tasks,
        store=store,
        workers=eval_workers,
        seal=seal,
        merge_every=merge_every,
        log=emit,
    )
    for index, record in zip(pending, computed_records):
        records[index] = record

    if merge and store is not None:
        emit(f"sweep: {store.merge().summary_line}")

    elapsed = time.perf_counter() - start
    emit(
        f"sweep: done -- {len(pending)} computed, {resumed} resumed, "
        f"{len(point_order)} compilations in {elapsed:.1f}s"
    )
    return SweepReport(
        records=tuple(records),
        computed=len(pending),
        resumed=resumed,
        compilations=len(point_order),
        elapsed_s=elapsed,
        phase_totals=phase_timer.totals(),
    )
