"""Declarative scenario grids over hardware and noise parameters.

A :class:`SweepGrid` describes a cartesian product of scenarios::

    benchmarks x techniques x spec-axis points x noise-axis points

where *spec axes* vary :class:`~repro.hardware.spec.HardwareSpec` fields
(e.g. ``cz_error``, ``aod_rows``, ``trap_switch_time_us``) and *noise axes*
vary :class:`~repro.noise.fidelity.NoiseModelConfig` options.  Expansion is
pure and deterministic: the same grid always yields the same scenarios in
the same order, each with a Monte Carlo seed derived by hashing the
scenario's content (never its position), so results are independent of
worker count and completion order.

Spec fields that only the noise model reads (error rates and coherence
times -- :data:`NOISE_ONLY_SPEC_FIELDS`) are recognised at expansion time:
scenarios that differ only in those fields share one compiled artifact, so
an error-rate sweep costs one compilation, not one per grid point.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing
from dataclasses import dataclass, field, replace

from repro.hardware.spec import HardwareSpec
from repro.noise.fidelity import NoiseModelConfig
from repro.pipeline.batch import derive_task_seed
from repro.pipeline.fingerprint import fingerprint_obj, fingerprint_spec

if typing.TYPE_CHECKING:
    from collections.abc import Mapping, Sequence

__all__ = [
    "CONFIG_AXIS_FIELDS",
    "NOISE_ONLY_SPEC_FIELDS",
    "Scenario",
    "SweepGrid",
]

#: ExperimentSettings fields a grid's ``config_axes`` may range over --
#: the technique-config knobs (placement, scheduler, routing).  Kept as a
#: literal so grid expansion does not import the experiments layer; the
#: test suite asserts it stays a subset of the ExperimentSettings fields.
CONFIG_AXIS_FIELDS: tuple = (
    "placement_method",
    "placement_seed",
    "return_home",
    "router_strategy",
    "router_window",
    "scheduler_seed",
)

#: HardwareSpec fields consumed exclusively by the noise model
#: (`repro.noise.fidelity` / `repro.sim.noisy`) -- never by compilation.
#: Varying only these fields cannot change a compiled schedule, so the sweep
#: runner reuses one compilation across all their values.
NOISE_ONLY_SPEC_FIELDS: frozenset = frozenset(
    {
        "u3_error",
        "cz_error",
        "ccz_error",
        "swap_error",
        "move_error",
        "trap_switch_error",
        "readout_error",
        "atom_loss_rate",
        "t1_us",
        "t2_us",
    }
)

_SPEC_FIELDS = frozenset(f.name for f in dataclasses.fields(HardwareSpec))
_NOISE_FIELDS = frozenset(f.name for f in dataclasses.fields(NoiseModelConfig))
_CONFIG_FIELDS = frozenset(CONFIG_AXIS_FIELDS)


@dataclass(frozen=True)
class Scenario:
    """One fully-specified (circuit, technique, spec, noise) sweep point.

    Attributes:
        benchmark: Table III benchmark acronym.
        technique: registered compiler name.
        spec: the *effective* hardware spec the noise model evaluates.
        compile_spec: the spec compilation runs against -- identical to
            ``spec`` except that noise-only fields keep their base values,
            so scenarios differing only in error rates share one compiled
            artifact.
        spec_overrides: the (field, value) pairs this scenario's spec axes
            applied, for human-readable reports.
        noise: the noise-model configuration.
        shots: Monte Carlo logical shots.
        seed: per-scenario RNG seed (a pure hash of the scenario content).
        config_overrides: the (field, value) pairs this scenario's config
            axes applied to the experiment settings
            (:data:`CONFIG_AXIS_FIELDS`); empty for config-less grids, so
            their seeds and store keys are unchanged from older engines.
    """

    benchmark: str
    technique: str
    spec: HardwareSpec
    compile_spec: HardwareSpec
    spec_overrides: tuple
    noise: NoiseModelConfig
    shots: int
    seed: int
    config_overrides: tuple = ()

    def describe(self) -> str:
        """Compact one-line label, e.g. ``ADD/parallax cz_error=0.0024``."""
        parts = [f"{self.benchmark}/{self.technique}"]
        parts += [f"{name}={value}" for name, value in self.config_overrides]
        parts += [f"{name}={value}" for name, value in self.spec_overrides]
        if self.noise != NoiseModelConfig():
            parts.append(f"noise={self.noise}")
        return " ".join(parts)


def _check_axes(axes: "Mapping[str, Sequence]", valid: frozenset, kind: str) -> dict:
    """Validate axis names/values; returns a field-sorted plain dict."""
    cleaned: dict = {}
    for name in sorted(axes):
        if name not in valid:
            raise ValueError(
                f"unknown {kind} axis field {name!r}; valid fields: "
                f"{sorted(valid)}"
            )
        values = tuple(axes[name])
        if not values:
            raise ValueError(f"{kind} axis {name!r} has no values")
        cleaned[name] = values
    return cleaned


@dataclass(frozen=True)
class SweepGrid:
    """A declarative parameter grid of noisy-execution scenarios.

    Attributes:
        benchmarks: Table III benchmark acronyms to sweep.
        techniques: registered compiler names to sweep.
        base_spec: the hardware spec every spec axis perturbs.
        spec_axes: mapping of ``HardwareSpec`` field name -> values.
        noise_axes: mapping of ``NoiseModelConfig`` field name -> values.
        config_axes: mapping of technique-config field name -> values
            (:data:`CONFIG_AXIS_FIELDS`, i.e. ``ExperimentSettings``
            knobs: placement method/seed, scheduler seed, routing
            strategy/window, return-home).  Turns ablations into ordinary
            sweep axes: the overrides land in the store key, the record,
            and the analysis row schema like any spec/noise axis.
        base_noise: the noise config every noise axis perturbs.
        shots: Monte Carlo shots per scenario.
        base_seed: root seed the per-scenario seeds are derived from.
    """

    benchmarks: tuple = ("ADD", "HLF", "QAOA")
    techniques: tuple = ("parallax", "graphine", "eldi")
    base_spec: HardwareSpec = field(default_factory=HardwareSpec.quera_aquila)
    spec_axes: "Mapping[str, Sequence]" = field(default_factory=dict)
    noise_axes: "Mapping[str, Sequence]" = field(default_factory=dict)
    config_axes: "Mapping[str, Sequence]" = field(default_factory=dict)
    base_noise: NoiseModelConfig = field(default_factory=NoiseModelConfig)
    shots: int = 1000
    base_seed: int = 0

    def __post_init__(self) -> None:
        if not self.benchmarks:
            raise ValueError("grid needs at least one benchmark")
        if not self.techniques:
            raise ValueError("grid needs at least one technique")
        if self.shots <= 0:
            raise ValueError(f"shots must be positive, got {self.shots}")
        object.__setattr__(
            self,
            "benchmarks",
            tuple(b.upper() for b in self.benchmarks),
        )
        object.__setattr__(self, "techniques", tuple(self.techniques))
        object.__setattr__(
            self, "spec_axes", _check_axes(self.spec_axes, _SPEC_FIELDS, "spec")
        )
        object.__setattr__(
            self, "noise_axes", _check_axes(self.noise_axes, _NOISE_FIELDS, "noise")
        )
        object.__setattr__(
            self, "config_axes", _check_axes(self.config_axes, _CONFIG_FIELDS, "config")
        )

    @property
    def size(self) -> int:
        """Number of scenarios the grid expands to."""
        total = len(self.benchmarks) * len(self.techniques)
        for axes in (self.spec_axes, self.noise_axes, self.config_axes):
            for values in axes.values():
                total *= len(values)
        return total

    def _spec_points(self) -> "list[tuple[tuple, HardwareSpec, HardwareSpec]]":
        """Expand spec axes into (overrides, effective spec, compile spec)."""
        names = list(self.spec_axes)
        points = []
        for combo in itertools.product(*(self.spec_axes[n] for n in names)):
            overrides = tuple(zip(names, combo))
            compile_overrides = {
                n: v for n, v in overrides if n not in NOISE_ONLY_SPEC_FIELDS
            }
            compile_spec = (
                replace(self.base_spec, **compile_overrides)
                if compile_overrides
                else self.base_spec
            )
            effective = (
                replace(compile_spec, **dict(overrides)) if overrides else compile_spec
            )
            points.append((overrides, effective, compile_spec))
        return points

    def _noise_points(self) -> "list[NoiseModelConfig]":
        names = list(self.noise_axes)
        return [
            replace(self.base_noise, **dict(zip(names, combo)))
            for combo in itertools.product(*(self.noise_axes[n] for n in names))
        ]

    def _config_points(self) -> "list[tuple]":
        names = list(self.config_axes)
        return [
            tuple(zip(names, combo))
            for combo in itertools.product(*(self.config_axes[n] for n in names))
        ]

    def scenarios(self) -> "list[Scenario]":
        """Expand the grid into its full, deterministically-ordered list.

        Order is benchmark-major, then technique, then config point, then
        spec point (axes in field-name order), then noise point.  Each
        scenario's Monte Carlo seed is ``derive_task_seed`` of the scenario
        *content* (fingerprints of spec, noise, and config overrides, plus
        benchmark/technique/shots), so reordering or subsetting the grid
        never changes any scenario's draw stream.  Config-less grids mix in
        no config fingerprint at all, so every seed (and store key) is
        identical to what older engines derived -- existing stores resume.
        """
        # Fingerprints hoisted per distinct point: expansion stays linear in
        # scenarios, not scenarios x hash cost (ROADMAP targets ~1e5 grids).
        spec_points = [
            (overrides, effective, compile_spec, fingerprint_spec(effective))
            for overrides, effective, compile_spec in self._spec_points()
        ]
        noise_points = [
            (noise, fingerprint_obj(noise)) for noise in self._noise_points()
        ]
        config_points = [
            (overrides, fingerprint_obj(dict(overrides)) if overrides else None)
            for overrides in self._config_points()
        ]
        out = []
        for benchmark in self.benchmarks:
            for technique in self.techniques:
                for config_overrides, config_fp in config_points:
                    for overrides, effective, compile_spec, spec_fp in spec_points:
                        for noise, noise_fp in noise_points:
                            seed_parts = [
                                benchmark,
                                technique,
                                spec_fp,
                                noise_fp,
                                self.shots,
                            ]
                            if config_fp is not None:
                                seed_parts.append(config_fp)
                            seed = derive_task_seed(
                                self.base_seed, "sweep-mc", *seed_parts
                            )
                            out.append(
                                Scenario(
                                    benchmark=benchmark,
                                    technique=technique,
                                    spec=effective,
                                    compile_spec=compile_spec,
                                    spec_overrides=overrides,
                                    noise=noise,
                                    shots=self.shots,
                                    seed=seed,
                                    config_overrides=config_overrides,
                                )
                            )
        return out

    # -- presets ---------------------------------------------------------------

    @classmethod
    def smoke(cls, shots: int = 200, base_seed: int = 0) -> "SweepGrid":
        """Tiny grid (8 scenarios, 2 compilations) for CI smoke runs."""
        return cls(
            benchmarks=("ADD",),
            techniques=("parallax", "graphine"),
            spec_axes={"cz_error": (0.0048, 0.0096)},
            noise_axes={"include_readout": (False, True)},
            shots=shots,
            base_seed=base_seed,
        )

    @classmethod
    def default(cls, shots: int = 1000, base_seed: int = 0) -> "SweepGrid":
        """The standard hardware/noise sweep: 108 scenarios, 9 compilations.

        Sweeps the CZ error rate (the dominant Fig. 10 channel) around its
        Table II value, the T2 coherence time, and the readout-error toggle;
        every spec axis is noise-only, so all 108 scenarios are served by
        the 3 x 3 benchmark/technique compilations.
        """
        return cls(
            benchmarks=("ADD", "HLF", "QAOA"),
            techniques=("parallax", "graphine", "eldi"),
            spec_axes={
                "cz_error": (0.0024, 0.0048, 0.0096),
                "t2_us": (0.745e6, 1.49e6),
            },
            noise_axes={"include_readout": (False, True)},
            shots=shots,
            base_seed=base_seed,
        )
