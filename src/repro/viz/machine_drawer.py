"""ASCII rendering of machine state and compiled schedules."""

from __future__ import annotations

from repro.core.machine import MachineState
from repro.core.result import CompilationResult

__all__ = ["draw_machine", "draw_layers"]


def draw_machine(state: MachineState, show_indices: bool = True) -> str:
    """Top-down map of the atom grid.

    Legend: ``.`` free site, ``[n]``/``s`` SLM atom, ``(n)``/``a`` AOD atom
    (AOD atoms are drawn at their *nearest* site; exact coordinates are
    continuous).  Row 0 prints at the bottom so y grows upward, matching
    the paper's figures.
    """
    rows, cols = state.spec.grid_rows, state.spec.grid_cols
    cells = [["  .  " for _ in range(cols)] for _ in range(rows)]
    for q in range(state.num_qubits):
        x, y = state.positions[q]
        row, col = state.slm.nearest_site(state.positions[q])
        if state.is_mobile(q):
            text = f"({q})" if show_indices else "(a)"
        else:
            text = f"[{q}]" if show_indices else "[s]"
        cells[row][col] = f"{text:^5s}"
    lines = []
    for row in range(rows - 1, -1, -1):
        lines.append(f"y{row:<3d}" + "".join(cells[row]))
    header = "    " + "".join(f"{c:^5d}" for c in range(cols))
    lines.append(header)
    return "\n".join(lines)


def draw_layers(result: CompilationResult, max_layers: int = 30) -> str:
    """One line per compiled layer: gates plus movement/trap annotations."""
    lines = [
        f"{result.technique} schedule for {result.circuit_name!r}: "
        f"{result.num_layers} layers, {result.runtime_us:.1f} us"
    ]
    for i, layer in enumerate(result.layers[:max_layers]):
        gate_text = ", ".join(str(g) for g in layer.gates)
        notes = []
        if layer.move_distance_um > 0:
            notes.append(f"move {layer.move_distance_um:.1f}um")
        if layer.return_distance_um > 0:
            notes.append(f"return {layer.return_distance_um:.1f}um")
        if layer.trap_changes:
            notes.append(f"{layer.trap_changes} trap change(s)")
        suffix = f"   <{'; '.join(notes)}>" if notes else ""
        lines.append(f"  L{i + 1:>4d} [{layer.time_us:7.2f} us] {gate_text}{suffix}")
    if result.num_layers > max_layers:
        lines.append(f"  ... ({result.num_layers - max_layers} more layers)")
    return "\n".join(lines)
