"""ASCII circuit drawing (the paper's Fig. 1 style, in text).

Each qubit is a horizontal wire; gates stack left to right in ASAP layers.
Two-qubit gates draw a vertical connector between their wires.
"""

from __future__ import annotations

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.dag import circuit_layers

__all__ = ["draw_circuit"]

_CELL = 5  # characters per layer column


def _gate_label(name: str) -> str:
    return {"u3": "U3", "cz": "o", "measure": "M"}.get(name, name.upper()[:3])


def draw_circuit(circuit: QuantumCircuit, max_layers: int = 40) -> str:
    """Render ``circuit`` as an ASCII wire diagram.

    Args:
        circuit: any IR circuit.
        max_layers: truncate after this many layers (an ellipsis column
            marks the cut).

    Returns:
        Multi-line string; one row per qubit labelled ``q0:`` etc.
    """
    layers = circuit_layers(circuit)
    truncated = len(layers) > max_layers
    layers = layers[:max_layers]
    n = circuit.num_qubits
    width = len(layers) * _CELL
    # Character canvas: rows = 2n - 1 (wires + connector rows between).
    canvas = [[" "] * width for _ in range(2 * n - 1)]
    for q in range(n):
        for x in range(width):
            canvas[2 * q][x] = "-"

    for layer_idx, layer in enumerate(layers):
        x0 = layer_idx * _CELL
        for gate in layer:
            if gate.num_qubits == 1:
                label = _gate_label(gate.name)
                row = 2 * gate.qubits[0]
                for i, ch in enumerate(label[: _CELL - 2]):
                    canvas[row][x0 + 1 + i] = ch
            else:
                qs = sorted(gate.qubits)
                top, bottom = qs[0], qs[-1]
                mid = x0 + 2
                for q in qs:
                    canvas[2 * q][mid] = "o" if gate.name == "cz" else "*"
                for row in range(2 * top + 1, 2 * bottom):
                    if canvas[row][mid] == " ":
                        canvas[row][mid] = "|"

    lines = []
    for q in range(n):
        prefix = f"q{q:<2d}: "
        lines.append(prefix + "".join(canvas[2 * q]) + (" ..." if truncated else ""))
        if q < n - 1:
            lines.append(" " * len(prefix) + "".join(canvas[2 * q + 1]))
    return "\n".join(lines)
