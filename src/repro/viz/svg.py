"""Dependency-free SVG rendering of machine layouts.

Produces standalone SVG documents (plain strings) showing the atom grid:
free sites as dots, SLM atoms as filled circles, AOD atoms as rings, with
the interaction and blockade radii drawn around a chosen atom.  Useful for
papers/slides without any plotting stack installed.
"""

from __future__ import annotations

from repro.core.machine import MachineState

__all__ = ["machine_to_svg"]

_SCALE = 8.0       # SVG pixels per micrometer
_MARGIN = 30.0     # pixels around the grid


def _fmt(value: float) -> str:
    return f"{value:.2f}"


def machine_to_svg(
    state: MachineState,
    highlight_qubit: int | None = None,
    show_labels: bool = True,
) -> str:
    """Render the machine state as an SVG document string.

    Args:
        state: the machine to draw.
        highlight_qubit: if given, draw that atom's interaction (solid) and
            blockade (dashed) radii, Fig. 3(a) style.
        show_labels: annotate atoms with their qubit indices.
    """
    spec = state.spec
    width_um, height_um = spec.extent_um
    width = width_um * _SCALE + 2 * _MARGIN
    height = height_um * _SCALE + 2 * _MARGIN

    def sx(x_um: float) -> float:
        return _MARGIN + x_um * _SCALE

    def sy(y_um: float) -> float:
        # SVG y grows downward; the paper's figures grow upward.
        return height - (_MARGIN + y_um * _SCALE)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_fmt(width)}" '
        f'height="{_fmt(height)}" viewBox="0 0 {_fmt(width)} {_fmt(height)}">',
        f'<rect width="{_fmt(width)}" height="{_fmt(height)}" fill="white"/>',
        f"<!-- {spec.name}: {spec.grid_rows}x{spec.grid_cols} sites, "
        f"pitch {spec.grid_pitch_um} um -->",
    ]

    # Free grid sites as faint dots.
    pitch = spec.grid_pitch_um
    occupied = {tuple(site) for site in state.sites}
    for row in range(spec.grid_rows):
        for col in range(spec.grid_cols):
            if (row, col) in occupied:
                continue
            parts.append(
                f'<circle cx="{_fmt(sx(col * pitch))}" cy="{_fmt(sy(row * pitch))}" '
                f'r="1.5" fill="#cccccc"/>'
            )

    # Radii for the highlighted atom (under the atoms so strokes stay visible).
    if highlight_qubit is not None:
        if not (0 <= highlight_qubit < state.num_qubits):
            raise ValueError(f"no qubit {highlight_qubit} to highlight")
        hx, hy = state.positions[highlight_qubit]
        parts.append(
            f'<circle cx="{_fmt(sx(hx))}" cy="{_fmt(sy(hy))}" '
            f'r="{_fmt(state.interaction_radius * _SCALE)}" fill="none" '
            f'stroke="#2a7de1" stroke-width="1.5"/>'
        )
        parts.append(
            f'<circle cx="{_fmt(sx(hx))}" cy="{_fmt(sy(hy))}" '
            f'r="{_fmt(state.blockade_radius * _SCALE)}" fill="none" '
            f'stroke="#e1662a" stroke-width="1.5" stroke-dasharray="6 4"/>'
        )

    # Atoms: SLM filled, AOD as rings.
    for q in range(state.num_qubits):
        x, y = state.positions[q]
        if state.is_mobile(q):
            parts.append(
                f'<circle cx="{_fmt(sx(x))}" cy="{_fmt(sy(y))}" r="6" '
                f'fill="white" stroke="#d6336c" stroke-width="2.5"/>'
            )
        else:
            parts.append(
                f'<circle cx="{_fmt(sx(x))}" cy="{_fmt(sy(y))}" r="6" '
                f'fill="#343a40"/>'
            )
        if show_labels:
            parts.append(
                f'<text x="{_fmt(sx(x) + 8)}" y="{_fmt(sy(y) - 8)}" '
                f'font-size="10" font-family="monospace">{q}</text>'
            )

    parts.append("</svg>")
    return "\n".join(parts)
