"""Plain-text visualization of circuits and machine geometry.

No plotting dependency is available offline, so these renderers emit ASCII:

- :func:`draw_circuit` -- horizontal wire diagram of a circuit (Fig. 1
  style).
- :func:`draw_machine` -- top-down map of the atom grid showing SLM atoms,
  AOD atoms, and free sites (Fig. 4 style).
- :func:`draw_layers` -- the compiled schedule, one line per layer with
  movement/trap annotations.
"""

from repro.viz.circuit_drawer import draw_circuit
from repro.viz.machine_drawer import draw_machine, draw_layers
from repro.viz.svg import machine_to_svg

__all__ = ["draw_circuit", "draw_machine", "draw_layers", "machine_to_svg"]
