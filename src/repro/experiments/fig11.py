"""Fig. 11: total execution time vs. logical-shot parallelization factor.

The paper parallelizes ADV, KNN, QV, SECA, SQRT and WST on the 1,225-qubit
Atom machine: 8,000 logical shots are spread over replicas of the circuit
tiled across the grid (replicas share AOD rows/columns), so total execution
time falls roughly as 1/P.  ELDI and Graphine are parallelized the same way
for comparison.

Unlike the other figures this one is a *derived time series* -- each row
applies the :mod:`repro.core.parallel_shots` timing model to a compiled
artifact at one parallelization factor -- so it consumes
:class:`CompilationResult` objects directly (batched through
:func:`compile_points`) rather than pivoting aggregated rows.
"""

from __future__ import annotations

from repro.core.parallel_shots import (
    parallelization_factor,
    total_execution_time_us,
)
from repro.experiments.common import (
    ExperimentSettings,
    ExperimentTable,
    compile_points,
)
from repro.hardware.spec import HardwareSpec

__all__ = ["run_fig11", "FIG11_BENCHMARKS"]

FIG11_BENCHMARKS: tuple[str, ...] = ("ADV", "KNN", "QV", "SECA", "SQRT", "WST")

_TECHNIQUES = ("graphine", "eldi", "parallax")


def run_fig11(
    benchmarks: tuple[str, ...] = FIG11_BENCHMARKS,
    spec: HardwareSpec | None = None,
    settings: ExperimentSettings | None = None,
    num_shots: int = 8000,
) -> ExperimentTable:
    """Execution-time series per technique across parallelization factors."""
    spec = spec or HardwareSpec.atom_computing()
    settings = settings or ExperimentSettings(benchmarks=benchmarks)
    points = [
        (bench, tech, spec) for bench in benchmarks for tech in _TECHNIQUES
    ]
    compiled = dict(
        zip(
            ((bench, tech) for bench, tech, _ in points),
            compile_points(points, settings=settings),
        )
    )
    rows = []
    for bench in benchmarks:
        max_factor = min(
            parallelization_factor(compiled[bench, tech], spec)
            for tech in _TECHNIQUES
        )
        factors = sorted({k * k for k in range(1, int(max_factor**0.5) + 1)} | {1})
        for factor in factors:
            row: list = [bench, factor]
            for tech in _TECHNIQUES:
                total_s = (
                    total_execution_time_us(
                        compiled[bench, tech],
                        num_shots=num_shots,
                        factor=factor,
                        spec=spec,
                    )
                    / 1e6
                )
                row.append(round(total_s, 4))
            rows.append(tuple(row))
    return ExperimentTable(
        title=f"Fig. 11: total execution time (s) for {num_shots} shots (Atom 1,225-qubit)",
        headers=("benchmark", "factor", "graphine_s", "eldi_s", "parallax_s"),
        rows=tuple(rows),
    )
