"""Table IV: circuit runtime (us) on the 256- and 1,225-qubit machines.

Parallax can be slower on the cramped 256-site machine (trap changes) but
closes the gap -- and often wins -- on the 1,225-site machine where the
initial topology has room to be near-optimal.
"""

from __future__ import annotations

from repro.experiments.common import (
    ALL_BENCHMARKS,
    ExperimentSettings,
    ExperimentTable,
    compilation_table,
)
from repro.hardware.spec import HardwareSpec

__all__ = ["run_table4"]

_TECHNIQUES = ("eldi", "graphine", "parallax")


def run_table4(
    benchmarks: tuple[str, ...] = ALL_BENCHMARKS,
    settings: ExperimentSettings | None = None,
) -> ExperimentTable:
    """Runtimes per technique on both evaluation machines."""
    settings = settings or ExperimentSettings(benchmarks=benchmarks)
    machines = (("256", HardwareSpec.quera_aquila()), ("1225", HardwareSpec.atom_computing()))
    table = compilation_table(
        [
            (bench, tech, spec)
            for bench in benchmarks
            for _, spec in machines
            for tech in _TECHNIQUES
        ],
        settings=settings,
    )
    pivots = {
        label: table.filter(spec_name=spec.name).pivot(
            index="benchmark",
            column="technique",
            value="runtime_us",
            column_order=_TECHNIQUES,
        )
        for label, spec in machines
    }
    rows = []
    for quera_row, atom_row in zip(pivots["256"].rows, pivots["1225"].rows):
        bench = quera_row[0]
        rows.append(
            (bench, *(round(v, 1) for v in (*quera_row[1:], *atom_row[1:])))
        )
    return ExperimentTable(
        title="Table IV: circuit runtime in us (256-qubit | 1,225-qubit)",
        headers=(
            "benchmark",
            "eldi_256", "graphine_256", "parallax_256",
            "eldi_1225", "graphine_1225", "parallax_1225",
        ),
        rows=tuple(rows),
    )
