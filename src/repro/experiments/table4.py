"""Table IV: circuit runtime (us) on the 256- and 1,225-qubit machines.

Parallax can be slower on the cramped 256-site machine (trap changes) but
closes the gap -- and often wins -- on the 1,225-site machine where the
initial topology has room to be near-optimal.
"""

from __future__ import annotations

from repro.experiments.common import (
    ALL_BENCHMARKS,
    ExperimentSettings,
    ExperimentTable,
    compile_one,
)
from repro.hardware.spec import HardwareSpec

__all__ = ["run_table4"]


def run_table4(
    benchmarks: tuple[str, ...] = ALL_BENCHMARKS,
    settings: ExperimentSettings | None = None,
) -> ExperimentTable:
    """Runtimes per technique on both evaluation machines."""
    settings = settings or ExperimentSettings(benchmarks=benchmarks)
    quera = HardwareSpec.quera_aquila()
    atom = HardwareSpec.atom_computing()
    rows = []
    for bench in benchmarks:
        row: list = [bench]
        for spec in (quera, atom):
            for tech in ("eldi", "graphine", "parallax"):
                result = compile_one(tech, bench, spec, settings)
                row.append(round(result.runtime_us, 1))
        rows.append(tuple(row))
    return ExperimentTable(
        title="Table IV: circuit runtime in us (256-qubit | 1,225-qubit)",
        headers=(
            "benchmark",
            "eldi_256", "graphine_256", "parallax_256",
            "eldi_1225", "graphine_1225", "parallax_1225",
        ),
        rows=tuple(rows),
    )
