"""Shared experiment plumbing: settings, caching, and table rendering.

The paper transpiles each QASM benchmark once with Qiskit and feeds the same
optimized circuit to every technique; likewise here, every technique
consumes the identical transpiled circuit, and Parallax/Graphine share one
Graphine layout (the paper's "load pre-obtained Graphine results" option).

Compilation results are memoized in a content-addressed
:class:`~repro.pipeline.cache.CompilationCache` keyed by (circuit, full
hardware spec, technique config) fingerprints, so multi-figure runs never
recompile and techniques are never invalidated by knobs they do not consume
(ELDI ignores placement/scheduler seeds, for example).  Techniques are
resolved by name through :mod:`repro.pipeline.registry`, and
:func:`compile_batch` fans a whole benchmark sweep out over the
:func:`~repro.pipeline.batch.compile_many` process-pool engine with cache
write-back.

Aggregation is unified with the scenario sweeps:
:func:`compilation_table` emits the same flat
:class:`~repro.sweeps.analysis.ResultTable` rows a
:class:`~repro.sweeps.store.SweepStore` holds, and every figure runner
builds its :class:`ExperimentTable` view by pivoting that one row schema
-- there is no figure-private results format.
"""

from __future__ import annotations

import os
import typing
from dataclasses import dataclass

from repro.baselines.router import RouterConfig
from repro.benchcircuits import get_benchmark
from repro.circuit.circuit import QuantumCircuit
from repro.core.result import CompilationResult
from repro.core.scheduler import SchedulerConfig
from repro.hardware.spec import HardwareSpec
from repro.layout.graphine import GraphineLayout, generate_layout
from repro.layout.placement import PlacementConfig
from repro.pipeline.batch import CompileTask, compile_many, compile_tasks
from repro.pipeline.cache import CompilationCache
from repro.pipeline.registry import get_compiler
from repro.sweeps.analysis import ResultTable
from repro.transpile.pipeline import transpile
from repro.utils.tables import format_table

if typing.TYPE_CHECKING:
    from collections.abc import Callable, Mapping, Sequence
    from repro.noise.fidelity import NoiseModelConfig

__all__ = [
    "ALL_BENCHMARKS",
    "QUICK_BENCHMARKS",
    "TECHNIQUES",
    "ExperimentSettings",
    "ExperimentTable",
    "prepared_circuit",
    "prepared_layout",
    "compile_one",
    "compile_batch",
    "compile_points",
    "compilation_table",
    "result_cache",
    "settings_config_factory",
    "clear_caches",
]

#: Evaluation order used by all the paper's figures.
ALL_BENCHMARKS: tuple[str, ...] = (
    "ADD", "ADV", "GCM", "HSB", "HLF", "KNN", "MLT", "QAOA", "QEC",
    "QFT", "QGAN", "QV", "SAT", "SECA", "SQRT", "TFIM", "VQE", "WST",
)

#: Small, fast subset for smoke runs and pytest-benchmark.
QUICK_BENCHMARKS: tuple[str, ...] = ("ADD", "ADV", "HLF", "QAOA", "QEC", "WST")

TECHNIQUES: tuple[str, ...] = ("graphine", "eldi", "parallax")


@dataclass(frozen=True)
class ExperimentSettings:
    """Cross-experiment knobs.

    Every field except ``benchmarks`` is a *technique-config knob* the
    sweep grids can range over (``SweepGrid.config_axes``): the defaults
    reproduce the paper's settings, and each technique's ``make_config``
    keeps only the knobs it consumes, so varying e.g. ``placement_seed``
    never invalidates ELDI's cache entries.
    """

    benchmarks: tuple[str, ...] = ALL_BENCHMARKS
    placement_method: str = "spring"
    placement_seed: int = 7
    scheduler_seed: int = 11
    return_home: bool = True
    router_strategy: str = "shortest_path"
    router_window: int = 8

    def placement(self) -> PlacementConfig:
        return PlacementConfig(method=self.placement_method, seed=self.placement_seed)

    def router(self) -> RouterConfig:
        return RouterConfig(strategy=self.router_strategy, window=self.router_window)


@dataclass(frozen=True)
class ExperimentTable:
    """A rendered experiment: headers + rows + provenance."""

    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple, ...]

    def format(self) -> str:
        """Monospace rendering of the table."""
        return format_table(list(self.headers), [list(r) for r in self.rows], self.title)

    def column(self, name: str) -> list:
        """Extract one column by header name."""
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]


# -- caches ---------------------------------------------------------------------

_circuit_cache: dict[str, QuantumCircuit] = {}
_layout_cache: dict[tuple[str, str, int], GraphineLayout] = {}
#: Shared result cache; set REPRO_CACHE_DIR to persist results across runs.
_result_cache = CompilationCache(os.environ.get("REPRO_CACHE_DIR") or None)


def result_cache() -> CompilationCache:
    """The process-wide experiment result cache (hit/miss stats included)."""
    return _result_cache


def clear_caches() -> None:
    """Drop all memoized circuits, layouts, and compilation results.

    Clears the on-disk backend too (when ``REPRO_CACHE_DIR`` is set):
    callers use this to force genuinely fresh compilation, so stale disk
    entries must not be silently reloaded afterwards.
    """
    from repro.pipeline.fingerprint import clear_fingerprint_caches

    _circuit_cache.clear()
    _layout_cache.clear()
    _result_cache.clear(disk=True)
    _result_cache.stats.reset()
    clear_fingerprint_caches()


def prepared_circuit(benchmark: str) -> QuantumCircuit:
    """The transpiled {u3, cz} circuit for a Table III benchmark (cached)."""
    key = benchmark.upper()
    if key not in _circuit_cache:
        _circuit_cache[key] = transpile(get_benchmark(key))
    return _circuit_cache[key]


def prepared_layout(benchmark: str, settings: ExperimentSettings) -> GraphineLayout:
    """The Graphine layout for a benchmark (cached; shared by techniques)."""
    key = (benchmark.upper(), settings.placement_method, settings.placement_seed)
    if key not in _layout_cache:
        _layout_cache[key] = generate_layout(
            prepared_circuit(benchmark), settings.placement()
        )
    return _layout_cache[key]


def settings_config_factory(
    settings: ExperimentSettings, return_home: "bool | None" = None
) -> "Callable[[str, QuantumCircuit, HardwareSpec], object]":
    """Per-task config factory matching :func:`compile_one`'s cache keys.

    Each technique's ``make_config`` keeps only the knobs it consumes, so
    the same factory serves all registered techniques.  ``return_home``
    defaults to the settings field (an explicit argument overrides it --
    the Fig. 12 ablation path).
    """
    if return_home is None:
        return_home = settings.return_home

    def factory(
        technique: str, circuit: QuantumCircuit, spec: HardwareSpec
    ) -> object:
        return get_compiler(technique).make_config(
            placement=settings.placement(),
            scheduler=SchedulerConfig(
                return_home=return_home, seed=settings.scheduler_seed
            ),
            router=settings.router(),
            transpile_input=False,
        )

    return factory


def compile_one(
    technique: str,
    benchmark: str,
    spec: HardwareSpec,
    settings: ExperimentSettings | None = None,
    return_home: "bool | None" = None,
) -> CompilationResult:
    """Compile one benchmark with one technique on one machine (memoized)."""
    settings = settings or ExperimentSettings()
    cls = get_compiler(technique)  # raises ValueError on unknown techniques
    config = settings_config_factory(settings, return_home)(
        technique, prepared_circuit(benchmark), spec
    )
    circuit = prepared_circuit(benchmark)
    cached = _result_cache.lookup(technique, circuit, spec, config)
    if cached is not None:
        return cached
    layout = prepared_layout(benchmark, settings) if cls.uses_layout else None
    result = cls(spec, config).compile(circuit, layout=layout)
    _result_cache.store(technique, circuit, spec, config, result)
    return result


def compile_batch(
    benchmarks: "Sequence[str]",
    techniques: "Sequence[str]" = TECHNIQUES,
    specs: "HardwareSpec | Sequence[HardwareSpec] | None" = None,
    settings: ExperimentSettings | None = None,
    return_home: "bool | None" = None,
    workers: int = 1,
) -> list[CompilationResult]:
    """Batch-compile ``benchmarks x techniques x specs`` with cache write-back.

    Routes through :func:`repro.pipeline.batch.compile_many` against the
    shared experiment cache, so a warmed batch makes every subsequent
    :func:`compile_one` (and thus every figure runner) a cache hit.  Results
    come back in product order (benchmark-major, then technique, then spec)
    and are bit-identical for any ``workers`` value.
    """
    settings = settings or ExperimentSettings(benchmarks=tuple(benchmarks))
    circuits = [prepared_circuit(b) for b in benchmarks]
    return compile_many(
        circuits,
        list(techniques),
        specs if specs is not None else HardwareSpec.quera_aquila(),
        workers=workers,
        cache=_result_cache,
        config_factory=settings_config_factory(settings, return_home),
    )


def compile_points(
    points: "Sequence[tuple]",
    settings: ExperimentSettings | None = None,
    return_home: "bool | None" = None,
    workers: int = 1,
    return_timings: bool = False,
):
    """Compile an explicit (possibly non-product) list of points.

    Each point is a ``(benchmark acronym, technique, spec)`` triple, or a
    ``(benchmark, technique, spec, config_overrides)`` 4-tuple where
    ``config_overrides`` is a tuple of ``(field, value)`` pairs applied to
    ``settings`` for that point only (the sweep grids' ``config_axes``
    mechanism); unlike :func:`compile_batch` the list need not be a full
    cartesian product, so callers (the scenario-sweep runner) can dedup
    shared compilations before dispatch.  Routed through
    :func:`~repro.pipeline.batch.compile_tasks` against the shared
    experiment cache with the same configs :func:`compile_one` uses, so
    sweep compilations and figure compilations hit the same cache entries.
    Results come back in point order, bit-identical for any ``workers``.
    With ``return_timings``, each entry is a ``(result, stage_timings)``
    pair (cache hits and deduplicated points report empty timings).
    """
    from dataclasses import replace

    settings = settings or ExperimentSettings()
    factories: dict[tuple, "Callable"] = {}
    tasks = []
    for point in points:
        benchmark, technique, spec = point[0], point[1], point[2]
        overrides = tuple(point[3]) if len(point) > 3 and point[3] else ()
        if overrides not in factories:
            point_settings = (
                replace(settings, **dict(overrides)) if overrides else settings
            )
            factories[overrides] = settings_config_factory(
                point_settings, return_home
            )
        get_compiler(technique)  # fail fast on unknown techniques
        circuit = prepared_circuit(benchmark)
        tasks.append(
            CompileTask(
                technique,
                circuit,
                spec,
                factories[overrides](technique, circuit, spec),
            )
        )
    return compile_tasks(
        tasks, workers=workers, cache=_result_cache, return_timings=return_timings
    )


def compilation_table(
    points: "Sequence[tuple[str, str, HardwareSpec]]",
    settings: ExperimentSettings | None = None,
    noise: "NoiseModelConfig | None" = None,
    return_home: "bool | None" = None,
    workers: int = 1,
    extras: "Sequence[Mapping[str, object]] | None" = None,
    title: str = "compilation results",
) -> ResultTable:
    """Compile ``points`` and emit the unified :class:`ResultTable` rows.

    This is the figure runners' bridge into the single aggregation layer:
    the same flat row schema the scenario sweeps persist (identity + axis
    columns + compile metrics + ``analytic_success``; empirical columns
    stay ``None`` because nothing is Monte Carlo sampled here).  ``extras``
    optionally supplies per-point axis columns (e.g. ``aod_count`` or
    ``return_home``) so ablation sweeps stay pivotable like any other axis.
    Compilations route through :func:`compile_points` (batch engine +
    shared cache), so figure tables and scenario sweeps hit the same cache
    entries.
    """
    if extras is not None and len(extras) != len(points):
        raise ValueError(
            f"extras has {len(extras)} entries for {len(points)} points"
        )
    results = compile_points(
        points, settings=settings, return_home=return_home, workers=workers
    )
    entries = [
        (
            benchmark,
            technique,
            result,
            extras[i] if extras is not None else {},
        )
        for i, ((benchmark, technique, _), result) in enumerate(
            zip(points, results)
        )
    ]
    return ResultTable.from_compilations(entries, noise=noise, title=title)
