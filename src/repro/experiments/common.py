"""Shared experiment plumbing: settings, caching, and table rendering.

The paper transpiles each QASM benchmark once with Qiskit and feeds the same
optimized circuit to every technique; likewise here, every technique
consumes the identical transpiled circuit, and Parallax/Graphine share one
Graphine layout (the paper's "load pre-obtained Graphine results" option).
Compilation results are memoized per (benchmark, machine, technique,
options) so multi-figure runs never recompile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.baselines.eldi import EldiCompiler, EldiConfig
from repro.baselines.graphine_compiler import GraphineCompiler, GraphineConfig
from repro.benchcircuits import get_benchmark
from repro.circuit.circuit import QuantumCircuit
from repro.core.compiler import ParallaxCompiler, ParallaxConfig
from repro.core.result import CompilationResult
from repro.core.scheduler import SchedulerConfig
from repro.hardware.spec import HardwareSpec
from repro.layout.graphine import GraphineLayout, generate_layout
from repro.layout.placement import PlacementConfig
from repro.transpile.pipeline import transpile
from repro.utils.tables import format_table

__all__ = [
    "ALL_BENCHMARKS",
    "QUICK_BENCHMARKS",
    "TECHNIQUES",
    "ExperimentSettings",
    "ExperimentTable",
    "prepared_circuit",
    "prepared_layout",
    "compile_one",
    "clear_caches",
]

#: Evaluation order used by all the paper's figures.
ALL_BENCHMARKS: tuple[str, ...] = (
    "ADD", "ADV", "GCM", "HSB", "HLF", "KNN", "MLT", "QAOA", "QEC",
    "QFT", "QGAN", "QV", "SAT", "SECA", "SQRT", "TFIM", "VQE", "WST",
)

#: Small, fast subset for smoke runs and pytest-benchmark.
QUICK_BENCHMARKS: tuple[str, ...] = ("ADD", "ADV", "HLF", "QAOA", "QEC", "WST")

TECHNIQUES: tuple[str, ...] = ("graphine", "eldi", "parallax")


@dataclass(frozen=True)
class ExperimentSettings:
    """Cross-experiment knobs."""

    benchmarks: tuple[str, ...] = ALL_BENCHMARKS
    placement_method: str = "spring"
    placement_seed: int = 7
    scheduler_seed: int = 11

    def placement(self) -> PlacementConfig:
        return PlacementConfig(method=self.placement_method, seed=self.placement_seed)


@dataclass(frozen=True)
class ExperimentTable:
    """A rendered experiment: headers + rows + provenance."""

    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple, ...]

    def format(self) -> str:
        """Monospace rendering of the table."""
        return format_table(list(self.headers), [list(r) for r in self.rows], self.title)

    def column(self, name: str) -> list:
        """Extract one column by header name."""
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]


# -- caches ---------------------------------------------------------------------

_circuit_cache: dict[str, QuantumCircuit] = {}
_layout_cache: dict[tuple[str, str, int], GraphineLayout] = {}
_result_cache: dict[tuple, CompilationResult] = {}


def clear_caches() -> None:
    """Drop all memoized circuits, layouts, and compilation results."""
    _circuit_cache.clear()
    _layout_cache.clear()
    _result_cache.clear()


def prepared_circuit(benchmark: str) -> QuantumCircuit:
    """The transpiled {u3, cz} circuit for a Table III benchmark (cached)."""
    key = benchmark.upper()
    if key not in _circuit_cache:
        _circuit_cache[key] = transpile(get_benchmark(key))
    return _circuit_cache[key]


def prepared_layout(benchmark: str, settings: ExperimentSettings) -> GraphineLayout:
    """The Graphine layout for a benchmark (cached; shared by techniques)."""
    key = (benchmark.upper(), settings.placement_method, settings.placement_seed)
    if key not in _layout_cache:
        _layout_cache[key] = generate_layout(
            prepared_circuit(benchmark), settings.placement()
        )
    return _layout_cache[key]


def compile_one(
    technique: str,
    benchmark: str,
    spec: HardwareSpec,
    settings: ExperimentSettings | None = None,
    return_home: bool = True,
) -> CompilationResult:
    """Compile one benchmark with one technique on one machine (memoized)."""
    settings = settings or ExperimentSettings()
    cache_key = (
        technique, benchmark.upper(), spec.name, spec.aod_rows, spec.aod_cols,
        settings.placement_method, settings.placement_seed,
        settings.scheduler_seed, return_home,
    )
    if cache_key in _result_cache:
        return _result_cache[cache_key]

    circuit = prepared_circuit(benchmark)
    if technique == "parallax":
        config = ParallaxConfig(
            placement=settings.placement(),
            scheduler=SchedulerConfig(
                return_home=return_home, seed=settings.scheduler_seed
            ),
            transpile_input=False,
        )
        result = ParallaxCompiler(spec, config).compile(
            circuit, layout=prepared_layout(benchmark, settings)
        )
    elif technique == "graphine":
        config = GraphineConfig(placement=settings.placement(), transpile_input=False)
        result = GraphineCompiler(spec, config).compile(
            circuit, layout=prepared_layout(benchmark, settings)
        )
    elif technique == "eldi":
        result = EldiCompiler(spec, EldiConfig(transpile_input=False)).compile(circuit)
    else:
        raise ValueError(f"unknown technique {technique!r}; choose from {TECHNIQUES}")
    _result_cache[cache_key] = result
    return result
