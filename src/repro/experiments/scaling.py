"""Compile-time scaling experiment (the paper's Section III complexity note).

The paper derives Parallax's worst-case time complexity O(q^5 + g*q^2 +
a^2*q^2 + g*a^2*s + g*a^3) -- polynomial, like Graphine -- and reports that
ELDI in practice was slower (it timed out on VQE).  This experiment
measures wall-clock compile time against qubit count on a scalable workload
family (TFIM chains, fixed Trotter depth) and checks the growth is
polynomial-ish (doubling q multiplies time by a bounded factor), the
practical content of the paper's scalability claim.
"""

from __future__ import annotations

import time

from repro.benchcircuits.simulation import tfim
from repro.core.compiler import ParallaxCompiler, ParallaxConfig
from repro.experiments.common import ExperimentSettings, ExperimentTable
from repro.hardware.spec import HardwareSpec
from repro.layout.placement import PlacementConfig
from repro.transpile.pipeline import transpile

__all__ = ["run_scaling", "DEFAULT_QUBIT_COUNTS"]

DEFAULT_QUBIT_COUNTS: tuple[int, ...] = (8, 16, 32, 64, 128)


def run_scaling(
    qubit_counts: tuple[int, ...] = DEFAULT_QUBIT_COUNTS,
    steps: int = 4,
    spec: HardwareSpec | None = None,
    settings: ExperimentSettings | None = None,
) -> ExperimentTable:
    """Measure Parallax compile time vs. qubit count on TFIM chains.

    Args:
        qubit_counts: chain lengths to sweep (each must fit the machine).
        steps: Trotter steps (fixed, so gate count grows linearly with q).
        spec: target machine (defaults to the 1,225-qubit Atom system so
            the largest chains fit comfortably).
    """
    spec = spec or HardwareSpec.atom_computing()
    settings = settings or ExperimentSettings()
    config = ParallaxConfig(
        placement=settings.placement(),
        transpile_input=False,
    )
    rows = []
    for q in qubit_counts:
        circuit = tfim(num_qubits=q, steps=steps)
        start = time.perf_counter()
        basis = transpile(circuit)
        transpile_s = time.perf_counter() - start
        start = time.perf_counter()
        result = ParallaxCompiler(spec, config).compile(basis)
        compile_s = time.perf_counter() - start
        rows.append(
            (
                q,
                basis.count_ops().get("cz", 0),
                round(transpile_s, 3),
                round(compile_s, 3),
                result.num_layers,
            )
        )
    return ExperimentTable(
        title=f"Compile-time scaling on TFIM chains ({steps} Trotter steps, {spec.name})",
        headers=("qubits", "cz_gates", "transpile_s", "compile_s", "layers"),
        rows=tuple(rows),
    )
