"""Compile-time scaling experiment (the paper's Section III complexity note).

The paper derives Parallax's worst-case time complexity O(q^5 + g*q^2 +
a^2*q^2 + g*a^2*s + g*a^3) -- polynomial, like Graphine -- and reports that
ELDI in practice was slower (it timed out on VQE).  This experiment
measures wall-clock compile time against qubit count on a scalable workload
family (TFIM chains, fixed Trotter depth) and checks the growth is
polynomial-ish (doubling q multiplies time by a bounded factor), the
practical content of the paper's scalability claim.

The sweep runs through :func:`repro.pipeline.batch.compile_many`, so the
per-size timings come from the pass pipeline's stage timers (the
``transpile`` stage vs. everything after it) and ``workers > 1`` fans the
chain lengths out across processes.
"""

from __future__ import annotations

from repro.benchcircuits.simulation import tfim
from repro.core.compiler import ParallaxCompiler
from repro.experiments.common import ExperimentSettings, ExperimentTable
from repro.hardware.spec import HardwareSpec
from repro.pipeline.batch import compile_many

__all__ = ["run_scaling", "DEFAULT_QUBIT_COUNTS"]

DEFAULT_QUBIT_COUNTS: tuple[int, ...] = (8, 16, 32, 64, 128)


def run_scaling(
    qubit_counts: tuple[int, ...] = DEFAULT_QUBIT_COUNTS,
    steps: int = 4,
    spec: HardwareSpec | None = None,
    settings: ExperimentSettings | None = None,
    workers: int = 1,
) -> ExperimentTable:
    """Measure Parallax compile time vs. qubit count on TFIM chains.

    Args:
        qubit_counts: chain lengths to sweep (each must fit the machine).
        steps: Trotter steps (fixed, so gate count grows linearly with q).
        spec: target machine (defaults to the 1,225-qubit Atom system so
            the largest chains fit comfortably).
        settings: placement knobs (method/seed) shared with the figures.
        workers: process-pool size for the sweep (1 = sequential; parallel
            runs time each compilation inside its own worker, so the sizes
            do not contend for the same interpreter).
    """
    spec = spec or HardwareSpec.atom_computing()
    settings = settings or ExperimentSettings()

    def config_factory(technique, circuit, task_spec):
        return ParallaxCompiler.make_config(placement=settings.placement())

    circuits = [tfim(num_qubits=q, steps=steps) for q in qubit_counts]
    compiled = compile_many(
        circuits,
        ["parallax"],
        [spec],
        workers=workers,
        config_factory=config_factory,
        return_timings=True,
    )
    rows = []
    for q, (result, stage_times) in zip(qubit_counts, compiled):
        transpile_s = stage_times.get("parallax.transpile", 0.0)
        compile_s = sum(
            seconds
            for phase, seconds in stage_times.items()
            if phase != "parallax.transpile"
        )
        rows.append(
            (
                q,
                result.num_cz,  # zero SWAPs: equals the transpiled base count
                round(transpile_s, 3),
                round(compile_s, 3),
                result.num_layers,
            )
        )
    return ExperimentTable(
        title=f"Compile-time scaling on TFIM chains ({steps} Trotter steps, {spec.name})",
        headers=("qubits", "cz_gates", "transpile_s", "compile_s", "layers"),
        rows=tuple(rows),
    )
