"""Fig. 13: ablation -- AOD row/column count in {1, 5, 10, 20, 40}.

More AOD lines means more mobile atoms (fewer trap changes) but also more
obstruction among mobile atoms; the paper finds 20 rows/columns the sweet
spot on average.
"""

from __future__ import annotations

from repro.experiments.common import (
    ALL_BENCHMARKS,
    ExperimentSettings,
    ExperimentTable,
    compile_one,
)
from repro.hardware.spec import HardwareSpec

__all__ = ["run_fig13", "AOD_COUNTS"]

AOD_COUNTS: tuple[int, ...] = (1, 5, 10, 20, 40)


def run_fig13(
    benchmarks: tuple[str, ...] = ALL_BENCHMARKS,
    settings: ExperimentSettings | None = None,
    aod_counts: tuple[int, ...] = AOD_COUNTS,
    base_spec: HardwareSpec | None = None,
) -> ExperimentTable:
    """Parallax runtime per AOD row/column count."""
    base_spec = base_spec or HardwareSpec.atom_computing()
    settings = settings or ExperimentSettings(benchmarks=benchmarks)
    rows = []
    for bench in benchmarks:
        runtimes = []
        for count in aod_counts:
            spec = base_spec.with_aod_count(count)
            result = compile_one("parallax", bench, spec, settings)
            runtimes.append(round(result.runtime_us, 1))
        rows.append((bench, *runtimes))
    return ExperimentTable(
        title="Fig. 13: Parallax runtime (us) by AOD row/column count (Atom 1,225-qubit)",
        headers=("benchmark", *(f"aod_{c}" for c in aod_counts)),
        rows=tuple(rows),
    )
