"""Fig. 13: ablation -- AOD row/column count in {1, 5, 10, 20, 40}.

More AOD lines means more mobile atoms (fewer trap changes) but also more
obstruction among mobile atoms; the paper finds 20 rows/columns the sweet
spot on average.
"""

from __future__ import annotations

from repro.experiments.common import (
    ALL_BENCHMARKS,
    ExperimentSettings,
    ExperimentTable,
    compilation_table,
)
from repro.hardware.spec import HardwareSpec

__all__ = ["run_fig13", "AOD_COUNTS"]

AOD_COUNTS: tuple[int, ...] = (1, 5, 10, 20, 40)


def run_fig13(
    benchmarks: tuple[str, ...] = ALL_BENCHMARKS,
    settings: ExperimentSettings | None = None,
    aod_counts: tuple[int, ...] = AOD_COUNTS,
    base_spec: HardwareSpec | None = None,
) -> ExperimentTable:
    """Parallax runtime per AOD row/column count."""
    base_spec = base_spec or HardwareSpec.atom_computing()
    settings = settings or ExperimentSettings(benchmarks=benchmarks)
    points = []
    extras = []
    for bench in benchmarks:
        for count in aod_counts:
            points.append((bench, "parallax", base_spec.with_aod_count(count)))
            extras.append({"aod_count": count})
    table = compilation_table(points, settings=settings, extras=extras)
    pivoted = table.pivot(
        index="benchmark",
        column="aod_count",
        value="runtime_us",
        column_order=aod_counts,
        name=lambda count: f"aod_{count}",
    )
    rows = [
        (bench, *(round(runtime, 1) for runtime in runtimes))
        for bench, *runtimes in pivoted.rows
    ]
    return ExperimentTable(
        title="Fig. 13: Parallax runtime (us) by AOD row/column count (Atom 1,225-qubit)",
        headers=("benchmark", *(f"aod_{c}" for c in aod_counts)),
        rows=tuple(rows),
    )
