"""Command-line entry point for the experiment runners.

Examples::

    python -m repro.experiments fig9
    python -m repro.experiments fig10 --quick
    python -m repro.experiments all --quick --jobs 8

``--jobs N`` pre-compiles every (benchmark, technique, machine) combination
the selected experiments need through the parallel batch engine
(:func:`repro.experiments.common.compile_batch`), so the figure runners are
then served from the shared compilation cache.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.common import (
    ALL_BENCHMARKS,
    QUICK_BENCHMARKS,
    TECHNIQUES,
    compile_batch,
    result_cache,
)
from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10 import run_fig10
from repro.experiments.fig11 import run_fig11, FIG11_BENCHMARKS
from repro.experiments.fig12 import run_fig12
from repro.experiments.fig13 import run_fig13, AOD_COUNTS
from repro.experiments.scaling import run_scaling
from repro.experiments.table1 import run_table1
from repro.experiments.table4 import run_table4
from repro.experiments.summary import headline_summaries
from repro.hardware.spec import HardwareSpec

_RUNNERS = {
    "table1": lambda benches, jobs: run_table1(),
    "fig9": lambda benches, jobs: run_fig9(benchmarks=benches),
    "fig10": lambda benches, jobs: run_fig10(benchmarks=benches),
    "table4": lambda benches, jobs: run_table4(benchmarks=benches),
    "fig11": lambda benches, jobs: run_fig11(
        benchmarks=tuple(b for b in benches if b in FIG11_BENCHMARKS) or FIG11_BENCHMARKS
    ),
    "fig12": lambda benches, jobs: run_fig12(benchmarks=benches),
    "fig13": lambda benches, jobs: run_fig13(benchmarks=benches),
    "scaling": lambda benches, jobs: run_scaling(workers=jobs),
    "headline": None,  # handled specially below
}


def _warm_cache(names: list[str], benches: tuple[str, ...], jobs: int) -> None:
    """Batch-compile exactly what the selected experiments will ask for.

    Each experiment warms only its own (benchmarks x techniques x machines)
    combinations; overlap between experiments is deduplicated by the shared
    cache (the second batch sees hits, not recompiles).
    """
    wants = set(names)
    quera = HardwareSpec.quera_aquila()
    atom = HardwareSpec.atom_computing()

    if wants & {"fig9", "fig10", "table4", "headline"}:
        compile_batch(benches, TECHNIQUES, quera, workers=jobs)
    if "table4" in wants:
        compile_batch(benches, TECHNIQUES, atom, workers=jobs)
    if "fig11" in wants:
        fig11_benches = (
            tuple(b for b in benches if b in FIG11_BENCHMARKS) or FIG11_BENCHMARKS
        )
        compile_batch(fig11_benches, TECHNIQUES, atom, workers=jobs)
    if "fig12" in wants:  # parallax only, both home-return arms
        compile_batch(benches, ("parallax",), atom, workers=jobs)
        compile_batch(benches, ("parallax",), atom, return_home=False, workers=jobs)
    if "fig13" in wants:
        compile_batch(
            benches,
            ("parallax",),
            [atom.with_aod_count(count) for count in AOD_COUNTS],
            workers=jobs,
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[*_RUNNERS, "all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"restrict to the quick subset {QUICK_BENCHMARKS}",
    )
    parser.add_argument(
        "--benchmarks",
        type=str,
        default=None,
        help="comma-separated benchmark acronyms (overrides --quick)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="pre-compile through a process pool of N workers (default: 1)",
    )
    args = parser.parse_args(argv)

    if args.benchmarks:
        benches = tuple(b.strip().upper() for b in args.benchmarks.split(","))
    elif args.quick:
        benches = QUICK_BENCHMARKS
    else:
        benches = ALL_BENCHMARKS

    names = list(_RUNNERS) if args.experiment == "all" else [args.experiment]
    if args.jobs > 1:
        start = time.perf_counter()
        _warm_cache(names, benches, args.jobs)
        stats = result_cache().stats
        print(
            f"[warmed {stats.stores} compilations with {args.jobs} workers "
            f"in {time.perf_counter() - start:.1f}s]\n"
        )
    for name in names:
        if name == "headline":
            start = time.perf_counter()
            for label, summary in headline_summaries(benches).items():
                print(f"{label}: {summary.describe()}")
            print(f"[headline completed in {time.perf_counter() - start:.1f}s]\n")
            continue
        start = time.perf_counter()
        table = _RUNNERS[name](benches, args.jobs)
        elapsed = time.perf_counter() - start
        print(table.format())
        print(f"[{name} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
