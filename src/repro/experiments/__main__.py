"""Command-line entry point for the experiment runners.

Examples::

    python -m repro.experiments fig9
    python -m repro.experiments fig10 --quick
    python -m repro.experiments all --quick
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.common import ALL_BENCHMARKS, QUICK_BENCHMARKS
from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10 import run_fig10
from repro.experiments.fig11 import run_fig11, FIG11_BENCHMARKS
from repro.experiments.fig12 import run_fig12
from repro.experiments.fig13 import run_fig13
from repro.experiments.table1 import run_table1
from repro.experiments.table4 import run_table4
from repro.experiments.summary import headline_summaries

_RUNNERS = {
    "table1": lambda benches: run_table1(),
    "fig9": lambda benches: run_fig9(benchmarks=benches),
    "fig10": lambda benches: run_fig10(benchmarks=benches),
    "table4": lambda benches: run_table4(benchmarks=benches),
    "fig11": lambda benches: run_fig11(
        benchmarks=tuple(b for b in benches if b in FIG11_BENCHMARKS) or FIG11_BENCHMARKS
    ),
    "fig12": lambda benches: run_fig12(benchmarks=benches),
    "fig13": lambda benches: run_fig13(benchmarks=benches),
    "headline": None,  # handled specially below
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[*_RUNNERS, "all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"restrict to the quick subset {QUICK_BENCHMARKS}",
    )
    parser.add_argument(
        "--benchmarks",
        type=str,
        default=None,
        help="comma-separated benchmark acronyms (overrides --quick)",
    )
    args = parser.parse_args(argv)

    if args.benchmarks:
        benches = tuple(b.strip().upper() for b in args.benchmarks.split(","))
    elif args.quick:
        benches = QUICK_BENCHMARKS
    else:
        benches = ALL_BENCHMARKS

    names = list(_RUNNERS) if args.experiment == "all" else [args.experiment]
    for name in names:
        if name == "headline":
            start = time.perf_counter()
            for label, summary in headline_summaries(benches).items():
                print(f"{label}: {summary.describe()}")
            print(f"[headline completed in {time.perf_counter() - start:.1f}s]\n")
            continue
        start = time.perf_counter()
        table = _RUNNERS[name](benches)
        elapsed = time.perf_counter() - start
        print(table.format())
        print(f"[{name} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
