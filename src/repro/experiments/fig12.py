"""Fig. 12: ablation -- AOD atoms returning home vs. staying put.

Returning the AOD atoms to their Graphine-optimized home positions after
each layer keeps future moves short; without it, atom positions drift and
runtimes grow (40% on average in the paper).  CZ counts are unaffected, so
success probability barely changes.
"""

from __future__ import annotations

from repro.experiments.common import (
    ALL_BENCHMARKS,
    ExperimentSettings,
    ExperimentTable,
    compilation_table,
)
from repro.hardware.spec import HardwareSpec
from repro.sweeps.analysis import ResultTable

__all__ = ["run_fig12"]


def run_fig12(
    benchmarks: tuple[str, ...] = ALL_BENCHMARKS,
    spec: HardwareSpec | None = None,
    settings: ExperimentSettings | None = None,
) -> ExperimentTable:
    """Parallax runtime with and without the home-return step."""
    spec = spec or HardwareSpec.atom_computing()
    settings = settings or ExperimentSettings(benchmarks=benchmarks)
    # The home-return toggle is a compile-config axis, so each arm compiles
    # separately and lands in the unified table as a `return_home` column.
    arms = [
        compilation_table(
            [(bench, "parallax", spec) for bench in benchmarks],
            settings=settings,
            return_home=return_home,
            extras=[{"return_home": return_home}] * len(benchmarks),
        )
        for return_home in (False, True)
    ]
    pivoted = ResultTable.concat(arms).pivot(
        index="benchmark",
        column="return_home",
        value="runtime_us",
        column_order=(False, True),
    )
    rows = []
    for bench, no_home, home in pivoted.rows:
        worst = max(no_home, home)
        rows.append(
            (
                bench,
                round(no_home, 1),
                round(home, 1),
                round(100.0 * home / worst, 1) if worst else 100.0,
            )
        )
    return ExperimentTable(
        title="Fig. 12: runtime (us) without vs. with AOD home return (Atom 1,225-qubit)",
        headers=("benchmark", "no_home_us", "home_us", "home_pct_of_worst"),
        rows=tuple(rows),
    )
