"""Fig. 12: ablation -- AOD atoms returning home vs. staying put.

Returning the AOD atoms to their Graphine-optimized home positions after
each layer keeps future moves short; without it, atom positions drift and
runtimes grow (40% on average in the paper).  CZ counts are unaffected, so
success probability barely changes.
"""

from __future__ import annotations

from repro.experiments.common import (
    ALL_BENCHMARKS,
    ExperimentSettings,
    ExperimentTable,
    compile_one,
)
from repro.hardware.spec import HardwareSpec

__all__ = ["run_fig12"]


def run_fig12(
    benchmarks: tuple[str, ...] = ALL_BENCHMARKS,
    spec: HardwareSpec | None = None,
    settings: ExperimentSettings | None = None,
) -> ExperimentTable:
    """Parallax runtime with and without the home-return step."""
    spec = spec or HardwareSpec.atom_computing()
    settings = settings or ExperimentSettings(benchmarks=benchmarks)
    rows = []
    for bench in benchmarks:
        with_home = compile_one("parallax", bench, spec, settings, return_home=True)
        without_home = compile_one("parallax", bench, spec, settings, return_home=False)
        worst = max(with_home.runtime_us, without_home.runtime_us)
        rows.append(
            (
                bench,
                round(without_home.runtime_us, 1),
                round(with_home.runtime_us, 1),
                round(100.0 * with_home.runtime_us / worst, 1) if worst else 100.0,
            )
        )
    return ExperimentTable(
        title="Fig. 12: runtime (us) without vs. with AOD home return (Atom 1,225-qubit)",
        headers=("benchmark", "no_home_us", "home_us", "home_pct_of_worst"),
        rows=tuple(rows),
    )
