"""Experiment runners: one module per table/figure of the paper.

Every runner returns an :class:`~repro.experiments.common.ExperimentTable`
whose rows mirror what the paper reports:

- :mod:`repro.experiments.fig9` -- CZ gate counts per technique (Fig. 9).
- :mod:`repro.experiments.fig10` -- probability of success (Fig. 10).
- :mod:`repro.experiments.table4` -- circuit runtimes on the 256- and
  1,225-qubit machines (Table IV).
- :mod:`repro.experiments.fig11` -- total execution time vs. shot
  parallelization factor (Fig. 11).
- :mod:`repro.experiments.fig12` -- home-return ablation (Fig. 12).
- :mod:`repro.experiments.fig13` -- AOD row/column count ablation (Fig. 13).
- :mod:`repro.experiments.table1` -- compiler functionality matrix (Table I).

Run from the command line::

    python -m repro.experiments fig9 --quick
"""

from repro.experiments.common import (
    ExperimentTable,
    ExperimentSettings,
    QUICK_BENCHMARKS,
    ALL_BENCHMARKS,
    compile_one,
    compile_batch,
    prepared_circuit,
    prepared_layout,
    result_cache,
)
from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10 import run_fig10
from repro.experiments.table4 import run_table4
from repro.experiments.fig11 import run_fig11
from repro.experiments.fig12 import run_fig12
from repro.experiments.fig13 import run_fig13
from repro.experiments.table1 import run_table1
from repro.experiments.summary import run_summary, headline_summaries
from repro.experiments.scaling import run_scaling

__all__ = [
    "ExperimentTable",
    "ExperimentSettings",
    "QUICK_BENCHMARKS",
    "ALL_BENCHMARKS",
    "compile_one",
    "compile_batch",
    "prepared_circuit",
    "prepared_layout",
    "result_cache",
    "run_fig9",
    "run_fig10",
    "run_table4",
    "run_fig11",
    "run_fig12",
    "run_fig13",
    "run_table1",
    "run_summary",
    "headline_summaries",
    "run_scaling",
]
