"""Fig. 10: probability of success per technique on the 256-qubit machine.

Success is the estimated-success-probability product (gate errors,
movement/trap losses, decoherence; see :mod:`repro.noise`).  The paper plots
each technique as a percentage of the per-benchmark best case with raw
values annotated.
"""

from __future__ import annotations

from repro.experiments.common import (
    ALL_BENCHMARKS,
    ExperimentSettings,
    ExperimentTable,
    compilation_table,
)
from repro.hardware.spec import HardwareSpec
from repro.noise.fidelity import NoiseModelConfig

__all__ = ["run_fig10"]

_TECHNIQUES = ("graphine", "eldi", "parallax")


def run_fig10(
    benchmarks: tuple[str, ...] = ALL_BENCHMARKS,
    spec: HardwareSpec | None = None,
    settings: ExperimentSettings | None = None,
    noise: NoiseModelConfig | None = None,
) -> ExperimentTable:
    """Success probabilities for Graphine / ELDI / Parallax per benchmark."""
    spec = spec or HardwareSpec.quera_aquila()
    settings = settings or ExperimentSettings(benchmarks=benchmarks)
    table = compilation_table(
        [(bench, tech, spec) for bench in benchmarks for tech in _TECHNIQUES],
        settings=settings,
        noise=noise or NoiseModelConfig(),
    )
    pivoted = table.pivot(
        index="benchmark",
        column="technique",
        value="analytic_success",
        column_order=_TECHNIQUES,
    )
    rows = []
    for bench, graphine, eldi, parallax in pivoted.rows:
        best = max(graphine, eldi, parallax)
        rows.append(
            (
                bench,
                graphine,
                eldi,
                parallax,
                round(100.0 * parallax / best, 1) if best > 0 else 0.0,
            )
        )
    return ExperimentTable(
        title="Fig. 10: probability of success (QuEra 256-qubit)",
        headers=("benchmark", "graphine", "eldi", "parallax", "parallax_pct_of_best"),
        rows=tuple(rows),
    )
