"""Fig. 10: probability of success per technique on the 256-qubit machine.

Success is the estimated-success-probability product (gate errors,
movement/trap losses, decoherence; see :mod:`repro.noise`).  The paper plots
each technique as a percentage of the per-benchmark best case with raw
values annotated.
"""

from __future__ import annotations

from repro.experiments.common import (
    ALL_BENCHMARKS,
    ExperimentSettings,
    ExperimentTable,
    compile_one,
)
from repro.hardware.spec import HardwareSpec
from repro.noise.fidelity import NoiseModelConfig, success_probability

__all__ = ["run_fig10"]


def run_fig10(
    benchmarks: tuple[str, ...] = ALL_BENCHMARKS,
    spec: HardwareSpec | None = None,
    settings: ExperimentSettings | None = None,
    noise: NoiseModelConfig | None = None,
) -> ExperimentTable:
    """Success probabilities for Graphine / ELDI / Parallax per benchmark."""
    spec = spec or HardwareSpec.quera_aquila()
    settings = settings or ExperimentSettings(benchmarks=benchmarks)
    noise = noise or NoiseModelConfig()
    rows = []
    for bench in benchmarks:
        probs = {
            tech: success_probability(compile_one(tech, bench, spec, settings), noise)
            for tech in ("graphine", "eldi", "parallax")
        }
        best = max(probs.values())
        rows.append(
            (
                bench,
                probs["graphine"],
                probs["eldi"],
                probs["parallax"],
                round(100.0 * probs["parallax"] / best, 1) if best > 0 else 0.0,
            )
        )
    return ExperimentTable(
        title="Fig. 10: probability of success (QuEra 256-qubit)",
        headers=("benchmark", "graphine", "eldi", "parallax", "parallax_pct_of_best"),
        rows=tuple(rows),
    )
