"""Fig. 9: CZ gate counts per technique on the 256-qubit QuEra machine.

Parallax's zero-SWAP design means its CZ count equals the transpiled base
count; ELDI and Graphine add three CZs per routed SWAP.  The paper reports
raw counts plus each technique's percentage of the per-benchmark worst case.
"""

from __future__ import annotations

from repro.experiments.common import (
    ALL_BENCHMARKS,
    ExperimentSettings,
    ExperimentTable,
    compilation_table,
)
from repro.hardware.spec import HardwareSpec

__all__ = ["run_fig9"]

_TECHNIQUES = ("graphine", "eldi", "parallax")


def run_fig9(
    benchmarks: tuple[str, ...] = ALL_BENCHMARKS,
    spec: HardwareSpec | None = None,
    settings: ExperimentSettings | None = None,
) -> ExperimentTable:
    """CZ counts for Graphine / ELDI / Parallax per benchmark."""
    spec = spec or HardwareSpec.quera_aquila()
    settings = settings or ExperimentSettings(benchmarks=benchmarks)
    table = compilation_table(
        [(bench, tech, spec) for bench in benchmarks for tech in _TECHNIQUES],
        settings=settings,
    )
    pivoted = table.pivot(
        index="benchmark",
        column="technique",
        value="num_cz",
        column_order=_TECHNIQUES,
        name=lambda tech: f"{tech}_cz",
    )
    rows = []
    for bench, graphine, eldi, parallax in pivoted.rows:
        worst = max(graphine, eldi, parallax)
        rows.append(
            (
                bench,
                graphine,
                eldi,
                parallax,
                round(100.0 * parallax / worst, 1) if worst else 100.0,
            )
        )
    return ExperimentTable(
        title="Fig. 9: CZ gate counts (QuEra 256-qubit)",
        headers=("benchmark", "graphine_cz", "eldi_cz", "parallax_cz", "parallax_pct_of_worst"),
        rows=tuple(rows),
    )
