"""Full-report generation: every table/figure plus headline aggregates.

``run_summary`` executes all experiment runners and assembles a markdown
document (the source of EXPERIMENTS.md) whose numbers always come from a
live run of this codebase.
"""

from __future__ import annotations

from repro.analysis.metrics import ComparisonSummary, compare_techniques
from repro.analysis.report import render_markdown_report
from repro.experiments.common import (
    ALL_BENCHMARKS,
    ExperimentSettings,
    ExperimentTable,
    compilation_table,
)
from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10 import run_fig10
from repro.experiments.fig11 import run_fig11, FIG11_BENCHMARKS
from repro.experiments.fig12 import run_fig12
from repro.experiments.fig13 import run_fig13
from repro.experiments.table1 import run_table1
from repro.experiments.table4 import run_table4
from repro.hardware.spec import HardwareSpec

__all__ = ["run_summary", "headline_summaries"]


def headline_summaries(
    benchmarks: tuple[str, ...] = ALL_BENCHMARKS,
    spec: HardwareSpec | None = None,
    settings: ExperimentSettings | None = None,
) -> dict[str, ComparisonSummary]:
    """The paper's headline aggregates (abstract: -25% CZ, +28% success vs
    ELDI; Fig. 9/10 text: -39% CZ, +46% success vs Graphine)."""
    spec = spec or HardwareSpec.quera_aquila()
    settings = settings or ExperimentSettings(benchmarks=benchmarks)
    table = compilation_table(
        [
            (bench, tech, spec)
            for bench in benchmarks
            for tech in ("parallax", "eldi", "graphine")
        ],
        settings=settings,
    )
    return {
        "Parallax vs ELDI": compare_techniques(table, "eldi"),
        "Parallax vs Graphine": compare_techniques(table, "graphine"),
    }


def run_summary(
    benchmarks: tuple[str, ...] = ALL_BENCHMARKS,
    notes: tuple[str, ...] = (),
) -> str:
    """Run every experiment and render the combined markdown report."""
    tables: list[ExperimentTable] = [
        run_table1(),
        run_fig9(benchmarks=benchmarks),
        run_fig10(benchmarks=benchmarks),
        run_table4(benchmarks=benchmarks),
        run_fig11(benchmarks=tuple(b for b in benchmarks if b in FIG11_BENCHMARKS)
                  or FIG11_BENCHMARKS),
        run_fig12(benchmarks=benchmarks),
        run_fig13(benchmarks=benchmarks),
    ]
    summaries = headline_summaries(benchmarks)
    return render_markdown_report(
        "Measured results (this reproduction)",
        tables,
        summaries=summaries,
        notes=notes,
    )
