"""Table I: functionality matrix of neutral-atom compilation techniques.

A static capability table; included so the repository regenerates every
table in the paper.  The rows for ELDI, Graphine and Parallax are also
consistency-checked against this codebase's implementations by the test
suite (e.g. Parallax really emits zero SWAPs; Graphine really has a custom
layout but no movement).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentTable

__all__ = ["run_table1", "FUNCTIONALITY"]

#: technique -> (practical_scalable, custom_layout, atom_movement,
#:               zero_swaps, parallel_shot_movements)
FUNCTIONALITY: dict[str, tuple[bool, bool, bool, bool, bool]] = {
    "eldi": (True, False, False, False, False),
    "geyser": (True, False, False, False, False),
    "graphine": (True, True, False, False, False),
    "dpqa": (False, True, True, True, False),
    "parallax": (True, True, True, True, True),
}


def run_table1() -> ExperimentTable:
    """The Table I capability matrix."""
    headers = (
        "technique",
        "practical_scalable",
        "custom_layout",
        "atom_movement",
        "zero_swaps",
        "parallel_shot_movements",
    )
    rows = [
        (tech, *("yes" if flag else "no" for flag in flags))
        for tech, flags in FUNCTIONALITY.items()
    ]
    return ExperimentTable(
        title="Table I: functionality of neutral-atom compilation techniques",
        headers=headers,
        rows=tuple(rows),
    )
