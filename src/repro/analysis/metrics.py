"""Aggregate comparison metrics across benchmarks and techniques."""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Mapping, Sequence

from repro.core.result import CompilationResult
from repro.noise.fidelity import NoiseModelConfig, success_probability

__all__ = [
    "geometric_mean",
    "cz_reduction",
    "success_improvement",
    "ComparisonSummary",
    "compare_techniques",
]


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (0.0 for an empty sequence)."""
    values = [v for v in values]
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def cz_reduction(baseline: CompilationResult, parallax: CompilationResult) -> float:
    """Fractional CZ reduction of Parallax vs. a baseline (paper Fig. 9)."""
    if baseline.num_cz <= 0:
        return 0.0
    return 1.0 - parallax.num_cz / baseline.num_cz


def success_improvement(
    baseline: CompilationResult,
    parallax: CompilationResult,
    noise: NoiseModelConfig | None = None,
) -> float:
    """Fractional success-probability improvement (paper Fig. 10).

    Returns ``inf`` when the baseline success underflows to zero while
    Parallax's does not (the paper's QV-type cases).
    """
    p_base = success_probability(baseline, noise)
    p_parallax = success_probability(parallax, noise)
    if p_base == 0.0:
        return math.inf if p_parallax > 0 else 0.0
    return p_parallax / p_base - 1.0


@dataclass(frozen=True)
class ComparisonSummary:
    """Aggregate Parallax-vs-baseline statistics over a benchmark sweep.

    ``mean_success_improvement`` can be dominated by deep circuits whose
    baseline success underflows by many orders of magnitude (QV, TFIM);
    ``median_success_improvement`` is the robust headline figure.
    """

    baseline: str
    num_benchmarks: int
    mean_cz_reduction: float
    mean_success_improvement: float
    median_success_improvement: float
    mean_runtime_ratio: float

    def describe(self) -> str:
        improvement = (
            "inf"
            if math.isinf(self.median_success_improvement)
            else f"{self.median_success_improvement:+.0%}"
        )
        return (
            f"vs {self.baseline} over {self.num_benchmarks} benchmarks: "
            f"CZ {self.mean_cz_reduction:-.0%}, median success {improvement}, "
            f"runtime ratio {self.mean_runtime_ratio:.2f}x"
        )


def compare_techniques(
    results: Mapping[str, Mapping[str, CompilationResult]],
    baseline: str,
    noise: NoiseModelConfig | None = None,
) -> ComparisonSummary:
    """Summarize Parallax against one baseline.

    Args:
        results: ``results[benchmark][technique]`` compilation results; each
            benchmark entry must contain ``"parallax"`` and ``baseline``.
        baseline: ``"eldi"`` or ``"graphine"``.
        noise: noise-model options for the success metric.

    Success improvements that overflow to infinity (baseline success
    underflows) are excluded from the mean, as the paper excludes VQE.
    """
    reductions, improvements, ratios = [], [], []
    for bench, techs in results.items():
        if baseline not in techs or "parallax" not in techs:
            raise KeyError(f"benchmark {bench!r} missing {baseline!r} or 'parallax'")
        base, parallax = techs[baseline], techs["parallax"]
        reductions.append(cz_reduction(base, parallax))
        gain = success_improvement(base, parallax, noise)
        if not math.isinf(gain):
            improvements.append(gain)
        if base.runtime_us > 0:
            ratios.append(parallax.runtime_us / base.runtime_us)
    ordered = sorted(improvements)
    if ordered:
        mid = len(ordered) // 2
        median = (
            ordered[mid]
            if len(ordered) % 2
            else (ordered[mid - 1] + ordered[mid]) / 2.0
        )
    else:
        median = 0.0
    return ComparisonSummary(
        baseline=baseline,
        num_benchmarks=len(results),
        mean_cz_reduction=sum(reductions) / len(reductions) if reductions else 0.0,
        mean_success_improvement=(
            sum(improvements) / len(improvements) if improvements else 0.0
        ),
        median_success_improvement=median,
        mean_runtime_ratio=geometric_mean(ratios) if ratios else 0.0,
    )
