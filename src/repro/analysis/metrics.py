"""Aggregate comparison metrics across benchmarks and techniques.

Since the results/aggregation unification, cross-technique comparison
consumes the same flat :class:`~repro.sweeps.analysis.ResultTable` rows the
scenario sweeps persist and the figure runners emit -- the former nested
``results[benchmark][technique]`` mapping format is gone.  Build a table
with :func:`repro.experiments.common.compilation_table` (or
``ResultTable.from_store`` / ``from_compilations``) and hand it to
:func:`compare_techniques`; per-pair scalar helpers
(:func:`cz_reduction`, :func:`success_improvement`) still accept raw
:class:`~repro.core.result.CompilationResult` objects.
"""

from __future__ import annotations

import math
import typing
from dataclasses import dataclass

from repro.core.result import CompilationResult
from repro.noise.fidelity import NoiseModelConfig, success_probability

if typing.TYPE_CHECKING:
    from collections.abc import Sequence
    from repro.sweeps.analysis import ResultTable

__all__ = [
    "geometric_mean",
    "cz_reduction",
    "success_improvement",
    "ComparisonSummary",
    "compare_techniques",
]


def geometric_mean(values: "Sequence[float]") -> float:
    """Geometric mean of positive values (0.0 for an empty sequence)."""
    values = [v for v in values]
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def cz_reduction(baseline: CompilationResult, parallax: CompilationResult) -> float:
    """Fractional CZ reduction of Parallax vs. a baseline (paper Fig. 9)."""
    if baseline.num_cz <= 0:
        return 0.0
    return 1.0 - parallax.num_cz / baseline.num_cz


def success_improvement(
    baseline: CompilationResult,
    parallax: CompilationResult,
    noise: NoiseModelConfig | None = None,
) -> float:
    """Fractional success-probability improvement (paper Fig. 10).

    Returns ``inf`` when the baseline success underflows to zero while
    Parallax's does not (the paper's QV-type cases).
    """
    return _success_gain(
        success_probability(baseline, noise), success_probability(parallax, noise)
    )


def _success_gain(p_base: float, p_target: float) -> float:
    if p_base == 0.0:
        return math.inf if p_target > 0 else 0.0
    return p_target / p_base - 1.0


@dataclass(frozen=True)
class ComparisonSummary:
    """Aggregate target-vs-baseline statistics over a benchmark sweep.

    ``mean_success_improvement`` can be dominated by deep circuits whose
    baseline success underflows by many orders of magnitude (QV, TFIM);
    ``median_success_improvement`` is the robust headline figure.
    """

    baseline: str
    num_benchmarks: int
    mean_cz_reduction: float
    mean_success_improvement: float
    median_success_improvement: float
    mean_runtime_ratio: float

    def describe(self) -> str:
        improvement = (
            "inf"
            if math.isinf(self.median_success_improvement)
            else f"{self.median_success_improvement:+.0%}"
        )
        return (
            f"vs {self.baseline} over {self.num_benchmarks} benchmarks: "
            f"CZ {self.mean_cz_reduction:-.0%}, median success {improvement}, "
            f"runtime ratio {self.mean_runtime_ratio:.2f}x"
        )


def _mean_by_group(table: "ResultTable", metric: str) -> dict:
    """(benchmark, technique) -> mean of ``metric`` in one grouped pass."""
    marg = table.marginal(value=metric, group_by=("benchmark", "technique"))
    return {
        (bench, tech): value
        for bench, tech, value in zip(
            marg.column("benchmark"), marg.column("technique"), marg.column(metric)
        )
    }


def compare_techniques(
    table: "ResultTable",
    baseline: str,
    target: str = "parallax",
) -> ComparisonSummary:
    """Summarize ``target`` against ``baseline`` over unified result rows.

    Args:
        table: a :class:`~repro.sweeps.analysis.ResultTable` whose rows
            cover every benchmark for both ``target`` and ``baseline``
            (e.g. from :func:`repro.experiments.common.compilation_table`
            or a sweep store); multiple rows per (benchmark, technique) --
            a sweep over noise axes, say -- are averaged first.
        baseline: ``"eldi"`` or ``"graphine"``.
        target: the technique being advocated (default ``"parallax"``).

    Success improvements that overflow to infinity (baseline success
    underflows) are excluded from the mean, as the paper excludes VQE.

    Raises:
        KeyError: when a benchmark in the table lacks rows for either
            technique.
    """
    benchmarks = sorted(set(table.column("benchmark")))
    cz = _mean_by_group(table, "num_cz")
    success = _mean_by_group(table, "analytic_success")
    runtime = _mean_by_group(table, "runtime_us")
    reductions, improvements, ratios = [], [], []
    for bench in benchmarks:
        cz_base = cz.get((bench, baseline))
        cz_target = cz.get((bench, target))
        if cz_base is None or cz_target is None:
            raise KeyError(
                f"benchmark {bench!r} missing rows for {baseline!r} or {target!r}"
            )
        reductions.append(
            1.0 - cz_target / cz_base if cz_base > 0 else 0.0
        )
        gain = _success_gain(
            success.get((bench, baseline)) or 0.0,
            success.get((bench, target)) or 0.0,
        )
        if not math.isinf(gain):
            improvements.append(gain)
        runtime_base = runtime.get((bench, baseline))
        runtime_target = runtime.get((bench, target))
        if runtime_base and runtime_base > 0 and runtime_target is not None:
            ratios.append(runtime_target / runtime_base)
    ordered = sorted(improvements)
    if ordered:
        mid = len(ordered) // 2
        median = (
            ordered[mid]
            if len(ordered) % 2
            else (ordered[mid - 1] + ordered[mid]) / 2.0
        )
    else:
        median = 0.0
    return ComparisonSummary(
        baseline=baseline,
        num_benchmarks=len(benchmarks),
        mean_cz_reduction=sum(reductions) / len(reductions) if reductions else 0.0,
        mean_success_improvement=(
            sum(improvements) / len(improvements) if improvements else 0.0
        ),
        median_success_improvement=median,
        mean_runtime_ratio=geometric_mean(ratios) if ratios else 0.0,
    )
