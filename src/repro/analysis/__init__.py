"""Cross-technique analysis and report generation.

Aggregates :class:`~repro.core.result.CompilationResult` collections into
the summary statistics the paper quotes (mean CZ reduction, mean success
improvement, runtime ratios) and renders a markdown report of
paper-vs-measured values per experiment.
"""

from repro.analysis.metrics import (
    ComparisonSummary,
    cz_reduction,
    success_improvement,
    compare_techniques,
    geometric_mean,
)
from repro.analysis.report import render_markdown_report
from repro.analysis.diagnostics import (
    CompilationDiagnostics,
    diagnose,
    format_diagnostics,
)

__all__ = [
    "ComparisonSummary",
    "cz_reduction",
    "success_improvement",
    "compare_techniques",
    "geometric_mean",
    "render_markdown_report",
    "CompilationDiagnostics",
    "diagnose",
    "format_diagnostics",
]
