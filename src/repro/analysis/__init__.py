"""Cross-technique analysis and report generation.

Everything here consumes the unified results layer: the flat
:class:`~repro.sweeps.analysis.ResultTable` rows that scenario sweeps
persist and the figure runners emit.  :func:`compare_techniques` reduces a
table to the summary statistics the paper quotes (mean CZ reduction, mean
success improvement, runtime ratios); :func:`render_markdown_report`
renders any mix of ``ExperimentTable`` views and ``ResultTable`` rows as a
paper-vs-measured markdown document.  ``ResultTable`` and ``Crossover``
are re-exported for convenience.
"""

from repro.analysis.metrics import (
    ComparisonSummary,
    cz_reduction,
    success_improvement,
    compare_techniques,
    geometric_mean,
)
from repro.analysis.report import render_markdown_report, render_markdown_table
from repro.analysis.diagnostics import (
    CompilationDiagnostics,
    diagnose,
    format_diagnostics,
)
from repro.sweeps.analysis import Crossover, ResultTable

__all__ = [
    "ComparisonSummary",
    "Crossover",
    "ResultTable",
    "cz_reduction",
    "success_improvement",
    "compare_techniques",
    "geometric_mean",
    "render_markdown_report",
    "render_markdown_table",
    "CompilationDiagnostics",
    "diagnose",
    "format_diagnostics",
]
