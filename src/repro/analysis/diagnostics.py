"""Per-compilation diagnostic reports.

Surfaces the internals the paper discusses qualitatively -- how often trap
changes fire (Section II-D's 1.3% claim), where the runtime goes, how far
atoms travel, how full layers are -- as a structured record plus a
formatted text report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.result import CompilationResult
from repro.timing.runtime import runtime_breakdown

__all__ = ["CompilationDiagnostics", "diagnose", "format_diagnostics"]


@dataclass(frozen=True)
class CompilationDiagnostics:
    """Structured diagnostics of one compilation."""

    technique: str
    circuit_name: str
    num_layers: int
    mean_gates_per_layer: float
    max_gates_per_layer: int
    mean_cz_per_layer: float
    trap_change_fraction: float
    both_slm_fraction: float
    layers_with_movement: int
    mean_move_distance_um: float
    max_move_distance_um: float
    gate_time_fraction: float
    movement_time_fraction: float
    trap_time_fraction: float

    def flags(self) -> list[str]:
        """Human-readable warnings about pathological compilations."""
        warnings = []
        if self.trap_change_fraction > 0.05:
            warnings.append(
                f"trap changes resolve {self.trap_change_fraction:.1%} of CZs "
                "(paper observes ~1.3%); the topology is likely cramped"
            )
        if self.trap_time_fraction > 0.5:
            warnings.append(
                f"{self.trap_time_fraction:.0%} of runtime is trap changes; "
                "consider a larger machine or more AOD lines"
            )
        if self.mean_gates_per_layer < 1.5 and self.num_layers > 10:
            warnings.append("layers are nearly serial; blockade pressure is high")
        return warnings


def diagnose(result: CompilationResult) -> CompilationDiagnostics:
    """Compute diagnostics from a compilation result."""
    layers = result.layers
    gates_per_layer = np.array([len(l.gates) for l in layers], dtype=float)
    cz_per_layer = np.array([l.num_cz for l in layers], dtype=float)
    move_layers = [l for l in layers if l.move_distance_um > 0]
    move_dists = np.array([l.move_distance_um for l in move_layers], dtype=float)
    breakdown = runtime_breakdown(result)
    total_time = max(breakdown.total_us, 1e-12)
    num_cz = max(result.num_cz + result.num_ccz, 1)
    return CompilationDiagnostics(
        technique=result.technique,
        circuit_name=result.circuit_name,
        num_layers=len(layers),
        mean_gates_per_layer=float(gates_per_layer.mean()) if len(layers) else 0.0,
        max_gates_per_layer=int(gates_per_layer.max()) if len(layers) else 0,
        mean_cz_per_layer=float(cz_per_layer.mean()) if len(layers) else 0.0,
        trap_change_fraction=result.trap_change_events / num_cz,
        both_slm_fraction=result.both_slm_events / num_cz,
        layers_with_movement=len(move_layers),
        mean_move_distance_um=float(move_dists.mean()) if len(move_dists) else 0.0,
        max_move_distance_um=float(move_dists.max()) if len(move_dists) else 0.0,
        gate_time_fraction=breakdown.gates_us / total_time,
        movement_time_fraction=breakdown.movement_us / total_time,
        trap_time_fraction=breakdown.trap_changes_us / total_time,
    )


def format_diagnostics(diag: CompilationDiagnostics) -> str:
    """Render diagnostics as an aligned text report."""
    lines = [
        f"diagnostics: {diag.technique} / {diag.circuit_name}",
        f"  layers                 : {diag.num_layers}",
        f"  gates per layer        : mean {diag.mean_gates_per_layer:.2f}, "
        f"max {diag.max_gates_per_layer}",
        f"  CZ per layer           : mean {diag.mean_cz_per_layer:.2f}",
        f"  trap-change fraction   : {diag.trap_change_fraction:.2%} "
        f"(both-SLM: {diag.both_slm_fraction:.2%})",
        f"  layers with movement   : {diag.layers_with_movement}",
        f"  move distance (um)     : mean {diag.mean_move_distance_um:.1f}, "
        f"max {diag.max_move_distance_um:.1f}",
        f"  runtime split          : gates {diag.gate_time_fraction:.0%} / "
        f"movement {diag.movement_time_fraction:.0%} / "
        f"traps {diag.trap_time_fraction:.0%}",
    ]
    for warning in diag.flags():
        lines.append(f"  WARNING: {warning}")
    return "\n".join(lines)
