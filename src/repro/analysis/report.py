"""Markdown report generation for experiment sweeps."""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING

from repro.analysis.metrics import ComparisonSummary

if TYPE_CHECKING:  # avoid a circular import; tables are duck-typed at runtime
    from repro.experiments.common import ExperimentTable

__all__ = ["render_markdown_report"]


def _markdown_table(table: "ExperimentTable") -> str:
    header = "| " + " | ".join(table.headers) + " |"
    rule = "|" + "|".join("---" for _ in table.headers) + "|"
    rows = []
    for row in table.rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(f"{value:.4g}")
            else:
                cells.append(str(value))
        rows.append("| " + " | ".join(cells) + " |")
    return "\n".join([header, rule, *rows])


def render_markdown_report(
    title: str,
    tables: Sequence["ExperimentTable"],
    summaries: Mapping[str, ComparisonSummary] | None = None,
    notes: Sequence[str] = (),
) -> str:
    """Render experiment tables (plus optional summaries/notes) as markdown.

    Used to assemble EXPERIMENTS.md-style documents from live runs so the
    recorded numbers always come from actual executions.
    """
    parts = [f"# {title}", ""]
    if summaries:
        parts.append("## Headline comparisons")
        parts.append("")
        for name, summary in summaries.items():
            parts.append(f"- **{name}**: {summary.describe()}")
        parts.append("")
    for table in tables:
        parts.append(f"## {table.title}")
        parts.append("")
        parts.append(_markdown_table(table))
        parts.append("")
    if notes:
        parts.append("## Notes")
        parts.append("")
        for note in notes:
            parts.append(f"- {note}")
        parts.append("")
    return "\n".join(parts)
