"""Markdown report generation over the unified results layer.

Accepts anything speaking the ``title`` / ``headers`` / ``rows`` table
protocol -- both :class:`~repro.experiments.common.ExperimentTable` (the
figure runners' rendered views) and
:class:`~repro.sweeps.analysis.ResultTable` (raw unified rows, marginals,
pivots) -- so one renderer serves figures, sweeps, and ad-hoc analysis.
"""

from __future__ import annotations

import typing

from repro.analysis.metrics import ComparisonSummary

if typing.TYPE_CHECKING:
    from collections.abc import Mapping, Sequence

    class _Table(typing.Protocol):
        title: str

        @property
        def headers(self) -> "Sequence[str]": ...

        @property
        def rows(self) -> "Sequence[Sequence]": ...


__all__ = ["render_markdown_report", "render_markdown_table"]


def render_markdown_table(table: "_Table") -> str:
    """One ``title``/``headers``/``rows`` table as a markdown table body."""
    header = "| " + " | ".join(table.headers) + " |"
    rule = "|" + "|".join("---" for _ in table.headers) + "|"
    rows = []
    for row in table.rows:
        cells = []
        for value in row:
            if value is None:
                cells.append("")
            elif isinstance(value, float):
                cells.append(f"{value:.4g}")
            else:
                cells.append(str(value))
        rows.append("| " + " | ".join(cells) + " |")
    return "\n".join([header, rule, *rows])


def render_markdown_report(
    title: str,
    tables: "Sequence[_Table]",
    summaries: "Mapping[str, ComparisonSummary] | None" = None,
    notes: "Sequence[str]" = (),
) -> str:
    """Render result tables (plus optional summaries/notes) as markdown.

    Used to assemble EXPERIMENTS.md-style documents from live runs so the
    recorded numbers always come from actual executions.  ``tables`` may
    mix :class:`ExperimentTable` views and raw :class:`ResultTable` rows.
    """
    parts = [f"# {title}", ""]
    if summaries:
        parts.append("## Headline comparisons")
        parts.append("")
        for name, summary in summaries.items():
            parts.append(f"- **{name}**: {summary.describe()}")
        parts.append("")
    for table in tables:
        parts.append(f"## {table.title}")
        parts.append("")
        parts.append(render_markdown_table(table))
        parts.append("")
    if notes:
        parts.append("## Notes")
        parts.append("")
        for note in notes:
            parts.append(f"- {note}")
        parts.append("")
    return "\n".join(parts)
