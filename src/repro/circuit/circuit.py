"""The :class:`QuantumCircuit` container.

A thin, ordered container of :class:`~repro.circuit.gate.Gate` objects plus
builder methods for the gates the benchmark generators use.  The container
is mutable while being built and is treated as immutable by the compiler
passes (which always return new circuits).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.circuit.gate import Gate

__all__ = ["QuantumCircuit"]


class QuantumCircuit:
    """An ordered sequence of gates over ``num_qubits`` qubits.

    Args:
        num_qubits: number of qubits (indices ``0 .. num_qubits-1``).
        name: optional human-readable label carried through compilation.
    """

    def __init__(self, num_qubits: int, name: str = "circuit") -> None:
        if num_qubits <= 0:
            raise ValueError(f"num_qubits must be positive, got {num_qubits}")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._gates: list[Gate] = []

    # -- container protocol -------------------------------------------------

    @property
    def gates(self) -> list[Gate]:
        """The gate list (callers must not mutate it in place)."""
        return self._gates

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index: int) -> Gate:
        return self._gates[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return self.num_qubits == other.num_qubits and self._gates == other._gates

    def __repr__(self) -> str:
        return (
            f"QuantumCircuit(name={self.name!r}, num_qubits={self.num_qubits}, "
            f"num_gates={len(self._gates)})"
        )

    # -- building -----------------------------------------------------------

    def append(self, gate: Gate) -> "QuantumCircuit":
        """Append a gate, validating its qubit indices against this circuit."""
        if any(q >= self.num_qubits for q in gate.qubits):
            raise ValueError(
                f"gate {gate} uses qubit outside range 0..{self.num_qubits - 1}"
            )
        self._gates.append(gate)
        return self

    def extend(self, gates: Iterable[Gate]) -> "QuantumCircuit":
        """Append several gates."""
        for gate in gates:
            self.append(gate)
        return self

    def add(self, name: str, qubits: Iterable[int], params: Iterable[float] = ()) -> "QuantumCircuit":
        """Append ``Gate(name, qubits, params)``."""
        return self.append(Gate(name, tuple(qubits), tuple(params)))

    # Named builders for the gates the benchmark generators emit.  Each
    # returns ``self`` so construction chains naturally.
    def u3(self, q: int, theta: float, phi: float, lam: float) -> "QuantumCircuit":
        return self.add("u3", (q,), (theta, phi, lam))

    def cz(self, a: int, b: int) -> "QuantumCircuit":
        return self.add("cz", (a, b))

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        return self.add("cx", (control, target))

    def h(self, q: int) -> "QuantumCircuit":
        return self.add("h", (q,))

    def x(self, q: int) -> "QuantumCircuit":
        return self.add("x", (q,))

    def y(self, q: int) -> "QuantumCircuit":
        return self.add("y", (q,))

    def z(self, q: int) -> "QuantumCircuit":
        return self.add("z", (q,))

    def s(self, q: int) -> "QuantumCircuit":
        return self.add("s", (q,))

    def sdg(self, q: int) -> "QuantumCircuit":
        return self.add("sdg", (q,))

    def t(self, q: int) -> "QuantumCircuit":
        return self.add("t", (q,))

    def tdg(self, q: int) -> "QuantumCircuit":
        return self.add("tdg", (q,))

    def rx(self, q: int, theta: float) -> "QuantumCircuit":
        return self.add("rx", (q,), (theta,))

    def ry(self, q: int, theta: float) -> "QuantumCircuit":
        return self.add("ry", (q,), (theta,))

    def rz(self, q: int, theta: float) -> "QuantumCircuit":
        return self.add("rz", (q,), (theta,))

    def rzz(self, a: int, b: int, theta: float) -> "QuantumCircuit":
        return self.add("rzz", (a, b), (theta,))

    def cp(self, a: int, b: int, theta: float) -> "QuantumCircuit":
        return self.add("cp", (a, b), (theta,))

    def swap(self, a: int, b: int) -> "QuantumCircuit":
        return self.add("swap", (a, b))

    def ccx(self, a: int, b: int, c: int) -> "QuantumCircuit":
        return self.add("ccx", (a, b, c))

    def cswap(self, a: int, b: int, c: int) -> "QuantumCircuit":
        return self.add("cswap", (a, b, c))

    # -- derived views ------------------------------------------------------

    def copy(self, name: str | None = None) -> "QuantumCircuit":
        """Shallow copy (gates are immutable, so sharing them is safe)."""
        out = QuantumCircuit(self.num_qubits, name or self.name)
        out._gates = list(self._gates)
        return out

    def without(self, names: set[str]) -> "QuantumCircuit":
        """Copy with all gates whose name is in ``names`` dropped."""
        out = QuantumCircuit(self.num_qubits, self.name)
        out._gates = [g for g in self._gates if g.name not in names]
        return out

    def count_ops(self) -> dict[str, int]:
        """Gate-name histogram, like Qiskit's ``count_ops``."""
        counts: dict[str, int] = {}
        for gate in self._gates:
            counts[gate.name] = counts.get(gate.name, 0) + 1
        return counts

    def two_qubit_gates(self) -> list[Gate]:
        """All gates acting on exactly two qubits, in order."""
        return [g for g in self._gates if g.num_qubits == 2]

    def used_qubits(self) -> set[int]:
        """Indices of qubits touched by at least one gate."""
        used: set[int] = set()
        for gate in self._gates:
            used.update(gate.qubits)
        return used

    def depth(self) -> int:
        """Circuit depth counting each gate as one time step on its qubits."""
        level = [0] * self.num_qubits
        for gate in self._gates:
            if gate.name == "barrier":
                continue
            start = max(level[q] for q in gate.qubits)
            for q in gate.qubits:
                level[q] = start + 1
        return max(level, default=0)
