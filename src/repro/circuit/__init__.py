"""Quantum circuit intermediate representation.

A circuit is an ordered list of :class:`Gate` operations on integer qubit
indices.  The compiler pipeline only ever needs the {U3, CZ} basis the paper
targets, but the IR accepts any named gate so the QASM parser can represent
pre-transpilation circuits too.
"""

from repro.circuit.gate import Gate, GATE_ARITY, is_two_qubit, is_one_qubit
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.dag import DependencyDAG, circuit_layers
from repro.circuit.matrices import gate_unitary, U3_MATRIX, CZ_MATRIX, circuit_unitary
from repro.circuit.stats import CircuitStats, compute_stats, interaction_counts

__all__ = [
    "Gate",
    "GATE_ARITY",
    "is_two_qubit",
    "is_one_qubit",
    "QuantumCircuit",
    "DependencyDAG",
    "circuit_layers",
    "gate_unitary",
    "circuit_unitary",
    "U3_MATRIX",
    "CZ_MATRIX",
    "CircuitStats",
    "compute_stats",
    "interaction_counts",
]
