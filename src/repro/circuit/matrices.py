"""Unitary matrices for the gates the transpiler reasons about.

Only one- and two-qubit matrices are needed: the transpiler decomposes
three-qubit gates structurally (Toffoli/Fredkin templates), and equivalence
tests verify small circuits by multiplying these matrices out.
"""

from __future__ import annotations

import cmath
import math

import numpy as np

from repro.circuit.gate import Gate

__all__ = ["gate_unitary", "circuit_unitary", "U3_MATRIX", "CZ_MATRIX"]

_SQRT2_INV = 1.0 / math.sqrt(2.0)

CZ_MATRIX = np.diag([1.0, 1.0, 1.0, -1.0]).astype(complex)


def u3_matrix(theta: float, phi: float, lam: float) -> np.ndarray:
    """The U3 matrix as printed in the paper's background section."""
    ct, st = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array(
        [
            [ct, -cmath.exp(1j * lam) * st],
            [cmath.exp(1j * phi) * st, cmath.exp(1j * (phi + lam)) * ct],
        ],
        dtype=complex,
    )


#: Convenience alias used in docs/tests: U3(theta, phi, lambda).
U3_MATRIX = u3_matrix

_FIXED_1Q: dict[str, np.ndarray] = {
    "id": np.eye(2, dtype=complex),
    "x": np.array([[0, 1], [1, 0]], dtype=complex),
    "y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "z": np.diag([1.0, -1.0]).astype(complex),
    "h": np.array([[_SQRT2_INV, _SQRT2_INV], [_SQRT2_INV, -_SQRT2_INV]], dtype=complex),
    "s": np.diag([1.0, 1j]).astype(complex),
    "sdg": np.diag([1.0, -1j]).astype(complex),
    "t": np.diag([1.0, cmath.exp(1j * math.pi / 4)]).astype(complex),
    "tdg": np.diag([1.0, cmath.exp(-1j * math.pi / 4)]).astype(complex),
    "sx": 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex),
    "sxdg": 0.5 * np.array([[1 - 1j, 1 + 1j], [1 + 1j, 1 - 1j]], dtype=complex),
}


def _rx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def _ry(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def _rz(theta: float) -> np.ndarray:
    return np.diag([cmath.exp(-1j * theta / 2), cmath.exp(1j * theta / 2)]).astype(complex)


def _controlled(u: np.ndarray) -> np.ndarray:
    """4x4 controlled-U with qubit 0 as control (little-endian convention)."""
    out = np.eye(4, dtype=complex)
    # States |1c> (control=1) are indices 1 and 3 in little-endian ordering
    # (qubit 0 = control = least significant bit).
    out[np.ix_([1, 3], [1, 3])] = u
    return out


def _two_qubit_fixed(name: str) -> np.ndarray | None:
    if name == "cz":
        return CZ_MATRIX.copy()
    if name == "cx":
        return _controlled(_FIXED_1Q["x"])
    if name == "cy":
        return _controlled(_FIXED_1Q["y"])
    if name == "ch":
        return _controlled(_FIXED_1Q["h"])
    if name == "swap":
        m = np.eye(4, dtype=complex)
        m[[1, 2]] = m[[2, 1]]
        return m
    if name == "iswap":
        m = np.zeros((4, 4), dtype=complex)
        m[0, 0] = m[3, 3] = 1.0
        m[1, 2] = m[2, 1] = 1j
        return m
    return None


def gate_unitary(gate: Gate) -> np.ndarray:
    """Return the unitary of a one- or two-qubit gate.

    Two-qubit matrices use the little-endian convention: ``gate.qubits[0]``
    is the least significant bit of the 2-bit index.

    Raises:
        ValueError: for gates with no matrix form here (barrier, measure,
            three-qubit gates).
    """
    name, p = gate.name, gate.params
    if name in _FIXED_1Q:
        return _FIXED_1Q[name].copy()
    if name in ("u3", "u"):
        return u3_matrix(*p)
    if name == "u2":
        return u3_matrix(math.pi / 2, p[0], p[1])
    if name in ("u1", "p"):
        return _rz(p[0]) * cmath.exp(1j * p[0] / 2)
    if name == "rx":
        return _rx(p[0])
    if name == "ry":
        return _ry(p[0])
    if name == "rz":
        return _rz(p[0])
    fixed2 = _two_qubit_fixed(name)
    if fixed2 is not None:
        return fixed2
    if name in ("cp", "cu1"):
        return np.diag([1.0, 1.0, 1.0, cmath.exp(1j * p[0])]).astype(complex)
    if name == "crx":
        return _controlled(_rx(p[0]))
    if name == "cry":
        return _controlled(_ry(p[0]))
    if name == "crz":
        return _controlled(_rz(p[0]))
    if name == "cu3":
        return _controlled(u3_matrix(*p))
    if name == "rzz":
        t = p[0] / 2
        return np.diag(
            [cmath.exp(-1j * t), cmath.exp(1j * t), cmath.exp(1j * t), cmath.exp(-1j * t)]
        ).astype(complex)
    if name == "rxx":
        c, s = math.cos(p[0] / 2), math.sin(p[0] / 2)
        m = np.eye(4, dtype=complex) * c
        m[0, 3] = m[3, 0] = m[1, 2] = m[2, 1] = -1j * s
        return m
    if name == "ryy":
        c, s = math.cos(p[0] / 2), math.sin(p[0] / 2)
        m = np.eye(4, dtype=complex) * c
        m[0, 3] = m[3, 0] = 1j * s
        m[1, 2] = m[2, 1] = -1j * s
        return m
    if name == "ccx":
        # Little-endian: qubits[0], qubits[1] control, qubits[2] target.
        m = np.eye(8, dtype=complex)
        m[[0b011, 0b111]] = m[[0b111, 0b011]]
        return m
    if name == "ccz":
        m = np.eye(8, dtype=complex)
        m[0b111, 0b111] = -1.0
        return m
    if name == "cswap":
        # qubits[0] controls a swap of qubits[1] and qubits[2].
        m = np.eye(8, dtype=complex)
        m[[0b011, 0b101]] = m[[0b101, 0b011]]
        return m
    raise ValueError(f"gate {name!r} has no dense unitary in this module")


def _embed(u: np.ndarray, qubits: tuple[int, ...], n: int) -> np.ndarray:
    """Embed a 1- or 2-qubit unitary acting on ``qubits`` into n-qubit space."""
    full = np.zeros((2**n, 2**n), dtype=complex)
    k = len(qubits)
    for col in range(2**n):
        col_bits = [(col >> q) & 1 for q in range(n)]
        sub_col = sum(col_bits[qubits[i]] << i for i in range(k))
        for sub_row in range(2**k):
            amp = u[sub_row, sub_col]
            if amp == 0:
                continue
            row_bits = list(col_bits)
            for i in range(k):
                row_bits[qubits[i]] = (sub_row >> i) & 1
            row = sum(row_bits[q] << q for q in range(n))
            full[row, col] += amp
    return full


def circuit_unitary(gates: list[Gate], num_qubits: int) -> np.ndarray:
    """Multiply out the unitary of a small circuit (for equivalence tests).

    Exponential in ``num_qubits``; intended for <= 6 qubits in tests.
    Barriers are skipped; measurement raises.
    """
    if num_qubits > 10:
        raise ValueError("circuit_unitary is for small test circuits only")
    total = np.eye(2**num_qubits, dtype=complex)
    for gate in gates:
        if gate.name == "barrier":
            continue
        if gate.name == "measure":
            raise ValueError("cannot compute unitary of a measured circuit")
        u = gate_unitary(gate)
        total = _embed(u, gate.qubits, num_qubits) @ total
    return total
