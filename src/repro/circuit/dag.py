"""Gate dependency DAG and parallel layering.

Algorithm 1 consumes gates "per qubit, in order"; this module provides that
view: for each qubit a FIFO of the gates touching it, plus helpers to ask
whether a gate is at the front of *all* of its qubits' queues (dependencies
satisfied) and to pop / push-back gates as the scheduler executes or ejects
them.

``circuit_layers`` is the hardware-oblivious ASAP layering used for circuit
statistics (e.g. the 16 layers of the paper's Fredkin example in Fig. 1).
"""

from __future__ import annotations

from collections import deque

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Gate

__all__ = ["DependencyDAG", "circuit_layers"]


class DependencyDAG:
    """Mutable per-qubit FIFO view of a circuit's gate dependencies.

    Gates are identified by their index in the original circuit so duplicate
    gates (same name/qubits/params) are tracked independently.
    """

    def __init__(self, circuit: QuantumCircuit) -> None:
        self.circuit = circuit
        self.gates: list[Gate] = [
            g for g in circuit.gates if g.name not in ("barrier", "measure")
        ]
        self._queues: list[deque[int]] = [deque() for _ in range(circuit.num_qubits)]
        for idx, gate in enumerate(self.gates):
            for q in gate.qubits:
                self._queues[q].append(idx)
        self._remaining = len(self.gates)

    # -- queries ------------------------------------------------------------

    @property
    def num_remaining(self) -> int:
        """Number of not-yet-executed gates."""
        return self._remaining

    def done(self) -> bool:
        """True when every gate has been executed."""
        return self._remaining == 0

    def front_gate(self, qubit: int) -> int | None:
        """Index of the next unexecuted gate on ``qubit``, or None."""
        queue = self._queues[qubit]
        return queue[0] if queue else None

    def is_ready(self, gate_index: int) -> bool:
        """True iff ``gate_index`` is at the front of all its qubits' queues."""
        gate = self.gates[gate_index]
        return all(
            self._queues[q] and self._queues[q][0] == gate_index for q in gate.qubits
        )

    def ready_front_gates(self) -> list[int]:
        """Indices of all distinct ready gates, by ascending qubit index.

        This is the candidate set Algorithm 1 considers when building a
        layer ("for each qubit q in Q: if q's dependencies are satisfied").
        """
        seen: set[int] = set()
        out: list[int] = []
        for qubit in range(self.circuit.num_qubits):
            idx = self.front_gate(qubit)
            if idx is None or idx in seen:
                continue
            if self.is_ready(idx):
                seen.add(idx)
                out.append(idx)
        return out

    def claim_layer(self) -> list[int]:
        """Pop one parallel layer of ready gates in a single frontier pass.

        Equivalent to the scheduler's per-qubit ``front_gate`` /
        ``is_ready`` / ``pop`` scan (one gate per disjoint qubit set,
        ascending qubit order) but without re-validating readiness on every
        pop -- the frontier check and the dequeue share one traversal.
        """
        claimed: set[int] = set()
        layer: list[int] = []
        queues = self._queues
        gates = self.gates
        for qubit in range(self.circuit.num_qubits):
            if qubit in claimed:
                continue
            queue = queues[qubit]
            if not queue:
                continue
            idx = queue[0]
            operands = gates[idx].qubits
            ready = True
            for q in operands:
                other = queues[q]
                if q in claimed or not other or other[0] != idx:
                    ready = False
                    break
            if ready:
                for q in operands:
                    queues[q].popleft()
                self._remaining -= 1
                claimed.update(operands)
                layer.append(idx)
        return layer

    # -- mutation -----------------------------------------------------------

    def pop(self, gate_index: int) -> Gate:
        """Mark ``gate_index`` executed, removing it from its qubits' queues.

        Raises:
            ValueError: if the gate is not currently ready (popping it would
                violate a dependency).
        """
        if not self.is_ready(gate_index):
            raise ValueError(f"gate {gate_index} is not ready; cannot pop")
        gate = self.gates[gate_index]
        for q in gate.qubits:
            self._queues[q].popleft()
        self._remaining -= 1
        return gate

    def push_back(self, gate_index: int) -> None:
        """Return an ejected gate to the front of its queues (un-pop).

        Used when blockade interference or the one-move-per-layer rule
        bounces a gate out of the current layer: it must run before any
        later gate on the same qubits, so it goes back to the queue front.
        """
        gate = self.gates[gate_index]
        for q in gate.qubits:
            queue = self._queues[q]
            if queue and queue[0] == gate_index:
                raise ValueError(f"gate {gate_index} is already pending")
            queue.appendleft(gate_index)
        self._remaining += 1


def circuit_layers(circuit: QuantumCircuit) -> list[list[Gate]]:
    """ASAP layering ignoring hardware constraints.

    Each gate is placed in the earliest layer after all gates it depends on;
    gates within a layer touch disjoint qubits and are parallelly executable
    in the idealized sense of Fig. 1.
    """
    level: dict[int, int] = {}
    layers: list[list[Gate]] = []
    for gate in circuit.gates:
        if gate.name in ("barrier", "measure"):
            continue
        start = max((level.get(q, 0) for q in gate.qubits), default=0)
        while len(layers) <= start:
            layers.append([])
        layers[start].append(gate)
        for q in gate.qubits:
            level[q] = start + 1
    return layers
