"""Circuit statistics used throughout the evaluation.

``interaction_counts`` builds the weighted interaction graph input to
Graphine (qubits as nodes, CZ multiplicity as edge weights), and
``compute_stats`` aggregates the headline numbers (CZ count, depth,
connectivity) the figures report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.dag import circuit_layers

__all__ = ["CircuitStats", "compute_stats", "interaction_counts"]


def interaction_counts(circuit: QuantumCircuit) -> dict[tuple[int, int], int]:
    """Count two-qubit interactions per unordered qubit pair.

    Returns a dict keyed by ``(min(a, b), max(a, b))``.  Gates on three or
    more qubits contribute one count per qubit pair they touch, matching how
    Graphine weighs multi-qubit proximity requirements.
    """
    counts: dict[tuple[int, int], int] = {}
    for gate in circuit.gates:
        if gate.num_qubits < 2 or gate.name == "barrier":
            continue
        qubits = sorted(gate.qubits)
        for i in range(len(qubits)):
            for j in range(i + 1, len(qubits)):
                key = (qubits[i], qubits[j])
                counts[key] = counts.get(key, 0) + 1
    return counts


@dataclass(frozen=True)
class CircuitStats:
    """Headline statistics of one circuit."""

    num_qubits: int
    num_gates: int
    num_cz: int
    num_1q: int
    depth: int
    num_layers: int
    max_degree: int
    mean_degree: float

    @property
    def connectivity(self) -> float:
        """Mean number of distinct CZ partners per used qubit.

        The paper uses "connectivity" to explain where Parallax wins most
        (QV, high) vs. least (TFIM, <= 2).
        """
        return self.mean_degree


def compute_stats(circuit: QuantumCircuit) -> CircuitStats:
    """Aggregate the statistics the evaluation figures report."""
    counts = interaction_counts(circuit)
    degree: dict[int, set[int]] = {}
    for (a, b) in counts:
        degree.setdefault(a, set()).add(b)
        degree.setdefault(b, set()).add(a)
    degrees = [len(v) for v in degree.values()]
    num_cz = sum(1 for g in circuit.gates if g.num_qubits == 2)
    num_1q = sum(
        1 for g in circuit.gates if g.num_qubits == 1 and g.name not in ("barrier", "measure")
    )
    return CircuitStats(
        num_qubits=circuit.num_qubits,
        num_gates=sum(1 for g in circuit.gates if g.name not in ("barrier", "measure")),
        num_cz=num_cz,
        num_1q=num_1q,
        depth=circuit.depth(),
        num_layers=len(circuit_layers(circuit)),
        max_degree=max(degrees, default=0),
        mean_degree=(sum(degrees) / len(degrees)) if degrees else 0.0,
    )
