"""Gate representation.

Gates are immutable, hashable records: a lowercase name, a tuple of qubit
indices, and a tuple of float parameters.  The Parallax pipeline runs on the
two-gate universal basis the paper uses ({U3, CZ}); other named gates exist
so parsed QASM can be represented before basis translation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Gate", "GATE_ARITY", "is_two_qubit", "is_one_qubit"]

#: Number of qubit operands for every gate name the QASM front-end and the
#: transpiler know about.  ``None`` means variable arity (barrier).
GATE_ARITY: dict[str, int | None] = {
    # one-qubit
    "u3": 1, "u2": 1, "u1": 1, "u": 1, "p": 1,
    "id": 1, "x": 1, "y": 1, "z": 1, "h": 1,
    "s": 1, "sdg": 1, "t": 1, "tdg": 1,
    "sx": 1, "sxdg": 1,
    "rx": 1, "ry": 1, "rz": 1,
    # two-qubit
    "cz": 2, "cx": 2, "cy": 2, "ch": 2, "swap": 2,
    "crx": 2, "cry": 2, "crz": 2, "cp": 2, "cu1": 2, "cu3": 2,
    "rxx": 2, "ryy": 2, "rzz": 2, "iswap": 2,
    # three-qubit
    "ccx": 3, "ccz": 3, "cswap": 3,
    # structural
    "barrier": None,
    "measure": 1,
}

#: Parameter counts for parametrized gates (others take zero parameters).
GATE_NUM_PARAMS: dict[str, int] = {
    "u3": 3, "u": 3, "cu3": 3,
    "u2": 2,
    "u1": 1, "p": 1, "rx": 1, "ry": 1, "rz": 1,
    "crx": 1, "cry": 1, "crz": 1, "cp": 1, "cu1": 1,
    "rxx": 1, "ryy": 1, "rzz": 1,
}


@dataclass(frozen=True)
class Gate:
    """One quantum operation.

    Attributes:
        name: lowercase gate mnemonic (``"u3"``, ``"cz"``, ...).
        qubits: operand qubit indices, in application order.
        params: rotation angles in radians (empty for non-parametrized gates).
    """

    name: str
    qubits: tuple[int, ...]
    params: tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", self.name.lower())
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        object.__setattr__(self, "params", tuple(float(p) for p in self.params))
        arity = GATE_ARITY.get(self.name)
        if arity is not None and len(self.qubits) != arity:
            raise ValueError(
                f"gate {self.name!r} expects {arity} qubit(s), got {len(self.qubits)}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"gate {self.name!r} has duplicate qubits {self.qubits}")
        expected_params = GATE_NUM_PARAMS.get(self.name, 0)
        if self.name in GATE_ARITY and len(self.params) != expected_params:
            raise ValueError(
                f"gate {self.name!r} expects {expected_params} parameter(s), "
                f"got {len(self.params)}"
            )
        if any(q < 0 for q in self.qubits):
            raise ValueError(f"negative qubit index in {self.qubits}")

    @property
    def num_qubits(self) -> int:
        """Number of qubit operands."""
        return len(self.qubits)

    def remapped(self, mapping: dict[int, int]) -> "Gate":
        """Return a copy acting on ``mapping[q]`` for each operand ``q``."""
        return Gate(self.name, tuple(mapping[q] for q in self.qubits), self.params)

    def shifted(self, offset: int) -> "Gate":
        """Return a copy with every qubit index shifted by ``offset``."""
        return Gate(self.name, tuple(q + offset for q in self.qubits), self.params)

    def __str__(self) -> str:
        if self.params:
            angle_text = ",".join(f"{p:.6g}" for p in self.params)
            return f"{self.name}({angle_text}) {list(self.qubits)}"
        return f"{self.name} {list(self.qubits)}"


def is_two_qubit(gate: Gate) -> bool:
    """True for gates on exactly two qubits (CZ and friends)."""
    return gate.num_qubits == 2


def is_one_qubit(gate: Gate) -> bool:
    """True for gates on exactly one qubit."""
    return gate.num_qubits == 1
