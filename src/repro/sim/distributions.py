"""Output-distribution comparison utilities.

Standard measures for comparing sampled measurement outcomes against ideal
distributions: total variation distance, classical (Hellinger) fidelity,
and the paper-adjacent "probability of successful trial" helper.
"""

from __future__ import annotations

import math
from collections.abc import Mapping

__all__ = [
    "normalize_counts",
    "total_variation_distance",
    "hellinger_fidelity",
    "success_fraction",
]


def normalize_counts(counts: Mapping[str, float]) -> dict[str, float]:
    """Counts -> probability distribution (validates non-negativity)."""
    total = 0.0
    for key, value in counts.items():
        if value < 0:
            raise ValueError(f"negative count for {key!r}")
        total += value
    if total <= 0:
        raise ValueError("counts sum to zero")
    return {key: value / total for key, value in counts.items()}


def total_variation_distance(
    p: Mapping[str, float], q: Mapping[str, float]
) -> float:
    """TVD of two count/probability maps (0 = identical, 1 = disjoint)."""
    pn, qn = normalize_counts(p), normalize_counts(q)
    keys = set(pn) | set(qn)
    return 0.5 * sum(abs(pn.get(k, 0.0) - qn.get(k, 0.0)) for k in keys)


def hellinger_fidelity(p: Mapping[str, float], q: Mapping[str, float]) -> float:
    """Classical fidelity ``(sum sqrt(p_i q_i))^2`` of two count maps."""
    pn, qn = normalize_counts(p), normalize_counts(q)
    keys = set(pn) | set(qn)
    bc = sum(math.sqrt(pn.get(k, 0.0) * qn.get(k, 0.0)) for k in keys)
    return bc * bc


def success_fraction(counts: Mapping[str, float], accepted: set[str]) -> float:
    """Fraction of shots landing in an accepted outcome set."""
    pn = normalize_counts(counts)
    return sum(pn.get(k, 0.0) for k in accepted)
