"""Quantum state simulation.

Two simulators back the reproduction's verification story:

- :mod:`repro.sim.statevector` -- an exact state-vector simulator for small
  circuits.  The test suite uses it to prove that compiled schedules (the
  layer streams Parallax emits) implement the same unitary as the input
  circuit, and that the transpiler preserves semantics on real workloads.
- :mod:`repro.sim.noisy` -- a Monte Carlo shot simulator that injects the
  Table II error channels (CZ/U3 depolarizing-style failures, atom loss
  folded into T1, readout flips) and reports empirical success rates,
  which converge to :func:`repro.noise.success_probability`'s analytic
  estimate.  Atoms lost during a shot are replenished between physical
  shots, as the paper's methodology describes.
"""

from repro.sim.statevector import StateVector, simulate_circuit, sample_counts
from repro.sim.noisy import NoisyShotSimulator, ShotOutcome
from repro.sim.distributions import (
    normalize_counts,
    total_variation_distance,
    hellinger_fidelity,
    success_fraction,
)

__all__ = [
    "StateVector",
    "simulate_circuit",
    "sample_counts",
    "NoisyShotSimulator",
    "ShotOutcome",
    "normalize_counts",
    "total_variation_distance",
    "hellinger_fidelity",
    "success_fraction",
]
