"""Exact state-vector simulation of {U3, CZ}-and-friends circuits.

Little-endian convention throughout (qubit 0 is the least significant bit
of a basis index), matching :mod:`repro.circuit.matrices`.  Gates are
applied by reshaping the amplitude tensor rather than building full
2^n x 2^n operators, so circuits up to ~20 qubits simulate comfortably.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Gate
from repro.circuit.matrices import gate_unitary
from repro.utils.rng import ensure_rng

__all__ = ["StateVector", "simulate_circuit", "sample_counts"]

_MAX_QUBITS = 22


class StateVector:
    """An n-qubit pure state with in-place gate application."""

    def __init__(self, num_qubits: int) -> None:
        if not (1 <= num_qubits <= _MAX_QUBITS):
            raise ValueError(
                f"statevector supports 1..{_MAX_QUBITS} qubits, got {num_qubits}"
            )
        self.num_qubits = num_qubits
        self.amplitudes = np.zeros(2**num_qubits, dtype=complex)
        self.amplitudes[0] = 1.0

    # -- gate application -------------------------------------------------------

    def apply(self, gate: Gate) -> "StateVector":
        """Apply one gate (barriers are no-ops; measure raises)."""
        if gate.name == "barrier":
            return self
        if gate.name == "measure":
            raise ValueError("use sample()/probabilities() instead of measure gates")
        u = gate_unitary(gate)
        self._apply_unitary(u, gate.qubits)
        return self

    def run(self, gates: Iterable[Gate]) -> "StateVector":
        """Apply a gate sequence in order."""
        for gate in gates:
            self.apply(gate)
        return self

    def _apply_unitary(self, u: np.ndarray, qubits: tuple[int, ...]) -> None:
        n = self.num_qubits
        k = len(qubits)
        if any(not (0 <= q < n) for q in qubits):
            raise ValueError(f"gate qubits {qubits} out of range for {n} qubits")
        # View amplitudes as an n-way tensor, with axis i <-> qubit (n-1-i)
        # because numpy reshapes big-endian.  Move the target axes first.
        tensor = self.amplitudes.reshape([2] * n)
        axes = [n - 1 - q for q in qubits]
        tensor = np.moveaxis(tensor, axes, range(k))
        shape = tensor.shape
        # The matrix convention indexes qubit 0 of the gate as the least
        # significant bit; after moveaxis, gate qubit i sits at axis i which
        # is the *most* significant position of the reshaped (2**k, rest)
        # block, so build the reordered matrix accordingly.
        perm = _bit_reversal_permutation(k)
        u_reordered = u[np.ix_(perm, perm)]
        block = tensor.reshape(2**k, -1)
        block = u_reordered @ block
        tensor = block.reshape(shape)
        tensor = np.moveaxis(tensor, range(k), axes)
        self.amplitudes = np.ascontiguousarray(tensor.reshape(-1))

    # -- measurement -----------------------------------------------------------

    def probabilities(self) -> np.ndarray:
        """|amplitude|^2 per basis state, little-endian indexed."""
        return np.abs(self.amplitudes) ** 2

    def probability_of(self, bitstring: str) -> float:
        """Probability of the classical outcome ``bitstring``.

        The string is written qubit 0 first (``"10"`` means qubit0=1,
        qubit1=0).
        """
        if len(bitstring) != self.num_qubits:
            raise ValueError(
                f"bitstring length {len(bitstring)} != {self.num_qubits} qubits"
            )
        index = sum(int(b) << i for i, b in enumerate(bitstring))
        return float(self.probabilities()[index])

    def sample(self, shots: int, seed: int | np.random.Generator | None = 0) -> dict[str, int]:
        """Sample measurement outcomes; returns bitstring -> count.

        Vectorized: the per-shot Python loop is replaced by ``np.unique``
        over the drawn outcomes plus array bit extraction, so only the
        *distinct* outcomes (at most 2^n, typically far fewer than the shot
        count) touch Python.  The RNG draw is unchanged, so counts are
        identical to the historical per-shot implementation.
        """
        rng = ensure_rng(seed)
        probs = self.probabilities()
        probs = probs / probs.sum()
        outcomes = rng.choice(len(probs), size=shots, p=probs)
        values, freqs = np.unique(outcomes, return_counts=True)
        # Bitstrings are written qubit 0 first (little-endian), matching
        # probability_of(); column i holds qubit i's bit.
        bits = (values[:, None] >> np.arange(self.num_qubits)) & 1
        labels = ["".join(row) for row in bits.astype("U1")]
        return {
            label: int(freq) for label, freq in zip(labels, freqs)
        }

    def fidelity_with(self, other: "StateVector") -> float:
        """|<self|other>|^2."""
        if other.num_qubits != self.num_qubits:
            raise ValueError("qubit counts differ")
        return float(abs(np.vdot(self.amplitudes, other.amplitudes)) ** 2)


def _bit_reversal_permutation(k: int) -> np.ndarray:
    """Index permutation mapping little-endian gate indices to axis order."""
    out = np.zeros(2**k, dtype=int)
    for i in range(2**k):
        reversed_bits = 0
        for b in range(k):
            if i & (1 << b):
                reversed_bits |= 1 << (k - 1 - b)
        out[i] = reversed_bits
    return out


def simulate_circuit(circuit: QuantumCircuit) -> StateVector:
    """Simulate a circuit from |0...0>; barriers/measures are stripped."""
    state = StateVector(circuit.num_qubits)
    state.run(g for g in circuit.gates if g.name not in ("barrier", "measure"))
    return state


def sample_counts(
    circuit: QuantumCircuit, shots: int = 1000, seed: int = 0
) -> dict[str, int]:
    """Simulate and sample a circuit in one call."""
    return simulate_circuit(circuit).sample(shots, seed)
