"""Monte Carlo noisy-shot simulation.

Samples the error channels of Table II per logical shot:

- each CZ fails independently with probability ``cz_error`` (SWAPs, for
  baseline schedules, fail as three CZ attempts);
- each U3 fails with probability ``u3_error``;
- each AOD move loses the atom with probability ``move_error`` and each
  trap switch fails with probability ``trap_switch_error``;
- every qubit decoheres over the circuit runtime with probability
  ``1 - exp(-t/T1 - t/T2)`` (atom loss is folded into T1, per the paper);
- optionally, each qubit's readout flips with probability ``readout_error``.

A shot "succeeds" when no channel fired -- the empirical success rate
converges to :func:`repro.noise.fidelity.success_probability`'s analytic
product, which the test suite verifies.  Lost atoms are replenished between
physical shots (the paper's Section III), so shots are i.i.d.

The per-channel survival probabilities come from
:func:`repro.noise.fidelity.channel_probabilities` -- the same arithmetic
the analytic estimate uses.  Because every channel probability is a scalar
(identical across shots), the channel-wise first-failure counts of a run
are *exactly* multinomial over five categories (fail-at-gates,
fail-at-movement, fail-at-decoherence, fail-at-readout, success), so
:meth:`run` draws the whole outcome with **one** ``rng.multinomial`` call
-- O(1) work and memory per scenario regardless of the shot count, which
is what makes 10^6-shot sweep scenarios free.

Two reference implementations are kept as oracles:

- :meth:`run_array` -- the previous vectorized engine (one ``(shots, 4)``
  uniform draw compared against the survival probabilities); the
  multinomial path must agree with it statistically (the parity tests) and
  it remains the production path if a future noise model makes channel
  probabilities per-shot arrays.
- :meth:`run_loop` -- the historical shot-at-a-time loop; it consumes the
  identical RNG stream as :meth:`run_array`, so with equal seeds those two
  return bit-identical :class:`ShotOutcome` objects (the seed-parity
  test), and it is the baseline of the >=10x vectorization benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.result import CompilationResult
from repro.noise.fidelity import NoiseModelConfig, channel_probabilities
from repro.utils.rng import ensure_rng

__all__ = ["ShotOutcome", "NoisyShotSimulator"]


@dataclass(frozen=True)
class ShotOutcome:
    """Aggregate result of a Monte Carlo run.

    Attributes:
        shots: logical shots simulated.
        successes: shots in which no error channel fired.
        gate_failures / movement_failures / decoherence_failures /
        readout_failures: shots whose *first* failure was in that channel.
    """

    shots: int
    successes: int
    gate_failures: int
    movement_failures: int
    decoherence_failures: int
    readout_failures: int

    @property
    def success_rate(self) -> float:
        """Empirical probability of a clean shot."""
        return self.successes / self.shots if self.shots else 0.0

    def stderr(self) -> float:
        """Standard error of the success rate.

        Interior rates use the binomial formula ``sqrt(p (1-p) / n)``.  At
        the boundaries (zero successes or zero failures) that formula
        collapses to 0.0, falsely reporting an *exact* rate from finite
        statistics; there the half-width of the one-sigma Wilson score
        interval (``~0.5 / (n + 1)``) is returned instead, so downstream
        error bars stay honest (cf. the rule of three for zero counts).
        """
        if not self.shots:
            return 0.0
        if 0 < self.successes < self.shots:
            p = self.success_rate
            return math.sqrt(p * (1 - p) / self.shots)
        lo, hi = self.wilson_interval(z=1.0)
        return (hi - lo) / 2.0

    def wilson_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Wilson score confidence interval for the success rate.

        Well-behaved at empirical rates of exactly 0 or 1, where the naive
        binomial interval degenerates to a point: for zero successes at
        ``z = 1.96`` the upper bound is ``~3.84 / n``, the Wilson analogue
        of the rule-of-three bound ``3 / n``.

        Args:
            z: normal quantile (1.96 for a 95% interval, 1.0 for one sigma).
        """
        if not self.shots:
            return (0.0, 1.0)
        n, s = self.shots, self.successes
        z2 = z * z
        center = (s + z2 / 2.0) / (n + z2)
        half = (z / (n + z2)) * math.sqrt(s * (n - s) / n + z2 / 4.0)
        return (max(0.0, center - half), min(1.0, center + half))


class NoisyShotSimulator:
    """Samples logical shots of a compiled circuit under Table II noise."""

    def __init__(
        self,
        result: CompilationResult,
        config: NoiseModelConfig | None = None,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        self.result = result
        self.config = config or NoiseModelConfig()
        self.rng = ensure_rng(seed)
        self.channels = channel_probabilities(result, self.config)
        #: Channel survival probabilities in sampling order
        #: (gates, movement, decoherence, readout).
        self._survival = np.array(
            [
                self.channels.gates,
                self.channels.movement,
                self.channels.decoherence,
                self.channels.readout,
            ]
        )
        #: First-failure category probabilities in attribution order
        #: (gate fail, movement fail, decoherence fail, readout fail,
        #: success); success is last so float rounding in the failure terms
        #: can never push the multinomial pvals sum past 1.  Only defined
        #: for scalar channels -- per-shot probability arrays fall back to
        #: the per-shot engine.
        self._pvals = None
        if self._survival.ndim == 1:
            p_gate, p_move, p_deco, p_read = (float(p) for p in self._survival)
            fails = np.array(
                [
                    1.0 - p_gate,
                    p_gate * (1.0 - p_move),
                    p_gate * p_move * (1.0 - p_deco),
                    p_gate * p_move * p_deco * (1.0 - p_read),
                ]
            )
            total = float(fails.sum())
            if total > 1.0:  # float-rounding guard; mathematically <= 1
                fails /= total
                total = 1.0
            self._pvals = np.append(fails, max(0.0, 1.0 - total))

    def _tally(self, ok: np.ndarray, shots: int) -> ShotOutcome:
        """Channel-wise first-failure attribution of an ``(shots, 4)`` mask."""
        gate_ok, move_ok = ok[:, 0], ok[:, 1]
        decohere_ok, readout_ok = ok[:, 2], ok[:, 3]
        success = gate_ok & move_ok & decohere_ok & readout_ok
        move_fail = gate_ok & ~move_ok
        deco_fail = gate_ok & move_ok & ~decohere_ok
        read_fail = gate_ok & move_ok & decohere_ok & ~readout_ok
        return ShotOutcome(
            shots=shots,
            successes=int(np.count_nonzero(success)),
            gate_failures=int(np.count_nonzero(~gate_ok)),
            movement_failures=int(np.count_nonzero(move_fail)),
            decoherence_failures=int(np.count_nonzero(deco_fail)),
            readout_failures=int(np.count_nonzero(read_fail)),
        )

    def run(self, shots: int = 8000) -> ShotOutcome:
        """Simulate ``shots`` logical shots; returns channel-wise counts.

        When every channel probability is a scalar (the current noise
        model always is), the five first-failure counts are exactly
        multinomial, so the whole run is **one** ``rng.multinomial`` draw
        -- O(1) time and memory in the shot count.  Should a future noise
        model supply per-shot probability arrays, the per-shot
        :meth:`run_array` engine takes over transparently.

        The multinomial and array paths sample the same distribution (the
        statistical-parity tests pin this) but consume the RNG stream
        differently, so only same-method runs are bit-reproducible.
        """
        if shots <= 0:
            raise ValueError(f"shots must be positive, got {shots}")
        if self._pvals is None:
            return self.run_array(shots)
        gate_fail, move_fail, deco_fail, read_fail, successes = (
            int(n) for n in self.rng.multinomial(shots, self._pvals)
        )
        return ShotOutcome(
            shots=shots,
            successes=successes,
            gate_failures=gate_fail,
            movement_failures=move_fail,
            decoherence_failures=deco_fail,
            readout_failures=read_fail,
        )

    def run_array(self, shots: int = 8000) -> ShotOutcome:
        """Vectorized per-shot engine: one ``(shots, 4)`` uniform draw.

        Every shot's four channel outcomes are compared against the
        survival probabilities in a single pass -- no Python-level
        per-shot work.  Kept as the statistical oracle for the multinomial
        fast path (and the production path for per-shot probability
        arrays); draws the identical RNG stream as :meth:`run_loop`, so
        equal seeds give bit-identical outcomes.
        """
        if shots <= 0:
            raise ValueError(f"shots must be positive, got {shots}")
        draws = self.rng.random((shots, 4))
        return self._tally(draws < self._survival, shots)

    def run_loop(self, shots: int = 8000) -> ShotOutcome:
        """Reference shot-at-a-time implementation of :meth:`run_array`.

        Draws the same RNG stream in the same order as the vectorized path
        (``shots`` successive length-4 uniform draws), so equal seeds give
        bit-identical outcomes; kept as the seed-parity oracle and the
        baseline for the vectorization benchmark.  Orders of magnitude
        slower -- do not use outside tests and benchmarks.
        """
        if shots <= 0:
            raise ValueError(f"shots must be positive, got {shots}")
        p_gate, p_move, p_deco, p_read = self._survival
        successes = gate_fail = move_fail = deco_fail = read_fail = 0
        for _ in range(shots):
            draws = self.rng.random(4)
            if not draws[0] < p_gate:
                gate_fail += 1
            elif not draws[1] < p_move:
                move_fail += 1
            elif not draws[2] < p_deco:
                deco_fail += 1
            elif not draws[3] < p_read:
                read_fail += 1
            else:
                successes += 1
        return ShotOutcome(
            shots=shots,
            successes=successes,
            gate_failures=gate_fail,
            movement_failures=move_fail,
            decoherence_failures=deco_fail,
            readout_failures=read_fail,
        )

    def analytic_success(self) -> float:
        """The closed-form success probability this sampler converges to."""
        return self.channels.product
