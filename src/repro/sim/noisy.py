"""Monte Carlo noisy-shot simulation.

Samples the error channels of Table II per logical shot:

- each CZ fails independently with probability ``cz_error`` (SWAPs, for
  baseline schedules, fail as three CZ attempts);
- each U3 fails with probability ``u3_error``;
- each AOD move loses the atom with probability ``move_error`` and each
  trap switch fails with probability ``trap_switch_error``;
- every qubit decoheres over the circuit runtime with probability
  ``1 - exp(-t/T1 - t/T2)`` (atom loss is folded into T1, per the paper);
- optionally, each qubit's readout flips with probability ``readout_error``.

A shot "succeeds" when no channel fired -- the empirical success rate
converges to :func:`repro.noise.fidelity.success_probability`'s analytic
product, which the test suite verifies.  Lost atoms are replenished between
physical shots (the paper's Section III), so shots are i.i.d.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.result import CompilationResult
from repro.noise.fidelity import NoiseModelConfig
from repro.utils.rng import ensure_rng

__all__ = ["ShotOutcome", "NoisyShotSimulator"]


@dataclass(frozen=True)
class ShotOutcome:
    """Aggregate result of a Monte Carlo run.

    Attributes:
        shots: logical shots simulated.
        successes: shots in which no error channel fired.
        gate_failures / movement_failures / decoherence_failures /
        readout_failures: shots whose *first* failure was in that channel.
    """

    shots: int
    successes: int
    gate_failures: int
    movement_failures: int
    decoherence_failures: int
    readout_failures: int

    @property
    def success_rate(self) -> float:
        """Empirical probability of a clean shot."""
        return self.successes / self.shots if self.shots else 0.0

    def stderr(self) -> float:
        """Binomial standard error of the success rate."""
        p = self.success_rate
        return math.sqrt(p * (1 - p) / self.shots) if self.shots else 0.0


class NoisyShotSimulator:
    """Samples logical shots of a compiled circuit under Table II noise."""

    def __init__(
        self,
        result: CompilationResult,
        config: NoiseModelConfig | None = None,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        self.result = result
        self.config = config or NoiseModelConfig()
        self.rng = ensure_rng(seed)
        spec = result.spec
        # Per-shot channel-survival probabilities (vectorized sampling).
        self._p_gates = (
            (1.0 - spec.cz_error) ** result.num_cz
            * (1.0 - spec.u3_error) ** result.num_u3
            * (1.0 - spec.ccz_error) ** result.num_ccz
        )
        if self.config.include_movement:
            switches = result.trap_change_events * self.config.trap_switches_per_resolution
            self._p_move = (1.0 - spec.move_error) ** result.num_moves * (
                1.0 - spec.trap_switch_error
            ) ** switches
        else:
            self._p_move = 1.0
        if self.config.include_decoherence:
            rate = 1.0 / spec.t1_us + 1.0 / spec.t2_us
            self._p_decohere = math.exp(-result.num_qubits * result.runtime_us * rate)
        else:
            self._p_decohere = 1.0
        if self.config.include_readout:
            self._p_readout = (1.0 - spec.readout_error) ** result.num_qubits
        else:
            self._p_readout = 1.0

    def run(self, shots: int = 8000) -> ShotOutcome:
        """Simulate ``shots`` logical shots; returns channel-wise counts."""
        if shots <= 0:
            raise ValueError(f"shots must be positive, got {shots}")
        draws = self.rng.random((shots, 4))
        gate_ok = draws[:, 0] < self._p_gates
        move_ok = draws[:, 1] < self._p_move
        decohere_ok = draws[:, 2] < self._p_decohere
        readout_ok = draws[:, 3] < self._p_readout
        success = gate_ok & move_ok & decohere_ok & readout_ok
        gate_fail = ~gate_ok
        move_fail = gate_ok & ~move_ok
        deco_fail = gate_ok & move_ok & ~decohere_ok
        read_fail = gate_ok & move_ok & decohere_ok & ~readout_ok
        return ShotOutcome(
            shots=shots,
            successes=int(success.sum()),
            gate_failures=int(gate_fail.sum()),
            movement_failures=int(move_fail.sum()),
            decoherence_failures=int(deco_fail.sum()),
            readout_failures=int(read_fail.sum()),
        )

    def analytic_success(self) -> float:
        """The closed-form success probability this sampler converges to."""
        return self._p_gates * self._p_move * self._p_decohere * self._p_readout
