"""Hardware specification: Table II parameters plus geometric constants.

All times are in microseconds and all distances in micrometers unless noted.
The error rates and times come verbatim from Table II of the paper; the
geometric constants (minimum separation, padding) are chosen so that the
16x16 grid's longest diagonal move takes ~2 us at 55 um/us, matching the
paper's Section IV discussion.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_probability,
)

__all__ = ["HardwareSpec", "TRAP_SWITCHES_PER_RESOLUTION"]

_US_PER_S = 1e6

#: Trap switches charged per trap-change resolution: one SLM->AOD pick-up and
#: one AOD->SLM drop-off (Section II-D).  This is the single source of truth
#: shared by the analytic noise model (`repro.noise.fidelity`), the Monte
#: Carlo sampler (`repro.sim.noisy`), and the runtime decomposition
#: (`repro.timing.runtime`), which previously carried independent copies.
TRAP_SWITCHES_PER_RESOLUTION: int = 2


@dataclass(frozen=True)
class HardwareSpec:
    """Parameters of one neutral-atom machine (Table II).

    Attributes:
        name: machine label used in reports.
        grid_rows / grid_cols: SLM site grid dimensions (16x16 or 35x35).
        aod_rows / aod_cols: number of AOD rows and columns (default 20, the
            paper's best-performing configuration, ablated in Fig. 13).
        min_separation_um: minimum atom separation distance constraint.
        grid_padding_um: extra corridor space added to the discretization
            pitch so AOD atoms can navigate between SLM atoms (Fig. 5a).
        blockade_factor: Rydberg blockade radius as a multiple of the
            interaction radius (2.5x per the paper).
        move_speed_um_per_us: AOD transport speed (55 um/us).
        trap_switch_time_us: SLM<->AOD trap change duration (100 us).
        u3_time_us / cz_time_us: gate durations (2 us / 0.8 us).
        u3_error / cz_error: gate error rates (0.0127% / 0.48%).
        ccz_error / ccz_time_us: native three-qubit CCZ gate (an extension:
            the paper's background notes neutral atoms execute multi-qubit
            gates directly, and GEYSER-style composition is "orthogonal" to
            Parallax; defaults follow demonstrated multi-qubit Rydberg gate
            fidelities of ~98% at roughly twice the CZ duration).
        swap_error: SWAP error rate (1.43% = three CZ gates).
        t1_us / t2_us: hyperfine coherence times (4.0 s / 1.49 s).
        atom_loss_rate: background atom loss per shot (0.7%), folded into
            decoherence per the paper's methodology.
        readout_error: fluorescence readout error (5%); excluded from the
            default success model (see DESIGN.md Section 5).
        move_error: atom loss probability per movement (the paper cites
            "<0.1%" [11]; 0.01% default so thousand-move schedules are not
            dominated by transport loss, consistent with Fig. 10).
        trap_switch_error: error rate of a trap change (paper: "<0.1%").
    """

    name: str = "quera-aquila-256"
    grid_rows: int = 16
    grid_cols: int = 16
    aod_rows: int = 20
    aod_cols: int = 20
    min_separation_um: float = 3.0
    grid_padding_um: float = 1.0
    blockade_factor: float = 2.5
    move_speed_um_per_us: float = 55.0
    trap_switch_time_us: float = 100.0
    u3_time_us: float = 2.0
    cz_time_us: float = 0.8
    u3_error: float = 0.000127
    cz_error: float = 0.0048
    ccz_error: float = 0.018
    ccz_time_us: float = 1.6
    swap_error: float = 0.0143
    t1_us: float = 4.0 * _US_PER_S
    t2_us: float = 1.49 * _US_PER_S
    atom_loss_rate: float = 0.007
    readout_error: float = 0.05
    move_error: float = 0.0001
    trap_switch_error: float = 0.0001

    def __post_init__(self) -> None:
        check_positive("grid_rows", self.grid_rows)
        check_positive("grid_cols", self.grid_cols)
        check_positive("aod_rows", self.aod_rows)
        check_positive("aod_cols", self.aod_cols)
        check_positive("min_separation_um", self.min_separation_um)
        check_non_negative("grid_padding_um", self.grid_padding_um)
        check_positive("blockade_factor", self.blockade_factor)
        check_positive("move_speed_um_per_us", self.move_speed_um_per_us)
        check_positive("trap_switch_time_us", self.trap_switch_time_us)
        check_positive("u3_time_us", self.u3_time_us)
        check_positive("cz_time_us", self.cz_time_us)
        check_positive("ccz_time_us", self.ccz_time_us)
        for prob_name in (
            "u3_error", "cz_error", "ccz_error", "swap_error", "atom_loss_rate",
            "readout_error", "move_error", "trap_switch_error",
        ):
            check_probability(prob_name, getattr(self, prob_name))
        check_positive("t1_us", self.t1_us)
        check_positive("t2_us", self.t2_us)

    # -- derived geometry ----------------------------------------------------

    @property
    def num_sites(self) -> int:
        """Total number of SLM grid sites (= max atoms)."""
        return self.grid_rows * self.grid_cols

    @property
    def grid_pitch_um(self) -> float:
        """Discretization unit: twice the separation constraint plus padding.

        This is the paper's Step 2 rule: a unit of discretization represents
        2x the minimum separation distance plus padding, which guarantees
        (1) the separation constraint holds between any two sites and
        (2) there is always corridor space for AOD atoms to pass between
        static SLM atoms.
        """
        return 2.0 * self.min_separation_um + self.grid_padding_um

    @property
    def extent_um(self) -> tuple[float, float]:
        """Physical (width, height) of the site grid in micrometers."""
        return (
            (self.grid_cols - 1) * self.grid_pitch_um,
            (self.grid_rows - 1) * self.grid_pitch_um,
        )

    @property
    def max_move_distance_um(self) -> float:
        """Length of the grid diagonal: the longest possible single move."""
        w, h = self.extent_um
        return float((w**2 + h**2) ** 0.5)

    def move_time_us(self, distance_um: float) -> float:
        """Transport time for a move of ``distance_um`` at the AOD speed."""
        check_non_negative("distance_um", distance_um)
        return distance_um / self.move_speed_um_per_us

    def blockade_radius_um(self, interaction_radius_um: float) -> float:
        """Blockade radius for a given interaction radius (2.5x by default)."""
        check_positive("interaction_radius_um", interaction_radius_um)
        return self.blockade_factor * interaction_radius_um

    def with_aod_count(self, count: int) -> "HardwareSpec":
        """Copy of this spec with ``count`` AOD rows and columns (Fig. 13)."""
        return replace(self, aod_rows=count, aod_cols=count)

    # -- the two machines of the evaluation -----------------------------------

    @classmethod
    def quera_aquila(cls, aod_count: int = 20) -> "HardwareSpec":
        """QuEra Aquila-like 256-qubit system (16x16 grid)."""
        return cls(name="quera-aquila-256", grid_rows=16, grid_cols=16,
                   aod_rows=aod_count, aod_cols=aod_count)

    @classmethod
    def atom_computing(cls, aod_count: int = 20) -> "HardwareSpec":
        """Atom Computing-like 1,225-qubit system (35x35 grid)."""
        return cls(name="atom-computing-1225", grid_rows=35, grid_cols=35,
                   aod_rows=aod_count, aod_cols=aod_count)
