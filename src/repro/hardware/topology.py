"""Unit-disk topology utilities.

The interaction structure of a static atom layout is a unit-disk graph
(atoms within the Rydberg radius are connected).  These helpers answer the
questions the compilers and diagnostics ask about such graphs: is it
connected, how far apart are interacting pairs, and how much parallelism
does the blockade radius permit.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.hardware.geometry import pairwise_distances, within_radius_pairs

__all__ = [
    "unit_disk_graph",
    "is_connected_at_radius",
    "blockade_conflict_graph",
    "max_parallel_two_qubit_gates",
]


def unit_disk_graph(positions: np.ndarray, radius: float) -> nx.Graph:
    """Graph with an edge for every atom pair within ``radius``."""
    pos = np.asarray(positions, dtype=float)
    graph = nx.Graph()
    graph.add_nodes_from(range(pos.shape[0]))
    graph.add_edges_from(within_radius_pairs(pos, radius))
    return graph


def is_connected_at_radius(positions: np.ndarray, radius: float) -> bool:
    """True when the unit-disk graph at ``radius`` is connected."""
    graph = unit_disk_graph(positions, radius)
    if graph.number_of_nodes() <= 1:
        return True
    return nx.is_connected(graph)


def blockade_conflict_graph(
    positions: np.ndarray,
    pairs: list[tuple[int, int]],
    blockade_radius: float,
) -> nx.Graph:
    """Conflict graph over candidate two-qubit gates.

    Nodes are the candidate gates (indices into ``pairs``); an edge means
    the two gates cannot execute in the same layer because some atom of one
    lies within the blockade radius of some atom of the other.
    """
    pos = np.asarray(positions, dtype=float)
    dist = pairwise_distances(pos)
    graph = nx.Graph()
    graph.add_nodes_from(range(len(pairs)))
    for i in range(len(pairs)):
        for j in range(i + 1, len(pairs)):
            conflict = any(
                dist[qa, qb] <= blockade_radius
                for qa in pairs[i]
                for qb in pairs[j]
            )
            if conflict:
                graph.add_edge(i, j)
    return graph


def max_parallel_two_qubit_gates(
    positions: np.ndarray,
    pairs: list[tuple[int, int]],
    blockade_radius: float,
) -> int:
    """Size of a large blockade-compatible gate set (greedy independent set).

    A lower bound on the true maximum (independent set is NP-hard); greedy
    by ascending conflict degree, which is exact on the sparse conflict
    graphs typical layouts produce.
    """
    conflicts = blockade_conflict_graph(positions, pairs, blockade_radius)
    chosen: list[int] = []
    blocked: set[int] = set()
    for node in sorted(conflicts.nodes, key=lambda n: (conflicts.degree(n), n)):
        if node in blocked:
            continue
        chosen.append(node)
        blocked.add(node)
        blocked.update(conflicts.neighbors(node))
    return len(chosen)
