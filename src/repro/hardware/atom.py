"""Atom records.

An :class:`Atom` ties a logical qubit index to a physical position and the
device currently trapping it (static SLM or mobile AOD).  AOD atoms also
carry their "home" position -- the optimized location Graphine chose --
which the scheduler returns them to after each layer (Fig. 7).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Atom", "TrapType"]


class TrapType(enum.Enum):
    """Which optical device holds the atom."""

    SLM = "slm"
    AOD = "aod"


@dataclass
class Atom:
    """One atom/qubit in the machine.

    Attributes:
        qubit: logical qubit index this atom realizes.
        position: current (x, y) in micrometers.
        trap: SLM (static) or AOD (mobile).
        home: the optimized initial position; AOD atoms are reset here after
            each layer when home-return is enabled.
        aod_row / aod_col: indices of the AOD row/column trapping this atom
            (None for SLM atoms).
    """

    qubit: int
    position: np.ndarray
    trap: TrapType = TrapType.SLM
    home: np.ndarray = field(default=None)  # type: ignore[assignment]
    aod_row: int | None = None
    aod_col: int | None = None

    def __post_init__(self) -> None:
        self.position = np.asarray(self.position, dtype=float).copy()
        if self.position.shape != (2,):
            raise ValueError(f"position must be a 2-vector, got {self.position.shape}")
        if self.home is None:
            self.home = self.position.copy()
        else:
            self.home = np.asarray(self.home, dtype=float).copy()

    @property
    def is_mobile(self) -> bool:
        """True when trapped by the AOD."""
        return self.trap is TrapType.AOD

    def distance_to(self, other: "Atom") -> float:
        """Euclidean distance to another atom."""
        d = self.position - other.position
        return float(np.hypot(d[0], d[1]))

    def displace(self, delta: np.ndarray) -> None:
        """Translate the atom (used only by the AOD movement engine)."""
        self.position = self.position + np.asarray(delta, dtype=float)

    def return_home(self) -> float:
        """Snap back to the home position; returns the distance travelled."""
        d = self.home - self.position
        dist = float(np.hypot(d[0], d[1]))
        self.position = self.home.copy()
        return dist
