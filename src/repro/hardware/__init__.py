"""Neutral-atom hardware model.

Encodes the machines of the paper's evaluation: QuEra Aquila-like 256-qubit
(16x16) and Atom Computing-like 1,225-qubit (35x35) systems, with the
hardware parameters of Table II, plus the geometric objects the compiler
manipulates: static SLM traps, the mobile AOD (rows/columns with ordering
and tandem-motion constraints), atoms, and the discretized grid.
"""

from repro.hardware.spec import HardwareSpec, TRAP_SWITCHES_PER_RESOLUTION
from repro.hardware.atom import Atom, TrapType
from repro.hardware.slm import SLM
from repro.hardware.aod import AOD, AODOrderError
from repro.hardware.grid import discretize_positions, grid_site_coords
from repro.hardware.topology import (
    unit_disk_graph,
    is_connected_at_radius,
    blockade_conflict_graph,
    max_parallel_two_qubit_gates,
)
from repro.hardware.geometry import (
    pairwise_distances,
    within_radius_pairs,
    euclidean,
    min_pairwise_separation,
)

__all__ = [
    "HardwareSpec",
    "TRAP_SWITCHES_PER_RESOLUTION",
    "Atom",
    "TrapType",
    "SLM",
    "AOD",
    "AODOrderError",
    "discretize_positions",
    "grid_site_coords",
    "pairwise_distances",
    "within_radius_pairs",
    "euclidean",
    "min_pairwise_separation",
    "unit_disk_graph",
    "is_connected_at_radius",
    "blockade_conflict_graph",
    "max_parallel_two_qubit_gates",
]
