"""Discretization of continuous layouts onto the hardware grid (Step 2).

Graphine returns qubit coordinates in the unit square; the hardware offers a
regular grid of SLM sites with pitch ``2 x min_separation + padding``.  This
module snaps each qubit to the nearest free site, resolving collisions by
spiralling outward over grid rings, which is exactly the paper's "place
atoms wherever there is free space when the ideal site is taken" behaviour
(whose cost shows up for TFIM-128 on the 256-site machine).
"""

from __future__ import annotations

import numpy as np

from repro.hardware.spec import HardwareSpec

__all__ = ["discretize_positions", "grid_site_coords", "unit_to_physical_scale"]


def grid_site_coords(spec: HardwareSpec) -> np.ndarray:
    """(rows*cols, 2) array of all site positions in micrometers."""
    pitch = spec.grid_pitch_um
    cols = np.arange(spec.grid_cols) * pitch
    rows = np.arange(spec.grid_rows) * pitch
    xx, yy = np.meshgrid(cols, rows)
    return np.column_stack([xx.ravel(), yy.ravel()])


def unit_to_physical_scale(spec: HardwareSpec) -> float:
    """Scale factor from unit-square coordinates to micrometers.

    Uses the smaller grid extent so that unit-space distances (including the
    Graphine interaction radius) map isotropically and stay inside the grid.
    """
    w, h = spec.extent_um
    return float(min(w, h))


def _ring_sites(center: tuple[int, int], radius: int, rows: int, cols: int) -> list[tuple[int, int]]:
    """Grid sites at Chebyshev distance ``radius`` from ``center`` (in range)."""
    r0, c0 = center
    if radius == 0:
        return [(r0, c0)] if 0 <= r0 < rows and 0 <= c0 < cols else []
    sites: list[tuple[int, int]] = []
    for dr in range(-radius, radius + 1):
        for dc in range(-radius, radius + 1):
            if max(abs(dr), abs(dc)) != radius:
                continue
            r, c = r0 + dr, c0 + dc
            if 0 <= r < rows and 0 <= c < cols:
                sites.append((r, c))
    return sites


def discretize_positions(
    unit_positions: np.ndarray, spec: HardwareSpec
) -> tuple[np.ndarray, list[tuple[int, int]]]:
    """Snap unit-square positions onto free grid sites.

    Qubits are processed in order of how contested their ideal site is
    (ties broken by qubit index) so crowded regions resolve deterministically.

    Args:
        unit_positions: (n, 2) coordinates in [0, 1]^2.
        spec: hardware description providing the grid.

    Returns:
        (positions_um, sites): an (n, 2) array of physical coordinates and
        the (row, col) site per qubit.

    Raises:
        ValueError: if there are more qubits than grid sites.
    """
    pos = np.asarray(unit_positions, dtype=float)
    if pos.ndim != 2 or pos.shape[1] != 2:
        raise ValueError(f"unit_positions must be (n, 2), got {pos.shape}")
    n = pos.shape[0]
    if n > spec.num_sites:
        raise ValueError(
            f"{n} qubits do not fit on a {spec.grid_rows}x{spec.grid_cols} grid"
        )
    if n and (pos.min() < -1e-9 or pos.max() > 1 + 1e-9):
        raise ValueError("unit_positions must lie in [0, 1]^2")

    rows, cols = spec.grid_rows, spec.grid_cols
    pitch = spec.grid_pitch_um
    ideal_col = np.clip(np.round(pos[:, 0] * (cols - 1)).astype(int), 0, cols - 1)
    ideal_row = np.clip(np.round(pos[:, 1] * (rows - 1)).astype(int), 0, rows - 1)

    # Resolve most-contested sites first for deterministic, dense packing.
    contention: dict[tuple[int, int], int] = {}
    for r, c in zip(ideal_row, ideal_col):
        contention[(r, c)] = contention.get((r, c), 0) + 1
    order = sorted(
        range(n),
        key=lambda q: (-contention[(ideal_row[q], ideal_col[q])], q),
    )

    taken: set[tuple[int, int]] = set()
    sites: list[tuple[int, int]] = [(-1, -1)] * n
    max_radius = max(rows, cols)
    for q in order:
        center = (int(ideal_row[q]), int(ideal_col[q]))
        placed = False
        for radius in range(max_radius + 1):
            candidates = [s for s in _ring_sites(center, radius, rows, cols) if s not in taken]
            if candidates:
                # Nearest by physical distance to the ideal continuous point.
                target = pos[q] * [(cols - 1) * pitch, (rows - 1) * pitch]
                best = min(
                    candidates,
                    key=lambda s: (s[1] * pitch - target[0]) ** 2
                    + (s[0] * pitch - target[1]) ** 2,
                )
                sites[q] = best
                taken.add(best)
                placed = True
                break
        if not placed:  # pragma: no cover - guarded by the capacity check
            raise ValueError("grid is full")

    if not sites:
        return np.zeros((0, 2)), []
    positions = np.array(
        [[c * pitch, r * pitch] for (r, c) in sites], dtype=float
    )
    return positions, sites
