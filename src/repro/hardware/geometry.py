"""Vectorized geometry kernels.

The scheduler's hot paths (radius queries, blockade checks, separation
validation) operate on a single contiguous ``(n, 2)`` float64 position
array, per the HPC guide's advice to vectorize inner loops and avoid
per-object attribute churn.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "euclidean",
    "pairwise_distances",
    "within_radius_pairs",
    "min_pairwise_separation",
    "neighbors_within",
]


def euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Distance between two 2-vectors."""
    d = np.asarray(a, dtype=float) - np.asarray(b, dtype=float)
    return float(np.hypot(d[0], d[1]))


def pairwise_distances(positions: np.ndarray) -> np.ndarray:
    """Full (n, n) Euclidean distance matrix for an (n, 2) position array."""
    pos = np.asarray(positions, dtype=float)
    if pos.ndim != 2 or pos.shape[1] != 2:
        raise ValueError(f"positions must have shape (n, 2), got {pos.shape}")
    diff = pos[:, None, :] - pos[None, :, :]
    return np.hypot(diff[..., 0], diff[..., 1])


def within_radius_pairs(positions: np.ndarray, radius: float) -> list[tuple[int, int]]:
    """All unordered index pairs at distance <= radius (i < j)."""
    dist = pairwise_distances(positions)
    n = dist.shape[0]
    iu, ju = np.triu_indices(n, k=1)
    mask = dist[iu, ju] <= radius
    return list(zip(iu[mask].tolist(), ju[mask].tolist()))


def min_pairwise_separation(positions: np.ndarray) -> float:
    """Smallest distance between any two distinct points (inf if < 2 points)."""
    pos = np.asarray(positions, dtype=float)
    n = pos.shape[0]
    if n < 2:
        return float("inf")
    dist = pairwise_distances(pos)
    iu, ju = np.triu_indices(n, k=1)
    return float(dist[iu, ju].min())


def neighbors_within(
    positions: np.ndarray, point: np.ndarray, radius: float, exclude: int | None = None
) -> np.ndarray:
    """Indices of positions within ``radius`` of ``point``.

    Args:
        positions: (n, 2) array.
        point: 2-vector query location.
        radius: inclusion radius (inclusive).
        exclude: optional index to omit (the querying atom itself).
    """
    pos = np.asarray(positions, dtype=float)
    d = np.hypot(pos[:, 0] - point[0], pos[:, 1] - point[1])
    mask = d <= radius
    if exclude is not None and 0 <= exclude < len(mask):
        mask[exclude] = False
    return np.nonzero(mask)[0]
