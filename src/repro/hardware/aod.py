"""The acousto-optic deflector (AOD): mobile rows and columns of traps.

The AOD is a crossed grid of ``aod_rows`` horizontal lines (each at some
y-coordinate) and ``aod_cols`` vertical lines (each at some x-coordinate).
An AOD-trapped atom sits at the intersection of one row and one column.

Hardware constraints modelled here, from the paper's Section I/II:

1. Rows (and columns) may never cross: the relative order of row
   y-coordinates and of column x-coordinates is invariant, with a minimum
   line gap so trap frequencies do not interfere.
2. All atoms on a row/column move in tandem: moving a row's y moves every
   atom on that row by the same delta (likewise for columns).

Parallax's design places exactly one atom per row/column pair in a single
logical shot; replicated shots (Section II-E) share rows/columns, which the
tandem rule makes free.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.spec import HardwareSpec

__all__ = ["AOD", "AODOrderError"]


class AODOrderError(ValueError):
    """A move would cross AOD lines or violate the minimum line gap."""


class AOD:
    """Mobile trap grid with crossing and tandem constraints.

    Row/column coordinates start unassigned (NaN); ``assign_atom`` binds a
    qubit to a (row, col) pair and fixes the line coordinates.  Line indices
    are ordered: row 0 must stay below row 1, etc.
    """

    def __init__(self, spec: HardwareSpec, line_gap_um: float = 1.0) -> None:
        self.spec = spec
        self.line_gap = float(line_gap_um)
        self.row_y = np.full(spec.aod_rows, np.nan)
        self.col_x = np.full(spec.aod_cols, np.nan)
        self.row_atoms: list[set[int]] = [set() for _ in range(spec.aod_rows)]
        self.col_atoms: list[set[int]] = [set() for _ in range(spec.aod_cols)]
        self._atom_lines: dict[int, tuple[int, int]] = {}  # qubit -> (row, col)

    # -- queries ---------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return len(self.row_y)

    @property
    def num_cols(self) -> int:
        return len(self.col_x)

    def atom_lines(self, qubit: int) -> tuple[int, int]:
        """(row index, col index) trapping ``qubit``."""
        if qubit not in self._atom_lines:
            raise KeyError(f"qubit {qubit} is not in the AOD")
        return self._atom_lines[qubit]

    def holds(self, qubit: int) -> bool:
        """True if the AOD traps ``qubit``."""
        return qubit in self._atom_lines

    def atom_position(self, qubit: int) -> np.ndarray:
        """Intersection coordinates of the qubit's row and column."""
        row, col = self.atom_lines(qubit)
        return np.array([self.col_x[col], self.row_y[row]], dtype=float)

    def atoms(self) -> list[int]:
        """All AOD-trapped qubits."""
        return list(self._atom_lines)

    # -- ordering validation -----------------------------------------------------

    def _check_row_order(self, index: int, new_y: float) -> None:
        below = self.row_y[:index]
        above = self.row_y[index + 1:]
        below_max = np.nanmax(below) if np.any(~np.isnan(below)) else -np.inf
        above_min = np.nanmin(above) if np.any(~np.isnan(above)) else np.inf
        if not (below_max + self.line_gap <= new_y <= above_min - self.line_gap):
            raise AODOrderError(
                f"row {index} -> y={new_y:.3f} violates ordering "
                f"(must lie in [{below_max + self.line_gap:.3f}, "
                f"{above_min - self.line_gap:.3f}])"
            )

    def _check_col_order(self, index: int, new_x: float) -> None:
        left = self.col_x[:index]
        right = self.col_x[index + 1:]
        left_max = np.nanmax(left) if np.any(~np.isnan(left)) else -np.inf
        right_min = np.nanmin(right) if np.any(~np.isnan(right)) else np.inf
        if not (left_max + self.line_gap <= new_x <= right_min - self.line_gap):
            raise AODOrderError(
                f"col {index} -> x={new_x:.3f} violates ordering "
                f"(must lie in [{left_max + self.line_gap:.3f}, "
                f"{right_min - self.line_gap:.3f}])"
            )

    def row_move_bounds(self, index: int) -> tuple[float, float]:
        """Allowed y-interval for row ``index`` given its neighbors."""
        below = self.row_y[:index]
        above = self.row_y[index + 1:]
        lo = (np.nanmax(below) + self.line_gap) if np.any(~np.isnan(below)) else -np.inf
        hi = (np.nanmin(above) - self.line_gap) if np.any(~np.isnan(above)) else np.inf
        return (float(lo), float(hi))

    def col_move_bounds(self, index: int) -> tuple[float, float]:
        """Allowed x-interval for column ``index`` given its neighbors."""
        left = self.col_x[:index]
        right = self.col_x[index + 1:]
        lo = (np.nanmax(left) + self.line_gap) if np.any(~np.isnan(left)) else -np.inf
        hi = (np.nanmin(right) - self.line_gap) if np.any(~np.isnan(right)) else np.inf
        return (float(lo), float(hi))

    # -- mutation ---------------------------------------------------------------

    def assign_atom(self, qubit: int, row: int, col: int, x: float, y: float) -> None:
        """Bind ``qubit`` to row/col lines at coordinates (x, y).

        If the lines already have coordinates they must match (tandem atoms
        share a line); otherwise the coordinates are set, validated against
        the ordering constraint.
        """
        if qubit in self._atom_lines:
            raise ValueError(f"qubit {qubit} already assigned")
        if not (0 <= row < self.num_rows and 0 <= col < self.num_cols):
            raise ValueError(f"AOD line ({row}, {col}) out of range")
        if np.isnan(self.row_y[row]):
            self._check_row_order(row, y)
            self.row_y[row] = y
        elif abs(self.row_y[row] - y) > 1e-9:
            raise ValueError(
                f"row {row} already at y={self.row_y[row]:.3f}, cannot hold "
                f"an atom at y={y:.3f}"
            )
        if np.isnan(self.col_x[col]):
            try:
                self._check_col_order(col, x)
            except AODOrderError:
                if len(self.row_atoms[row]) == 0:
                    self.row_y[row] = np.nan  # roll back the row assignment
                raise
            self.col_x[col] = x
        elif abs(self.col_x[col] - x) > 1e-9:
            raise ValueError(
                f"col {col} already at x={self.col_x[col]:.3f}, cannot hold "
                f"an atom at x={x:.3f}"
            )
        self.row_atoms[row].add(qubit)
        self.col_atoms[col].add(qubit)
        self._atom_lines[qubit] = (row, col)

    def release_atom(self, qubit: int) -> None:
        """Remove ``qubit`` from the AOD (trap change back to the SLM)."""
        row, col = self.atom_lines(qubit)
        self.row_atoms[row].discard(qubit)
        self.col_atoms[col].discard(qubit)
        del self._atom_lines[qubit]
        if not self.row_atoms[row]:
            self.row_y[row] = np.nan
        if not self.col_atoms[col]:
            self.col_x[col] = np.nan

    def move_row(self, index: int, new_y: float) -> tuple[float, list[int]]:
        """Move row ``index`` to ``new_y``; all its atoms move in tandem.

        Returns:
            (delta_y, affected_qubits).

        Raises:
            AODOrderError: if the move crosses another row or closes the gap.
        """
        if np.isnan(self.row_y[index]):
            raise ValueError(f"row {index} has no coordinate yet")
        self._check_row_order(index, new_y)
        delta = float(new_y - self.row_y[index])
        self.row_y[index] = new_y
        return delta, sorted(self.row_atoms[index])

    def move_col(self, index: int, new_x: float) -> tuple[float, list[int]]:
        """Move column ``index`` to ``new_x``; all its atoms move in tandem."""
        if np.isnan(self.col_x[index]):
            raise ValueError(f"col {index} has no coordinate yet")
        self._check_col_order(index, new_x)
        delta = float(new_x - self.col_x[index])
        self.col_x[index] = new_x
        return delta, sorted(self.col_atoms[index])

    def snapshot(self) -> tuple[np.ndarray, np.ndarray]:
        """Copies of (row_y, col_x) for save/restore around layer execution."""
        return self.row_y.copy(), self.col_x.copy()

    def restore(self, snapshot: tuple[np.ndarray, np.ndarray]) -> None:
        """Restore line coordinates saved by :meth:`snapshot`."""
        row_y, col_x = snapshot
        self.row_y = row_y.copy()
        self.col_x = col_x.copy()
