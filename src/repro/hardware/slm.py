"""The spatial light modulator (SLM): a fixed array of static trap sites.

Sites form a regular grid with pitch ``spec.grid_pitch_um``; each site holds
at most one atom.  The SLM guarantees the separation constraint by
construction (pitch = 2 x min separation + padding).
"""

from __future__ import annotations

import numpy as np

from repro.hardware.spec import HardwareSpec

__all__ = ["SLM"]


class SLM:
    """Static trap grid with occupancy tracking.

    Sites are indexed by (row, col); their physical coordinates are
    ``(col * pitch, row * pitch)`` so that x grows with columns and y with
    rows, matching the paper's figures.
    """

    def __init__(self, spec: HardwareSpec) -> None:
        self.spec = spec
        self.pitch = spec.grid_pitch_um
        self.rows = spec.grid_rows
        self.cols = spec.grid_cols
        self._occupant: dict[tuple[int, int], int] = {}

    # -- geometry -------------------------------------------------------------

    def site_position(self, row: int, col: int) -> np.ndarray:
        """Physical (x, y) of a grid site in micrometers."""
        self._check_site(row, col)
        return np.array([col * self.pitch, row * self.pitch], dtype=float)

    def nearest_site(self, point: np.ndarray) -> tuple[int, int]:
        """Grid site closest to an arbitrary physical point (clamped)."""
        col = int(round(float(point[0]) / self.pitch))
        row = int(round(float(point[1]) / self.pitch))
        return (min(max(row, 0), self.rows - 1), min(max(col, 0), self.cols - 1))

    def _check_site(self, row: int, col: int) -> None:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ValueError(
                f"site ({row}, {col}) outside {self.rows}x{self.cols} grid"
            )

    # -- occupancy --------------------------------------------------------------

    def is_free(self, row: int, col: int) -> bool:
        """True if no atom occupies the site."""
        self._check_site(row, col)
        return (row, col) not in self._occupant

    def occupant(self, row: int, col: int) -> int | None:
        """Qubit index occupying the site, or None."""
        self._check_site(row, col)
        return self._occupant.get((row, col))

    def place(self, qubit: int, row: int, col: int) -> np.ndarray:
        """Trap ``qubit`` at the site; returns its physical position.

        Raises:
            ValueError: if the site is occupied or the qubit already placed.
        """
        self._check_site(row, col)
        if (row, col) in self._occupant:
            raise ValueError(f"site ({row}, {col}) already holds qubit "
                             f"{self._occupant[(row, col)]}")
        for site, q in self._occupant.items():
            if q == qubit:
                raise ValueError(f"qubit {qubit} already placed at {site}")
        self._occupant[(row, col)] = qubit
        return self.site_position(row, col)

    def release(self, row: int, col: int) -> int:
        """Free a site (trap change to AOD); returns the released qubit."""
        self._check_site(row, col)
        if (row, col) not in self._occupant:
            raise ValueError(f"site ({row}, {col}) is empty")
        return self._occupant.pop((row, col))

    def occupied_sites(self) -> dict[tuple[int, int], int]:
        """Copy of the occupancy map (site -> qubit)."""
        return dict(self._occupant)

    @property
    def num_occupied(self) -> int:
        """Number of trapped atoms."""
        return len(self._occupant)
