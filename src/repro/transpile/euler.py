"""ZYZ Euler-angle resynthesis of one-qubit unitaries.

Any 2x2 unitary equals ``e^{i a} Rz(phi) Ry(theta) Rz(lam)``, and
``U3(theta, phi, lam)`` equals that product up to global phase.  The
transpiler multiplies runs of adjacent one-qubit gates into a single matrix
and resynthesizes one ``u3`` from it here.
"""

from __future__ import annotations

import cmath
import math

import numpy as np

__all__ = ["zyz_angles", "u3_from_unitary", "is_identity_up_to_phase"]

_ATOL = 1e-10


def zyz_angles(u: np.ndarray) -> tuple[float, float, float]:
    """Return ``(theta, phi, lam)`` with ``U3(theta,phi,lam) ~ u`` (global phase free).

    Raises:
        ValueError: if ``u`` is not (close to) a 2x2 unitary.
    """
    u = np.asarray(u, dtype=complex)
    if u.shape != (2, 2):
        raise ValueError(f"expected 2x2 matrix, got shape {u.shape}")
    if not np.allclose(u.conj().T @ u, np.eye(2), atol=1e-8):
        raise ValueError("matrix is not unitary")
    # Strip global phase: make det(u) == 1 (SU(2) form).
    det = np.linalg.det(u)
    su = u / cmath.sqrt(det)
    # su = [[cos(t/2) e^{-i(phi+lam)/2}, -sin(t/2) e^{-i(phi-lam)/2}],
    #       [sin(t/2) e^{ i(phi-lam)/2},  cos(t/2) e^{ i(phi+lam)/2}]]
    # atan2 keeps full precision near theta = 0 and theta = pi, where acos
    # of a magnitude loses ~1e-8 of accuracy.
    theta = 2.0 * math.atan2(abs(su[1, 0]), abs(su[0, 0]))
    if abs(math.sin(theta / 2.0)) > _ATOL and abs(math.cos(theta / 2.0)) > _ATOL:
        plus = 2.0 * cmath.phase(su[1, 1])
        minus = 2.0 * cmath.phase(su[1, 0])
        phi = (plus + minus) / 2.0
        lam = (plus - minus) / 2.0
    elif abs(math.sin(theta / 2.0)) <= _ATOL:
        # Diagonal: only phi + lam is determined.
        phi = 2.0 * cmath.phase(su[1, 1])
        lam = 0.0
    else:
        # Anti-diagonal: only phi - lam is determined.
        phi = 2.0 * cmath.phase(su[1, 0])
        lam = 0.0
    return (_wrap(theta), _wrap(phi), _wrap(lam))


def _wrap(angle: float) -> float:
    """Wrap an angle into (-pi, pi]."""
    wrapped = math.fmod(angle, 2.0 * math.pi)
    if wrapped > math.pi:
        wrapped -= 2.0 * math.pi
    elif wrapped <= -math.pi:
        wrapped += 2.0 * math.pi
    return wrapped


def u3_from_unitary(u: np.ndarray) -> tuple[float, float, float]:
    """Alias of :func:`zyz_angles`, named for its use in gate resynthesis."""
    return zyz_angles(u)


def is_identity_up_to_phase(u: np.ndarray, atol: float = 1e-9) -> bool:
    """True if ``u`` equals ``e^{i a} I`` for some phase ``a``."""
    u = np.asarray(u, dtype=complex)
    if abs(u[0, 1]) > atol or abs(u[1, 0]) > atol:
        return False
    return abs(u[0, 0] - u[1, 1]) < atol and abs(abs(u[0, 0]) - 1.0) < atol
