"""Structural decomposition of named gates into the {U3, CZ} basis.

One-qubit gates become a single ``u3`` via their matrix (ZYZ resynthesis);
two-qubit gates expand through CX-based templates with every CX rewritten as
``H . CZ . H``; three-qubit gates use the standard Toffoli/Fredkin templates.
All templates are verified against dense unitaries in the test suite.
"""

from __future__ import annotations

import math

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Gate
from repro.circuit.matrices import gate_unitary
from repro.transpile.euler import u3_from_unitary

__all__ = ["decompose_to_basis", "decompose_gate"]

_H_ANGLES = (math.pi / 2.0, 0.0, math.pi)
_BASIS = ("u3", "cz")


def _u3(q: int, theta: float, phi: float, lam: float) -> Gate:
    return Gate("u3", (q,), (theta, phi, lam))


def _h(q: int) -> Gate:
    return _u3(q, *_H_ANGLES)


def _rz(q: int, angle: float) -> Gate:
    return _u3(q, 0.0, 0.0, angle)


def _cx(control: int, target: int) -> list[Gate]:
    """CX as H(target) CZ H(target)."""
    return [_h(target), Gate("cz", (control, target)), _h(target)]


def _one_qubit_to_u3(gate: Gate) -> list[Gate]:
    theta, phi, lam = u3_from_unitary(gate_unitary(gate))
    return [_u3(gate.qubits[0], theta, phi, lam)]


def _cx_template(gates: list[tuple[str, tuple[int, ...], tuple[float, ...]]]) -> list[Gate]:
    """Expand a template whose entries may include 'cx' pseudo-gates."""
    out: list[Gate] = []
    for name, qubits, params in gates:
        if name == "cx":
            out.extend(_cx(*qubits))
        elif name == "u3":
            out.append(Gate("u3", qubits, params))
        elif name == "cz":
            out.append(Gate("cz", qubits))
        else:
            raise ValueError(f"template gate {name!r} not in basis")
    return out


def _decompose_two_qubit(gate: Gate) -> list[Gate]:
    a, b = gate.qubits
    name, p = gate.name, gate.params
    if name == "cz":
        return [gate]
    if name == "cx":
        return _cx(a, b)
    if name == "cy":
        # CY = (I x Sdg) CX (I x S)
        return [_rz(b, -math.pi / 2), *_cx(a, b), _rz(b, math.pi / 2)]
    if name == "ch":
        # CH = (I x [S H T]) CX (I x [Tdg H Sdg])  -- standard qelib1 template.
        return [
            _rz(b, math.pi / 2), _h(b), _rz(b, math.pi / 4),
            *_cx(a, b),
            _rz(b, -math.pi / 4), _h(b), _rz(b, -math.pi / 2),
        ]
    if name == "swap":
        return [*_cx(a, b), *_cx(b, a), *_cx(a, b)]
    if name == "iswap":
        # iSWAP = (S x S)(H x I) CX(a,b) CX(b,a) (I x H)
        return [
            _rz(a, math.pi / 2), _rz(b, math.pi / 2), _h(a),
            *_cx(a, b), *_cx(b, a),
            _h(b),
        ]
    if name in ("cp", "cu1"):
        t = p[0]
        return [
            _rz(a, t / 2), *_cx(a, b), _rz(b, -t / 2), *_cx(a, b), _rz(b, t / 2),
        ]
    if name == "crz":
        t = p[0]
        return [_rz(b, t / 2), *_cx(a, b), _rz(b, -t / 2), *_cx(a, b)]
    if name == "crx":
        # Conjugate CRZ by H on the target.
        t = p[0]
        return [_h(b), _rz(b, t / 2), *_cx(a, b), _rz(b, -t / 2), *_cx(a, b), _h(b)]
    if name == "cry":
        t = p[0]
        return [
            _u3(b, t / 2, 0.0, 0.0), *_cx(a, b),
            _u3(b, -t / 2, 0.0, 0.0), *_cx(a, b),
        ]
    if name == "cu3":
        theta, phi, lam = p
        # Standard qelib1 cu3 template.
        return [
            _rz(a, (lam + phi) / 2),
            _rz(b, (lam - phi) / 2),
            *_cx(a, b),
            _u3(b, -theta / 2, 0.0, -(phi + lam) / 2),
            *_cx(a, b),
            _u3(b, theta / 2, phi, 0.0),
        ]
    if name == "rzz":
        t = p[0]
        return [*_cx(a, b), _rz(b, t), *_cx(a, b)]
    if name == "rxx":
        t = p[0]
        return [_h(a), _h(b), *_cx(a, b), _rz(b, t), *_cx(a, b), _h(a), _h(b)]
    if name == "ryy":
        t = p[0]
        rx_pos = _u3(a, math.pi / 2, -math.pi / 2, math.pi / 2)
        rx_posb = _u3(b, math.pi / 2, -math.pi / 2, math.pi / 2)
        rx_neg = _u3(a, -math.pi / 2, -math.pi / 2, math.pi / 2)
        rx_negb = _u3(b, -math.pi / 2, -math.pi / 2, math.pi / 2)
        return [rx_pos, rx_posb, *_cx(a, b), _rz(b, t), *_cx(a, b), rx_neg, rx_negb]
    raise ValueError(f"no {name!r} two-qubit decomposition template")


def _decompose_three_qubit_native(gate: Gate) -> list[Gate]:
    """Expand three-qubit gates onto {u3, cz, ccz} keeping CCZ native.

    Neutral atoms execute multi-qubit Rydberg gates directly (the paper's
    background); this GEYSER-style composition path trades six CZ gates for
    one native CCZ pulse.
    """
    name = gate.name
    if name == "ccz":
        return [gate]
    if name == "ccx":
        a, b, c = gate.qubits
        return [_h(c), Gate("ccz", (a, b, c)), _h(c)]
    if name == "cswap":
        a, b, c = gate.qubits
        return [
            *_cx(c, b),
            _h(c), Gate("ccz", (a, b, c)), _h(c),
            *_cx(c, b),
        ]
    raise ValueError(f"no native {name!r} three-qubit composition")


def _decompose_three_qubit(gate: Gate) -> list[Gate]:
    name = gate.name
    if name == "ccx":
        a, b, c = gate.qubits
        # Standard 6-CX Toffoli template.
        t = math.pi / 4
        return [
            _h(c),
            *_cx(b, c), _rz(c, -t),
            *_cx(a, c), _rz(c, t),
            *_cx(b, c), _rz(c, -t),
            *_cx(a, c), _rz(b, t), _rz(c, t),
            *_cx(a, b), _h(c),
            _rz(a, t), _rz(b, -t),
            *_cx(a, b),
        ]
    if name == "ccz":
        a, b, c = gate.qubits
        inner = Gate("ccx", (a, b, c))
        return [_h(c), *_decompose_three_qubit(inner), _h(c)]
    if name == "cswap":
        # Fredkin = CX(c->b) . Toffoli(a,b -> c) . CX(c->b)
        a, b, c = gate.qubits
        inner = _decompose_three_qubit(Gate("ccx", (a, b, c)))
        return [*_cx(c, b), *inner, *_cx(c, b)]
    raise ValueError(f"no {name!r} three-qubit decomposition template")


def decompose_gate(gate: Gate, keep_ccz: bool = False) -> list[Gate]:
    """Expand one gate into an equivalent {u3, cz} sequence.

    With ``keep_ccz``, three-qubit gates compose onto a native CCZ pulse
    instead of the six-CZ Toffoli template.  ``barrier`` and ``measure``
    pass through unchanged.
    """
    if gate.name in ("barrier", "measure"):
        return [gate]
    if gate.name in _BASIS:
        return [gate]
    if gate.num_qubits == 1:
        return _one_qubit_to_u3(gate)
    if gate.num_qubits == 2:
        return _decompose_two_qubit(gate)
    if gate.num_qubits == 3:
        if keep_ccz:
            return _decompose_three_qubit_native(gate)
        return _decompose_three_qubit(gate)
    raise ValueError(f"cannot decompose {gate.num_qubits}-qubit gate {gate.name!r}")


def decompose_to_basis(circuit: QuantumCircuit, keep_ccz: bool = False) -> QuantumCircuit:
    """Rewrite every gate of ``circuit`` into the {u3, cz} basis.

    With ``keep_ccz`` the output basis is {u3, cz, ccz}.
    """
    out = QuantumCircuit(circuit.num_qubits, circuit.name)
    for gate in circuit.gates:
        out.extend(decompose_gate(gate, keep_ccz=keep_ccz))
    return out
