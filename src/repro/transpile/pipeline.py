"""The transpile entry point: QASM-or-IR circuit in, optimized {u3, cz} out."""

from __future__ import annotations

from repro.circuit.circuit import QuantumCircuit
from repro.transpile.basis import decompose_to_basis
from repro.transpile.passes import optimize_circuit

__all__ = ["transpile"]


def transpile(
    circuit: QuantumCircuit,
    optimize: bool = True,
    strip_structural: bool = True,
    native_multiqubit: bool = False,
) -> QuantumCircuit:
    """Rewrite ``circuit`` into the optimized {u3, cz} basis.

    Args:
        circuit: any circuit over the gate names the IR knows.
        optimize: run the peephole passes to a fixed point (mirrors the
            paper's use of Qiskit's highest optimization level).
        strip_structural: drop barriers and measurement markers; the
            neutral-atom compilers schedule only computational gates and the
            noise model adds measurement effects separately.
        native_multiqubit: keep three-qubit gates as native ``ccz`` pulses
            (GEYSER-style composition; basis becomes {u3, cz, ccz}).

    Returns:
        A new circuit containing only ``u3`` and ``cz`` gates -- plus
        ``ccz`` with ``native_multiqubit``, and barriers/measures if
        ``strip_structural`` is False.
    """
    work = circuit.without({"barrier", "measure"}) if strip_structural else circuit
    work = decompose_to_basis(work, keep_ccz=native_multiqubit)
    if optimize:
        work = optimize_circuit(work)
    work.name = circuit.name
    return work
