"""Peephole optimization passes over {u3, cz} circuits.

Three passes, applied to a fixed point by :func:`optimize_circuit`:

- :func:`merge_one_qubit_runs` -- multiply maximal runs of adjacent
  one-qubit gates on the same qubit into one matrix and resynthesize a
  single ``u3`` (dropped entirely when the product is the identity).
- :func:`cancel_cz_pairs` -- remove back-to-back CZ gates on the same
  unordered qubit pair with no intervening gate on either qubit.
- :func:`drop_identities` -- remove ``u3`` gates that are the identity up to
  global phase.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Gate
from repro.circuit.matrices import gate_unitary
from repro.transpile.euler import is_identity_up_to_phase, u3_from_unitary

__all__ = [
    "merge_one_qubit_runs",
    "cancel_cz_pairs",
    "drop_identities",
    "optimize_circuit",
]

_BLOCKING = ("barrier", "measure")


def merge_one_qubit_runs(circuit: QuantumCircuit) -> QuantumCircuit:
    """Merge adjacent one-qubit gates per qubit into single ``u3`` gates.

    A "run" is a maximal sequence of one-qubit gates on qubit ``q`` with no
    two-qubit gate, barrier or measure touching ``q`` in between.  Runs whose
    product is the identity vanish.
    """
    out = QuantumCircuit(circuit.num_qubits, circuit.name)
    pending: dict[int, np.ndarray] = {}

    def flush(qubit: int) -> None:
        matrix = pending.pop(qubit, None)
        if matrix is None:
            return
        if is_identity_up_to_phase(matrix):
            return
        theta, phi, lam = u3_from_unitary(matrix)
        out.append(Gate("u3", (qubit,), (theta, phi, lam)))

    for gate in circuit.gates:
        if gate.num_qubits == 1 and gate.name not in _BLOCKING:
            q = gate.qubits[0]
            u = gate_unitary(gate)
            pending[q] = u @ pending.get(q, np.eye(2, dtype=complex))
        else:
            for q in gate.qubits:
                flush(q)
            out.append(gate)
    for q in sorted(pending):
        flush(q)
    return out


def cancel_cz_pairs(circuit: QuantumCircuit) -> QuantumCircuit:
    """Remove pairs of identical CZ gates with nothing between them.

    CZ is self-inverse and symmetric in its qubits, so ``cz a,b; cz b,a``
    cancels whenever no other gate touches ``a`` or ``b`` in between.
    """
    gates = list(circuit.gates)
    # last_pending[pair] = index into `kept` of an un-cancelled CZ on pair
    kept: list[Gate | None] = []
    last_pending: dict[tuple[int, int], int] = {}
    for gate in gates:
        if gate.name == "cz":
            pair = (min(gate.qubits), max(gate.qubits))
            if pair in last_pending:
                kept[last_pending.pop(pair)] = None
                continue
            last_pending[pair] = len(kept)
            kept.append(gate)
            continue
        # Any other gate on a qubit invalidates pending CZs touching it.
        for q in gate.qubits:
            stale = [pair for pair in last_pending if q in pair]
            for pair in stale:
                del last_pending[pair]
        kept.append(gate)
    out = QuantumCircuit(circuit.num_qubits, circuit.name)
    out.extend(g for g in kept if g is not None)
    return out


def drop_identities(circuit: QuantumCircuit, atol: float = 1e-9) -> QuantumCircuit:
    """Remove ``u3`` gates whose matrix is the identity up to global phase."""
    out = QuantumCircuit(circuit.num_qubits, circuit.name)
    for gate in circuit.gates:
        if gate.name == "u3" and is_identity_up_to_phase(gate_unitary(gate), atol):
            continue
        out.append(gate)
    return out


def optimize_circuit(circuit: QuantumCircuit, max_rounds: int = 20) -> QuantumCircuit:
    """Apply all peephole passes until the gate list stops changing."""
    current = circuit
    for _ in range(max_rounds):
        before = len(current)
        current = drop_identities(merge_one_qubit_runs(cancel_cz_pairs(current)))
        if len(current) == before:
            break
    return current
