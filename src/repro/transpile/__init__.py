"""Transpiler to the {U3, CZ} universal basis used by the paper.

This replaces the Qiskit transpiler (optimization level 3) used in the
paper's methodology: every input circuit is first rewritten so that it
contains only one-qubit ``u3`` gates and two-qubit ``cz`` gates, then
peephole-optimized (adjacent one-qubit gates merged via ZYZ resynthesis,
adjacent CZ pairs cancelled, identities dropped) until a fixed point.

All three compilers (Parallax, ELDI, Graphine) consume the same transpiled
circuit, mirroring the paper's methodology where every technique starts from
the identical Qiskit-optimized circuit.
"""

from repro.transpile.euler import zyz_angles, u3_from_unitary
from repro.transpile.basis import decompose_to_basis
from repro.transpile.passes import (
    merge_one_qubit_runs,
    cancel_cz_pairs,
    drop_identities,
    optimize_circuit,
)
from repro.transpile.pipeline import transpile

__all__ = [
    "zyz_angles",
    "u3_from_unitary",
    "decompose_to_basis",
    "merge_one_qubit_runs",
    "cancel_cz_pairs",
    "drop_identities",
    "optimize_circuit",
    "transpile",
]
