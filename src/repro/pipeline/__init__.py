"""The unified compiler pipeline: stages, registry, cache, and batch engine.

This package is the architectural keystone tying the techniques together:

- :mod:`repro.pipeline.stage` -- the five canonical compilation stages
  (transpile, layout, placement, schedule, finalize) run by a timed
  :class:`PassPipeline` over a :class:`CompileContext`.
- :mod:`repro.pipeline.compiler_base` -- the :class:`Compiler` protocol and
  the :class:`StagedCompiler` base class every technique subclasses.
- :mod:`repro.pipeline.registry` -- decorator-based name -> compiler lookup
  (:func:`get_compiler`, :func:`available_techniques`), so the CLI,
  experiments, and benchmarks never import technique classes directly.
- :mod:`repro.pipeline.fingerprint` -- content addresses for circuits,
  hardware specs, and technique configs.
- :mod:`repro.pipeline.cache` -- :class:`CompilationCache`, a
  content-addressed result cache with an optional on-disk JSON backend.
- :mod:`repro.pipeline.batch` -- :func:`compile_many`, the deterministic
  process-pool batch compilation engine with cache write-back.

Typical production-style usage::

    from repro.pipeline import CompilationCache, compile_many

    cache = CompilationCache("~/.cache/repro")
    results = compile_many(circuits, ["parallax", "eldi"], spec,
                           workers=8, cache=cache)
"""

from repro.pipeline.stage import (
    STAGE_NAMES,
    CompileContext,
    PassPipeline,
    PipelineStage,
    install_pipeline_timer,
    installed_pipeline_timer,
    profiled_pipeline,
)
from repro.pipeline.compiler_base import Compiler, StagedCompiler
from repro.pipeline.registry import (
    CompilerRegistry,
    REGISTRY,
    available_techniques,
    create_compiler,
    get_compiler,
    register_compiler,
)
from repro.pipeline.fingerprint import (
    CacheKey,
    cache_key,
    fingerprint_circuit,
    fingerprint_config,
    fingerprint_obj,
    fingerprint_spec,
)
from repro.pipeline.cache import CacheStats, CompilationCache, atomic_write_text
from repro.pipeline.batch import (
    CompileTask,
    compile_many,
    compile_tasks,
    derive_task_seed,
)

__all__ = [
    "STAGE_NAMES",
    "CompileContext",
    "PassPipeline",
    "PipelineStage",
    "install_pipeline_timer",
    "installed_pipeline_timer",
    "profiled_pipeline",
    "Compiler",
    "StagedCompiler",
    "CompilerRegistry",
    "REGISTRY",
    "available_techniques",
    "create_compiler",
    "get_compiler",
    "register_compiler",
    "CacheKey",
    "cache_key",
    "fingerprint_circuit",
    "fingerprint_config",
    "fingerprint_obj",
    "fingerprint_spec",
    "CacheStats",
    "CompilationCache",
    "atomic_write_text",
    "CompileTask",
    "compile_many",
    "compile_tasks",
    "derive_task_seed",
]
