"""Parallel batch compilation: fan the registry out over a process pool.

:func:`compile_many` compiles the product ``circuits x techniques x specs``,
optionally through a shared :class:`~repro.pipeline.cache.CompilationCache`
(hits are skipped, misses are written back) and over a
``ProcessPoolExecutor``.  Every task's configuration -- including its RNG
seeds -- is fixed *before* any work is dispatched, so the results are
bit-identical whether ``workers`` is 1 or 32 and regardless of completion
order.
"""

from __future__ import annotations

import hashlib
import typing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.circuit.circuit import QuantumCircuit
from repro.hardware.spec import HardwareSpec
from repro.layout.placement import PlacementConfig
from repro.pipeline.fingerprint import cache_key, fingerprint_circuit, fingerprint_spec
from repro.pipeline.registry import REGISTRY, available_techniques, get_compiler
from repro.utils import kernels
from repro.utils.profiling import PhaseTimer

if typing.TYPE_CHECKING:
    from collections.abc import Callable, Sequence
    from repro.core.result import CompilationResult
    from repro.pipeline.cache import CompilationCache

__all__ = ["CompileTask", "compile_many", "compile_tasks", "derive_task_seed"]

#: Stage timings (seconds) keyed by "<technique>.<stage>".
StageTimings = typing.Dict[str, float]


@dataclass(frozen=True)
class CompileTask:
    """One fully-specified unit of batch work (picklable)."""

    technique: str
    circuit: QuantumCircuit
    spec: HardwareSpec
    config: object = None


def derive_task_seed(base_seed: int, *parts: object) -> int:
    """A deterministic 31-bit seed derived from ``base_seed`` and ``parts``.

    Pure function of its arguments (hash-based, no global RNG state), so a
    task's seed never depends on worker count or scheduling order.
    """
    text = "|".join([str(int(base_seed)), *map(str, parts)])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


def _default_config(
    technique: str,
    circuit: QuantumCircuit,
    spec: HardwareSpec,
    base_seed: int | None,
) -> object:
    """Technique defaults, with per-task seeds derived when requested."""
    cls = get_compiler(technique)
    if base_seed is None:
        return cls.make_config()
    from repro.core.scheduler import SchedulerConfig

    circuit_fp = fingerprint_circuit(circuit)
    spec_fp = fingerprint_spec(spec)
    return cls.make_config(
        placement=PlacementConfig(
            seed=derive_task_seed(base_seed, "placement", technique, circuit_fp, spec_fp)
        ),
        scheduler=SchedulerConfig(
            seed=derive_task_seed(base_seed, "scheduler", technique, circuit_fp, spec_fp)
        ),
    )


def _execute_task(task: CompileTask) -> tuple["CompilationResult", StageTimings]:
    """Run one task (in a worker process) with per-stage timing."""
    cls = REGISTRY.get(task.technique)
    timer = PhaseTimer()
    result = cls(task.spec, task.config).compile(task.circuit, timer=timer)
    return result, timer.totals()


def _as_list(value, scalar_type) -> list:
    if isinstance(value, scalar_type):
        return [value]
    return list(value)


def compile_many(
    circuits: "QuantumCircuit | Sequence[QuantumCircuit]",
    techniques: "str | Sequence[str] | None" = None,
    specs: "HardwareSpec | Sequence[HardwareSpec] | None" = None,
    *,
    workers: int = 1,
    cache: "CompilationCache | None" = None,
    config_factory: "Callable[[str, QuantumCircuit, HardwareSpec], object] | None" = None,
    base_seed: int | None = None,
    return_timings: bool = False,
):
    """Compile every (circuit, technique, spec) combination, possibly in parallel.

    Args:
        circuits: one circuit or a sequence of circuits.
        techniques: technique name(s); defaults to every registered technique.
        specs: target machine(s); defaults to the QuEra Aquila 256 system.
        workers: process-pool size; ``1`` compiles sequentially in-process.
        cache: optional shared :class:`CompilationCache`; hits skip work and
            misses are written back after compilation.
        config_factory: ``(technique, circuit, spec) -> config`` override for
            per-task configuration (used by the experiment runners to match
            their settings).  Defaults to each technique's ``make_config``,
            with deterministic per-task placement/scheduler seeds derived
            from ``base_seed`` when one is given.
        base_seed: see ``config_factory``.
        return_timings: also return per-stage wall-clock timings; cache hits
            report an empty mapping.

    Returns:
        Results in product order (circuit-major, then technique, then spec);
        with ``return_timings``, a list of ``(result, timings)`` pairs.
    """
    circuit_list = _as_list(circuits, QuantumCircuit)
    technique_list = (
        list(available_techniques())
        if techniques is None
        else _as_list(techniques, str)
    )
    spec_list = (
        [HardwareSpec.quera_aquila()]
        if specs is None
        else _as_list(specs, HardwareSpec)
    )
    for name in technique_list:
        get_compiler(name)  # fail fast on unknown techniques

    tasks: list[CompileTask] = []
    for circuit in circuit_list:
        for technique in technique_list:
            for spec in spec_list:
                config = (
                    config_factory(technique, circuit, spec)
                    if config_factory is not None
                    else _default_config(technique, circuit, spec, base_seed)
                )
                tasks.append(CompileTask(technique, circuit, spec, config))
    return compile_tasks(
        tasks, workers=workers, cache=cache, return_timings=return_timings
    )


def compile_tasks(
    tasks: "Sequence[CompileTask]",
    *,
    workers: int = 1,
    cache: "CompilationCache | None" = None,
    return_timings: bool = False,
):
    """Compile an explicit list of :class:`CompileTask` units.

    The lower-level entry behind :func:`compile_many` for callers whose work
    is not a full cartesian product -- the scenario-sweep runner, for
    example, dedups its (circuit, technique, spec) points before dispatch.
    Cache hits are skipped, misses are written back, and results come back
    in task order regardless of ``workers``.

    Pending tasks are additionally deduplicated in flight by content
    address: compilation is a pure function of the cache key (the same
    contract the cache itself relies on), so identical tasks share one
    compilation instead of each missing the cold cache independently.
    Duplicates report empty stage timings, like cache hits -- no work ran
    for them.
    """
    results: list = [None] * len(tasks)
    timings: list[StageTimings] = [{} for _ in tasks]
    pending: list[int] = []
    for index, task in enumerate(tasks):
        if cache is not None:
            hit = cache.lookup(task.technique, task.circuit, task.spec, task.config)
            if hit is not None:
                results[index] = hit
                continue
        pending.append(index)

    if pending:
        if kernels.reference_kernels_active():
            # Pre-dedup dispatch, retained as the benchmark baseline.
            groups = [[index] for index in pending]
        else:
            group_of: dict = {}
            groups = []
            for index in pending:
                task = tasks[index]
                key = cache_key(task.technique, task.circuit, task.spec, task.config)
                slot = group_of.get(key)
                if slot is None:
                    group_of[key] = len(groups)
                    groups.append([index])
                else:
                    groups[slot].append(index)
        todo = [tasks[group[0]] for group in groups]
        computed = None
        if workers > 1 and len(todo) > 1:
            from concurrent.futures.process import BrokenProcessPool

            try:
                with ProcessPoolExecutor(max_workers=min(workers, len(todo))) as pool:
                    computed = list(pool.map(_execute_task, todo))
            except (OSError, BrokenProcessPool):
                computed = None  # pools unavailable (sandbox); fall through
        if computed is None:
            computed = [_execute_task(task) for task in todo]
        for group, (result, stage_times) in zip(groups, computed):
            lead = group[0]
            results[lead] = result
            timings[lead] = stage_times
            if cache is not None:
                task = tasks[lead]
                cache.store(task.technique, task.circuit, task.spec, task.config, result)
            for index in group[1:]:
                results[index] = result

    if return_timings:
        return list(zip(results, timings))
    return results
