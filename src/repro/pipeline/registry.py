"""Technique registry: look compilers up by name instead of importing classes.

Mirrors :mod:`repro.benchcircuits.registry` for compilation techniques.
Compiler classes self-register at import time::

    @register_compiler()
    class MyCompiler(StagedCompiler):
        technique = "mine"
        ...

and consumers resolve them by name::

    cls = get_compiler("parallax")
    result = cls(spec).compile(circuit)

The global registry lazily imports the built-in techniques (Parallax,
Graphine, ELDI) on first lookup, so ``repro.pipeline`` itself stays
import-light.
"""

from __future__ import annotations

import typing
from collections.abc import Iterator

if typing.TYPE_CHECKING:
    from repro.hardware.spec import HardwareSpec
    from repro.pipeline.compiler_base import Compiler

__all__ = [
    "CompilerRegistry",
    "REGISTRY",
    "register_compiler",
    "get_compiler",
    "create_compiler",
    "available_techniques",
]


class CompilerRegistry:
    """A name -> compiler-class mapping with decorator-based registration.

    Args:
        load_builtins: when true (the global registry), the first lookup
            imports the built-in technique modules so they self-register.
    """

    def __init__(self, *, load_builtins: bool = False) -> None:
        self._classes: dict[str, type] = {}
        self._load_builtins = load_builtins
        self._builtins_loaded = False

    # -- registration ---------------------------------------------------------

    def register(self, name: str | None = None):
        """Class decorator registering a compiler under ``name``.

        ``name`` defaults to the class's ``technique`` attribute.  Raises
        :class:`ValueError` when the name is missing or already taken by a
        different class (re-registering the same class is a no-op, so module
        reloads stay harmless).
        """

        def decorator(cls: type) -> type:
            technique = (name or getattr(cls, "technique", "") or "").lower()
            if not technique:
                raise ValueError(
                    f"{cls.__name__} has no technique name; set a 'technique' "
                    "class attribute or pass register(name=...)"
                )
            existing = self._classes.get(technique)
            if existing is not None and existing is not cls:
                raise ValueError(
                    f"technique {technique!r} already registered by "
                    f"{existing.__name__}"
                )
            self._classes[technique] = cls
            return cls

        return decorator

    # -- lookup ---------------------------------------------------------------

    def _ensure_builtins(self) -> None:
        if not self._load_builtins or self._builtins_loaded:
            return
        self._builtins_loaded = True
        # Imported for their registration side effects.
        import repro.baselines.eldi  # noqa: F401
        import repro.baselines.graphine_compiler  # noqa: F401
        import repro.core.compiler  # noqa: F401

    def get(self, name: str) -> type:
        """The compiler class registered under ``name`` (case-insensitive).

        Raises:
            ValueError: for unknown technique names.
        """
        self._ensure_builtins()
        cls = self._classes.get(str(name).lower())
        if cls is None:
            raise ValueError(
                f"unknown technique {name!r}; choose from {self.names()}"
            )
        return cls

    def create(
        self, name: str, spec: "HardwareSpec", config: object = None
    ) -> "Compiler":
        """Instantiate the named technique for ``spec``."""
        return self.get(name)(spec, config)

    def names(self) -> tuple[str, ...]:
        """All registered technique names, sorted."""
        self._ensure_builtins()
        return tuple(sorted(self._classes))

    def __contains__(self, name: object) -> bool:
        self._ensure_builtins()
        return str(name).lower() in self._classes

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure_builtins()
        return len(self._classes)


#: The process-wide registry holding the built-in techniques.
REGISTRY = CompilerRegistry(load_builtins=True)


def register_compiler(name: str | None = None):
    """Register a compiler class with the global registry (decorator)."""
    return REGISTRY.register(name)


def get_compiler(name: str) -> type:
    """Resolve a technique name to its compiler class (global registry)."""
    return REGISTRY.get(name)


def create_compiler(name: str, spec: "HardwareSpec", config: object = None) -> "Compiler":
    """Instantiate a technique by name (global registry)."""
    return REGISTRY.create(name, spec, config)


def available_techniques() -> tuple[str, ...]:
    """Sorted names of every registered technique."""
    return REGISTRY.names()
