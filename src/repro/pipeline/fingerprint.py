"""Content-addressed fingerprints for circuits, specs, and configs.

A compilation is a pure function of (circuit, hardware spec, technique,
technique config), so a cache entry is addressed by SHA-256 digests of
canonical JSON encodings of those four inputs.  Crucially the spec
fingerprint covers *every* :class:`~repro.hardware.spec.HardwareSpec` field
(the seed's ad-hoc cache keyed only name/aod_rows/aod_cols, so e.g. error
-rate edits silently reused stale results), and the config fingerprint
covers exactly the knobs the technique consumes (ELDI entries no longer
churn when a placement seed it never reads changes).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import typing

from repro.utils import kernels

if typing.TYPE_CHECKING:
    from repro.circuit.circuit import QuantumCircuit
    from repro.hardware.spec import HardwareSpec

__all__ = [
    "CacheKey",
    "cache_key",
    "clear_fingerprint_caches",
    "fingerprint_circuit",
    "fingerprint_config",
    "fingerprint_obj",
    "fingerprint_spec",
]


def _canonical(value: object) -> object:
    """Recursively convert ``value`` into JSON-encodable canonical form."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__type__": type(value).__qualname__,
            **{
                f.name: _canonical(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, dict):
        return {
            str(k): _canonical(v)
            for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(value, (set, frozenset)) else value
        return [_canonical(v) for v in items]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    if hasattr(value, "tolist"):  # numpy arrays and scalars
        return _canonical(value.tolist())
    return repr(value)


def fingerprint_obj(value: object) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``value``."""
    payload = json.dumps(_canonical(value), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


#: Spec-object -> digest memo (HardwareSpec is frozen and hashable, and the
#: digest is a pure function of its fields, so equal specs share an entry).
_SPEC_FP_CACHE: dict = {}
_SPEC_FP_CACHE_MAX = 4096


def clear_fingerprint_caches() -> None:
    """Drop every fingerprint memo (used by cold-start benchmarks/tests)."""
    _SPEC_FP_CACHE.clear()
    _CONFIG_FP_CACHE.clear()


def _fingerprint_circuit_content(circuit: "QuantumCircuit") -> str:
    return fingerprint_obj(
        {
            "num_qubits": circuit.num_qubits,
            "name": circuit.name,
            "gates": [
                [g.name, list(g.qubits), list(g.params)] for g in circuit.gates
            ],
        }
    )


def fingerprint_circuit(circuit: "QuantumCircuit") -> str:
    """Digest of a circuit's full content: size, name, and every gate.

    Memoized on the circuit object: circuits are append-only while being
    built and immutable once compiled, so ``(num_qubits, name, len(gates))``
    is a sufficient staleness token.  Hashing a few hundred gates costs
    milliseconds, and batch compilation fingerprints the same circuit once
    per cache lookup/store -- without the memo it dominates warm-cache runs.
    """
    if kernels.reference_kernels_active():
        return _fingerprint_circuit_content(circuit)
    token = (circuit.num_qubits, circuit.name, len(circuit.gates))
    memo = getattr(circuit, "_fingerprint_memo", None)
    if memo is not None and memo[0] == token:
        return memo[1]
    digest = _fingerprint_circuit_content(circuit)
    try:
        circuit._fingerprint_memo = (token, digest)
    except AttributeError:
        pass  # slotted/frozen circuit stand-ins just lose the memo
    return digest


def fingerprint_spec(spec: "HardwareSpec") -> str:
    """Digest covering every field of the hardware spec (content-memoized)."""
    if kernels.reference_kernels_active():
        return fingerprint_obj(spec)
    try:
        digest = _SPEC_FP_CACHE.get(spec)
    except TypeError:  # unhashable spec stand-in
        return fingerprint_obj(spec)
    if digest is None:
        digest = fingerprint_obj(spec)
        if len(_SPEC_FP_CACHE) >= _SPEC_FP_CACHE_MAX:
            _SPEC_FP_CACHE.clear()
        _SPEC_FP_CACHE[spec] = digest
    return digest


#: Config-object -> digest memo (technique configs are frozen dataclasses;
#: unhashable configs just skip the memo).
_CONFIG_FP_CACHE: dict = {}


def fingerprint_config(config: object) -> str:
    """Digest of a technique config (``None`` hashes to a fixed value)."""
    if kernels.reference_kernels_active():
        return fingerprint_obj(config)
    try:
        digest = _CONFIG_FP_CACHE.get(config)
    except TypeError:
        return fingerprint_obj(config)
    if digest is None:
        digest = fingerprint_obj(config)
        if len(_CONFIG_FP_CACHE) >= _SPEC_FP_CACHE_MAX:
            _CONFIG_FP_CACHE.clear()
        _CONFIG_FP_CACHE[config] = digest
    return digest


def _code_version() -> str:
    """The package version, stamped into every cache key.

    Compilation is a pure function of (circuit, spec, technique, config)
    only *per code version*: without this component a persistent on-disk
    cache would keep serving results compiled by older compiler code.
    Imported lazily to avoid a cycle with ``repro/__init__``.
    """
    from repro import __version__

    return __version__


class CacheKey(typing.NamedTuple):
    """Content address of one compilation."""

    technique: str
    circuit: str
    spec: str
    config: str
    version: str = ""

    def digest(self) -> str:
        """A single combined hex digest (used for on-disk file names)."""
        return hashlib.sha256("|".join(self).encode("utf-8")).hexdigest()


def cache_key(
    technique: str,
    circuit: "QuantumCircuit",
    spec: "HardwareSpec",
    config: object = None,
) -> CacheKey:
    """Build the content address of one (technique, circuit, spec, config)."""
    return CacheKey(
        technique=str(technique).lower(),
        circuit=fingerprint_circuit(circuit),
        spec=fingerprint_spec(spec),
        config=fingerprint_config(config),
        version=_code_version(),
    )
