"""Staged compilation: the shared pass pipeline every technique runs on.

The paper's four compilation steps generalize to five canonical stages that
all techniques (Parallax, Graphine, ELDI, and any future registrant) share:

1. ``transpile`` -- lower the input circuit to the {U3, CZ} basis.
2. ``layout``    -- decide the technique's qubit layout (annealed positions,
   BFS ordering, or reuse of a caller-provided layout).
3. ``placement`` -- map the layout onto hardware sites / machine state.
4. ``schedule``  -- order gates into parallel layers (movement or routing).
5. ``finalize``  -- assemble the :class:`~repro.core.result.CompilationResult`.

A :class:`PassPipeline` runs an ordered list of :class:`PipelineStage`
callables over a mutable :class:`CompileContext`, timing each stage through
:class:`~repro.utils.profiling.PhaseTimer` (phase names are
``"<technique>.<stage>"``).  Timing is opt-in: install a process-wide timer
with :func:`install_pipeline_timer` / :func:`profiled_pipeline`, or pass one
per run.
"""

from __future__ import annotations

import typing
from contextlib import contextmanager
from dataclasses import dataclass, field
from collections.abc import Callable, Iterator, Sequence

from repro.utils.profiling import PhaseTimer

if typing.TYPE_CHECKING:
    from repro.circuit.circuit import QuantumCircuit
    from repro.core.result import CompilationResult
    from repro.hardware.spec import HardwareSpec
    from repro.layout.graphine import GraphineLayout

__all__ = [
    "STAGE_NAMES",
    "CompileContext",
    "PipelineStage",
    "PassPipeline",
    "install_pipeline_timer",
    "installed_pipeline_timer",
    "profiled_pipeline",
]

#: The canonical stage order every staged compiler follows.
STAGE_NAMES: tuple[str, ...] = (
    "transpile", "layout", "placement", "schedule", "finalize",
)


@dataclass
class CompileContext:
    """Mutable state threaded through a :class:`PassPipeline` run.

    Attributes:
        circuit: the caller's input circuit (never mutated).
        spec: the target machine.
        config: the technique's configuration dataclass (or ``None``).
        layout: optional caller-provided layout (skips annealing when the
            technique supports it, mirroring the paper's "load pre-obtained
            Graphine results" option).
        basis: the {U3, CZ}-basis circuit produced by the transpile stage.
        positions: physical (n, 2) atom coordinates in micrometers, when the
            technique places atoms explicitly.
        sites: per-qubit (row, col) grid sites used for footprint reporting.
        interaction_radius_um / blockade_radius_um: radii chosen by the
            placement stage.
        artifacts: free-form scratch shared between stages (machine state,
            router output, scheduler statistics, ...).
        result: the finished compilation result (set by ``finalize``).
    """

    circuit: "QuantumCircuit"
    spec: "HardwareSpec"
    config: object = None
    layout: "GraphineLayout | None" = None
    basis: "QuantumCircuit | None" = None
    positions: object = None
    sites: Sequence[tuple[int, int]] | None = None
    interaction_radius_um: float | None = None
    blockade_radius_um: float | None = None
    artifacts: dict[str, object] = field(default_factory=dict)
    result: "CompilationResult | None" = None

    def footprint(self) -> tuple[int, int]:
        """Bounding-box (rows, cols) of the occupied grid sites."""
        sites = list(self.sites or ())
        rows = [r for (r, _) in sites]
        cols = [c for (_, c) in sites]
        return (
            (max(rows) - min(rows) + 1) if rows else 0,
            (max(cols) - min(cols) + 1) if cols else 0,
        )


@dataclass(frozen=True)
class PipelineStage:
    """One named pass: a callable mutating the :class:`CompileContext`."""

    name: str
    run: Callable[[CompileContext], None]


# -- process-wide timing hook -------------------------------------------------

_pipeline_timer: PhaseTimer | None = None


def install_pipeline_timer(timer: PhaseTimer | None) -> PhaseTimer | None:
    """Install ``timer`` as the process-wide pipeline timer.

    Returns the previously installed timer (``None`` if there was none) so
    callers can restore it.  Passing ``None`` uninstalls.
    """
    global _pipeline_timer
    previous = _pipeline_timer
    _pipeline_timer = timer
    return previous


def installed_pipeline_timer() -> PhaseTimer | None:
    """The currently installed process-wide pipeline timer, if any."""
    return _pipeline_timer


@contextmanager
def profiled_pipeline(timer: PhaseTimer | None = None) -> Iterator[PhaseTimer]:
    """Scope with a pipeline timer installed; yields the timer.

    Usage::

        with profiled_pipeline() as timer:
            ParallaxCompiler(spec).compile(circuit)
        print(timer.report())
    """
    timer = timer if timer is not None else PhaseTimer()
    previous = install_pipeline_timer(timer)
    try:
        yield timer
    finally:
        install_pipeline_timer(previous)


class PassPipeline:
    """An ordered, timed sequence of compilation stages.

    Args:
        stages: the passes to run, in order; names must be unique.
        technique: label used as the timing-phase prefix.
        timer: per-pipeline timer override; when ``None`` the process-wide
            timer (see :func:`install_pipeline_timer`) is used, and when that
            is also ``None`` stages run untimed (zero overhead).
    """

    def __init__(
        self,
        stages: Sequence[PipelineStage],
        *,
        technique: str = "",
        timer: PhaseTimer | None = None,
    ) -> None:
        names = [stage.name for stage in stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names in pipeline: {names}")
        if not stages:
            raise ValueError("pipeline needs at least one stage")
        self.stages: tuple[PipelineStage, ...] = tuple(stages)
        self.technique = technique
        self.timer = timer

    @property
    def stage_names(self) -> tuple[str, ...]:
        return tuple(stage.name for stage in self.stages)

    def run(self, ctx: CompileContext) -> "CompilationResult":
        """Run every stage over ``ctx`` and return the finished result."""
        timer = self.timer if self.timer is not None else _pipeline_timer
        label = self.technique or "pipeline"
        for stage in self.stages:
            if timer is None:
                stage.run(ctx)
            else:
                with timer.phase(f"{label}.{stage.name}"):
                    stage.run(ctx)
        if ctx.result is None:
            raise RuntimeError(
                f"pipeline for {label!r} finished without producing a result"
            )
        return ctx.result
