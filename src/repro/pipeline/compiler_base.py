"""The common compiler contract: a protocol plus a staged base class.

Every technique is a :class:`StagedCompiler` subclass that fills in the five
canonical stages of :mod:`repro.pipeline.stage` and registers itself with
:mod:`repro.pipeline.registry`.  Code that only *consumes* compilers should
type against the :class:`Compiler` protocol.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.pipeline.stage import (
    STAGE_NAMES,
    CompileContext,
    PassPipeline,
    PipelineStage,
)
from repro.transpile.pipeline import transpile

if typing.TYPE_CHECKING:
    from repro.circuit.circuit import QuantumCircuit
    from repro.core.result import CompilationResult
    from repro.hardware.spec import HardwareSpec
    from repro.layout.graphine import GraphineLayout
    from repro.utils.profiling import PhaseTimer

__all__ = ["Compiler", "StagedCompiler"]


@typing.runtime_checkable
class Compiler(typing.Protocol):
    """What every compilation technique exposes to callers."""

    technique: str

    def compile(
        self,
        circuit: "QuantumCircuit",
        layout: "GraphineLayout | None" = None,
    ) -> "CompilationResult":
        """Compile ``circuit`` for this compiler's machine."""
        ...


class StagedCompiler:
    """Base class running a technique through the shared :class:`PassPipeline`.

    Subclasses set the class attributes and implement the ``stage_*``
    methods; ``stage_transpile`` has a shared default (transpile to the
    {U3, CZ} basis, or strip barriers/measures when the caller already
    transpiled).

    Class attributes:
        technique: registry name (lowercase).
        uses_layout: whether ``compile(..., layout=...)`` can reuse a
            precomputed Graphine layout (Parallax and Graphine can; ELDI
            always derives its own grid ordering).
        config_type: the technique's configuration dataclass.
    """

    technique: typing.ClassVar[str] = ""
    uses_layout: typing.ClassVar[bool] = False
    config_type: typing.ClassVar[type | None] = None

    def __init__(self, spec: "HardwareSpec", config: object = None) -> None:
        self.spec = spec
        self.config = config if config is not None else self.default_config()

    # -- configuration --------------------------------------------------------

    @classmethod
    def default_config(cls) -> object:
        """A default-constructed instance of :attr:`config_type`."""
        return cls.config_type() if cls.config_type is not None else None

    @classmethod
    def make_config(cls, **options: object) -> object:
        """Build a config from the shared experiment option vocabulary.

        Callers pass the full vocabulary (``placement``, ``scheduler``,
        ``transpile_input``, ...); only the keys that are actual fields of
        this technique's :attr:`config_type` are kept, and ``None`` values
        fall back to the field default.  This is what lets a cache key for
        ELDI ignore placement/scheduler seeds it never consumes.
        """
        if cls.config_type is None:
            return None
        names = {f.name for f in dataclasses.fields(cls.config_type)}
        kwargs = {k: v for k, v in options.items() if k in names and v is not None}
        return cls.config_type(**kwargs)

    # -- pipeline assembly ----------------------------------------------------

    def build_pipeline(self, timer: "PhaseTimer | None" = None) -> PassPipeline:
        """The five-stage pipeline bound to this compiler instance."""
        return PassPipeline(
            [
                PipelineStage(name, getattr(self, f"stage_{name}"))
                for name in STAGE_NAMES
            ],
            technique=self.technique,
            timer=timer,
        )

    def compile(
        self,
        circuit: "QuantumCircuit",
        layout: "GraphineLayout | None" = None,
        *,
        timer: "PhaseTimer | None" = None,
    ) -> "CompilationResult":
        """Compile ``circuit``; optionally reuse a precomputed layout.

        The ``layout`` parameter mirrors the paper's command-line option to
        load pre-obtained Graphine results and skip the annealing stage
        (ignored by techniques with :attr:`uses_layout` false).
        """
        ctx = CompileContext(
            circuit=circuit,
            spec=self.spec,
            config=self.config,
            layout=layout if self.uses_layout else None,
        )
        return self.build_pipeline(timer=timer).run(ctx)

    # -- stages ---------------------------------------------------------------

    def stage_transpile(self, ctx: CompileContext) -> None:
        """Lower to the {U3, CZ} basis (or strip structure if pre-transpiled)."""
        config = self.config
        if getattr(config, "transpile_input", True):
            ctx.basis = transpile(
                ctx.circuit,
                native_multiqubit=bool(getattr(config, "native_multiqubit", False)),
            )
        else:
            ctx.basis = ctx.circuit.without({"barrier", "measure"})

    def stage_layout(self, ctx: CompileContext) -> None:
        raise NotImplementedError

    def stage_placement(self, ctx: CompileContext) -> None:
        raise NotImplementedError

    def stage_schedule(self, ctx: CompileContext) -> None:
        raise NotImplementedError

    def stage_finalize(self, ctx: CompileContext) -> None:
        raise NotImplementedError
