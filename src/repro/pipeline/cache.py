"""Content-addressed compilation cache with an optional on-disk backend.

Replaces the seed's ad-hoc module-level result dict: entries are addressed
by :class:`~repro.pipeline.fingerprint.CacheKey` (circuit, spec, and config
fingerprints), shared by the experiments, the CLI, and the batch engine.
When constructed with a directory, every stored result is also persisted as
versioned JSON (via :mod:`repro.core.serialize`), so a second process --
or a second run -- starts warm.
"""

from __future__ import annotations

import json
import os
import typing
from dataclasses import dataclass
from pathlib import Path

from repro.core.serialize import dumps_result, loads_result
from repro.pipeline.fingerprint import CacheKey, cache_key

if typing.TYPE_CHECKING:
    from repro.circuit.circuit import QuantumCircuit
    from repro.core.result import CompilationResult
    from repro.hardware.spec import HardwareSpec

__all__ = [
    "CacheStats",
    "CompilationCache",
    "atomic_write_bytes",
    "atomic_write_text",
]


def atomic_write_bytes(path: Path, data: bytes) -> bool:
    """Write ``data`` to ``path`` atomically (tmp file + rename).

    Concurrent writers (process-pool workers, parallel sweep jobs) each
    write a pid-suffixed temporary file and rename it into place, so
    readers never observe a half-written entry.  Returns False (after
    cleaning up the temporary) when the filesystem refuses the write.
    """
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    try:
        tmp.write_bytes(data)
        tmp.replace(path)
        return True
    except OSError:
        try:
            tmp.unlink()
        except OSError:
            pass
        return False


def atomic_write_text(path: Path, text: str) -> bool:
    """UTF-8 text form of :func:`atomic_write_bytes`."""
    return atomic_write_bytes(path, text.encode("utf-8"))


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    disk_hits: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def reset(self) -> None:
        self.hits = self.misses = self.stores = self.disk_hits = 0


class CompilationCache:
    """Memoize :class:`CompilationResult` objects by content address.

    Args:
        directory: optional on-disk backend; results are written as one
            JSON file per entry and read back on memory misses.
    """

    def __init__(self, directory: str | os.PathLike | None = None) -> None:
        self._memory: dict[CacheKey, "CompilationResult"] = {}
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    # -- raw key interface ----------------------------------------------------

    def get(self, key: CacheKey) -> "CompilationResult | None":
        """The cached result for ``key``, or ``None`` (counts a hit/miss)."""
        result = self._memory.get(key)
        if result is not None:
            self.stats.hits += 1
            return result
        result = self._read_disk(key)
        if result is not None:
            self._memory[key] = result
            self.stats.hits += 1
            self.stats.disk_hits += 1
            return result
        self.stats.misses += 1
        return None

    def put(self, key: CacheKey, result: "CompilationResult") -> None:
        """Store ``result`` under ``key`` (and on disk when configured)."""
        self._memory[key] = result
        self.stats.stores += 1
        self._write_disk(key, result)

    # -- fingerprinting interface ---------------------------------------------

    def key_for(
        self,
        technique: str,
        circuit: "QuantumCircuit",
        spec: "HardwareSpec",
        config: object = None,
    ) -> CacheKey:
        """Content address for one compilation (see :func:`cache_key`)."""
        return cache_key(technique, circuit, spec, config)

    def lookup(
        self,
        technique: str,
        circuit: "QuantumCircuit",
        spec: "HardwareSpec",
        config: object = None,
    ) -> "CompilationResult | None":
        """Fingerprint the inputs and fetch the cached result, if any."""
        return self.get(self.key_for(technique, circuit, spec, config))

    def store(
        self,
        technique: str,
        circuit: "QuantumCircuit",
        spec: "HardwareSpec",
        config: object,
        result: "CompilationResult",
    ) -> CacheKey:
        """Fingerprint the inputs and store ``result``; returns the key."""
        key = self.key_for(technique, circuit, spec, config)
        self.put(key, result)
        return key

    # -- maintenance ----------------------------------------------------------

    def clear(self, *, disk: bool = False) -> None:
        """Drop all in-memory entries (and on-disk files when ``disk``)."""
        self._memory.clear()
        if disk and self.directory is not None:
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                except OSError:
                    pass

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, key: object) -> bool:
        return key in self._memory

    # -- disk backend ---------------------------------------------------------

    def _path(self, key: CacheKey) -> Path | None:
        if self.directory is None:
            return None
        return self.directory / f"{key.technique}-{key.digest()[:40]}.json"

    def _read_disk(self, key: CacheKey) -> "CompilationResult | None":
        path = self._path(key)
        if path is None or not path.exists():
            return None
        try:
            return loads_result(path.read_text(encoding="utf-8"))
        except (OSError, ValueError, KeyError, TypeError, json.JSONDecodeError):
            return None  # treat corrupt entries as misses

    def _write_disk(self, key: CacheKey, result: "CompilationResult") -> None:
        path = self._path(key)
        if path is None:
            return
        atomic_write_text(path, dumps_result(result))
