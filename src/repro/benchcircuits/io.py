"""Benchmark QASM artifact I/O.

The paper distributes its workloads as QASM 2.0 files; this module exports
the regenerated Table III suite the same way (one ``.qasm`` file per
benchmark) and loads them back, so downstream users can consume the suite
without this package and so the test suite can round-trip every workload
through the QASM front-end.
"""

from __future__ import annotations

import os

from repro.benchcircuits.registry import BENCHMARKS
from repro.circuit.circuit import QuantumCircuit
from repro.qasm.exporter import to_qasm
from repro.qasm.parser import load_file

__all__ = [
    "export_benchmark_suite",
    "load_benchmark_file",
    "benchmark_filename",
    "suite_workload_ids",
]


def benchmark_filename(acronym: str) -> str:
    """Canonical file name for one benchmark (``adv_9.qasm`` style)."""
    info = BENCHMARKS.get(acronym.upper())
    if info is None:
        raise KeyError(f"unknown benchmark {acronym!r}")
    return f"{info.acronym.lower()}_{info.num_qubits}.qasm"


def export_benchmark_suite(
    directory: str,
    benchmarks: tuple[str, ...] | None = None,
    include_measure: bool = True,
) -> dict[str, str]:
    """Write each benchmark as a QASM 2.0 file under ``directory``.

    Returns:
        acronym -> written file path.
    """
    os.makedirs(directory, exist_ok=True)
    names = benchmarks or tuple(sorted(BENCHMARKS))
    written: dict[str, str] = {}
    for name in names:
        info = BENCHMARKS[name.upper()]
        circuit = info.builder()
        path = os.path.join(directory, benchmark_filename(name))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(f"// {info.acronym}: {info.description}\n")
            handle.write(f"// {info.num_qubits} qubits (Table III)\n")
            handle.write(to_qasm(circuit, include_measure=include_measure))
        written[info.acronym] = path
    return written


def load_benchmark_file(path: str) -> QuantumCircuit:
    """Load a previously exported benchmark QASM file."""
    circuit = load_file(path)
    base = os.path.basename(path)
    circuit.name = base.rsplit("_", 1)[0].upper() if "_" in base else base
    return circuit


def suite_workload_ids(directory: str) -> dict[str, str]:
    """Map each exported benchmark acronym to its corpus workload id.

    An exported suite directory is itself a valid external corpus
    (:mod:`repro.qasm.corpus`); this resolves, for every benchmark file
    :func:`export_benchmark_suite` wrote under ``directory``, the stable
    content-derived id a corpus scan assigns it -- the names to pass as
    grid benchmarks when sweeping the suite through ``--corpus``.
    """
    from repro.qasm.corpus import workload_id

    ids: dict[str, str] = {}
    for acronym in sorted(BENCHMARKS):
        path = os.path.join(directory, benchmark_filename(acronym))
        if not os.path.exists(path):
            continue
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        stem = os.path.splitext(os.path.basename(path))[0]
        ids[acronym] = workload_id(stem, text)
    return ids
