"""Random-structure benchmarks: ADV (quantum advantage) and QV (quantum volume).

- ADV: Google's quantum-advantage-style random circuit [Arute et al. 2019]:
  alternating layers of random sqrt-gates and patterned two-qubit gates on
  a 3x3 qubit patch (9 qubits).
- QV: IBM's quantum volume model circuit: ``depth`` rounds of a random
  qubit permutation followed by Haar-like SU(4) blocks on pairs, each block
  the standard 3-CX template with random one-qubit dressings (32 qubits).
"""

from __future__ import annotations

import math

from repro.circuit.circuit import QuantumCircuit
from repro.utils.rng import ensure_rng

__all__ = ["quantum_advantage", "quantum_volume"]


def quantum_advantage(side: int = 3, depth: int = 8, seed: int = 3) -> QuantumCircuit:
    """ADV: random-circuit-sampling benchmark on a ``side x side`` patch."""
    n = side * side
    rng = ensure_rng(seed)
    circuit = QuantumCircuit(n, "ADV")

    def qubit(r: int, c: int) -> int:
        return r * side + c

    # The four two-qubit coupler patterns of the supremacy experiment
    # restricted to a square patch: right/down pairings on even/odd offsets.
    patterns: list[list[tuple[int, int]]] = []
    for offset in (0, 1):
        horizontal = [
            (qubit(r, c), qubit(r, c + 1))
            for r in range(side)
            for c in range(offset, side - 1, 2)
        ]
        vertical = [
            (qubit(r, c), qubit(r + 1, c))
            for c in range(side)
            for r in range(offset, side - 1, 2)
        ]
        patterns.append(horizontal)
        patterns.append(vertical)

    sqrt_gates = ("sx", "sxdg", "h")
    for layer in range(depth):
        for q in range(n):
            gate = sqrt_gates[int(rng.integers(0, len(sqrt_gates)))]
            circuit.add(gate, (q,))
        for a, b in patterns[layer % len(patterns)]:
            circuit.cz(a, b)
    for q in range(n):
        circuit.h(q)
    return circuit


def _su4_block(circuit: QuantumCircuit, a: int, b: int, rng) -> None:
    """Haar-like SU(4) on (a, b): the standard 3-CX KAK template shape."""
    for q in (a, b):
        circuit.u3(q, *rng.uniform(0, 2 * math.pi, size=3))
    circuit.cx(a, b)
    circuit.rz(a, float(rng.uniform(0, 2 * math.pi)))
    circuit.ry(b, float(rng.uniform(0, 2 * math.pi)))
    circuit.cx(b, a)
    circuit.ry(b, float(rng.uniform(0, 2 * math.pi)))
    circuit.cx(a, b)
    for q in (a, b):
        circuit.u3(q, *rng.uniform(0, 2 * math.pi, size=3))


def quantum_volume(num_qubits: int = 32, depth: int | None = None, seed: int = 4) -> QuantumCircuit:
    """QV: quantum-volume model circuit (depth defaults to ``num_qubits``)."""
    if depth is None:
        depth = num_qubits
    rng = ensure_rng(seed)
    circuit = QuantumCircuit(num_qubits, "QV")
    for _ in range(depth):
        perm = rng.permutation(num_qubits)
        for i in range(0, num_qubits - 1, 2):
            _su4_block(circuit, int(perm[i]), int(perm[i + 1]), rng)
    return circuit
