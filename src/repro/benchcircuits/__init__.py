"""The 18 evaluation workloads of Table III.

Each generator builds the named algorithm family at the paper's qubit count
(ADD 9, ADV 9, GCM 13, HSB 16, HLF 10, KNN 25, MLT 10, QAOA 10, QEC 17,
QFT 10, QGAN 39, QV 32, SAT 11, SECA 11, SQRT 18, TFIM 128, VQE 28,
WST 27).  The paper reads these from QASMBench QASM files; offline we
generate structurally equivalent circuits (same algorithm, same qubit
count, comparable connectivity and CZ scale) -- see DESIGN.md Section 2.

Use :func:`get_benchmark` by acronym, or :data:`BENCHMARKS` for the table.
VQE is scaled down by default (the paper's 450k-gate instance is available
via ``vqe(reps=...)``).
"""

from repro.benchcircuits.arithmetic import cuccaro_adder, multiplier, grover_sqrt
from repro.benchcircuits.random_like import quantum_advantage, quantum_volume
from repro.benchcircuits.simulation import heisenberg, tfim, gcm
from repro.benchcircuits.algorithms import (
    hidden_linear_function,
    qft,
    grover_sat,
    knn_swap_test,
    w_state,
    repetition_code,
    shor_error_correction,
)
from repro.benchcircuits.ml import qaoa, qgan, vqe
from repro.benchcircuits.registry import BENCHMARKS, get_benchmark, BenchmarkInfo
from repro.benchcircuits.io import (
    export_benchmark_suite,
    load_benchmark_file,
    benchmark_filename,
)
from repro.benchcircuits.extra import (
    ghz_state,
    bernstein_vazirani,
    grover,
    phase_estimation,
    random_clifford_t,
)

__all__ = [
    "cuccaro_adder",
    "multiplier",
    "grover_sqrt",
    "quantum_advantage",
    "quantum_volume",
    "heisenberg",
    "tfim",
    "gcm",
    "hidden_linear_function",
    "qft",
    "grover_sat",
    "knn_swap_test",
    "w_state",
    "repetition_code",
    "shor_error_correction",
    "qaoa",
    "qgan",
    "vqe",
    "BENCHMARKS",
    "get_benchmark",
    "BenchmarkInfo",
    "export_benchmark_suite",
    "load_benchmark_file",
    "benchmark_filename",
    "ghz_state",
    "bernstein_vazirani",
    "grover",
    "phase_estimation",
    "random_clifford_t",
]
