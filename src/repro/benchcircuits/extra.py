"""Additional parameterized circuit families beyond Table III.

These are not part of the paper's evaluation, but a compiler library needs
standard workloads users can sweep: GHZ states, Bernstein-Vazirani, generic
Grover search, quantum phase estimation, and random Clifford+T circuits.
All are exercised by the test suite and usable anywhere a Table III
benchmark is.
"""

from __future__ import annotations

import math

from repro.circuit.circuit import QuantumCircuit
from repro.utils.rng import ensure_rng

__all__ = [
    "ghz_state",
    "bernstein_vazirani",
    "grover",
    "phase_estimation",
    "random_clifford_t",
]


def ghz_state(num_qubits: int = 12) -> QuantumCircuit:
    """GHZ preparation: H then a CX chain."""
    if num_qubits < 2:
        raise ValueError("GHZ needs at least 2 qubits")
    c = QuantumCircuit(num_qubits, "GHZ")
    c.h(0)
    for i in range(num_qubits - 1):
        c.cx(i, i + 1)
    return c


def bernstein_vazirani(secret: str = "1011011") -> QuantumCircuit:
    """Bernstein-Vazirani for a given secret bitstring (plus one ancilla)."""
    if not secret or any(b not in "01" for b in secret):
        raise ValueError("secret must be a non-empty bitstring")
    n = len(secret)
    c = QuantumCircuit(n + 1, "BV")
    ancilla = n
    c.x(ancilla)
    for q in range(n + 1):
        c.h(q)
    for q, bit in enumerate(secret):
        if bit == "1":
            c.cx(q, ancilla)
    for q in range(n):
        c.h(q)
    return c


def _mcz(c: QuantumCircuit, controls: list[int], target: int, ancillas: list[int]) -> None:
    """Multi-controlled Z via a Toffoli ladder into ancillas."""
    if not controls:
        c.z(target)
        return
    if len(controls) == 1:
        c.cz(controls[0], target)
        return
    ladder = ancillas[: len(controls) - 1]
    if len(ladder) < len(controls) - 1:
        raise ValueError("not enough ancillas for the Toffoli ladder")
    c.ccx(controls[0], controls[1], ladder[0])
    for i in range(2, len(controls)):
        c.ccx(controls[i], ladder[i - 2], ladder[i - 1])
    c.cz(ladder[len(controls) - 2], target)
    for i in range(len(controls) - 1, 1, -1):
        c.ccx(controls[i], ladder[i - 2], ladder[i - 1])
    c.ccx(controls[0], controls[1], ladder[0])


def grover(num_vars: int = 5, marked: int = 0, iterations: int | None = None) -> QuantumCircuit:
    """Generic Grover search marking one basis state.

    Register: ``num_vars`` search qubits plus ``num_vars - 1`` ancillas for
    the multi-controlled operations.
    """
    if not (0 <= marked < 2**num_vars):
        raise ValueError(f"marked state {marked} out of range for {num_vars} vars")
    if iterations is None:
        iterations = max(1, int(round(math.pi / 4 * math.sqrt(2**num_vars))))
    n = num_vars + max(num_vars - 1, 0)
    c = QuantumCircuit(n, "GROVER")
    search = list(range(num_vars))
    ancillas = list(range(num_vars, n))
    for q in search:
        c.h(q)
    for _ in range(iterations):
        # Oracle: phase-flip the marked state.
        for q in search:
            if not (marked >> q) & 1:
                c.x(q)
        _mcz(c, search[:-1], search[-1], ancillas)
        for q in search:
            if not (marked >> q) & 1:
                c.x(q)
        # Diffuser.
        for q in search:
            c.h(q)
            c.x(q)
        _mcz(c, search[:-1], search[-1], ancillas)
        for q in search:
            c.x(q)
            c.h(q)
    return c


def phase_estimation(precision_qubits: int = 5, phase: float = 0.3125) -> QuantumCircuit:
    """QPE of a Z-rotation eigenphase onto ``precision_qubits`` counting qubits.

    The unitary is ``U = p(2*pi*phase)`` acting on one eigenstate qubit
    prepared in |1>; controlled powers become controlled-phase gates.
    """
    if not (0.0 <= phase < 1.0):
        raise ValueError("phase must lie in [0, 1)")
    n = precision_qubits + 1
    c = QuantumCircuit(n, "QPE")
    target = precision_qubits
    c.x(target)
    for q in range(precision_qubits):
        c.h(q)
    # Counting qubit q accumulates phase 2^(m-1-q) * 2*pi*phase.
    for q in range(precision_qubits):
        angle = 2.0 * math.pi * phase * (2 ** (precision_qubits - 1 - q))
        c.cp(q, target, angle)
    # Inverse of this package's QFT (bit-reversal swaps first, then the
    # reversed phase ladder), followed by a final un-reversal so counting
    # qubit q holds bit q of round(phase * 2^m) -- verified exact by tests.
    for q in range(precision_qubits // 2):
        c.swap(q, precision_qubits - 1 - q)
    for target_q in range(precision_qubits - 1, -1, -1):
        for control in range(precision_qubits - 1, target_q, -1):
            c.cp(control, target_q, -math.pi / (2 ** (control - target_q)))
        c.h(target_q)
    for q in range(precision_qubits // 2):
        c.swap(q, precision_qubits - 1 - q)
    return c


def random_clifford_t(
    num_qubits: int = 10, depth: int = 20, t_fraction: float = 0.2, seed: int = 0
) -> QuantumCircuit:
    """Random Clifford+T circuit (a standard compiler stress workload)."""
    if not (0.0 <= t_fraction <= 1.0):
        raise ValueError("t_fraction must lie in [0, 1]")
    rng = ensure_rng(seed)
    c = QuantumCircuit(num_qubits, "CLIFFORD_T")
    one_qubit = ("h", "s", "sdg", "x", "z")
    for _ in range(depth):
        for q in range(num_qubits):
            if rng.random() < t_fraction:
                c.t(q)
            else:
                c.add(one_qubit[int(rng.integers(0, len(one_qubit)))], (q,))
        perm = rng.permutation(num_qubits)
        for i in range(0, num_qubits - 1, 2):
            c.cx(int(perm[i]), int(perm[i + 1]))
    return c
