"""Hamiltonian-simulation workloads: HSB, TFIM, GCM.

- HSB: Trotterized time-dependent Heisenberg (XXZ) chain [ArQTiC], 16
  qubits: per step each bond applies RXX, RYY and RZZ plus field RZ terms.
- TFIM: Trotterized transverse-field Ising chain [ArQTiC], 128 qubits:
  per step an RZZ per nearest-neighbor bond and an RX field per qubit --
  the paper's canonical low-connectivity workload (every qubit talks to at
  most two others).
- GCM: generator-coordinate-method kernel [QASMBench]: layered
  pair-rotation ansatz over a 13-qubit register.
"""

from __future__ import annotations

import math

from repro.circuit.circuit import QuantumCircuit
from repro.utils.rng import ensure_rng

__all__ = ["heisenberg", "tfim", "gcm"]


def heisenberg(num_qubits: int = 16, steps: int = 34, seed: int = 5) -> QuantumCircuit:
    """HSB: Trotterized XXZ Heisenberg chain with a time-dependent field."""
    rng = ensure_rng(seed)
    circuit = QuantumCircuit(num_qubits, "HSB")
    for q in range(num_qubits):
        circuit.h(q)
    for step in range(steps):
        jx, jy, jz = rng.uniform(0.2, 1.0, size=3)
        dt = 0.1
        for a in range(num_qubits - 1):
            b = a + 1
            circuit.add("rxx", (a, b), (2 * jx * dt,))
            circuit.add("ryy", (a, b), (2 * jy * dt,))
            circuit.rzz(a, b, 2 * jz * dt)
        # Time-dependent transverse field.
        field = math.sin(0.3 * (step + 1))
        for q in range(num_qubits):
            circuit.rz(q, 2 * field * dt)
    return circuit


def tfim(num_qubits: int = 128, steps: int = 10, seed: int = 6) -> QuantumCircuit:
    """TFIM: Trotterized transverse-field Ising chain (open boundary)."""
    rng = ensure_rng(seed)
    circuit = QuantumCircuit(num_qubits, "TFIM")
    coupling = float(rng.uniform(0.5, 1.5))
    field = float(rng.uniform(0.5, 1.5))
    dt = 0.05
    for q in range(num_qubits):
        circuit.h(q)
    for _ in range(steps):
        for a in range(num_qubits - 1):
            circuit.rzz(a, a + 1, 2 * coupling * dt)
        for q in range(num_qubits):
            circuit.rx(q, 2 * field * dt)
    return circuit


def gcm(num_qubits: int = 13, layers: int = 11, seed: int = 7) -> QuantumCircuit:
    """GCM: generator-coordinate-method pair-rotation kernel.

    Each layer applies parameterized Givens-style pair rotations (two CX
    plus dressings) across a brickwork of qubit pairs, the dominant
    structure of the QASMBench GCM instance.
    """
    rng = ensure_rng(seed)
    circuit = QuantumCircuit(num_qubits, "GCM")
    for q in range(num_qubits):
        circuit.ry(q, float(rng.uniform(0, math.pi)))
    for layer in range(layers):
        offset = layer % 2
        for a in range(offset, num_qubits - 1, 1):
            b = a + 1
            theta = float(rng.uniform(0, math.pi))
            # Givens rotation: CX - CRY - CX shape.
            circuit.cx(b, a)
            circuit.add("cry", (a, b), (theta,))
            circuit.cx(b, a)
            if a + 2 >= num_qubits:
                break
    return circuit
