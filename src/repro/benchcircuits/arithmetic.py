"""Quantum arithmetic workloads: ADD, MLT, SQRT.

- ADD: Cuccaro ripple-carry adder [Cuccaro et al. 2004], two addition
  rounds on 4+4 bits plus carry (9 qubits).
- MLT: shift-and-add multiplier built from controlled Cuccaro blocks
  (10 qubits).
- SQRT: Grover search for a square root [Grover 1998] with an arithmetic
  squaring oracle approximated by Toffoli cascades (18 qubits).
"""

from __future__ import annotations

from repro.circuit.circuit import QuantumCircuit
from repro.utils.rng import ensure_rng

__all__ = ["cuccaro_adder", "multiplier", "grover_sqrt"]


def _maj(circuit: QuantumCircuit, a: int, b: int, c: int) -> None:
    """Cuccaro MAJ block."""
    circuit.cx(c, b)
    circuit.cx(c, a)
    circuit.ccx(a, b, c)


def _uma(circuit: QuantumCircuit, a: int, b: int, c: int) -> None:
    """Cuccaro UMA (2-CNOT variant) block."""
    circuit.ccx(a, b, c)
    circuit.cx(c, a)
    circuit.cx(a, b)


def _ripple_add(circuit: QuantumCircuit, a_bits: list[int], b_bits: list[int], carry: int) -> None:
    """In-place |a>|b> -> |a>|a+b> over equal-width registers."""
    n = len(a_bits)
    if len(b_bits) != n:
        raise ValueError("register widths differ")
    _maj(circuit, carry, b_bits[0], a_bits[0])
    for i in range(1, n):
        _maj(circuit, a_bits[i - 1], b_bits[i], a_bits[i])
    for i in range(n - 1, 0, -1):
        _uma(circuit, a_bits[i - 1], b_bits[i], a_bits[i])
    _uma(circuit, carry, b_bits[0], a_bits[0])


def cuccaro_adder(width: int = 4, rounds: int = 2, seed: int = 0) -> QuantumCircuit:
    """ADD: ripple-carry adder on ``2 * width + 1`` qubits (9 by default).

    Random basis-state preparation (X gates) followed by ``rounds``
    additions, matching the repeated-addition structure of the QASMBench
    instance.
    """
    rng = ensure_rng(seed)
    n = 2 * width + 1
    circuit = QuantumCircuit(n, "ADD")
    a_bits = list(range(width))
    b_bits = list(range(width, 2 * width))
    carry = 2 * width
    for q in range(2 * width):
        if rng.random() < 0.5:
            circuit.x(q)
    for _ in range(rounds):
        _ripple_add(circuit, a_bits, b_bits, carry)
    return circuit


def multiplier(a_width: int = 3, b_width: int = 2, seed: int = 1) -> QuantumCircuit:
    """MLT: shift-and-add multiplier on ``a + b + (a + b)`` qubits (10).

    Computes ``p = a * b`` into the product register via ``b_width``
    controlled partial-product additions built from Toffoli gates, the
    standard textbook construction.
    """
    rng = ensure_rng(seed)
    n = a_width + b_width + (a_width + b_width)
    circuit = QuantumCircuit(n, "MLT")
    a_bits = list(range(a_width))
    b_bits = list(range(a_width, a_width + b_width))
    p_bits = list(range(a_width + b_width, n))
    for q in a_bits + b_bits:
        if rng.random() < 0.5:
            circuit.x(q)
    # For each b bit, conditionally add (a << j) into the product register
    # with carry propagation through Toffolis.
    for j, b in enumerate(b_bits):
        for i, a in enumerate(a_bits):
            target_idx = i + j
            circuit.ccx(b, a, p_bits[target_idx])
            # Ripple the carry of this partial product upward.
            for k in range(target_idx + 1, len(p_bits)):
                circuit.ccx(p_bits[k - 1], a, p_bits[k])
    return circuit


def grover_sqrt(num_qubits: int = 18, iterations: int = 4, seed: int = 2) -> QuantumCircuit:
    """SQRT: Grover search for a square root on 18 qubits.

    Half the register holds the candidate root, half holds ancillas used by
    the squaring-comparison oracle (Toffoli cascades); each Grover iteration
    applies the oracle, uncomputes it, and runs the diffuser.
    """
    rng = ensure_rng(seed)
    circuit = QuantumCircuit(num_qubits, "SQRT")
    half = num_qubits // 2
    search = list(range(half))
    ancilla = list(range(half, num_qubits))
    for q in search:
        circuit.h(q)
    for _ in range(iterations):
        # Oracle: squaring comparison via Toffoli cascade into ancillas,
        # phase kick, then uncompute.
        pairs = [(search[i], search[(i + 1) % half]) for i in range(half)]
        for (a, b), anc in zip(pairs, ancilla):
            circuit.ccx(a, b, anc)
        marked = int(rng.integers(0, len(ancilla)))
        circuit.z(ancilla[marked])
        for (a, b), anc in reversed(list(zip(pairs, ancilla))):
            circuit.ccx(a, b, anc)
        # Diffuser over the search register.
        for q in search:
            circuit.h(q)
            circuit.x(q)
        # Multi-controlled Z via Toffoli ladder into ancillas.
        ladder = ancilla[: half - 2]
        circuit.ccx(search[0], search[1], ladder[0])
        for i in range(2, half - 1):
            circuit.ccx(search[i], ladder[i - 2], ladder[i - 1])
        circuit.h(search[half - 1])
        circuit.cx(ladder[half - 3], search[half - 1])
        circuit.h(search[half - 1])
        for i in range(half - 2, 1, -1):
            circuit.ccx(search[i], ladder[i - 2], ladder[i - 1])
        circuit.ccx(search[0], search[1], ladder[0])
        for q in search:
            circuit.x(q)
            circuit.h(q)
    return circuit
