"""Benchmark registry: Table III as a lookup table."""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from repro.circuit.circuit import QuantumCircuit
from repro.benchcircuits.arithmetic import cuccaro_adder, multiplier, grover_sqrt
from repro.benchcircuits.random_like import quantum_advantage, quantum_volume
from repro.benchcircuits.simulation import heisenberg, tfim, gcm
from repro.benchcircuits.algorithms import (
    hidden_linear_function,
    qft,
    grover_sat,
    knn_swap_test,
    w_state,
    repetition_code,
    shor_error_correction,
)
from repro.benchcircuits.ml import qaoa, qgan, vqe

__all__ = ["BenchmarkInfo", "BENCHMARKS", "get_benchmark"]


@dataclass(frozen=True)
class BenchmarkInfo:
    """One row of Table III."""

    acronym: str
    num_qubits: int
    description: str
    builder: Callable[[], QuantumCircuit]


BENCHMARKS: dict[str, BenchmarkInfo] = {
    info.acronym: info
    for info in [
        BenchmarkInfo("ADD", 9, "Quantum arithmetic algorithm for adding", cuccaro_adder),
        BenchmarkInfo("ADV", 9, "Google's quantum advantage benchmark", quantum_advantage),
        BenchmarkInfo("GCM", 13, "Generator coordinate method", gcm),
        BenchmarkInfo("HSB", 16, "Time-dependent hamiltonian simulation", heisenberg),
        BenchmarkInfo("HLF", 10, "Hidden linear function application", hidden_linear_function),
        BenchmarkInfo("KNN", 25, "Quantum k nearest neighbors algorithm", knn_swap_test),
        BenchmarkInfo("MLT", 10, "Quantum arithmetic algorithm for multiplying", multiplier),
        BenchmarkInfo("QAOA", 10, "Quantum alternating operator ansatz", qaoa),
        BenchmarkInfo("QEC", 17, "Quantum repetition error correction code", repetition_code),
        BenchmarkInfo("QFT", 10, "Quantum Fourier transform", qft),
        BenchmarkInfo("QGAN", 39, "Quantum generative adversarial network", qgan),
        BenchmarkInfo("QV", 32, "IBM's quantum volume benchmark", quantum_volume),
        BenchmarkInfo("SAT", 11, "Quantum code for satisfiability solving", grover_sat),
        BenchmarkInfo("SECA", 11, "Shor's error correction algorithm", shor_error_correction),
        BenchmarkInfo("SQRT", 18, "Quantum code for square root calculation", grover_sqrt),
        BenchmarkInfo("TFIM", 128, "Transverse-field ising model", tfim),
        BenchmarkInfo("VQE", 28, "Variational quantum eigensolver", vqe),
        BenchmarkInfo("WST", 27, "W-State preparation and assessment", w_state),
    ]
}


def get_benchmark(acronym: str) -> QuantumCircuit:
    """Build the named Table III benchmark at its canonical size.

    Names not in the table fall back to the registered external-corpus
    workloads (:mod:`repro.qasm.corpus`), so a corpus id is a first-class
    benchmark name everywhere the registry is consulted.

    Raises:
        KeyError: for names in neither the table nor a registered corpus.
    """
    info = BENCHMARKS.get(acronym.upper())
    if info is not None:
        return info.builder()
    from repro.qasm.corpus import resolve_workload

    try:
        return resolve_workload(acronym)
    except KeyError:
        raise KeyError(
            f"unknown benchmark {acronym!r}; choose from {sorted(BENCHMARKS)} "
            "or register an external corpus (repro.qasm.corpus / --corpus)"
        ) from None
