"""Algorithmic workloads: HLF, QFT, SAT, KNN, WST, QEC, SECA.

- HLF: hidden linear function [Bravyi et al. 2018]: H layer, CZ on the
  edges of a random graph, S on a random subset, H layer (10 qubits).
- QFT: the standard quantum Fourier transform with controlled-phase
  ladder and final reversal swaps (10 qubits).
- SAT: Grover search with a CNF clause oracle built from Toffoli cascades
  (11 qubits: 6 variables + 5 ancillas).
- KNN: quantum k-nearest-neighbors similarity kernel: a swap test between
  two 12-qubit feature registers under one ancilla (25 qubits).
- WST: W-state preparation and verification cascade (27 qubits).
- QEC: distance-9 repetition code syndrome-extraction cycles (17 qubits).
- SECA: Shor's 9-qubit error-correction encode / error / decode-correct
  sequence with two work ancillas (11 qubits).
"""

from __future__ import annotations

import math

from repro.circuit.circuit import QuantumCircuit
from repro.utils.rng import ensure_rng

__all__ = [
    "hidden_linear_function",
    "qft",
    "grover_sat",
    "knn_swap_test",
    "w_state",
    "repetition_code",
    "shor_error_correction",
]


def hidden_linear_function(num_qubits: int = 10, edge_prob: float = 0.55, seed: int = 8) -> QuantumCircuit:
    """HLF: the 2D hidden-linear-function shallow circuit."""
    rng = ensure_rng(seed)
    circuit = QuantumCircuit(num_qubits, "HLF")
    for q in range(num_qubits):
        circuit.h(q)
    for a in range(num_qubits):
        for b in range(a + 1, num_qubits):
            if rng.random() < edge_prob:
                circuit.cz(a, b)
    for q in range(num_qubits):
        if rng.random() < 0.5:
            circuit.s(q)
    for q in range(num_qubits):
        circuit.h(q)
    return circuit


def qft(num_qubits: int = 10, include_swaps: bool = True) -> QuantumCircuit:
    """QFT: controlled-phase ladder plus the final bit-reversal swaps."""
    circuit = QuantumCircuit(num_qubits, "QFT")
    for target in range(num_qubits):
        circuit.h(target)
        for control in range(target + 1, num_qubits):
            angle = math.pi / (2 ** (control - target))
            circuit.cp(control, target, angle)
    if include_swaps:
        for q in range(num_qubits // 2):
            circuit.swap(q, num_qubits - 1 - q)
    return circuit


def grover_sat(
    num_vars: int = 6, num_clauses: int = 5, iterations: int = 2, seed: int = 9
) -> QuantumCircuit:
    """SAT: Grover iterations over a random 3-CNF clause oracle.

    Register: ``num_vars`` search qubits + ``num_vars - 1`` ancillas used
    both for clause evaluation and the diffuser's Toffoli ladder
    (11 qubits for the default 6 variables).
    """
    rng = ensure_rng(seed)
    num_anc = num_vars - 1
    n = num_vars + num_anc
    circuit = QuantumCircuit(n, "SAT")
    search = list(range(num_vars))
    ancilla = list(range(num_vars, n))
    clauses = [
        sorted(rng.choice(num_vars, size=3, replace=False).tolist())
        for _ in range(num_clauses)
    ]
    negations = [rng.random(3) < 0.5 for _ in clauses]

    def oracle() -> None:
        for (vars3, negs), anc in zip(zip(clauses, negations), ancilla):
            for v, neg in zip(vars3, negs):
                if neg:
                    circuit.x(v)
            circuit.ccx(vars3[0], vars3[1], anc)
            circuit.cx(vars3[2], anc)
            for v, neg in zip(vars3, negs):
                if neg:
                    circuit.x(v)
        circuit.z(ancilla[min(len(clauses), len(ancilla)) - 1])
        for (vars3, negs), anc in reversed(list(zip(zip(clauses, negations), ancilla))):
            for v, neg in zip(vars3, negs):
                if neg:
                    circuit.x(v)
            circuit.cx(vars3[2], anc)
            circuit.ccx(vars3[0], vars3[1], anc)
            for v, neg in zip(vars3, negs):
                if neg:
                    circuit.x(v)

    def diffuser() -> None:
        for q in search:
            circuit.h(q)
            circuit.x(q)
        ladder = ancilla[: num_vars - 2]
        circuit.ccx(search[0], search[1], ladder[0])
        for i in range(2, num_vars - 1):
            circuit.ccx(search[i], ladder[i - 2], ladder[i - 1])
        circuit.h(search[-1])
        circuit.cx(ladder[-1], search[-1])
        circuit.h(search[-1])
        for i in range(num_vars - 2, 1, -1):
            circuit.ccx(search[i], ladder[i - 2], ladder[i - 1])
        circuit.ccx(search[0], search[1], ladder[0])
        for q in search:
            circuit.x(q)
            circuit.h(q)

    for q in search:
        circuit.h(q)
    for _ in range(iterations):
        oracle()
        diffuser()
    return circuit


def knn_swap_test(feature_width: int = 12, seed: int = 10) -> QuantumCircuit:
    """KNN: swap-test similarity kernel on ``2 * width + 1`` qubits (25).

    Two feature registers are prepared with shallow rotation/entangling
    encoders, then compared with an ancilla-controlled swap test.
    """
    rng = ensure_rng(seed)
    n = 2 * feature_width + 1
    circuit = QuantumCircuit(n, "KNN")
    ancilla = 0
    reg_a = list(range(1, 1 + feature_width))
    reg_b = list(range(1 + feature_width, n))
    for reg in (reg_a, reg_b):
        for q in reg:
            circuit.ry(q, float(rng.uniform(0, math.pi)))
        for a, b in zip(reg, reg[1:]):
            circuit.cx(a, b)
    circuit.h(ancilla)
    for a, b in zip(reg_a, reg_b):
        circuit.cswap(ancilla, a, b)
    circuit.h(ancilla)
    return circuit


def w_state(num_qubits: int = 27) -> QuantumCircuit:
    """WST: W-state preparation cascade [Fleischhauer & Lukin 2002].

    The standard construction: a chain of controlled rotations distributing
    one excitation across the register, followed by the CX chain.
    """
    circuit = QuantumCircuit(num_qubits, "WST")
    circuit.x(0)
    for k in range(num_qubits - 1):
        remaining = num_qubits - k
        theta = 2.0 * math.acos(math.sqrt(1.0 / remaining))
        # Controlled-RY from qubit k onto k+1 distributing amplitude.
        circuit.add("cry", (k, k + 1), (theta,))
        circuit.cx(k + 1, k)
    return circuit


def repetition_code(distance: int = 9, rounds: int = 2) -> QuantumCircuit:
    """QEC: repetition-code syndrome extraction (17 qubits at distance 9).

    ``distance`` data qubits interleaved with ``distance - 1`` syndrome
    ancillas; each round entangles every ancilla with its two neighbors.
    """
    n = 2 * distance - 1
    circuit = QuantumCircuit(n, "QEC")
    data = list(range(0, n, 2))
    ancilla = list(range(1, n, 2))
    circuit.h(data[0])
    for a, b in zip(data, data[1:]):
        circuit.cx(a, b)
    for _ in range(rounds):
        for anc in ancilla:
            circuit.cx(anc - 1, anc)
            circuit.cx(anc + 1, anc)
        # Ancillas are measured and reset between rounds on hardware; the X
        # stands in for the reset so consecutive rounds do not cancel when
        # the optimizer sees the measurement-free circuit.
        for anc in ancilla:
            circuit.x(anc)
    return circuit


def shor_error_correction(seed: int = 12) -> QuantumCircuit:
    """SECA: Shor 9-qubit code encode, random error, decode and correct.

    Nine code qubits plus two work ancillas (11 qubits total), following
    the standard encode / noisy channel / decode-with-Toffoli-correction
    sequence of the QASMBench SECA instance.
    """
    rng = ensure_rng(seed)
    circuit = QuantumCircuit(11, "SECA")
    blocks = [(0, 1, 2), (3, 4, 5), (6, 7, 8)]
    # Encode: phase-flip protection across block leaders...
    circuit.cx(0, 3)
    circuit.cx(0, 6)
    for leader, _, _ in blocks:
        circuit.h(leader)
    # ...then bit-flip protection within blocks.
    for a, b, c in blocks:
        circuit.cx(a, b)
        circuit.cx(a, c)
    # A random single-qubit error on the channel.
    victim = int(rng.integers(0, 9))
    if rng.random() < 0.5:
        circuit.x(victim)
    else:
        circuit.z(victim)
    # Decode and correct within blocks (majority vote via Toffoli).
    for a, b, c in blocks:
        circuit.cx(a, b)
        circuit.cx(a, c)
        circuit.ccx(b, c, a)
    for leader, _, _ in blocks:
        circuit.h(leader)
    circuit.cx(0, 3)
    circuit.cx(0, 6)
    circuit.ccx(3, 6, 0)
    # Work ancillas verify the logical state (parity checks).
    circuit.cx(0, 9)
    circuit.cx(3, 10)
    circuit.cx(6, 10)
    return circuit
