"""Variational / ML workloads: QAOA, QGAN, VQE.

- QAOA: quantum alternating operator ansatz [Farhi & Harrow 2016] for
  MaxCut on a random graph, depth p = 3 (10 qubits).
- QGAN: quantum GAN [QASMBench]: a layered hardware-efficient generator
  plus a discriminator entangling layer (39 qubits).
- VQE: variational eigensolver with an all-to-all two-body ansatz
  (28 qubits).  The paper's instance has ~450k gates; the default ``reps``
  here is scaled down so the full suite compiles quickly -- pass a larger
  ``reps`` to approach the paper's scale.
"""

from __future__ import annotations

import math

from repro.circuit.circuit import QuantumCircuit
from repro.utils.rng import ensure_rng

__all__ = ["qaoa", "qgan", "vqe"]


def qaoa(
    num_qubits: int = 10, num_edges: int = 27, p: int = 3, seed: int = 13
) -> QuantumCircuit:
    """QAOA: MaxCut ansatz on a random ``num_edges``-edge graph at depth p."""
    rng = ensure_rng(seed)
    all_pairs = [(a, b) for a in range(num_qubits) for b in range(a + 1, num_qubits)]
    idx = rng.choice(len(all_pairs), size=min(num_edges, len(all_pairs)), replace=False)
    edges = [all_pairs[i] for i in sorted(idx.tolist())]
    circuit = QuantumCircuit(num_qubits, "QAOA")
    for q in range(num_qubits):
        circuit.h(q)
    for layer in range(p):
        gamma = float(rng.uniform(0, math.pi))
        beta = float(rng.uniform(0, math.pi))
        for a, b in edges:
            circuit.rzz(a, b, 2 * gamma)
        for q in range(num_qubits):
            circuit.rx(q, 2 * beta)
    return circuit


def qgan(num_qubits: int = 39, layers: int = 10, seed: int = 14) -> QuantumCircuit:
    """QGAN: layered hardware-efficient generator + discriminator check."""
    rng = ensure_rng(seed)
    circuit = QuantumCircuit(num_qubits, "QGAN")
    gen = list(range(num_qubits - 1))
    disc = num_qubits - 1
    for layer in range(layers):
        for q in gen:
            circuit.ry(q, float(rng.uniform(0, math.pi)))
            circuit.rz(q, float(rng.uniform(0, math.pi)))
        offset = layer % 2
        for a in range(offset, len(gen) - 1, 2):
            circuit.cx(gen[a], gen[a + 1])
    # Discriminator: sampled parity checks against the last qubit.
    probes = rng.choice(len(gen), size=min(12, len(gen)), replace=False)
    for q in sorted(probes.tolist()):
        circuit.cx(gen[q], disc)
    circuit.ry(disc, float(rng.uniform(0, math.pi)))
    return circuit


def vqe(num_qubits: int = 28, reps: int = 2, seed: int = 15) -> QuantumCircuit:
    """VQE: all-to-all two-body exchange ansatz (UCCSD-like connectivity).

    Each repetition applies a parameterized ZZ interaction to every qubit
    pair plus single-qubit rotations -- the highest-connectivity workload
    in the suite.  The paper's ~450k-gate instance corresponds to roughly
    ``reps=60``; the default keeps the suite laptop-friendly.
    """
    rng = ensure_rng(seed)
    circuit = QuantumCircuit(num_qubits, "VQE")
    for q in range(num_qubits):
        circuit.ry(q, float(rng.uniform(0, math.pi)))
    for _ in range(reps):
        for a in range(num_qubits):
            for b in range(a + 1, num_qubits):
                circuit.rzz(a, b, float(rng.uniform(0, math.pi / 2)))
        for q in range(num_qubits):
            circuit.ry(q, float(rng.uniform(0, math.pi)))
            circuit.rz(q, float(rng.uniform(0, math.pi)))
    return circuit
