"""Lightweight timing hooks for the compiler's hot loops.

Following the scientific-Python optimization workflow (measure before you
optimize), the scheduler and movement engine record wall-clock time per
phase here.  The collector is explicit and opt-in: with no collector
installed the overhead is one attribute check.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from collections.abc import Iterator

__all__ = ["PhaseTimer", "format_phase_totals"]


def format_phase_totals(totals: dict[str, float]) -> str:
    """Render a bare phase->seconds mapping, slowest first.

    Counterpart of :meth:`PhaseTimer.report` for aggregates that carry
    only totals (e.g. :attr:`SweepReport.phase_totals`, where per-stage
    entry counts were not preserved across the process boundary).
    """
    items = sorted(totals.items(), key=lambda kv: -kv[1])
    lines = [f"{name:<24s} {secs:10.4f} s" for name, secs in items]
    return "\n".join(lines) if lines else "(no phases recorded)"


class PhaseTimer:
    """Accumulate wall-clock seconds per named phase.

    Usage::

        timer = PhaseTimer()
        with timer.phase("placement"):
            ...
        timer.totals()  # {"placement": 0.42}
    """

    def __init__(self) -> None:
        self._totals: dict[str, float] = {}
        self._counts: dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._totals[name] = self._totals.get(name, 0.0) + elapsed
            self._counts[name] = self._counts.get(name, 0) + 1

    def merge(
        self, totals: dict[str, float], counts: dict[str, int] | None = None
    ) -> None:
        """Fold another timer's ``totals()`` (and optionally ``counts()``)
        into this one.

        This is how batch runs aggregate per-stage timings across workers:
        each worker returns its own timer's totals over the process
        boundary, and the coordinator merges them.  Without ``counts``,
        each merged phase counts as one entry.
        """
        for name, secs in totals.items():
            self._totals[name] = self._totals.get(name, 0.0) + secs
            self._counts[name] = self._counts.get(name, 0) + (
                counts[name] if counts else 1
            )

    def totals(self) -> dict[str, float]:
        """Total seconds per phase, in insertion order."""
        return dict(self._totals)

    def counts(self) -> dict[str, int]:
        """Number of times each phase was entered."""
        return dict(self._counts)

    def report(self) -> str:
        """Human-readable per-phase summary, slowest first."""
        items = sorted(self._totals.items(), key=lambda kv: -kv[1])
        lines = [f"{name:<24s} {secs:10.4f} s  (x{self._counts[name]})" for name, secs in items]
        return "\n".join(lines) if lines else "(no phases recorded)"
