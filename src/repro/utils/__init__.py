"""Shared utilities: seeded RNG plumbing, validation, profiling, tables."""

from repro.utils.rng import ensure_rng, derive_rng
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_probability,
    check_in_range,
)
from repro.utils.tables import format_table

__all__ = [
    "ensure_rng",
    "derive_rng",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_range",
    "format_table",
]
