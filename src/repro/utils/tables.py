"""Plain-text table formatting for experiment output.

The experiment runners print the same rows/series the paper reports; this
module renders them as aligned monospace tables without any third-party
dependency.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table"]


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:,.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
