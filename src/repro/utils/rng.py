"""Deterministic random-number plumbing.

All stochastic components of the reproduction (dual annealing restarts, the
layer shuffle in Algorithm 1, random benchmark circuits) draw from
``numpy.random.Generator`` objects created here, so that every experiment is
reproducible from a single integer seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "derive_rng"]


def ensure_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a ``numpy.random.Generator``.

    ``None`` gives a default-seeded generator (seed 0) rather than an
    OS-entropy generator: the reproduction favours determinism, and callers
    who want fresh entropy can pass ``np.random.default_rng()`` explicitly.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng(0)
    return np.random.default_rng(int(seed))


def derive_rng(rng: np.random.Generator, stream: int) -> np.random.Generator:
    """Derive an independent child generator for a named sub-stream.

    Used when one seeded experiment spawns several stochastic stages (e.g.
    placement annealing vs. scheduler shuffling) that must not perturb each
    other's draws when one stage changes.
    """
    child_seed = rng.integers(0, 2**63 - 1, dtype=np.int64)
    return np.random.default_rng([int(child_seed), int(stream)])
