"""Small argument-validation helpers with consistent error messages."""

from __future__ import annotations

import math

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_range",
]


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0`` (and finite); return it for chaining."""
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0`` (and finite); return it for chaining."""
    if not math.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a non-negative finite number, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``; return it for chaining."""
    if not math.isfinite(value) or not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
    return value


def check_in_range(name: str, value: float, lo: float, hi: float) -> float:
    """Require ``lo <= value <= hi``; return it for chaining."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return value
