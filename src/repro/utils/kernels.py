"""Kernel dispatch: vectorized production kernels vs. scalar references.

The compile hot path (movement candidate search, scheduler conflict
checks, fingerprint memoization) ships numpy-vectorized kernels, but the
original scalar implementations are retained as *reference kernels*.  They
serve two purposes:

1. **Benchmark baseline** -- ``benchmarks/test_perf_compile_grid.py``
   compiles the whole default sweep grid once per mode and gates the
   vectorized/reference speedup ratio.
2. **Property-test oracle** -- randomized machine states are run through
   both kernels and the results must match exactly (same counts, flags,
   and chosen destinations), which is what makes the vectorized path safe
   to trust for bit-identical compilation.

Reference mode is process-wide and opt-in: set the environment variable
``REPRO_REFERENCE_KERNELS=1`` before import, or use the
:func:`use_reference_kernels` context manager in tests.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from collections.abc import Iterator

__all__ = ["reference_kernels_active", "use_reference_kernels"]

_reference_active: bool = os.environ.get("REPRO_REFERENCE_KERNELS", "") == "1"


def reference_kernels_active() -> bool:
    """True when the retained scalar reference kernels should run."""
    return _reference_active


@contextmanager
def use_reference_kernels(active: bool = True) -> Iterator[None]:
    """Temporarily force reference (or vectorized) kernels process-wide."""
    global _reference_active
    previous = _reference_active
    _reference_active = bool(active)
    try:
        yield
    finally:
        _reference_active = previous
