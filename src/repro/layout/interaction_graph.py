"""Circuit -> weighted interaction graph (Graphine's input).

Nodes are qubits; the weight of edge (a, b) is the number of two-qubit
interactions between a and b in the circuit.  Qubits with no interactions
still appear as isolated nodes so placement spreads them sensibly.
"""

from __future__ import annotations

import networkx as nx

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.stats import interaction_counts

__all__ = ["build_interaction_graph"]


def build_interaction_graph(circuit: QuantumCircuit) -> nx.Graph:
    """Weighted interaction graph of ``circuit``.

    Returns:
        An undirected ``networkx.Graph`` whose nodes are ``0 ..
        circuit.num_qubits - 1`` and whose edges carry ``weight`` = CZ
        multiplicity.
    """
    graph = nx.Graph()
    graph.add_nodes_from(range(circuit.num_qubits))
    for (a, b), count in interaction_counts(circuit).items():
        graph.add_edge(a, b, weight=count)
    return graph
