"""Circuit -> weighted interaction graph (Graphine's input).

Nodes are qubits; the weight of edge (a, b) is the number of two-qubit
interactions between a and b in the circuit.  Qubits with no interactions
still appear as isolated nodes so placement spreads them sensibly.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.stats import interaction_counts

__all__ = ["build_interaction_graph", "edge_arrays"]


def build_interaction_graph(circuit: QuantumCircuit) -> nx.Graph:
    """Weighted interaction graph of ``circuit``.

    Returns:
        An undirected ``networkx.Graph`` whose nodes are ``0 ..
        circuit.num_qubits - 1`` and whose edges carry ``weight`` = CZ
        multiplicity.
    """
    graph = nx.Graph()
    graph.add_nodes_from(range(circuit.num_qubits))
    for (a, b), count in interaction_counts(circuit).items():
        graph.add_edge(a, b, weight=count)
    return graph


def edge_arrays(graph: nx.Graph) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(a_idx, b_idx, weights)`` arrays of the graph's weighted edges.

    The array form is what the placement objective consumes; extracting it
    once per placement (instead of per objective evaluation) keeps the
    annealer's inner loop free of networkx traversals.
    """
    edges = list(graph.edges(data="weight", default=1))
    a_idx = np.fromiter((e[0] for e in edges), dtype=int, count=len(edges))
    b_idx = np.fromiter((e[1] for e in edges), dtype=int, count=len(edges))
    weights = np.fromiter((e[2] for e in edges), dtype=float, count=len(edges))
    return a_idx, b_idx, weights
