"""Graphine-style layout generation (the paper's Step 1).

Converts a circuit into a weighted interaction graph, places qubits on the
unit square so frequently-interacting pairs sit close (dual annealing, as in
Graphine, with a fast spring-layout mode for tests), and selects the
smallest Rydberg interaction radius that keeps the resulting unit-disk
graph connected (the bottleneck edge of the Euclidean minimum spanning
tree).
"""

from repro.layout.interaction_graph import build_interaction_graph
from repro.layout.placement import place_qubits, placement_cost, PlacementConfig
from repro.layout.radius import minimal_connected_radius
from repro.layout.graphine import GraphineLayout, generate_layout

__all__ = [
    "build_interaction_graph",
    "place_qubits",
    "placement_cost",
    "PlacementConfig",
    "minimal_connected_radius",
    "GraphineLayout",
    "generate_layout",
]
