"""Top-level Graphine layout API (Step 1 of the Parallax pipeline).

Bundles placement and radius selection into a :class:`GraphineLayout`
artifact: unit-square coordinates per qubit plus the chosen interaction
radius, both still in the continuous [0, 1] space.  Step 2 (discretization)
converts these to physical grid sites.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.layout.interaction_graph import build_interaction_graph
from repro.layout.placement import PlacementConfig, place_qubits
from repro.layout.radius import minimal_connected_radius

__all__ = ["GraphineLayout", "generate_layout"]


@dataclass(frozen=True)
class GraphineLayout:
    """Continuous layout produced by the Graphine stage.

    Attributes:
        unit_positions: (n, 2) coordinates in [0, 1]^2, indexed by qubit.
        interaction_radius_unit: Rydberg interaction radius in unit-square
            distance, chosen so the interaction graph is connected.
    """

    unit_positions: np.ndarray
    interaction_radius_unit: float

    @property
    def num_qubits(self) -> int:
        return int(self.unit_positions.shape[0])


def generate_layout(
    circuit: QuantumCircuit, config: PlacementConfig | None = None
) -> GraphineLayout:
    """Run Graphine: place qubits and pick the minimal connected radius.

    Only qubits that actually appear in gates constrain the radius; fully
    idle qubits are still placed (they occupy grid sites) but do not inflate
    the interaction radius.
    """
    graph = build_interaction_graph(circuit)
    positions = place_qubits(graph, config)
    used = sorted(circuit.used_qubits())
    radius_points = positions[used] if used else positions
    radius = minimal_connected_radius(radius_points)
    if radius <= 0.0:
        radius = 0.1  # single-qubit circuits: any positive radius works
    return GraphineLayout(unit_positions=positions, interaction_radius_unit=radius)
