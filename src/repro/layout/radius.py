"""Minimal connected Rydberg interaction radius.

Graphine selects a radius "large enough to ensure that all of the qubits
are reachable from all other qubits".  The smallest such radius for a point
set is the bottleneck (longest) edge of its Euclidean minimum spanning
tree: with that radius the unit-disk graph is connected, and with any
smaller radius it is not.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.hardware.geometry import pairwise_distances

__all__ = ["minimal_connected_radius"]


def minimal_connected_radius(positions: np.ndarray, slack: float = 1.0 + 1e-9) -> float:
    """Smallest radius making the unit-disk graph on ``positions`` connected.

    Args:
        positions: (n, 2) point array.
        slack: multiplicative margin (> 1 guards against floating-point
            equality at the bottleneck edge).

    Returns:
        The bottleneck MST edge length times ``slack``; 0.0 for n < 2.
    """
    pos = np.asarray(positions, dtype=float)
    n = pos.shape[0]
    if n < 2:
        return 0.0
    dist = pairwise_distances(pos)
    complete = nx.Graph()
    iu, ju = np.triu_indices(n, k=1)
    complete.add_weighted_edges_from(
        zip(iu.tolist(), ju.tolist(), dist[iu, ju].tolist())
    )
    mst = nx.minimum_spanning_tree(complete, algorithm="prim")
    bottleneck = max(d["weight"] for _, _, d in mst.edges(data=True))
    return float(bottleneck * slack)
