"""Qubit placement on the unit square.

Two modes:

- ``"dual_annealing"`` -- SciPy's dual annealing over the flattened 2n
  coordinate vector, as Graphine does.  The objective pulls high-weight
  pairs together while a soft repulsion term keeps non-interacting qubits
  from collapsing onto one point.  The annealing budget is an explicit
  parameter so callers control compile time (profiling-friendly, per the
  optimization-workflow guide).
- ``"spring"`` -- a deterministic weighted spring embedding (networkx
  Fruchterman-Reingold seeded from a spectral start), orders of magnitude
  faster and used as the default for tests and large circuits; quality is
  close for the unit-disk connectivity purposes Parallax needs.
- ``"community"`` -- two-level placement: greedy-modularity communities are
  laid out coarsely (spring over the quotient graph), then each community's
  members are spring-embedded inside their cell.  Scales better than global
  embedding on large modular circuits; ablated in the bench suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx
import numpy as np
from scipy.optimize import dual_annealing

from repro.layout.interaction_graph import edge_arrays
from repro.utils.rng import ensure_rng

__all__ = ["PlacementConfig", "PlacementObjective", "place_qubits", "placement_cost"]

_REPULSION_WEIGHT = 0.05
_REPULSION_FLOOR = 1e-3


@dataclass(frozen=True)
class PlacementConfig:
    """Knobs for :func:`place_qubits`.

    Attributes:
        method: ``"dual_annealing"`` (paper-faithful) or ``"spring"`` (fast).
        maxiter: dual-annealing iteration budget.
        seed: RNG seed for reproducibility.
    """

    method: str = "spring"
    maxiter: int = 120
    seed: int = 7

    def __post_init__(self) -> None:
        if self.method not in ("dual_annealing", "spring", "community"):
            raise ValueError(f"unknown placement method {self.method!r}")
        if self.maxiter <= 0:
            raise ValueError("maxiter must be positive")


class PlacementObjective:
    """The placement cost function with its graph-derived arrays hoisted.

    Edge index/weight arrays and the upper-triangle pair indices depend
    only on the graph, so they are extracted once here; each
    :meth:`cost` evaluation (dual annealing calls it thousands of times)
    is then pure batched array math over the candidate coordinates.
    """

    def __init__(self, graph: nx.Graph) -> None:
        self.num_qubits = graph.number_of_nodes()
        self.a_idx, self.b_idx, self.weights = edge_arrays(graph)
        if self.num_qubits >= 2:
            self.iu, self.ju = np.triu_indices(self.num_qubits, k=1)
        else:
            self.iu = self.ju = np.empty(0, dtype=int)

    def cost(self, positions: np.ndarray) -> float:
        """Weighted attraction + soft repulsion (lower is better)."""
        pos = np.asarray(positions, dtype=float).reshape(-1, 2)
        cost = 0.0
        if len(self.a_idx):
            diffs = pos[self.a_idx] - pos[self.b_idx]
            cost += float(np.sum(self.weights * np.hypot(diffs[:, 0], diffs[:, 1])))
        n = pos.shape[0]
        if n >= 2:
            diff = pos[self.iu] - pos[self.ju]
            pairwise = np.maximum(
                np.hypot(diff[:, 0], diff[:, 1]), _REPULSION_FLOOR
            )
            cost += _REPULSION_WEIGHT * float(np.sum(1.0 / pairwise)) / n
        return cost


def placement_cost(positions: np.ndarray, graph: nx.Graph) -> float:
    """Weighted attraction + soft repulsion objective (lower is better).

    Attraction: sum over edges of ``weight * distance``.  Repulsion: a small
    inverse-distance penalty over all pairs, stopping the annealer from
    stacking every qubit at one point.  One-shot convenience wrapper over
    :class:`PlacementObjective` (reuse that directly in optimization loops).
    """
    return PlacementObjective(graph).cost(positions)


def _normalize_to_unit_square(pos: np.ndarray) -> np.ndarray:
    """Affinely rescale positions into [0, 1]^2, preserving aspect ratio."""
    pos = np.asarray(pos, dtype=float)
    lo = pos.min(axis=0)
    span = float(max(pos.max(axis=0).max() - lo.min(), 1e-12))
    spread = (pos - lo) / span
    # Center the shorter axis.
    margin = (1.0 - spread.max(axis=0)) / 2.0
    return np.clip(spread + margin, 0.0, 1.0)


def _spring_placement(graph: nx.Graph, seed: int) -> np.ndarray:
    n = graph.number_of_nodes()
    if n == 1:
        return np.array([[0.5, 0.5]])
    layout = nx.spring_layout(
        graph, weight="weight", seed=seed, iterations=100, dim=2
    )
    pos = np.array([layout[q] for q in range(n)], dtype=float)
    return _normalize_to_unit_square(pos)


def _annealed_placement(graph: nx.Graph, config: PlacementConfig) -> np.ndarray:
    n = graph.number_of_nodes()
    if n == 1:
        return np.array([[0.5, 0.5]])
    rng = ensure_rng(config.seed)
    start = _spring_placement(graph, config.seed).ravel()
    bounds = [(0.0, 1.0)] * (2 * n)
    objective = PlacementObjective(graph)
    result = dual_annealing(
        objective.cost,
        bounds=bounds,
        x0=start,
        maxiter=config.maxiter,
        seed=int(rng.integers(0, 2**31 - 1)),
        no_local_search=n > 40,  # keep large-instance budgets bounded
    )
    return np.clip(result.x.reshape(-1, 2), 0.0, 1.0)


def _community_placement(graph: nx.Graph, seed: int) -> np.ndarray:
    """Two-level placement: communities coarsely, members finely."""
    n = graph.number_of_nodes()
    if n <= 3:
        return _spring_placement(graph, seed)
    communities = list(
        nx.community.greedy_modularity_communities(graph, weight="weight")
    )
    if len(communities) <= 1:
        return _spring_placement(graph, seed)
    # Coarse stage: quotient graph with inter-community weights.
    member_of = {}
    for c_idx, community in enumerate(communities):
        for node in community:
            member_of[node] = c_idx
    quotient = nx.Graph()
    quotient.add_nodes_from(range(len(communities)))
    for a, b, data in graph.edges(data=True):
        ca, cb = member_of[a], member_of[b]
        if ca == cb:
            continue
        w = data.get("weight", 1)
        if quotient.has_edge(ca, cb):
            quotient[ca][cb]["weight"] += w
        else:
            quotient.add_edge(ca, cb, weight=w)
    coarse_layout = nx.spring_layout(quotient, weight="weight", seed=seed, dim=2)
    coarse = _normalize_to_unit_square(
        np.array([coarse_layout[c] for c in range(len(communities))])
    )
    # Fine stage: each community spring-embedded inside a cell whose size
    # scales with its share of the qubits.
    positions = np.zeros((n, 2))
    for c_idx, community in enumerate(communities):
        members = sorted(community)
        sub = graph.subgraph(members)
        cell_half = 0.5 * math.sqrt(len(members) / n)
        if len(members) == 1:
            local = np.zeros((1, 2))
        else:
            relabel = {q: i for i, q in enumerate(members)}
            local_graph = nx.relabel_nodes(sub, relabel)
            layout = nx.spring_layout(
                local_graph, weight="weight", seed=seed + c_idx, dim=2
            )
            local = np.array([layout[i] for i in range(len(members))])
            span = max(np.abs(local).max(), 1e-12)
            local = local / span * cell_half
        for i, q in enumerate(members):
            positions[q] = coarse[c_idx] + local[i]
    return np.clip(_normalize_to_unit_square(positions), 0.0, 1.0)


def place_qubits(graph: nx.Graph, config: PlacementConfig | None = None) -> np.ndarray:
    """Place the graph's qubits on the unit square.

    Returns:
        (n, 2) array of coordinates in [0, 1]^2, indexed by qubit.
    """
    config = config or PlacementConfig()
    n = graph.number_of_nodes()
    if n == 0:
        return np.zeros((0, 2))
    if sorted(graph.nodes) != list(range(n)):
        raise ValueError("graph nodes must be exactly 0..n-1")
    if config.method == "spring":
        return _spring_placement(graph, config.seed)
    if config.method == "community":
        return _community_placement(graph, config.seed)
    return _annealed_placement(graph, config)
