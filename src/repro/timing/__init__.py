"""Timing helpers shared by the compilers and experiment runners."""

from repro.timing.runtime import (
    movement_time_us,
    trap_change_time_us,
    gate_phase_residual_us,
    gate_phase_time_us,
    runtime_breakdown,
    RuntimeBreakdown,
)

__all__ = [
    "movement_time_us",
    "trap_change_time_us",
    "gate_phase_residual_us",
    "gate_phase_time_us",
    "runtime_breakdown",
    "RuntimeBreakdown",
]
