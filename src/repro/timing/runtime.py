"""Runtime decomposition of a compiled circuit.

The scheduler already sums per-layer times into ``runtime_us``; this module
re-derives the breakdown (gate phase vs. movement vs. trap changes) from
the layer records for the analysis in Table IV and the Fig. 12/13
ablations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.result import CompilationResult
from repro.hardware.spec import HardwareSpec
from repro.utils.validation import check_non_negative

__all__ = [
    "movement_time_us",
    "trap_change_time_us",
    "gate_phase_time_us",
    "runtime_breakdown",
    "RuntimeBreakdown",
]


def movement_time_us(result: CompilationResult) -> float:
    """Total time spent transporting atoms (out + return), in microseconds."""
    spec = result.spec
    total = 0.0
    for layer in result.layers:
        total += spec.move_time_us(layer.move_distance_um)
        total += spec.move_time_us(layer.return_distance_um)
    return total


def trap_change_time_us(
    result: CompilationResult, switches_per_resolution: int = 2
) -> float:
    """Total time spent in trap-change resolutions, in microseconds."""
    check_non_negative("switches_per_resolution", switches_per_resolution)
    spec = result.spec
    per_event = (
        switches_per_resolution * spec.trap_switch_time_us
        + 2.0 * spec.move_time_us(spec.grid_pitch_um)
    )
    return result.trap_change_events * per_event


def gate_phase_time_us(result: CompilationResult) -> float:
    """Total time spent in gate pulses (the residual of the layer sums)."""
    residual = result.runtime_us - movement_time_us(result) - trap_change_time_us(result)
    return max(residual, 0.0)


@dataclass(frozen=True)
class RuntimeBreakdown:
    """Where a compiled circuit's runtime goes."""

    gates_us: float
    movement_us: float
    trap_changes_us: float

    @property
    def total_us(self) -> float:
        return self.gates_us + self.movement_us + self.trap_changes_us


def runtime_breakdown(result: CompilationResult) -> RuntimeBreakdown:
    """Decompose ``result.runtime_us`` into gate/movement/trap components."""
    movement = movement_time_us(result)
    traps = trap_change_time_us(result)
    return RuntimeBreakdown(
        gates_us=max(result.runtime_us - movement - traps, 0.0),
        movement_us=movement,
        trap_changes_us=traps,
    )
