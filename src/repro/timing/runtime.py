"""Runtime decomposition of a compiled circuit.

The scheduler already sums per-layer times into ``runtime_us``; this module
re-derives the breakdown (gate phase vs. movement vs. trap changes) from
the layer records for the analysis in Table IV and the Fig. 12/13
ablations.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.core.result import CompilationResult
from repro.hardware.spec import TRAP_SWITCHES_PER_RESOLUTION
from repro.utils.validation import check_non_negative

__all__ = [
    "movement_time_us",
    "trap_change_time_us",
    "gate_phase_residual_us",
    "gate_phase_time_us",
    "runtime_breakdown",
    "RuntimeBreakdown",
]


def movement_time_us(result: CompilationResult) -> float:
    """Total time spent transporting atoms (out + return), in microseconds."""
    spec = result.spec
    total = 0.0
    for layer in result.layers:
        total += spec.move_time_us(layer.move_distance_um)
        total += spec.move_time_us(layer.return_distance_um)
    return total


def trap_change_time_us(
    result: CompilationResult,
    switches_per_resolution: int = TRAP_SWITCHES_PER_RESOLUTION,
) -> float:
    """Total time spent in trap-change resolutions, in microseconds.

    ``switches_per_resolution`` defaults to the shared
    :data:`~repro.hardware.spec.TRAP_SWITCHES_PER_RESOLUTION` constant --
    the same physical assumption
    :class:`~repro.noise.fidelity.NoiseModelConfig` charges errors for, so
    the runtime decomposition and the noise model cannot drift apart.
    """
    check_non_negative("switches_per_resolution", switches_per_resolution)
    spec = result.spec
    per_event = (
        switches_per_resolution * spec.trap_switch_time_us
        + 2.0 * spec.move_time_us(spec.grid_pitch_um)
    )
    return result.trap_change_events * per_event


def gate_phase_residual_us(result: CompilationResult) -> float:
    """Raw gate-phase residual: ``runtime_us`` minus movement and traps.

    May be negative when the layer records are inconsistent with the
    declared total runtime; callers that need the clamped Table IV number
    use :func:`gate_phase_time_us`, which warns on such inconsistency.
    """
    return result.runtime_us - movement_time_us(result) - trap_change_time_us(result)


def _check_residual(residual: float, result: CompilationResult) -> None:
    """Warn when the residual is negative beyond floating-point noise."""
    tolerance = max(1e-9, 1e-9 * abs(result.runtime_us))
    if residual < -tolerance:
        warnings.warn(
            f"runtime decomposition of {result.circuit_name!r} "
            f"({result.technique}) is inconsistent: movement + trap-change "
            f"time exceeds runtime_us by {-residual:.6g} us; the layer sums "
            "disagree with the declared total (gate phase clamped to 0.0)",
            RuntimeWarning,
            stacklevel=3,
        )


def gate_phase_time_us(result: CompilationResult) -> float:
    """Total time spent in gate pulses (the residual of the layer sums).

    Clamped at zero; a genuinely negative residual means the layer records
    are inconsistent with ``runtime_us`` and raises a :class:`RuntimeWarning`
    instead of being silently hidden (the raw value stays available through
    :func:`gate_phase_residual_us`).
    """
    residual = gate_phase_residual_us(result)
    _check_residual(residual, result)
    return max(residual, 0.0)


@dataclass(frozen=True)
class RuntimeBreakdown:
    """Where a compiled circuit's runtime goes.

    ``residual_us`` is the raw (unclamped) gate-phase residual; it equals
    ``gates_us`` whenever the layer records are consistent and goes negative
    exactly when the decomposition warned about inconsistency.
    """

    gates_us: float
    movement_us: float
    trap_changes_us: float
    residual_us: float = 0.0

    @property
    def total_us(self) -> float:
        return self.gates_us + self.movement_us + self.trap_changes_us

    @property
    def is_consistent(self) -> bool:
        """True when no gate-phase time had to be clamped away."""
        return self.residual_us >= -max(1e-9, 1e-9 * abs(self.total_us))


def runtime_breakdown(result: CompilationResult) -> RuntimeBreakdown:
    """Decompose ``result.runtime_us`` into gate/movement/trap components."""
    movement = movement_time_us(result)
    traps = trap_change_time_us(result)
    residual = result.runtime_us - movement - traps
    _check_residual(residual, result)
    return RuntimeBreakdown(
        gates_us=max(residual, 0.0),
        movement_us=movement,
        trap_changes_us=traps,
        residual_us=residual,
    )
