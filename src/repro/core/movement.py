"""Recursive AOD movement engine (the paper's Section II-D move machinery).

``move_into_range(mover, target)`` relocates the mobile ``mover`` atom to a
point within the Rydberg interaction radius of ``target``.  The engine
honors every hardware constraint:

- moving a row/column moves all atoms on it in tandem;
- rows/columns may not cross and keep a minimum line gap -- if a move would
  cross a neighboring AOD line, that line is recursively pushed out of the
  way first;
- the minimum atom separation constraint -- if the move lands an atom within
  the separation distance of another AOD atom, the obstructing atom is
  recursively pushed away; static SLM atoms cannot be pushed, so candidate
  destinations that violate separation against SLM atoms are rejected
  outright (the discretization guarantees corridors exist);
- a hard recursion limit (80, per the paper) converts pathological
  obstruction chains into a :class:`MoveFailure`, which the scheduler
  resolves with a trap change.

On failure the engine rolls the machine back to its pre-move state, so a
failed move has no physical effect.

The candidate search kernels (`_find_destination`, `_push_atom`,
`_separation_violations`) are numpy-vectorized: each ring of candidate
points is scored against all atoms with one broadcast distance matrix
instead of a per-candidate Python scan.  Candidate *ranking* distances
stay scalar ``math.hypot`` on purpose -- candidate rings are symmetric
about the mover-target axis, so exact distance ties are common and the
tie-break must reproduce the scalar kernel's last-ulp behavior bit for
bit.  The original scalar kernels are retained behind
:func:`repro.utils.kernels.reference_kernels_active` as the benchmark
baseline and the property-test oracle.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.machine import MachineState
from repro.hardware.aod import AODOrderError
from repro.utils import kernels

__all__ = ["MovementEngine", "MoveFailure"]

_EPS = 1e-6

#: Destination rings, as fractions of the interaction radius (closest-in
#: ring that clears the separation constraint wins).
_RING_FRACTIONS = (0.9, 0.7, 0.5)
#: Angular offsets of the 16 destination candidates per ring.
_RING_ANGLES = tuple(math.pi * k / 8.0 for k in range(16))
#: Angular offsets of the 8 push-landing candidates.
_PUSH_ANGLES = tuple(math.pi * k / 4.0 for k in range(8))


class MoveFailure(RuntimeError):
    """A move could not be completed within the recursion limit."""


class MovementEngine:
    """Executes constrained AOD moves on a :class:`MachineState`."""

    def __init__(self, state: MachineState, recursion_limit: int = 80) -> None:
        self.state = state
        self.spec = state.spec
        self.limit = int(recursion_limit)
        min_sep = float(state.spec.min_separation_um)
        self._min_sep = min_sep
        self._sep_threshold = min_sep - _EPS
        # Candidate destinations may overhang the SLM grid, but never by
        # more than the separation constraint could justify: the margin is
        # min(grid pitch, min separation).  (The margin used to be the full
        # grid pitch, which on sparse grids -- pitch > separation -- admitted
        # out-of-trap points well beyond any physically useful overhang.)
        w, h = state.spec.extent_um
        margin = min(float(state.spec.grid_pitch_um), min_sep)
        self._x_lo, self._x_hi = -margin, float(w) + margin
        self._y_lo, self._y_hi = -margin, float(h) + margin
        # Cumulative distance moved per AOD line object within the current
        # layer; the layer's movement time is the max over objects.
        self._object_distance: dict[tuple[str, int], float] = {}
        # Chronological (kind, line index, old coord, new coord) records of
        # every committed line move this layer, for replay/verification.
        self._trace: list[tuple[str, int, float, float]] = []
        self._ticks = 0
        # Home-return index arrays, rebuilt whenever AOD membership changes.
        self._home_version = -1
        self._home_qubits: np.ndarray | None = None
        self._home_rows: np.ndarray | None = None
        self._home_cols: np.ndarray | None = None
        self._home_xy: np.ndarray | None = None

    # -- per-layer bookkeeping -------------------------------------------------

    def begin_layer(self) -> None:
        """Reset per-layer movement accounting."""
        self._object_distance.clear()
        self._trace.clear()

    def layer_trace(self) -> tuple[tuple[str, int, float, float], ...]:
        """Committed line moves of the current layer, in order."""
        return tuple(self._trace)

    def max_object_distance(self) -> float:
        """Maximum cumulative distance any AOD row/column moved this layer."""
        return max(self._object_distance.values(), default=0.0)

    # -- public move API ----------------------------------------------------------

    def move_into_range(self, mover: int, target: int) -> float:
        """Move AOD atom ``mover`` within interaction radius of ``target``.

        Returns:
            The maximum cumulative object distance after the move (for
            timing); the state is updated in place.

        Raises:
            MoveFailure: if no destination exists or the recursive
                obstruction clearing exceeds the recursion limit.  The
                machine state is unchanged in that case.
        """
        if not self.state.is_mobile(mover):
            raise ValueError(f"qubit {mover} is not in the AOD; cannot move it")
        self._ticks = 0
        saved = self._snapshot()
        try:
            dest = self._find_destination(mover, target)
            self._place_atom(mover, dest)
        except (MoveFailure, AODOrderError) as exc:
            self._restore(saved)
            raise MoveFailure(str(exc)) from exc
        return self.max_object_distance()

    def return_home_distance(self) -> float:
        """Max distance any AOD line must travel to return to home positions."""
        if kernels.reference_kernels_active():
            return self._return_home_distance_scalar()
        qubits, rows, cols, homes = self._home_arrays()
        if len(qubits) == 0:
            return 0.0
        aod = self.state.aod
        row_travel = np.abs(aod.row_y[rows] - homes[:, 1])
        col_travel = np.abs(aod.col_x[cols] - homes[:, 0])
        return float(max(row_travel.max(), col_travel.max(), 0.0))

    def return_home(self) -> float:
        """Send every AOD atom back to its home position (Fig. 7).

        Returns the max line travel distance (timing).  Home positions were
        validated when first established, so restoring them is always legal.
        """
        if kernels.reference_kernels_active():
            return self._return_home_scalar()
        distance = self.return_home_distance()
        qubits, rows, cols, homes = self._home_arrays()
        if len(qubits):
            aod = self.state.aod
            aod.row_y[rows] = homes[:, 1]
            aod.col_x[cols] = homes[:, 0]
            # Bulk write; atoms[q].position row views stay in sync for free.
            self.state.positions[qubits] = homes
        return distance

    def _home_arrays(self) -> tuple:
        """(qubits, rows, cols, homes) index arrays over the AOD population.

        Cached against ``MachineState.trap_version``: trap transfers are the
        only events that change AOD membership (and homes are assigned in
        the same selection step), so the arrays survive a whole schedule.
        """
        state = self.state
        if self._home_version != state.trap_version:
            aod = state.aod
            qubits: list[int] = []
            rows: list[int] = []
            cols: list[int] = []
            homes: list[np.ndarray] = []
            for qubit in aod.atoms():
                row, col = aod.atom_lines(qubit)
                qubits.append(qubit)
                rows.append(row)
                cols.append(col)
                homes.append(state.atoms[qubit].home)
            self._home_qubits = np.array(qubits, dtype=np.intp)
            self._home_rows = np.array(rows, dtype=np.intp)
            self._home_cols = np.array(cols, dtype=np.intp)
            self._home_xy = (
                np.array(homes, dtype=float) if homes else np.empty((0, 2))
            )
            self._home_version = state.trap_version
        return self._home_qubits, self._home_rows, self._home_cols, self._home_xy

    def _return_home_distance_scalar(self) -> float:
        """Reference kernel: per-atom home-travel scan."""
        best = 0.0
        aod = self.state.aod
        for qubit in aod.atoms():
            atom = self.state.atoms[qubit]
            row, col = aod.atom_lines(qubit)
            best = max(
                best,
                abs(float(aod.row_y[row]) - float(atom.home[1])),
                abs(float(aod.col_x[col]) - float(atom.home[0])),
            )
        return best

    def _return_home_scalar(self) -> float:
        """Reference kernel: per-atom home restore."""
        distance = self._return_home_distance_scalar()
        aod = self.state.aod
        for qubit in aod.atoms():
            atom = self.state.atoms[qubit]
            row, col = aod.atom_lines(qubit)
            aod.row_y[row] = float(atom.home[1])
            aod.col_x[col] = float(atom.home[0])
            self.state.set_position(qubit, atom.home)
        return distance

    # -- snapshots ---------------------------------------------------------------

    def _snapshot(self) -> tuple:
        aod_snap = self.state.aod.snapshot()
        mobile = self.state.mobile_qubits()
        positions = {q: self.state.positions[q].copy() for q in mobile}
        return (
            aod_snap,
            positions,
            dict(self._object_distance),
            list(self._trace),
            self._ticks,
        )

    def _restore(self, saved: tuple) -> None:
        aod_snap, positions, distances, trace, ticks = saved
        self.state.aod.restore(aod_snap)
        for q, pos in positions.items():
            self.state.set_position(q, pos)
        self._object_distance = distances
        self._trace = trace
        self._ticks = ticks

    # -- recursion accounting -----------------------------------------------------

    def _tick(self) -> None:
        self._ticks += 1
        if self._ticks > self.limit:
            raise MoveFailure(
                f"recursive move exceeded the {self.limit}-iteration limit"
            )

    # -- destination search ---------------------------------------------------------

    def _bounds_ok(self, point: np.ndarray) -> bool:
        return (self._x_lo <= point[0] <= self._x_hi) and (
            self._y_lo <= point[1] <= self._y_hi
        )

    def _bounds_mask(self, points: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_bounds_ok` over a ``(k, 2)`` candidate batch."""
        x, y = points[:, 0], points[:, 1]
        return (x >= self._x_lo) & (x <= self._x_hi) & (y >= self._y_lo) & (
            y <= self._y_hi
        )

    def _separation_violations(
        self, point: np.ndarray, ignore: tuple[int, ...]
    ) -> tuple[int, bool]:
        """(# AOD atoms too close, any SLM atom too close) at ``point``."""
        if kernels.reference_kernels_active():
            return self._separation_violations_scalar(point, ignore)
        positions = self.state.positions
        close = (
            np.hypot(positions[:, 0] - point[0], positions[:, 1] - point[1])
            < self._sep_threshold
        )
        for q in ignore:
            close[q] = False
        mobile = self.state.mobile_mask
        return int(np.count_nonzero(close & mobile)), bool(np.any(close & ~mobile))

    def _separation_violations_scalar(
        self, point: np.ndarray, ignore: tuple[int, ...]
    ) -> tuple[int, bool]:
        """Reference kernel: O(N) per-atom Python scan."""
        min_sep = self.spec.min_separation_um
        aod_close = 0
        slm_close = False
        pos = self.state.positions
        for q in range(self.state.num_qubits):
            if q in ignore:
                continue
            d = math.hypot(pos[q][0] - point[0], pos[q][1] - point[1])
            if d < min_sep - _EPS:
                if self.state.is_mobile(q):
                    aod_close += 1
                else:
                    slm_close = True
        return aod_close, slm_close

    def _candidate_metrics(
        self, points: np.ndarray, ignore: tuple[int, ...]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched separation violations for a ``(k, 2)`` candidate array.

        One broadcast candidate-to-atom distance matrix replaces k scans of
        :meth:`_separation_violations`; returns per-candidate
        ``(aod_close counts, slm_close flags)``.
        """
        positions = self.state.positions
        dx = points[:, 0, None] - positions[None, :, 0]
        dy = points[:, 1, None] - positions[None, :, 1]
        close = np.hypot(dx, dy) < self._sep_threshold
        for q in ignore:
            close[:, q] = False
        mobile = self.state.mobile_mask
        aod_close = np.count_nonzero(close & mobile, axis=1)
        slm_close = np.any(close & ~mobile, axis=1)
        return aod_close, slm_close

    def _find_destination(self, mover: int, target: int) -> np.ndarray:
        """Pick a reachable point within the interaction radius of ``target``.

        Prefers points that (a) do not sit on top of SLM atoms (hard
        constraint), (b) displace as few AOD atoms as possible, and
        (c) are closest to the mover's current position.
        """
        if kernels.reference_kernels_active():
            return self._find_destination_scalar(mover, target)
        positions = self.state.positions
        target_pos = positions[target]
        mover_pos = positions[mover]
        tx, ty = target_pos[0], target_pos[1]
        mx, my = mover_pos[0], mover_pos[1]
        radius = self.state.interaction_radius
        base_angle = math.atan2(my - ty, mx - tx)
        min_r = self._min_sep + _EPS
        for fraction in _RING_FRACTIONS:
            r = radius * fraction
            if r < min_r:
                continue
            # Candidate coordinates use scalar math.cos/math.sin so they are
            # bit-identical to the reference kernel's construction.
            pts = np.empty((len(_RING_ANGLES), 2))
            for k, offset in enumerate(_RING_ANGLES):
                angle = base_angle + offset
                pts[k, 0] = tx + r * math.cos(angle)
                pts[k, 1] = ty + r * math.sin(angle)
            in_bounds = self._bounds_mask(pts)
            if not in_bounds.any():
                continue
            idx = np.nonzero(in_bounds)[0]
            aod_close, slm_close = self._candidate_metrics(
                pts[idx], ignore=(mover, target)
            )
            # Ranking ties (symmetric rings!) break by candidate order, so
            # scan in generation order and keep the strictly-best key --
            # identical to a stable sort's first element.
            best_key: tuple | None = None
            best_point: np.ndarray | None = None
            for j, k in enumerate(idx):
                if slm_close[j]:
                    continue
                dist = math.hypot(pts[k, 0] - mx, pts[k, 1] - my)
                key = (int(aod_close[j]), dist)
                if best_key is None or key < best_key:
                    best_key = key
                    best_point = pts[k]
            if best_point is not None:
                return best_point
        raise MoveFailure(
            f"no valid destination near qubit {target} for qubit {mover}"
        )

    def _find_destination_scalar(self, mover: int, target: int) -> np.ndarray:
        """Reference kernel: per-candidate Python loops."""
        target_pos = self.state.positions[target]
        mover_pos = self.state.positions[mover]
        radius = self.state.interaction_radius
        base_angle = math.atan2(
            mover_pos[1] - target_pos[1], mover_pos[0] - target_pos[0]
        )
        candidates: list[tuple[int, float, np.ndarray]] = []
        for fraction in _RING_FRACTIONS:
            r = radius * fraction
            if r < self.spec.min_separation_um + _EPS:
                continue
            for offset in _RING_ANGLES:
                angle = base_angle + offset
                point = target_pos + r * np.array([math.cos(angle), math.sin(angle)])
                if not self._bounds_ok(point):
                    continue
                aod_close, slm_close = self._separation_violations_scalar(
                    point, ignore=(mover, target)
                )
                if slm_close:
                    continue
                dist = math.hypot(*(point - mover_pos))
                candidates.append((aod_close, dist, point))
            if candidates:
                break
        if not candidates:
            raise MoveFailure(
                f"no valid destination near qubit {target} for qubit {mover}"
            )
        candidates.sort(key=lambda c: (c[0], c[1]))
        return candidates[0][2]

    # -- constrained line moves --------------------------------------------------------

    def _place_atom(self, qubit: int, dest: np.ndarray) -> None:
        row, col = self.state.aod.atom_lines(qubit)
        self._set_row(row, float(dest[1]))
        self._set_col(col, float(dest[0]))
        self._resolve_separation(qubit)

    def _set_row(self, index: int, new_y: float) -> None:
        """Move row ``index`` to ``new_y``, clearing blocking rows first.

        Interfering rows are relocated in one ordered "stacking" pass (the
        closest blocker lands one gap beyond ``new_y``, the next one gap
        beyond that, ...), which cannot ping-pong the way pairwise pushes
        can when several lines block at once.
        """
        self._tick()
        aod = self.state.aod
        # Stacking clears the corridor, but the separation resolution it
        # triggers can disturb it again; re-check a few times before the
        # final (validating) move.
        for _ in range(4):
            lo, hi = aod.row_move_bounds(index)
            if new_y < lo:
                self._stack_lines("row", index, new_y, direction=-1)
            elif new_y > hi:
                self._stack_lines("row", index, new_y, direction=+1)
            else:
                break
        delta, moved = aod.move_row(index, new_y)
        self._trace.append(("row", index, float(new_y - delta), float(new_y)))
        self._object_distance[("row", index)] = (
            self._object_distance.get(("row", index), 0.0) + abs(delta)
        )
        for q in moved:
            self.state.set_position_xy(q, self.state.positions[q, 0], new_y)
        for q in moved:
            self._resolve_separation(q)

    def _set_col(self, index: int, new_x: float) -> None:
        """Move column ``index`` to ``new_x``, clearing blocking columns first."""
        self._tick()
        aod = self.state.aod
        for _ in range(4):
            lo, hi = aod.col_move_bounds(index)
            if new_x < lo:
                self._stack_lines("col", index, new_x, direction=-1)
            elif new_x > hi:
                self._stack_lines("col", index, new_x, direction=+1)
            else:
                break
        delta, moved = aod.move_col(index, new_x)
        self._trace.append(("col", index, float(new_x - delta), float(new_x)))
        self._object_distance[("col", index)] = (
            self._object_distance.get(("col", index), 0.0) + abs(delta)
        )
        for q in moved:
            self.state.set_position_xy(q, new_x, self.state.positions[q, 1])
        for q in moved:
            self._resolve_separation(q)

    def _stack_lines(self, kind: str, index: int, bound: float, direction: int) -> None:
        """Relocate every line blocking ``index``'s move to ``bound``.

        With ``direction == -1`` the lines before ``index`` are pushed so
        each sits at least one gap below the line after it, starting one gap
        below ``bound`` (symmetrically above for ``direction == +1``).
        Line order is preserved by construction, so direct coordinate writes
        are safe; tandem atoms are repositioned and separation re-resolved.
        """
        aod = self.state.aod
        gap = aod.line_gap
        coords = aod.row_y if kind == "row" else aod.col_x
        line_atoms = aod.row_atoms if kind == "row" else aod.col_atoms
        if direction == -1:
            indices = range(index - 1, -1, -1)
        else:
            indices = range(index + 1, len(coords))
        moved_atoms: list[int] = []
        limit = bound
        for j in indices:
            value = coords[j]
            if np.isnan(value):
                continue
            target = limit - gap if direction == -1 else limit + gap
            if (direction == -1 and value <= target + 1e-12) or (
                direction == +1 and value >= target - 1e-12
            ):
                break  # ordering invariant: everything further is clear too
            self._tick()
            coords[j] = target
            self._trace.append((kind, j, float(value), float(target)))
            self._object_distance[(kind, j)] = (
                self._object_distance.get((kind, j), 0.0) + abs(value - target)
            )
            for q in sorted(line_atoms[j]):
                if kind == "row":
                    self.state.set_position_xy(q, self.state.positions[q, 0], target)
                else:
                    self.state.set_position_xy(q, target, self.state.positions[q, 1])
                moved_atoms.append(q)
            limit = target
        for q in moved_atoms:
            self._resolve_separation(q)

    # -- separation resolution ------------------------------------------------------------

    def _resolve_separation(self, qubit: int) -> None:
        """Recursively push AOD atoms out of ``qubit``'s separation disk."""
        state = self.state
        here = state.positions[qubit]
        if not kernels.reference_kernels_active():
            # Fast path: one vectorized scan over the mobile atoms.  Almost
            # every call finds no violator; only then run the exact scalar
            # push loop (its single-pass live-position semantics -- pushes
            # can move later candidates in tandem -- must be preserved).
            mobile = state.mobile_mask
            mobile_pos = state.positions[mobile]
            d = np.hypot(mobile_pos[:, 0] - here[0], mobile_pos[:, 1] - here[1])
            allowed_self = 1 if mobile[qubit] else 0
            if np.count_nonzero(d < self._sep_threshold) <= allowed_self:
                return
        min_sep = self._min_sep
        for other in state.mobile_qubits():
            if other == qubit:
                continue
            there = state.positions[other]
            d = math.hypot(there[0] - here[0], there[1] - here[1])
            if d >= min_sep - _EPS:
                continue
            self._push_atom(other, away_from=here)

    def _push_atom(self, qubit: int, away_from: np.ndarray) -> None:
        """Push an obstructing AOD atom out of the separation disk.

        Candidate landings sit at 1.5x the separation distance (a real
        margin, so dense clusters do not re-violate immediately) across
        eight directions; candidates are scored by how many *other* AOD
        atoms they would in turn displace, mirroring the destination search.
        Mutual-push livelock is ultimately bounded by the recursion limit.
        """
        self._tick()
        pos = self.state.positions[qubit]
        direction = pos - away_from
        norm = math.hypot(direction[0], direction[1])
        if norm < _EPS:
            direction = np.array([1.0, 0.0])
        base_angle = math.atan2(direction[1], direction[0])
        if kernels.reference_kernels_active():
            landing = self._push_landing_scalar(qubit, pos, away_from, base_angle)
        else:
            landing = self._push_landing(qubit, pos, away_from, base_angle)
        if landing is None:
            raise MoveFailure(f"cannot push obstructing qubit {qubit} anywhere valid")
        row, col = self.state.aod.atom_lines(qubit)
        self._set_row(row, float(landing[1]))
        self._set_col(col, float(landing[0]))
        self._resolve_separation(qubit)

    def _push_landing(
        self,
        qubit: int,
        pos: np.ndarray,
        away_from: np.ndarray,
        base_angle: float,
    ) -> np.ndarray | None:
        """Vectorized push-landing search (one metrics batch for 8 points)."""
        push_r = self._min_sep * 1.5
        ax, ay = away_from[0], away_from[1]
        pts = np.empty((len(_PUSH_ANGLES), 2))
        for k, offset in enumerate(_PUSH_ANGLES):
            angle = base_angle + offset
            pts[k, 0] = ax + push_r * math.cos(angle)
            pts[k, 1] = ay + push_r * math.sin(angle)
        in_bounds = self._bounds_mask(pts)
        if not in_bounds.any():
            return None
        idx = np.nonzero(in_bounds)[0]
        aod_close, slm_close = self._candidate_metrics(pts[idx], ignore=(qubit,))
        best_key: tuple | None = None
        best_point: np.ndarray | None = None
        for j, k in enumerate(idx):
            if slm_close[j]:
                continue
            travel = math.hypot(pts[k, 0] - pos[0], pts[k, 1] - pos[1])
            key = (int(aod_close[j]), travel)
            if best_key is None or key < best_key:
                best_key = key
                best_point = pts[k]
        return best_point

    def _push_landing_scalar(
        self,
        qubit: int,
        pos: np.ndarray,
        away_from: np.ndarray,
        base_angle: float,
    ) -> np.ndarray | None:
        """Reference kernel: per-candidate push-landing loop."""
        min_sep = self.spec.min_separation_um
        candidates: list[tuple[int, float, np.ndarray]] = []
        for offset in _PUSH_ANGLES:
            angle = base_angle + offset
            landing = away_from + (min_sep * 1.5) * np.array(
                [math.cos(angle), math.sin(angle)]
            )
            if not self._bounds_ok(landing):
                continue
            aod_close, slm_close = self._separation_violations_scalar(
                landing, ignore=(qubit,)
            )
            if slm_close:
                continue
            travel = math.hypot(*(landing - pos))
            candidates.append((aod_close, travel, landing))
        if not candidates:
            return None
        candidates.sort(key=lambda c: (c[0], c[1]))
        return candidates[0][2]
