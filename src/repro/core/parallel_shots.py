"""Logical-shot parallelization (Section II-E).

Parallax replicates the compiled circuit across the atom grid: each replica
has its own atoms but replicas share AOD rows and columns, so one movement
schedule drives every copy simultaneously.  The number of replicas is
limited by three resources:

- grid area: replicas tile the grid by the circuit's site footprint;
- AOD rows: replicas stacked vertically each need their own row band, so
  ``vertical_tiles x rows_used_per_replica <= aod_rows`` (and likewise for
  columns) -- replicas side by side *share* rows, which is what lets an AOD
  row hold many atoms (11 for ADV on the 1,225-qubit machine in Fig. 11).

Total execution time for S logical shots at parallelization factor P is
``ceil(S / P)`` physical shots, each costing the circuit runtime plus a
fixed per-physical-shot overhead (readout and array refresh).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.result import CompilationResult
from repro.hardware.spec import HardwareSpec
from repro.utils.validation import check_positive, check_non_negative

__all__ = [
    "replica_side_sites",
    "parallelization_factor",
    "total_execution_time_us",
    "ShotPlan",
    "plan_parallel_shots",
]

#: Default per-physical-shot overhead (fluorescence readout + array refresh).
DEFAULT_SHOT_OVERHEAD_US = 200.0


def replica_side_sites(num_qubits: int) -> int:
    """Side length (in grid sites) of a dense square replica region.

    Replicas are packed densely: a q-qubit circuit occupies a
    ``ceil(sqrt(q))``-per-side square of sites.  This reproduces the paper's
    Fig. 11 maxima exactly (ADV-9 -> 3x3 regions -> 11x11 = 121 copies on
    the 35x35 machine; KNN-25 -> 49; QV-32 -> 25; SECA-11 -> 64;
    SQRT-18 -> 49; WST-27 -> 25).
    """
    if num_qubits <= 0:
        return 1
    return math.isqrt(num_qubits - 1) + 1


def parallelization_factor(
    result: CompilationResult,
    spec: HardwareSpec | None = None,
    constrain_aod: bool = False,
) -> int:
    """Maximum replicas of the compiled circuit the machine can host.

    Replicas tile the grid by a dense square footprint and share AOD rows,
    columns, and the movement schedule (Section II-E).  Per the paper's ADV
    example (121 copies on 20 AOD rows, 11 atoms per row), shared AOD lines
    are not a binding resource by default; pass ``constrain_aod=True`` for
    the stricter reading where vertically stacked replicas need disjoint
    row bands.

    Args:
        result: a compiled circuit (provides qubit count and AOD usage).
        spec: machine to replicate on (defaults to the result's spec, but
            Fig. 11 parallelizes on the large Atom machine).
        constrain_aod: also bound tiling by AOD rows/columns per band.
    """
    spec = spec or result.spec
    side = replica_side_sites(result.num_qubits)
    tiles_y = spec.grid_rows // side
    tiles_x = spec.grid_cols // side
    if constrain_aod:
        aod_used = max(len(result.aod_qubits), 1)
        tiles_y = min(tiles_y, spec.aod_rows // aod_used)
        tiles_x = min(tiles_x, spec.aod_cols // aod_used)
    atom_cap = spec.num_sites // max(result.num_qubits, 1)
    return max(1, min(tiles_y * tiles_x, atom_cap))


def total_execution_time_us(
    result: CompilationResult,
    num_shots: int = 8000,
    factor: int | None = None,
    spec: HardwareSpec | None = None,
    shot_overhead_us: float = DEFAULT_SHOT_OVERHEAD_US,
) -> float:
    """Wall-clock time to collect ``num_shots`` logical shots.

    Args:
        result: compiled circuit.
        num_shots: logical shots needed (the paper uses 8,000).
        factor: parallelization factor; computed from the machine if None.
        spec: machine to run on (defaults to the result's spec).
        shot_overhead_us: fixed per-physical-shot cost.
    """
    check_positive("num_shots", num_shots)
    check_non_negative("shot_overhead_us", shot_overhead_us)
    if factor is None:
        factor = parallelization_factor(result, spec)
    check_positive("factor", factor)
    physical_shots = math.ceil(num_shots / factor)
    return physical_shots * (result.runtime_us + shot_overhead_us)


@dataclass(frozen=True)
class ShotPlan:
    """A replica tiling plan with its execution-time estimate."""

    factor: int
    physical_shots: int
    total_time_us: float

    @property
    def total_time_s(self) -> float:
        return self.total_time_us / 1e6


def plan_parallel_shots(
    result: CompilationResult,
    num_shots: int = 8000,
    spec: HardwareSpec | None = None,
    factors: list[int] | None = None,
    shot_overhead_us: float = DEFAULT_SHOT_OVERHEAD_US,
) -> list[ShotPlan]:
    """Execution-time curve across parallelization factors (Fig. 11).

    Args:
        factors: candidate factors; defaults to all square counts up to the
            machine maximum (1, 4, 9, ...), matching the paper's x-axes.

    Returns:
        One :class:`ShotPlan` per feasible factor, ascending.
    """
    spec = spec or result.spec
    max_factor = parallelization_factor(result, spec)
    if factors is None:
        factors = sorted({k * k for k in range(1, int(math.isqrt(max_factor)) + 1)} | {1})
    plans = []
    for factor in factors:
        if factor < 1 or factor > max_factor:
            continue
        physical = math.ceil(num_shots / factor)
        total = physical * (result.runtime_us + shot_overhead_us)
        plans.append(ShotPlan(factor=factor, physical_shots=physical, total_time_us=total))
    return plans
