"""The end-to-end Parallax compiler (Fig. 4's four steps).

Expressed as the five canonical stages of the shared
:class:`~repro.pipeline.stage.PassPipeline` (the paper's Step 1/2 map to the
``layout``/``placement`` stages, Step 3 to ``placement``'s AOD selection and
Step 4 to ``schedule``), and registered with the technique registry under
``"parallax"``.

Usage::

    from repro import ParallaxCompiler, HardwareSpec
    result = ParallaxCompiler(HardwareSpec.quera_aquila()).compile(circuit)
    result.num_cz, result.runtime_us
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.aod_selection import select_aod_qubits
from repro.core.machine import MachineState
from repro.core.result import CompilationResult
from repro.core.scheduler import GateScheduler, SchedulerConfig
from repro.layout.graphine import generate_layout
from repro.layout.placement import PlacementConfig
from repro.pipeline.compiler_base import StagedCompiler
from repro.pipeline.registry import register_compiler
from repro.pipeline.stage import CompileContext

__all__ = ["ParallaxCompiler", "ParallaxConfig"]


@dataclass(frozen=True)
class ParallaxConfig:
    """Top-level compiler configuration.

    Attributes:
        placement: Graphine placement knobs (Step 1).
        scheduler: Algorithm 1 knobs (Step 4).
        transpile_input: transpile the input into the {u3, cz} basis first
            (disable when the caller already transpiled, e.g. to share one
            transpiled circuit among all techniques as the paper does).
        max_aod_atoms: optional cap on mobile atoms (None = AOD row count).
        native_multiqubit: keep three-qubit gates as native CCZ pulses
            (GEYSER-style composition; only applies when transpiling).
    """

    placement: PlacementConfig = field(default_factory=PlacementConfig)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    transpile_input: bool = True
    max_aod_atoms: int | None = None
    native_multiqubit: bool = False


@register_compiler()
class ParallaxCompiler(StagedCompiler):
    """Compile circuits for a neutral-atom machine with zero SWAPs."""

    technique = "parallax"
    uses_layout = True
    config_type = ParallaxConfig

    def stage_layout(self, ctx: CompileContext) -> None:
        """Step 1: Graphine layout (reused when the caller provides one)."""
        if ctx.layout is None:
            ctx.layout = generate_layout(ctx.basis, self.config.placement)
        if ctx.layout.num_qubits != ctx.basis.num_qubits:
            raise ValueError(
                f"layout has {ctx.layout.num_qubits} qubits but circuit has "
                f"{ctx.basis.num_qubits}"
            )

    def stage_placement(self, ctx: CompileContext) -> None:
        """Steps 2-3: discretize onto the grid and pick the mobile atoms."""
        state = MachineState(self.spec, ctx.layout)
        ctx.artifacts["machine_state"] = state
        ctx.artifacts["aod_selection"] = select_aod_qubits(
            ctx.basis, state, self.config.max_aod_atoms
        )
        ctx.sites = state.sites
        ctx.interaction_radius_um = state.interaction_radius
        ctx.blockade_radius_um = state.blockade_radius

    def stage_schedule(self, ctx: CompileContext) -> None:
        """Step 4: Algorithm 1 gate scheduling with the movement engine."""
        state: MachineState = ctx.artifacts["machine_state"]
        scheduler = GateScheduler(ctx.basis, state, self.config.scheduler)
        ctx.artifacts["stats"] = scheduler.run()

    def stage_finalize(self, ctx: CompileContext) -> None:
        stats = ctx.artifacts["stats"]
        selection = ctx.artifacts["aod_selection"]
        counts = ctx.basis.count_ops()
        ctx.result = CompilationResult(
            technique=self.technique,
            circuit_name=ctx.circuit.name,
            num_qubits=ctx.basis.num_qubits,
            spec=self.spec,
            layers=stats.layers,
            num_cz=counts.get("cz", 0),
            num_u3=counts.get("u3", 0),
            num_ccz=counts.get("ccz", 0),
            num_swaps=0,
            trap_change_events=stats.trap_changes,
            both_slm_events=stats.both_slm_trap_changes,
            failed_move_events=stats.failed_moves,
            num_moves=stats.num_moves,
            runtime_us=stats.total_time_us,
            interaction_radius_um=ctx.interaction_radius_um,
            blockade_radius_um=ctx.blockade_radius_um,
            aod_qubits=selection.qubits,
            footprint_sites=ctx.footprint(),
        )
