"""The end-to-end Parallax compiler (Fig. 4's four steps).

Usage::

    from repro import ParallaxCompiler, HardwareSpec
    result = ParallaxCompiler(HardwareSpec.quera_aquila()).compile(circuit)
    result.num_cz, result.runtime_us
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.circuit import QuantumCircuit
from repro.core.aod_selection import select_aod_qubits
from repro.core.machine import MachineState
from repro.core.result import CompilationResult
from repro.core.scheduler import GateScheduler, SchedulerConfig
from repro.hardware.spec import HardwareSpec
from repro.layout.graphine import GraphineLayout, generate_layout
from repro.layout.placement import PlacementConfig
from repro.transpile.pipeline import transpile

__all__ = ["ParallaxCompiler", "ParallaxConfig"]


@dataclass(frozen=True)
class ParallaxConfig:
    """Top-level compiler configuration.

    Attributes:
        placement: Graphine placement knobs (Step 1).
        scheduler: Algorithm 1 knobs (Step 4).
        transpile_input: transpile the input into the {u3, cz} basis first
            (disable when the caller already transpiled, e.g. to share one
            transpiled circuit among all techniques as the paper does).
        max_aod_atoms: optional cap on mobile atoms (None = AOD row count).
        native_multiqubit: keep three-qubit gates as native CCZ pulses
            (GEYSER-style composition; only applies when transpiling).
    """

    placement: PlacementConfig = field(default_factory=PlacementConfig)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    transpile_input: bool = True
    max_aod_atoms: int | None = None
    native_multiqubit: bool = False


class ParallaxCompiler:
    """Compile circuits for a neutral-atom machine with zero SWAPs."""

    technique = "parallax"

    def __init__(self, spec: HardwareSpec, config: ParallaxConfig | None = None) -> None:
        self.spec = spec
        self.config = config or ParallaxConfig()

    def compile(
        self,
        circuit: QuantumCircuit,
        layout: GraphineLayout | None = None,
    ) -> CompilationResult:
        """Compile ``circuit``; optionally reuse a precomputed layout.

        The ``layout`` parameter mirrors the paper's command-line option to
        load pre-obtained Graphine results and skip the annealing stage.
        """
        basis = (
            transpile(circuit, native_multiqubit=self.config.native_multiqubit)
            if self.config.transpile_input
            else circuit.without({"barrier", "measure"})
        )
        if layout is None:
            layout = generate_layout(basis, self.config.placement)
        if layout.num_qubits != basis.num_qubits:
            raise ValueError(
                f"layout has {layout.num_qubits} qubits but circuit has "
                f"{basis.num_qubits}"
            )
        state = MachineState(self.spec, layout)
        selection = select_aod_qubits(basis, state, self.config.max_aod_atoms)
        scheduler = GateScheduler(basis, state, self.config.scheduler)
        stats = scheduler.run()

        counts = basis.count_ops()
        rows = [r for (r, _) in state.sites]
        cols = [c for (_, c) in state.sites]
        footprint = (
            (max(rows) - min(rows) + 1) if rows else 0,
            (max(cols) - min(cols) + 1) if cols else 0,
        )
        return CompilationResult(
            technique=self.technique,
            circuit_name=circuit.name,
            num_qubits=basis.num_qubits,
            spec=self.spec,
            layers=stats.layers,
            num_cz=counts.get("cz", 0),
            num_u3=counts.get("u3", 0),
            num_ccz=counts.get("ccz", 0),
            num_swaps=0,
            trap_change_events=stats.trap_changes,
            both_slm_events=stats.both_slm_trap_changes,
            failed_move_events=stats.failed_moves,
            num_moves=stats.num_moves,
            runtime_us=stats.total_time_us,
            interaction_radius_um=state.interaction_radius,
            blockade_radius_um=state.blockade_radius,
            aod_qubits=selection.qubits,
            footprint_sites=footprint,
        )
