"""Step 3: selection of the mobile (AOD) qubits.

The paper weighs each qubit by two criteria:

1. the number of its interactions with atoms **outside** the interaction
   radius (weight 0.99) -- those interactions will need a move, a trap
   change, or SWAPs, and a move is only possible if one endpoint is mobile;
2. the serialization its blockade radius causes to other two-qubit gates in
   the same layer (weight 0.01) -- a tie-breaker.

The highest-weight qubits go to the AOD, one per row/column pair, placed as
close to their initial locations as possible.  Because two selected atoms
may share a row or column coordinate (they came from a grid), shared
coordinates are resolved by recursively nudging rows up / columns right
until all line coordinates are distinct.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.dag import circuit_layers
from repro.core.machine import MachineState
from repro.utils import kernels

__all__ = ["AODSelection", "select_aod_qubits", "qubit_weights", "resolve_shared_coords"]

OUT_OF_RANGE_WEIGHT = 0.99
INTERFERENCE_WEIGHT = 0.01


def _out_of_range_counts(circuit: QuantumCircuit, state: MachineState) -> np.ndarray:
    """Per-qubit count of two-qubit interactions beyond the interaction radius.

    All gate operand pairs are measured in one batched distance computation;
    ``MachineState.distance`` is itself ``np.hypot``, so the batch compares
    bit-identically to the retained per-gate reference scan.
    """
    counts = np.zeros(state.num_qubits, dtype=float)
    radius = state.interaction_radius
    if kernels.reference_kernels_active():
        for gate in circuit.gates:
            if gate.num_qubits != 2:
                continue
            a, b = gate.qubits
            if state.distance(a, b) > radius:
                counts[a] += 1.0
                counts[b] += 1.0
        return counts
    pairs = np.array(
        [gate.qubits for gate in circuit.gates if gate.num_qubits == 2],
        dtype=np.intp,
    ).reshape(-1, 2)
    if len(pairs) == 0:
        return counts
    delta = state.positions[pairs[:, 0]] - state.positions[pairs[:, 1]]
    far = np.hypot(delta[:, 0], delta[:, 1]) > radius
    np.add.at(counts, pairs[far].ravel(), 1.0)
    return counts


def _interference_counts(circuit: QuantumCircuit, state: MachineState) -> np.ndarray:
    """Per-qubit count of same-layer blockade conflicts its gates cause.

    For each ASAP layer, every pair of two-qubit gates whose atoms come
    within the blockade radius of each other adds one conflict to each
    involved qubit.  This is the "degree of serialization" tie-breaker.
    Per layer, one broadcast operand-to-operand distance tensor replaces
    the O(gates^2 x 4) Python pair scans.
    """
    counts = np.zeros(state.num_qubits, dtype=float)
    blockade = state.blockade_radius
    reference = kernels.reference_kernels_active()
    for layer in circuit_layers(circuit):
        two_qubit = [g for g in layer if g.num_qubits == 2]
        if len(two_qubit) < 2:
            continue
        if reference:
            for i in range(len(two_qubit)):
                for j in range(i + 1, len(two_qubit)):
                    ga, gb = two_qubit[i], two_qubit[j]
                    conflict = any(
                        state.distance(qa, qb) <= blockade
                        for qa in ga.qubits
                        for qb in gb.qubits
                    )
                    if conflict:
                        for q in (*ga.qubits, *gb.qubits):
                            counts[q] += 1.0
            continue
        operands = np.array([g.qubits for g in two_qubit], dtype=np.intp)
        px = state.positions[operands, 0]
        py = state.positions[operands, 1]
        dx = px[:, :, None, None] - px[None, None, :, :]
        dy = py[:, :, None, None] - py[None, None, :, :]
        conflict = (np.hypot(dx, dy) <= blockade).any(axis=(1, 3))
        iu, ju = np.triu_indices(len(two_qubit), k=1)
        hit = conflict[iu, ju]
        conflicting = np.concatenate(
            [operands[iu[hit]].ravel(), operands[ju[hit]].ravel()]
        )
        np.add.at(counts, conflicting, 1.0)
    return counts


def qubit_weights(circuit: QuantumCircuit, state: MachineState) -> np.ndarray:
    """Combined selection weight per qubit (paper's 0.99 / 0.01 split).

    Each criterion is normalized to [0, 1] by its maximum so the 0.99/0.01
    weighting acts as a strict priority with tie-breaking, as described.
    """
    out_of_range = _out_of_range_counts(circuit, state)
    interference = _interference_counts(circuit, state)
    if out_of_range.max() > 0:
        out_of_range = out_of_range / out_of_range.max()
    if interference.max() > 0:
        interference = interference / interference.max()
    return OUT_OF_RANGE_WEIGHT * out_of_range + INTERFERENCE_WEIGHT * interference


def resolve_shared_coords(coords: np.ndarray, gap: float) -> np.ndarray:
    """Make coordinates strictly increasing-with-gap by nudging upward.

    Implements the paper's recursive rule: if a row/column shares a position
    with another, move it a small amount in a fixed direction (rows up,
    columns right) and recurse until no two coincide.  Input order is
    preserved; only values change.
    """
    coords = np.asarray(coords, dtype=float).copy()
    order = np.argsort(coords, kind="stable")
    previous = -np.inf
    for idx in order:
        if coords[idx] < previous + gap:
            coords[idx] = previous + gap
        previous = coords[idx]
    return coords


@dataclass(frozen=True)
class AODSelection:
    """Outcome of Step 3.

    Attributes:
        qubits: selected mobile qubits, highest weight first.
        weights: the full per-qubit weight vector (for diagnostics/tests).
    """

    qubits: tuple[int, ...]
    weights: np.ndarray


def select_aod_qubits(
    circuit: QuantumCircuit, state: MachineState, max_atoms: int | None = None
) -> AODSelection:
    """Pick mobile qubits and transfer them into the AOD.

    Only qubits with positive weight are eligible (a qubit that is never
    out of range and never interferes gains nothing from mobility), capped
    at one atom per AOD row/column pair.

    Side effects: the selected atoms are released from the SLM and assigned
    AOD rows/columns ordered by their y (rows) and x (columns) coordinates,
    with shared coordinates resolved by nudging; atom positions move by at
    most a few line-gaps, and home positions are updated to the (possibly
    nudged) mobile positions.
    """
    capacity = min(state.aod.num_rows, state.aod.num_cols)
    if max_atoms is not None:
        capacity = min(capacity, max_atoms)
    weights = qubit_weights(circuit, state)
    eligible = [q for q in range(state.num_qubits) if weights[q] > 0.0]
    eligible.sort(key=lambda q: (-weights[q], q))
    chosen = eligible[:capacity]
    if not chosen:
        return AODSelection(qubits=(), weights=weights)

    # Order rows bottom-to-top and columns left-to-right by current atom
    # position so AOD line indices respect the no-crossing invariant.
    ys = {q: float(state.positions[q][1]) for q in chosen}
    xs = {q: float(state.positions[q][0]) for q in chosen}
    row_order = sorted(chosen, key=lambda q: (ys[q], q))
    col_order = sorted(chosen, key=lambda q: (xs[q], q))
    gap = state.aod.line_gap
    new_ys = resolve_shared_coords(np.array([ys[q] for q in row_order]), gap)
    new_xs = resolve_shared_coords(np.array([xs[q] for q in col_order]), gap)
    row_index = {q: i for i, q in enumerate(row_order)}
    col_index = {q: i for i, q in enumerate(col_order)}

    for q in chosen:
        y = float(new_ys[row_index[q]])
        x = float(new_xs[col_index[q]])
        state.set_position(q, np.array([x, y]))
        state.transfer_to_aod(q, row_index[q], col_index[q])
        # The nudged spot becomes the atom's home (Fig. 7 home configuration).
        state.atoms[q].home = state.positions[q].copy()

    ranked = tuple(sorted(chosen, key=lambda q: (-weights[q], q)))
    return AODSelection(qubits=ranked, weights=weights)
