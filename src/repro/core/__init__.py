"""The Parallax compiler core.

Implements the paper's four-step pipeline on top of the hardware model:

1. :mod:`repro.layout` generates the continuous Graphine layout.
2. :class:`~repro.core.machine.MachineState` discretizes it onto the grid.
3. :mod:`repro.core.aod_selection` picks the mobile atoms.
4. :class:`~repro.core.scheduler.GateScheduler` runs Algorithm 1 with the
   recursive :class:`~repro.core.movement.MovementEngine`.

:class:`~repro.core.compiler.ParallaxCompiler` ties the steps together, and
:mod:`repro.core.parallel_shots` implements Section II-E's logical-shot
parallelization.
"""

from repro.core.machine import MachineState
from repro.core.aod_selection import select_aod_qubits, AODSelection
from repro.core.movement import MovementEngine, MoveFailure
from repro.core.scheduler import GateScheduler, SchedulerConfig
from repro.core.result import CompiledLayer, CompilationResult
from repro.core.compiler import ParallaxCompiler, ParallaxConfig
from repro.core.serialize import (
    result_to_dict,
    result_from_dict,
    dumps_result,
    loads_result,
)
from repro.core.parallel_shots import (
    parallelization_factor,
    total_execution_time_us,
    ShotPlan,
    plan_parallel_shots,
)

__all__ = [
    "MachineState",
    "select_aod_qubits",
    "AODSelection",
    "MovementEngine",
    "MoveFailure",
    "GateScheduler",
    "SchedulerConfig",
    "CompiledLayer",
    "CompilationResult",
    "ParallaxCompiler",
    "ParallaxConfig",
    "parallelization_factor",
    "total_execution_time_us",
    "ShotPlan",
    "plan_parallel_shots",
    "result_to_dict",
    "result_from_dict",
    "dumps_result",
    "loads_result",
]
