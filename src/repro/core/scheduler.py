"""Algorithm 1: gate and movement scheduling.

The scheduler repeatedly builds a parallel layer (one gate per qubit whose
dependencies are satisfied), resolves out-of-range CZ gates with at most one
AOD move-into-range per layer (ejecting the rest back to the unexecuted
list), shuffles the layer to avoid starvation, serializes Rydberg-blockade
conflicts by ejection, executes the layer, and returns the AOD atoms to
their home positions.

Trap-change fallbacks (both atoms static, or a failed recursive move) are
accounted for in time and error but leave atom positions untouched, exactly
like the paper's "switch in, move, switch back" sequence whose net
geometric effect is nil.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.dag import DependencyDAG
from repro.core.machine import MachineState
from repro.core.movement import MovementEngine, MoveFailure
from repro.core.result import CompiledLayer
from repro.utils import kernels
from repro.utils.rng import ensure_rng

__all__ = ["GateScheduler", "SchedulerConfig", "SchedulerStats"]


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs of Algorithm 1.

    Attributes:
        return_home: return AOD atoms to home positions after each layer
            (the paper's default; Fig. 12 ablates it).
        shuffle: shuffle the layer before the blockade pass (line 20).
        seed: RNG seed for the shuffle.
        recursion_limit: recursive-move cap (80 per the paper).
        trap_switches_per_resolution: trap switches charged per trap-change
            resolution (2: into the AOD and back to the SLM).
        max_layers: safety valve against scheduling bugs; compilation fails
            loudly rather than looping forever.
    """

    return_home: bool = True
    shuffle: bool = True
    seed: int = 11
    recursion_limit: int = 80
    trap_switches_per_resolution: int = 2
    max_layers: int = 2_000_000


@dataclass
class SchedulerStats:
    """Counters accumulated while scheduling."""

    num_moves: int = 0
    failed_moves: int = 0
    trap_changes: int = 0
    both_slm_trap_changes: int = 0
    ejected_move_slot: int = 0
    ejected_blockade: int = 0
    total_time_us: float = 0.0
    layers: list[CompiledLayer] = field(default_factory=list)


class GateScheduler:
    """Runs Algorithm 1 over a transpiled {u3, cz} circuit."""

    def __init__(
        self,
        circuit: QuantumCircuit,
        state: MachineState,
        config: SchedulerConfig | None = None,
    ) -> None:
        for gate in circuit.gates:
            if gate.name not in ("u3", "cz", "ccz"):
                raise ValueError(
                    f"scheduler requires a transpiled {{u3, cz[, ccz]}} "
                    f"circuit; found {gate.name!r}"
                )
        self.circuit = circuit
        self.state = state
        self.config = config or SchedulerConfig()
        self.dag = DependencyDAG(circuit)
        self.engine = MovementEngine(state, self.config.recursion_limit)
        self.rng = ensure_rng(self.config.seed)
        self.stats = SchedulerStats()

    # -- layer construction (lines 6-11) ------------------------------------------

    def _build_layer(self) -> list[int]:
        return self.dag.claim_layer()

    def _gate_in_range(self, gate) -> bool:
        """All operand pairs within the Rydberg interaction radius."""
        qubits = gate.qubits
        for i in range(len(qubits)):
            for j in range(i + 1, len(qubits)):
                if not self.state.in_interaction_range(qubits[i], qubits[j]):
                    return False
        return True

    # -- movement resolution (lines 12-19) ------------------------------------------

    def _resolve_movements(
        self, layer: list[int]
    ) -> tuple[list[int], set[int], int]:
        """Handle out-of-range CZ gates; returns (kept, trap_resolved, trap_count)."""
        kept: list[int] = []
        trap_resolved: set[int] = set()
        trap_count = 0
        moved_this_layer = False
        for idx in layer:
            gate = self.dag.gates[idx]
            if gate.num_qubits < 2:
                kept.append(idx)
                continue
            if self._gate_in_range(gate):
                kept.append(idx)
                continue
            mobile = next((q for q in gate.qubits if self.state.is_mobile(q)), None)
            if mobile is not None and not moved_this_layer:
                # Recursive obstruction-clearing can drag the target away
                # (its row/column is pushed in tandem); re-aim from the new
                # positions a few times before declaring the move failed.
                success = False
                try:
                    for _ in range(3):
                        others = [q for q in gate.qubits if q != mobile]
                        target = max(others, key=lambda q: self.state.distance(mobile, q))
                        self.engine.move_into_range(mobile, target)
                        self.stats.num_moves += 1
                        if self._gate_in_range(gate):
                            success = True
                            break
                except MoveFailure:
                    pass
                if success:
                    moved_this_layer = True
                    kept.append(idx)
                else:
                    # Failed moves are resolved using trap changes (Sec. III).
                    self.stats.failed_moves += 1
                    trap_count += 1
                    trap_resolved.add(idx)
                    kept.append(idx)
            elif moved_this_layer:
                # Only one move-into-range per layer: eject back to G.
                self.dag.push_back(idx)
                self.stats.ejected_move_slot += 1
            else:
                # Neither atom is mobile: the rare both-SLM case (~1.3%).
                self.stats.both_slm_trap_changes += 1
                trap_count += 1
                trap_resolved.add(idx)
                kept.append(idx)
        return kept, trap_resolved, trap_count

    # -- blockade serialization (lines 20-22) -----------------------------------------

    def _blockade_filter(
        self, layer: list[int], trap_resolved: set[int]
    ) -> list[int]:
        """Eject CZ gates that interfere via the Rydberg blockade.

        Also ejects CZ gates that recursive obstruction-clearing dragged out
        of interaction range (unless they are trap-change resolved, which
        brings the atoms together independently of current positions).

        The greedy keep-or-eject scan is inherently sequential (each
        decision depends on what is already kept), but the per-candidate
        conflict check is batched: one broadcast distance matrix between
        the candidate's operands and every kept operand replaces the
        O(kept x operands^2) ``state.distance`` scans.  ``distance`` is
        ``np.hypot``, so the batch compares bit-identically.
        """
        blockade = self.state.blockade_radius
        reference = kernels.reference_kernels_active()
        positions = self.state.positions
        kept: list[int] = []
        kept_cz: list[int] = []
        kept_ops: list[int] = []
        for idx in layer:
            gate = self.dag.gates[idx]
            if gate.num_qubits < 2:
                kept.append(idx)
                continue
            if idx not in trap_resolved and not self._gate_in_range(gate):
                self.dag.push_back(idx)
                self.stats.ejected_blockade += 1
                continue
            conflict = False
            if reference:
                for other_idx in kept_cz:
                    other = self.dag.gates[other_idx]
                    if any(
                        self.state.distance(qa, qb) <= blockade
                        for qa in gate.qubits
                        for qb in other.qubits
                    ):
                        conflict = True
                        break
            elif kept_ops:
                ours = positions[list(gate.qubits)]
                theirs = positions[kept_ops]
                dx = ours[:, 0, None] - theirs[None, :, 0]
                dy = ours[:, 1, None] - theirs[None, :, 1]
                conflict = bool((np.hypot(dx, dy) <= blockade).any())
            if conflict:
                self.dag.push_back(idx)
                self.stats.ejected_blockade += 1
            else:
                kept.append(idx)
                kept_cz.append(idx)
                kept_ops.extend(gate.qubits)
        return kept

    # -- timing ------------------------------------------------------------------------

    def _layer_time_us(
        self,
        gates: list[int],
        move_out_um: float,
        return_um: float,
        trap_count: int,
    ) -> float:
        spec = self.state.spec
        has_cz = has_ccz = has_u3 = False
        for i in gates:
            width = self.dag.gates[i].num_qubits
            if width == 2:
                has_cz = True
            elif width == 3:
                has_ccz = True
            elif width == 1:
                has_u3 = True
        # Raman (U3) and Rydberg (CZ/CCZ) pulses run simultaneously, so the
        # gate phase lasts as long as the slowest gate type present.
        gate_time = max(
            spec.cz_time_us if has_cz else 0.0,
            spec.ccz_time_us if has_ccz else 0.0,
            spec.u3_time_us if has_u3 else 0.0,
        )
        move_time = spec.move_time_us(move_out_um) + spec.move_time_us(return_um)
        trap_time = trap_count * (
            self.config.trap_switches_per_resolution * spec.trap_switch_time_us
            + 2.0 * spec.move_time_us(spec.grid_pitch_um)
        )
        return gate_time + move_time + trap_time

    # -- main loop -----------------------------------------------------------------------

    def run(self) -> SchedulerStats:
        """Execute Algorithm 1 to completion and return the statistics."""
        config = self.config
        while not self.dag.done():
            if len(self.stats.layers) >= config.max_layers:
                raise RuntimeError(
                    f"scheduler exceeded {config.max_layers} layers; "
                    "this indicates a livelock bug"
                )
            self.engine.begin_layer()
            layer = self._build_layer()
            layer, trap_resolved, trap_count = self._resolve_movements(layer)
            if config.shuffle:
                self.rng.shuffle(layer)
            layer = self._blockade_filter(layer, trap_resolved)
            if not layer:
                raise RuntimeError(
                    "scheduler produced an empty layer; this indicates a "
                    "livelock bug"
                )
            move_out = self.engine.max_object_distance()
            line_moves = self.engine.layer_trace()
            if config.return_home:
                return_um = self.engine.return_home()
            else:
                return_um = 0.0
            time_us = self._layer_time_us(layer, move_out, return_um, trap_count)
            self.stats.trap_changes += trap_count
            self.stats.total_time_us += time_us
            self.stats.layers.append(
                CompiledLayer(
                    gates=tuple(self.dag.gates[i] for i in sorted(layer)),
                    move_distance_um=move_out,
                    return_distance_um=return_um,
                    trap_changes=trap_count,
                    time_us=time_us,
                    line_moves=line_moves,
                )
            )
        return self.stats
