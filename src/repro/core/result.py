"""Compilation artifacts shared by Parallax and the baseline compilers.

A :class:`CompilationResult` carries everything the evaluation metrics need:
gate counts (CZ / U3 / SWAP), movement and trap-change accounting, the
layered schedule with per-layer timing, and the geometry the circuit
occupies (for shot parallelization).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.gate import Gate
from repro.hardware.spec import HardwareSpec

__all__ = ["CompiledLayer", "CompilationResult"]


@dataclass(frozen=True)
class CompiledLayer:
    """One parallel layer of the compiled schedule.

    Attributes:
        gates: the gates executed in this layer.
        move_distance_um: max cumulative distance any AOD line moved to set
            up this layer (determines the layer's movement time).
        return_distance_um: max line distance of the home-return move.
        trap_changes: number of trap-change resolutions in this layer.
        time_us: total wall-clock duration of the layer.
        line_moves: chronological (kind, line index, old coord, new coord)
            records of every AOD line move that set up this layer; replaying
            them from the layer's start state reproduces the mobile
            configuration (verified by tests).
    """

    gates: tuple[Gate, ...]
    move_distance_um: float = 0.0
    return_distance_um: float = 0.0
    trap_changes: int = 0
    time_us: float = 0.0
    line_moves: tuple[tuple[str, int, float, float], ...] = ()

    @property
    def num_cz(self) -> int:
        return sum(1 for g in self.gates if g.name in ("cz", "swap"))

    @property
    def num_1q(self) -> int:
        return sum(1 for g in self.gates if g.num_qubits == 1)


@dataclass
class CompilationResult:
    """Outcome of compiling one circuit with one technique.

    ``num_cz`` counts the CZ gates that will physically run, including the
    3-per-SWAP expansion for baselines; Parallax always has ``num_swaps ==
    0`` so its ``num_cz`` equals the transpiled base count (the paper's
    headline claim).
    """

    technique: str
    circuit_name: str
    num_qubits: int
    spec: HardwareSpec
    layers: list[CompiledLayer] = field(default_factory=list)
    num_cz: int = 0
    num_u3: int = 0
    num_ccz: int = 0
    num_swaps: int = 0
    trap_change_events: int = 0
    both_slm_events: int = 0
    failed_move_events: int = 0
    num_moves: int = 0
    runtime_us: float = 0.0
    interaction_radius_um: float = 0.0
    blockade_radius_um: float = 0.0
    aod_qubits: tuple[int, ...] = ()
    footprint_sites: tuple[int, int] = (0, 0)

    def __post_init__(self) -> None:
        if min(self.num_cz, self.num_u3, self.num_ccz, self.num_swaps) < 0:
            raise ValueError("gate counts cannot be negative")

    @property
    def num_layers(self) -> int:
        """Number of scheduled parallel layers."""
        return len(self.layers)

    @property
    def total_move_distance_um(self) -> float:
        """Sum of per-layer max movement distances (out + return)."""
        return sum(l.move_distance_um + l.return_distance_um for l in self.layers)

    @property
    def trap_change_fraction(self) -> float:
        """Fraction of CZ gates resolved by trap changes (paper: ~1.3%)."""
        cz = max(self.num_cz, 1)
        return self.trap_change_events / cz

    def summary(self) -> dict[str, float]:
        """Flat dict of the headline metrics, for tables and tests."""
        return {
            "technique": self.technique,
            "circuit": self.circuit_name,
            "qubits": self.num_qubits,
            "cz": self.num_cz,
            "u3": self.num_u3,
            "ccz": self.num_ccz,
            "swaps": self.num_swaps,
            "layers": self.num_layers,
            "trap_changes": self.trap_change_events,
            "runtime_us": self.runtime_us,
        }
