"""JSON serialization of compilation results.

A release-grade compiler needs an interchange format: downstream tools
(plotters, dashboards, other languages) consume compiled schedules without
importing this package.  The schema is versioned and round-trips exactly
(tested), including per-layer gates, movement traces, and the hardware
spec.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

from repro.circuit.gate import Gate
from repro.core.result import CompilationResult, CompiledLayer
from repro.hardware.spec import HardwareSpec

__all__ = [
    "canonical_dumps",
    "result_to_dict",
    "result_from_dict",
    "dumps_result",
    "loads_result",
    "short_checksum",
]

SCHEMA_VERSION = 1


def canonical_dumps(obj) -> str:
    """Deterministic compact JSON: sorted keys, no whitespace.

    The byte-stable serialization shared by every on-disk record format
    (sweep store records, packed segment payloads): two equal payload
    dicts always serialize to identical bytes, which is what lets stores
    compare, checksum, and deduplicate records by their serialized form.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def short_checksum(data: bytes | str) -> str:
    """First 16 hex chars of SHA-256 -- the record-level integrity stamp.

    Collision resistance at 64 bits is ample for corruption *detection*
    (the only use: content addressing uses full digests elsewhere), and
    the short form keeps per-record framing overhead small.
    """
    if isinstance(data, str):
        data = data.encode("utf-8")
    return hashlib.sha256(data).hexdigest()[:16]


def _gate_to_dict(gate: Gate) -> dict:
    return {"name": gate.name, "qubits": list(gate.qubits), "params": list(gate.params)}


def _gate_from_dict(data: dict) -> Gate:
    return Gate(data["name"], tuple(data["qubits"]), tuple(data.get("params", ())))


def _layer_to_dict(layer: CompiledLayer) -> dict:
    return {
        "gates": [_gate_to_dict(g) for g in layer.gates],
        "move_distance_um": layer.move_distance_um,
        "return_distance_um": layer.return_distance_um,
        "trap_changes": layer.trap_changes,
        "time_us": layer.time_us,
        "line_moves": [list(m) for m in layer.line_moves],
    }


def _layer_from_dict(data: dict) -> CompiledLayer:
    return CompiledLayer(
        gates=tuple(_gate_from_dict(g) for g in data["gates"]),
        move_distance_um=data["move_distance_um"],
        return_distance_um=data["return_distance_um"],
        trap_changes=data["trap_changes"],
        time_us=data["time_us"],
        line_moves=tuple(
            (m[0], int(m[1]), float(m[2]), float(m[3]))
            for m in data.get("line_moves", ())
        ),
    )


def result_to_dict(result: CompilationResult) -> dict:
    """Serialize a result (and its spec) to plain JSON-ready data."""
    return {
        "schema_version": SCHEMA_VERSION,
        "technique": result.technique,
        "circuit_name": result.circuit_name,
        "num_qubits": result.num_qubits,
        "spec": dataclasses.asdict(result.spec),
        "layers": [_layer_to_dict(l) for l in result.layers],
        "num_cz": result.num_cz,
        "num_u3": result.num_u3,
        "num_ccz": result.num_ccz,
        "num_swaps": result.num_swaps,
        "trap_change_events": result.trap_change_events,
        "both_slm_events": result.both_slm_events,
        "failed_move_events": result.failed_move_events,
        "num_moves": result.num_moves,
        "runtime_us": result.runtime_us,
        "interaction_radius_um": result.interaction_radius_um,
        "blockade_radius_um": result.blockade_radius_um,
        "aod_qubits": list(result.aod_qubits),
        "footprint_sites": list(result.footprint_sites),
    }


def result_from_dict(data: dict) -> CompilationResult:
    """Reconstruct a result from :func:`result_to_dict` output.

    Raises:
        ValueError: on unknown schema versions.
    """
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema version {version!r} (expected {SCHEMA_VERSION})"
        )
    return CompilationResult(
        technique=data["technique"],
        circuit_name=data["circuit_name"],
        num_qubits=data["num_qubits"],
        spec=HardwareSpec(**data["spec"]),
        layers=[_layer_from_dict(l) for l in data["layers"]],
        num_cz=data["num_cz"],
        num_u3=data["num_u3"],
        num_ccz=data.get("num_ccz", 0),
        num_swaps=data["num_swaps"],
        trap_change_events=data["trap_change_events"],
        both_slm_events=data["both_slm_events"],
        failed_move_events=data["failed_move_events"],
        num_moves=data["num_moves"],
        runtime_us=data["runtime_us"],
        interaction_radius_um=data["interaction_radius_um"],
        blockade_radius_um=data["blockade_radius_um"],
        aod_qubits=tuple(data["aod_qubits"]),
        footprint_sites=tuple(data["footprint_sites"]),
    )


def dumps_result(result: CompilationResult, indent: int | None = None) -> str:
    """Serialize a result to a JSON string."""
    return json.dumps(result_to_dict(result), indent=indent)


def loads_result(text: str) -> CompilationResult:
    """Parse a result from a JSON string."""
    return result_from_dict(json.loads(text))
