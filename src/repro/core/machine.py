"""Machine state: atoms placed on hardware, with radii in physical units.

Combines Steps 1 and 2 of the pipeline: takes the continuous Graphine
layout, discretizes it onto the SLM grid, and tracks every atom's position,
trap, and home location.  Positions are mirrored in a contiguous ``(n, 2)``
float64 array so the scheduler's geometric queries stay vectorized.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.aod import AOD
from repro.hardware.atom import Atom, TrapType
from repro.hardware.grid import discretize_positions, unit_to_physical_scale
from repro.hardware.slm import SLM
from repro.hardware.spec import HardwareSpec
from repro.layout.graphine import GraphineLayout

__all__ = ["MachineState"]


class MachineState:
    """All mutable physical state of one compilation.

    Attributes:
        spec: the hardware description.
        slm / aod: trap devices.
        atoms: per-qubit :class:`Atom` records.
        positions: (n, 2) array, row ``q`` = current position of qubit ``q``
            (kept in sync with ``atoms[q].position``).
        interaction_radius: Rydberg interaction radius in micrometers.
        blockade_radius: Rydberg blockade radius (2.5x interaction).
    """

    def __init__(self, spec: HardwareSpec, layout: GraphineLayout) -> None:
        if layout.num_qubits > spec.num_sites:
            raise ValueError(
                f"circuit needs {layout.num_qubits} atoms but "
                f"{spec.name} has only {spec.num_sites} sites"
            )
        self.spec = spec
        self.slm = SLM(spec)
        self.aod = AOD(spec)
        self.num_qubits = layout.num_qubits

        positions_um, sites = discretize_positions(layout.unit_positions, spec)
        self.sites = sites
        self.atoms: list[Atom] = []
        for qubit in range(self.num_qubits):
            row, col = sites[qubit]
            self.slm.place(qubit, row, col)
            self.atoms.append(Atom(qubit, positions_um[qubit], TrapType.SLM))
        self.positions = positions_um.copy()
        # Each atom's ``position`` is a row view into ``positions``: in-place
        # writes through ``set_position`` keep both in sync with no copies.
        for qubit in range(self.num_qubits):
            self.atoms[qubit].position = self.positions[qubit]
        # Mobile/static membership, mirrored as a boolean mask for the
        # movement engine's batched separation checks.  ``trap_version``
        # bumps on every transfer so engine-side caches can invalidate.
        self._mobile_mask = np.zeros(self.num_qubits, dtype=bool)
        self._mobile_list: list[int] | None = []
        self.trap_version = 0

        scale = unit_to_physical_scale(spec)
        raw_radius = layout.interaction_radius_unit * scale
        # The radius must at least span one grid pitch or even neighboring
        # sites could not interact after discretization.
        self.interaction_radius = float(max(raw_radius, spec.grid_pitch_um * 1.05))
        self.blockade_radius = spec.blockade_radius_um(self.interaction_radius)

    # -- position bookkeeping --------------------------------------------------

    def set_position(self, qubit: int, new_pos: np.ndarray) -> None:
        """Move one atom's recorded position (engine use only)."""
        self.set_position_xy(qubit, float(new_pos[0]), float(new_pos[1]))

    def set_position_xy(self, qubit: int, x: float, y: float) -> None:
        """Scalar fast path of :meth:`set_position` (no array construction).

        Writes in place, so ``atoms[qubit].position`` (a row view) stays in
        sync for free.
        """
        row = self.positions[qubit]
        row[0] = x
        row[1] = y

    def distance(self, a: int, b: int) -> float:
        """Distance between qubits ``a`` and ``b`` in micrometers."""
        d = self.positions[a] - self.positions[b]
        return float(np.hypot(d[0], d[1]))

    def in_interaction_range(self, a: int, b: int) -> bool:
        """True when a CZ can execute directly between ``a`` and ``b``."""
        return self.distance(a, b) <= self.interaction_radius

    # -- trap transfers ----------------------------------------------------------

    def transfer_to_aod(self, qubit: int, row: int, col: int) -> None:
        """Trap change SLM -> AOD, keeping the atom's position and home."""
        atom = self.atoms[qubit]
        if atom.trap is not TrapType.SLM:
            raise ValueError(f"qubit {qubit} is not in the SLM")
        site = self.sites[qubit]
        self.slm.release(*site)
        x, y = float(atom.position[0]), float(atom.position[1])
        self.aod.assign_atom(qubit, row, col, x, y)
        atom.trap = TrapType.AOD
        atom.aod_row, atom.aod_col = row, col
        self._mobile_mask[qubit] = True
        self._mobile_list = None
        self.trap_version += 1

    def is_mobile(self, qubit: int) -> bool:
        """True if the qubit is in the AOD."""
        return self.atoms[qubit].trap is TrapType.AOD

    @property
    def mobile_mask(self) -> np.ndarray:
        """Boolean ``(n,)`` mask of AOD-trapped qubits (do not mutate)."""
        return self._mobile_mask

    def mobile_qubits(self) -> list[int]:
        """All AOD-trapped qubits, ascending."""
        if self._mobile_list is None:
            self._mobile_list = np.nonzero(self._mobile_mask)[0].tolist()
        return list(self._mobile_list)

    def static_positions(self) -> np.ndarray:
        """Positions of all SLM atoms (view-copy used by the engine)."""
        return self.positions[~self._mobile_mask]

    # -- validation (used heavily in tests) ----------------------------------------

    def separation_ok(self, min_separation: float | None = None) -> bool:
        """True when every atom pair respects the separation constraint."""
        sep = min_separation if min_separation is not None else self.spec.min_separation_um
        if self.num_qubits < 2:
            return True
        diff = self.positions[:, None, :] - self.positions[None, :, :]
        dist = np.hypot(diff[..., 0], diff[..., 1])
        iu, ju = np.triu_indices(self.num_qubits, k=1)
        return bool(dist[iu, ju].min() >= sep - 1e-9)
