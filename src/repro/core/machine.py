"""Machine state: atoms placed on hardware, with radii in physical units.

Combines Steps 1 and 2 of the pipeline: takes the continuous Graphine
layout, discretizes it onto the SLM grid, and tracks every atom's position,
trap, and home location.  Positions are mirrored in a contiguous ``(n, 2)``
float64 array so the scheduler's geometric queries stay vectorized.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.aod import AOD
from repro.hardware.atom import Atom, TrapType
from repro.hardware.grid import discretize_positions, unit_to_physical_scale
from repro.hardware.slm import SLM
from repro.hardware.spec import HardwareSpec
from repro.layout.graphine import GraphineLayout

__all__ = ["MachineState"]


class MachineState:
    """All mutable physical state of one compilation.

    Attributes:
        spec: the hardware description.
        slm / aod: trap devices.
        atoms: per-qubit :class:`Atom` records.
        positions: (n, 2) array, row ``q`` = current position of qubit ``q``
            (kept in sync with ``atoms[q].position``).
        interaction_radius: Rydberg interaction radius in micrometers.
        blockade_radius: Rydberg blockade radius (2.5x interaction).
    """

    def __init__(self, spec: HardwareSpec, layout: GraphineLayout) -> None:
        if layout.num_qubits > spec.num_sites:
            raise ValueError(
                f"circuit needs {layout.num_qubits} atoms but "
                f"{spec.name} has only {spec.num_sites} sites"
            )
        self.spec = spec
        self.slm = SLM(spec)
        self.aod = AOD(spec)
        self.num_qubits = layout.num_qubits

        positions_um, sites = discretize_positions(layout.unit_positions, spec)
        self.sites = sites
        self.atoms: list[Atom] = []
        for qubit in range(self.num_qubits):
            row, col = sites[qubit]
            self.slm.place(qubit, row, col)
            self.atoms.append(Atom(qubit, positions_um[qubit], TrapType.SLM))
        self.positions = positions_um.copy()

        scale = unit_to_physical_scale(spec)
        raw_radius = layout.interaction_radius_unit * scale
        # The radius must at least span one grid pitch or even neighboring
        # sites could not interact after discretization.
        self.interaction_radius = float(max(raw_radius, spec.grid_pitch_um * 1.05))
        self.blockade_radius = spec.blockade_radius_um(self.interaction_radius)

    # -- position bookkeeping --------------------------------------------------

    def set_position(self, qubit: int, new_pos: np.ndarray) -> None:
        """Move one atom's recorded position (engine use only)."""
        new_pos = np.asarray(new_pos, dtype=float)
        self.atoms[qubit].position = new_pos.copy()
        self.positions[qubit] = new_pos

    def distance(self, a: int, b: int) -> float:
        """Distance between qubits ``a`` and ``b`` in micrometers."""
        d = self.positions[a] - self.positions[b]
        return float(np.hypot(d[0], d[1]))

    def in_interaction_range(self, a: int, b: int) -> bool:
        """True when a CZ can execute directly between ``a`` and ``b``."""
        return self.distance(a, b) <= self.interaction_radius

    # -- trap transfers ----------------------------------------------------------

    def transfer_to_aod(self, qubit: int, row: int, col: int) -> None:
        """Trap change SLM -> AOD, keeping the atom's position and home."""
        atom = self.atoms[qubit]
        if atom.trap is not TrapType.SLM:
            raise ValueError(f"qubit {qubit} is not in the SLM")
        site = self.sites[qubit]
        self.slm.release(*site)
        x, y = float(atom.position[0]), float(atom.position[1])
        self.aod.assign_atom(qubit, row, col, x, y)
        atom.trap = TrapType.AOD
        atom.aod_row, atom.aod_col = row, col

    def is_mobile(self, qubit: int) -> bool:
        """True if the qubit is in the AOD."""
        return self.atoms[qubit].trap is TrapType.AOD

    def mobile_qubits(self) -> list[int]:
        """All AOD-trapped qubits."""
        return [q for q in range(self.num_qubits) if self.is_mobile(q)]

    def static_positions(self) -> np.ndarray:
        """Positions of all SLM atoms (view-copy used by the engine)."""
        idx = [q for q in range(self.num_qubits) if not self.is_mobile(q)]
        return self.positions[idx]

    # -- validation (used heavily in tests) ----------------------------------------

    def separation_ok(self, min_separation: float | None = None) -> bool:
        """True when every atom pair respects the separation constraint."""
        sep = min_separation if min_separation is not None else self.spec.min_separation_um
        if self.num_qubits < 2:
            return True
        diff = self.positions[:, None, :] - self.positions[None, :, :]
        dist = np.hypot(diff[..., 0], diff[..., 1])
        iu, ju = np.triu_indices(self.num_qubits, k=1)
        return bool(dist[iu, ju].min() >= sep - 1e-9)
