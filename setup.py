"""Legacy setup shim so `pip install -e .` works without the wheel package."""

from setuptools import setup

setup()
