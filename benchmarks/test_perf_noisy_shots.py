"""Vectorized noisy-shot engine vs. the per-shot reference loop.

The acceptance bar for the vectorization rewrite: at 10,000 shots the
one-pass ``(shots, 4)`` engine must be at least 10x faster than the
shot-at-a-time loop it replaced (``NoisyShotSimulator.run_loop``, kept
in-repo as the parity oracle).  Both paths are benchmarked individually,
and the ratio is asserted directly with best-of-N timing so scheduler
noise cannot produce a flaky pass/fail.
"""

import time

import pytest

from repro.core.result import CompilationResult
from repro.hardware.spec import HardwareSpec
from repro.sim.noisy import NoisyShotSimulator

SHOTS = 10_000


@pytest.fixture(scope="module")
def result():
    return CompilationResult(
        technique="parallax",
        circuit_name="perf",
        num_qubits=20,
        spec=HardwareSpec.quera_aquila(),
        num_cz=200,
        num_u3=350,
        num_moves=60,
        trap_change_events=4,
        runtime_us=900.0,
    )


def test_perf_vectorized_run(benchmark, result):
    sim = NoisyShotSimulator(result, seed=0)
    outcome = benchmark(sim.run, SHOTS)
    assert outcome.shots == SHOTS


def test_perf_per_shot_loop(benchmark, result):
    sim = NoisyShotSimulator(result, seed=0)
    outcome = benchmark.pedantic(sim.run_loop, args=(SHOTS,), rounds=3, iterations=1)
    assert outcome.shots == SHOTS


def _best_of(fn, rounds):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn(SHOTS)
        best = min(best, time.perf_counter() - start)
    return best


def test_vectorized_at_least_10x_faster_at_10k_shots(result):
    sim = NoisyShotSimulator(result, seed=0)
    sim.run(SHOTS)  # warm numpy dispatch
    t_vec = _best_of(sim.run, rounds=5)
    t_loop = _best_of(sim.run_loop, rounds=3)
    speedup = t_loop / t_vec
    assert speedup >= 10.0, (
        f"vectorized engine only {speedup:.1f}x faster "
        f"({t_vec * 1e3:.3f} ms vs {t_loop * 1e3:.3f} ms at {SHOTS} shots)"
    )
