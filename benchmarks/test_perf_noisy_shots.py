"""Noisy-shot engine generations benchmarked against each other.

Two acceptance bars, each asserted directly with best-of-N timing so
scheduler noise cannot produce a flaky pass/fail:

- **vectorization** (PR 2): at 10,000 shots the one-pass ``(shots, 4)``
  array engine (``run_array``) must be at least 10x faster than the
  shot-at-a-time loop it replaced (``run_loop``, kept as the parity
  oracle);
- **multinomial fast path** (PR 3): at 1,000,000 shots the single
  ``rng.multinomial`` draw behind ``run`` must be at least 10x faster
  than the array engine -- it is O(1) in the shot count, which is what
  makes 10^6-shot sweep scenarios effectively free.
"""

import time

import pytest

from repro.core.result import CompilationResult
from repro.hardware.spec import HardwareSpec
from repro.sim.noisy import NoisyShotSimulator

SHOTS = 10_000
MULTINOMIAL_SHOTS = 1_000_000


@pytest.fixture(scope="module")
def result():
    return CompilationResult(
        technique="parallax",
        circuit_name="perf",
        num_qubits=20,
        spec=HardwareSpec.quera_aquila(),
        num_cz=200,
        num_u3=350,
        num_moves=60,
        trap_change_events=4,
        runtime_us=900.0,
    )


def test_perf_multinomial_run(benchmark, result):
    sim = NoisyShotSimulator(result, seed=0)
    outcome = benchmark(sim.run, MULTINOMIAL_SHOTS)
    assert outcome.shots == MULTINOMIAL_SHOTS


def test_perf_vectorized_run(benchmark, result):
    sim = NoisyShotSimulator(result, seed=0)
    outcome = benchmark(sim.run_array, SHOTS)
    assert outcome.shots == SHOTS


def test_perf_per_shot_loop(benchmark, result):
    sim = NoisyShotSimulator(result, seed=0)
    outcome = benchmark.pedantic(sim.run_loop, args=(SHOTS,), rounds=3, iterations=1)
    assert outcome.shots == SHOTS


def _best_of(fn, rounds, shots=SHOTS):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn(shots)
        best = min(best, time.perf_counter() - start)
    return best


def test_vectorized_at_least_10x_faster_at_10k_shots(result, perf):
    sim = NoisyShotSimulator(result, seed=0)
    sim.run_array(SHOTS)  # warm numpy dispatch
    t_vec = _best_of(sim.run_array, rounds=5)
    t_loop = _best_of(sim.run_loop, rounds=3)
    speedup = t_loop / t_vec
    perf(
        "noisy_shots.vectorized_vs_loop",
        shots=SHOTS,
        vectorized_s=t_vec,
        loop_s=t_loop,
        speedup=speedup,
        gate=10.0,
    )
    assert speedup >= 10.0, (
        f"vectorized engine only {speedup:.1f}x faster "
        f"({t_vec * 1e3:.3f} ms vs {t_loop * 1e3:.3f} ms at {SHOTS} shots)"
    )


def test_multinomial_at_least_10x_faster_than_array_at_1m_shots(result, perf):
    # The O(1)-per-scenario gate: one multinomial draw vs. the (shots, 4)
    # uniform array at a million shots.  The true gap is orders of
    # magnitude; 10x keeps the bar robust on loaded CI machines.
    sim = NoisyShotSimulator(result, seed=0)
    sim.run(MULTINOMIAL_SHOTS)  # warm numpy dispatch
    t_multi = _best_of(sim.run, rounds=5, shots=MULTINOMIAL_SHOTS)
    t_array = _best_of(sim.run_array, rounds=3, shots=MULTINOMIAL_SHOTS)
    speedup = t_array / t_multi
    perf(
        "noisy_shots.multinomial_vs_array",
        shots=MULTINOMIAL_SHOTS,
        multinomial_s=t_multi,
        array_s=t_array,
        speedup=speedup,
        gate=10.0,
    )
    assert speedup >= 10.0, (
        f"multinomial path only {speedup:.1f}x faster "
        f"({t_multi * 1e3:.3f} ms vs {t_array * 1e3:.3f} ms at "
        f"{MULTINOMIAL_SHOTS} shots)"
    )
