"""Regenerate Table I: the compiler functionality matrix."""

from conftest import run_once

from repro.experiments.table1 import run_table1


def test_table1_functionality(benchmark):
    table = run_once(benchmark, run_table1)
    print("\n" + table.format())
    by_name = {row[0]: row for row in table.rows}
    # Only Parallax achieves all functionalities.
    assert all(flag == "yes" for flag in by_name["parallax"][1:])
    for name, row in by_name.items():
        if name != "parallax":
            assert "no" in row[1:]
