"""Bench: compile-time scaling (the paper's polynomial-complexity claim).

The paper gives Parallax a polynomial worst case and notes it compiles the
450k-gate VQE that ELDI could not.  Here we sweep TFIM chain lengths and
assert bounded growth: doubling the qubit count (with gate count growing
linearly) must not blow compile time up by more than a generous polynomial
factor.
"""

from conftest import run_once

from repro.experiments.scaling import run_scaling


def test_scaling_compile_time(benchmark):
    table = run_once(benchmark, run_scaling, (8, 16, 32, 64))
    print("\n" + table.format())

    times = table.column("compile_s")
    qubits = table.column("qubits")
    # Monotone-ish growth with bounded doubling factor (q and gates both
    # double between rows; O(q^2)-per-gate terms would give ~8x; allow 16x
    # for measurement noise on sub-second samples).
    for i in range(1, len(times)):
        if times[i - 1] > 0.02:  # ignore noise-dominated tiny samples
            assert times[i] <= times[i - 1] * 16.0, (qubits[i], times)

    # The largest instance stays firmly laptop-scale.
    assert times[-1] < 60.0
