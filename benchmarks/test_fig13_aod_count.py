"""Regenerate Fig. 13: the AOD row/column count ablation.

Shape assertions: the default 20-row/column configuration is at least as
good as the 1-row extreme on average (the paper: 20 is best overall, with
36% lower runtime than each algorithm's worst case).
"""

import numpy as np
from conftest import run_once

from repro.experiments.fig13 import run_fig13


def test_fig13_aod_count(benchmark, bench_set):
    table = run_once(benchmark, run_fig13, bench_set)
    print("\n" + table.format())

    aod_cols = [h for h in table.headers if h.startswith("aod_")]
    runtimes = np.array([[row[1 + i] for i in range(len(aod_cols))] for row in table.rows])

    # Normalize each benchmark by its worst case, as the paper plots.
    pct_of_worst = runtimes / runtimes.max(axis=1, keepdims=True)
    means = pct_of_worst.mean(axis=0)
    for name, value in zip(aod_cols, means):
        print(f"{name}: mean {value:.0%} of worst case")

    idx_20 = aod_cols.index("aod_20")
    idx_1 = aod_cols.index("aod_1")
    assert means[idx_20] <= means[idx_1] * 1.05

    # The 20-count variant is never the unique worst case by a wide margin.
    assert np.mean(pct_of_worst[:, idx_20]) <= 0.95


def test_fig13_counts_do_not_change_cz(benchmark):
    from repro.experiments.common import compile_one
    from repro.hardware.spec import HardwareSpec

    def counts():
        out = {}
        for count in (1, 20):
            spec = HardwareSpec.atom_computing(aod_count=count)
            out[count] = compile_one("parallax", "HLF", spec).num_cz
        return out

    got = run_once(benchmark, counts)
    assert got[1] == got[20]
