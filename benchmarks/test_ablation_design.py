"""Ablation benches for the design choices DESIGN.md calls out.

Beyond the paper's own ablations (Fig. 12 home return, Fig. 13 AOD count),
these quantify:

- the layer shuffle (Algorithm 1 line 20) vs. deterministic ordering;
- the single-move-per-layer recursion limit (80) vs. tighter limits;
- the Graphine initial layout vs. a naive grid layout for Parallax.
"""

import numpy as np
import pytest
from conftest import run_once

from repro.core.compiler import ParallaxCompiler, ParallaxConfig
from repro.core.scheduler import SchedulerConfig
from repro.experiments.common import prepared_circuit, prepared_layout, ExperimentSettings
from repro.hardware.spec import HardwareSpec
from repro.layout.graphine import GraphineLayout


@pytest.fixture(scope="module")
def spec():
    return HardwareSpec.quera_aquila()


def compile_with(spec, bench, scheduler=None, layout=None):
    settings = ExperimentSettings()
    basis = prepared_circuit(bench)
    layout = layout or prepared_layout(bench, settings)
    config = ParallaxConfig(
        scheduler=scheduler or SchedulerConfig(), transpile_input=False
    )
    return ParallaxCompiler(spec, config).compile(basis, layout=layout)


def test_ablation_shuffle(benchmark, spec):
    """Layer shuffling avoids starvation; compare layer counts."""

    def run():
        shuffled = compile_with(spec, "QAOA", SchedulerConfig(shuffle=True))
        ordered = compile_with(spec, "QAOA", SchedulerConfig(shuffle=False))
        return shuffled, ordered

    shuffled, ordered = run_once(benchmark, run)
    print(f"\nshuffle on : {shuffled.num_layers} layers, {shuffled.runtime_us:.0f} us")
    print(f"shuffle off: {ordered.num_layers} layers, {ordered.runtime_us:.0f} us")
    # Both complete with identical gate counts; shuffle must not blow up.
    assert shuffled.num_cz == ordered.num_cz
    assert shuffled.num_layers <= ordered.num_layers * 1.5


def test_ablation_recursion_limit(benchmark, spec):
    """The 80-recursion cap vs. a tight cap: tight caps force trap changes."""

    def run():
        out = {}
        for limit in (2, 10, 80):
            result = compile_with(
                spec, "QV", SchedulerConfig(recursion_limit=limit)
            )
            out[limit] = (result.failed_move_events, result.runtime_us)
        return out

    data = run_once(benchmark, run)
    for limit, (fails, runtime) in data.items():
        print(f"\nrecursion limit {limit:3d}: {fails} failed moves, {runtime:.0f} us")
    # A tight limit can only fail more moves than the paper's 80.
    assert data[2][0] >= data[80][0]


def test_ablation_initial_layout(benchmark, spec):
    """Graphine layout vs. a naive row-major grid layout for Parallax."""
    basis = prepared_circuit("QAOA")
    n = basis.num_qubits
    # Naive layout: row-major corner packing, ignoring interactions.
    side = int(np.ceil(np.sqrt(n)))
    naive_unit = np.array(
        [[(i % side) / max(side - 1, 1), (i // side) / max(side - 1, 1)]
         for i in range(n)]
    )
    naive = GraphineLayout(unit_positions=naive_unit, interaction_radius_unit=0.12)

    def run():
        with_graphine = compile_with(spec, "QAOA")
        with_naive = compile_with(spec, "QAOA", layout=naive)
        return with_graphine, with_naive

    graphine_result, naive_result = run_once(benchmark, run)
    print(f"\ngraphine layout: {graphine_result.runtime_us:.0f} us, "
          f"{graphine_result.trap_change_events} trap changes")
    print(f"naive layout   : {naive_result.runtime_us:.0f} us, "
          f"{naive_result.trap_change_events} trap changes")
    # Gate counts are layout-independent (zero SWAPs either way).
    assert graphine_result.num_cz == naive_result.num_cz
