"""Ablation bench: placement method (spring vs community vs dual annealing).

DESIGN.md calls out the placement stage as the paper's most expensive
classical step (Graphine's O(q^5) term); this bench quantifies the
speed/quality trade of the three implemented methods on a mid-size
workload.
"""

import time

from conftest import run_once

from repro.experiments.common import prepared_circuit
from repro.layout.interaction_graph import build_interaction_graph
from repro.layout.placement import PlacementConfig, place_qubits, placement_cost


def test_ablation_placement_methods(benchmark):
    graph = build_interaction_graph(prepared_circuit("QGAN"))

    def run():
        out = {}
        for method, maxiter in (("spring", 1), ("community", 1), ("dual_annealing", 15)):
            start = time.perf_counter()
            pos = place_qubits(
                graph, PlacementConfig(method=method, maxiter=maxiter, seed=5)
            )
            elapsed = time.perf_counter() - start
            out[method] = (placement_cost(pos, graph), elapsed)
        return out

    results = run_once(benchmark, run)
    for method, (cost, elapsed) in results.items():
        print(f"\n{method:15s}: cost {cost:8.2f}, {elapsed:6.2f}s")

    # The cheap methods must stay within a reasonable factor of annealing.
    annealed_cost = results["dual_annealing"][0]
    for method in ("spring", "community"):
        assert results[method][0] <= annealed_cost * 3.0

    # And they must be much faster.
    assert results["spring"][1] < results["dual_annealing"][1]
