"""Regenerate Table IV: circuit runtime on the 256- and 1,225-qubit machines.

Shape assertions: runtimes are positive and Parallax's runtime picture
improves when moving to the larger machine (paper: "this runtime
differential diminishes considerably as we scale").
"""

import numpy as np
from conftest import run_once

from repro.experiments.table4 import run_table4


def test_table4_runtime(benchmark, bench_set):
    table = run_once(benchmark, run_table4, bench_set)
    print("\n" + table.format())

    for row in table.rows:
        assert all(v > 0 for v in row[1:])

    # Parallax's runtime relative to ELDI should not get worse on the
    # larger machine, on average (the paper's trap-change story).
    ratios_256, ratios_1225 = [], []
    for row in table.rows:
        _, eldi_small, _, par_small, eldi_large, _, par_large = row
        ratios_256.append(par_small / eldi_small)
        ratios_1225.append(par_large / eldi_large)
    print(f"mean parallax/eldi runtime ratio @256:  {np.mean(ratios_256):.2f}")
    print(f"mean parallax/eldi runtime ratio @1225: {np.mean(ratios_1225):.2f}")
    assert np.mean(ratios_1225) <= np.mean(ratios_256) * 1.25


def test_table4_tfim_scales(benchmark):
    # TFIM-128 is cramped on 256 sites; the 1,225-site machine must help.
    table = run_once(benchmark, run_table4, ("TFIM",))
    print("\n" + table.format())
    row = table.rows[0]
    parallax_256, parallax_1225 = row[3], row[6]
    assert parallax_1225 < parallax_256
