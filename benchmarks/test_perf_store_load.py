"""Packed-segment store load gate: sealed segments vs. loose per-file JSON.

The acceptance bar for the segment backend (PR 4): loading a >= 10^4-record
store through ``ResultTable.from_store`` must be **at least 10x faster**
when the store is compacted than when every record is its own JSON file --
that is the difference that makes million-record sweep analyses (the
ROADMAP's "Columnar store backend" item) interactive instead of
minutes-long.  The mechanism under test is the segment's columnar block:
one read + one parse per segment materializes analysis columns without
opening a single per-record file or building a single per-record dict.

Alongside the speed gate, the parity gates assert what makes the speedup
trustworthy: the loose, compacted, and half-compacted (mixed) forms of the
same store must render **byte-identical** analysis CSVs.
"""

import hashlib
import shutil
import time

import pytest

from repro.sweeps import ResultTable, SweepStore

RECORDS = 10_000
GATE = 10.0


def synth_record(i: int) -> tuple[str, dict]:
    """A schema-complete record shaped like real sweep output."""
    key = hashlib.sha256(f"perf-store-{i}".encode()).hexdigest()
    return key, {
        "scenario": {
            "benchmark": ("ADD", "QAOA", "MUL", "QFT")[i % 4],
            "technique": ("parallax", "graphine", "eldi")[i % 3],
            "shots": 1000,
            "seed": 17 * i + 3,
            "spec_name": "quera_aquila",
            "spec_overrides": {"cz_error": 0.0012 * (1 + i % 5)},
            "noise": {"include_readout": bool(i % 2)},
            "fingerprints": {
                "circuit": "c" * 64, "spec": "s" * 64, "config": "g" * 64,
            },
        },
        "result": {
            "num_cz": 100 + i % 37, "num_u3": 200 + i % 53, "num_ccz": i % 3,
            "num_swaps": i % 7, "num_moves": 40 + i % 11,
            "trap_change_events": i % 5, "num_layers": 20 + i % 13,
            "runtime_us": 500.0 + 0.25 * (i % 997),
        },
        "outcome": {
            "shots": 1000, "successes": 600 + i % 300,
            "gate_failures": 100 + i % 50, "movement_failures": 80 + i % 40,
            "decoherence_failures": 60 + i % 30, "readout_failures": i % 20,
            "success_rate": (600 + i % 300) / 1000.0,
            "stderr": 0.015 + 1e-5 * (i % 100),
        },
        "analytic_success": 0.62 + 1e-4 * (i % 1000),
    }


@pytest.fixture(scope="module")
def stores(tmp_path_factory):
    """One loose and one fully-compacted copy of the same 10^4 records."""
    base = tmp_path_factory.mktemp("perf-store")
    loose = SweepStore(base / "loose")
    for i in range(RECORDS):
        key, record = synth_record(i)
        loose.put(key, record)
    shutil.copytree(base / "loose", base / "packed")
    packed = SweepStore(base / "packed")
    report = packed.compact()
    assert report.sealed == RECORDS
    return SweepStore(base / "loose"), SweepStore(base / "packed")


def _best_of(fn, rounds):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_segment_load_at_least_10x_faster_than_loose(stores, perf):
    loose, packed = stores
    # Warm both paths (page cache, import side effects) before timing.
    assert len(ResultTable.from_store(packed)) == RECORDS
    t_packed = _best_of(lambda: ResultTable.from_store(packed), rounds=5)
    t_loose = _best_of(lambda: ResultTable.from_store(loose), rounds=3)
    speedup = t_loose / t_packed
    perf(
        "store_load.segments_vs_loose",
        records=RECORDS,
        loose_s=t_loose,
        packed_s=t_packed,
        speedup=speedup,
        gate=GATE,
    )
    assert speedup >= GATE, (
        f"segment load only {speedup:.1f}x faster than loose "
        f"({t_packed * 1e3:.1f} ms vs {t_loose * 1e3:.1f} ms "
        f"at {RECORDS} records)"
    )


def test_loaded_tables_are_identical(stores):
    loose, packed = stores
    table_loose = ResultTable.from_store(loose)
    table_packed = ResultTable.from_store(packed)
    assert table_loose.names == table_packed.names
    assert table_loose.rows == table_packed.rows


def test_analyze_csv_identical_for_loose_compacted_and_mixed(
    tmp_path_factory, perf
):
    base = tmp_path_factory.mktemp("csv-parity")
    loose = SweepStore(base / "store")
    keys = []
    for i in range(300):
        key, record = synth_record(i)
        loose.put(key, record)
        keys.append(key)
    csv_loose = ResultTable.from_store(loose).to_csv()

    mixed_dir = base / "mixed"
    shutil.copytree(base / "store", mixed_dir)
    SweepStore(mixed_dir).compact(keys=keys[:150])
    csv_mixed = ResultTable.from_store(SweepStore(mixed_dir)).to_csv()

    packed_dir = base / "packed"
    shutil.copytree(base / "store", packed_dir)
    SweepStore(packed_dir).compact()
    csv_packed = ResultTable.from_store(SweepStore(packed_dir)).to_csv()

    assert csv_mixed == csv_loose
    assert csv_packed == csv_loose
    perf(
        "store_load.csv_parity",
        records=300,
        identical=True,
    )
