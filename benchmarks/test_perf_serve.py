"""Query-daemon latency gate: generation-cached HTTP pivots vs cold
in-process queries, plus p50/p99 under concurrent clients.

The daemon's reason to exist is that a fleet of readers should not each
pay a full ``ResultTable.from_store`` bulk load per question.  The
acceptance bar, measured on a 5x10^4-record sidecar store:

- **cached HTTP pivot >= 5x faster than a cold in-process query** --
  p50 round-trip latency of ``GET /pivot?...`` against a warm daemon
  (the generation-keyed cache holds the rendered payload; each request
  still pays the full HTTP round trip *and* the per-request
  ``store_token`` revalidation stat walk) must beat the p50 of building
  ``ResultTable.from_store`` + ``pivot()`` from scratch by at least 5x.
  If the generation cache silently stopped being keyed right -- rebuilt
  per request -- the ratio collapses and the gate fails.

Alongside the gate, parity is asserted first (the served payload must
equal the in-process :func:`~repro.sweeps.analysis.pivot_payload`
byte-for-byte), and a concurrent-client pass records p50/p99 across 8
threads hammering mixed endpoints -- recorded in the trajectory for
trend visibility, and sanity-bounded: even the p99 under concurrency
must still beat one cold in-process query.
"""

import hashlib
import json
import threading
import time
import urllib.request

import pytest

from repro import __version__
from repro.sweeps import SweepStore
from repro.sweeps import segments as seg
from repro.sweeps.analysis import ResultTable, pivot_payload
from repro.sweeps.serve import SweepServer
from repro.sweeps.store import SCHEMA_VERSION

RECORDS = 50_000
GATE = 5.0
#: The measured ratio saturates far beyond the gate (100-300x: the cached
#: path is one ~1ms HTTP round trip, and sub-millisecond latencies jitter
#: 2x between runs of the same machine).  The *gated* trajectory ratio is
#: capped here so the 25% trend comparison tracks "still comfortably
#: cached" instead of flaking on localhost RTT noise; the raw ratio is
#: recorded alongside for trend visibility.
TREND_CAP = 25.0
CLIENTS = 8
REQUESTS_PER_CLIENT = 25
PIVOT_PATH = "/pivot?index=benchmark&column=technique&value=analytic_success"


def synth_record(i: int) -> tuple[str, dict]:
    """A schema-complete record carrying the envelope fields ``put``
    would add, so it packs straight into segments (no loose writes)."""
    key = hashlib.sha256(f"perf-serve-{i}".encode()).hexdigest()
    return key, {
        "key": key,
        "schema_version": SCHEMA_VERSION,
        "engine_version": __version__,
        "scenario": {
            "benchmark": ("ADD", "QAOA", "MUL", "QFT")[i % 4],
            "technique": ("parallax", "graphine", "eldi")[i % 3],
            "shots": 1000,
            "seed": 17 * i + 3,
            "spec_name": "quera_aquila",
            "spec_overrides": {"cz_error": 0.0012 * (1 + i % 5)},
            "noise": {"include_readout": bool(i % 2)},
            "fingerprints": {
                "circuit": "c" * 64, "spec": "s" * 64, "config": "g" * 64,
            },
        },
        "result": {
            "num_cz": 100 + i % 37, "num_u3": 200 + i % 53, "num_ccz": i % 3,
            "num_swaps": i % 7, "num_moves": 40 + i % 11,
            "trap_change_events": i % 5, "num_layers": 20 + i % 13,
            "runtime_us": 500.0 + 0.25 * (i % 997),
        },
        "outcome": {
            "shots": 1000, "successes": 600 + i % 300,
            "gate_failures": 100 + i % 50, "movement_failures": 80 + i % 40,
            "decoherence_failures": 60 + i % 30, "readout_failures": i % 20,
            "success_rate": (600 + i % 300) / 1000.0,
            "stderr": 0.015 + 1e-5 * (i % 100),
        },
        "analytic_success": 0.62 + 1e-4 * (i % 1000),
    }


def _packed_store(directory) -> SweepStore:
    """One 5x10^4-record generation-1 sidecar store, the shape a merged
    production store has when the daemon sits in front of it."""
    directory.mkdir()
    records = dict(synth_record(i) for i in range(RECORDS))
    ordered = sorted(records)
    entries: dict = {}
    columns: dict = {}
    namer = seg.generation_segment_namer(1)
    for start in range(0, RECORDS, SweepStore.DEFAULT_MERGE_TARGET):
        chunk = [
            records[k]
            for k in ordered[start : start + SweepStore.DEFAULT_MERGE_TARGET]
        ]
        name, segment_entries, segment_columns = seg.write_segment(
            directory, chunk, namer=namer
        )
        for entry in segment_entries:
            entries[entry.key] = entry
        columns[name] = segment_columns
    manifest = seg.Manifest(
        entries=entries,
        segments=columns,
        schema_version=SCHEMA_VERSION,
        engine_version=__version__,
        generation=1,
        manifest_version=seg.MANIFEST_VERSION,
    )
    assert seg.write_manifest(directory, manifest)
    return SweepStore(directory)


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    base = tmp_path_factory.mktemp("perf-serve")
    store = _packed_store(base / "store")
    assert len(list((base / "store").glob(seg.SIDECAR_PATTERN))) >= 1
    server = SweepServer(base / "store")
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield store, f"http://127.0.0.1:{server.port}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def _get(url: str) -> bytes:
    with urllib.request.urlopen(url) as response:
        assert response.status == 200
        return response.read()


def _percentile(samples: list, q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _cold_pivot(directory) -> dict:
    """What every reader pays without the daemon: a fresh store view,
    a full bulk load, and the aggregation -- per query."""
    table = ResultTable.from_store(SweepStore(directory))
    return pivot_payload(
        table, index="benchmark", column="technique",
        value="analytic_success",
    )


def test_cached_pivot_at_least_5x_faster_than_cold_query(daemon, perf):
    store, base = daemon

    # Parity first: the daemon must serve the exact in-process payload,
    # or the latency ratio measures nothing.
    served = json.loads(_get(base + PIVOT_PATH))
    want = json.loads(json.dumps(_cold_pivot(store.directory)))
    assert served == want

    # Warm: the generation cache now holds the rendered payload.
    for _ in range(2):
        _get(base + PIVOT_PATH)

    cached: list = []
    for _ in range(21):
        start = time.perf_counter()
        _get(base + PIVOT_PATH)
        cached.append(time.perf_counter() - start)

    cold: list = []
    for _ in range(5):
        start = time.perf_counter()
        _cold_pivot(store.directory)
        cold.append(time.perf_counter() - start)

    p50_cached = _percentile(cached, 0.50)
    p50_cold = _percentile(cold, 0.50)
    speedup_raw = p50_cold / p50_cached
    perf(
        "serve.cached_pivot_vs_cold",
        records=RECORDS,
        cached_p50_s=p50_cached,
        cached_p99_s=_percentile(cached, 0.99),
        cold_p50_s=p50_cold,
        speedup=min(speedup_raw, TREND_CAP),
        speedup_raw=speedup_raw,
        gate=GATE,
    )
    assert speedup_raw >= GATE, (
        f"generation-cached /pivot p50 only {speedup_raw:.1f}x faster than "
        f"a cold in-process query ({p50_cached * 1e3:.2f} ms vs "
        f"{p50_cold * 1e3:.2f} ms over {RECORDS} records)"
    )


def test_concurrent_client_latency_recorded_and_bounded(daemon, perf):
    store, base = daemon
    paths = [
        PIVOT_PATH,
        "/marginal",
        "/stats",
        "/crossovers?axis=cz_error",
    ]
    for path in paths:  # warm every payload once
        _get(base + path)

    latencies: list = []
    lock = threading.Lock()
    failures: list = []

    def client(worker: int) -> None:
        mine: list = []
        try:
            for j in range(REQUESTS_PER_CLIENT):
                path = paths[(worker + j) % len(paths)]
                start = time.perf_counter()
                _get(base + path)
                mine.append(time.perf_counter() - start)
        except Exception as exc:
            with lock:
                failures.append(repr(exc))
            return
        with lock:
            latencies.extend(mine)

    threads = [
        threading.Thread(target=client, args=(worker,))
        for worker in range(CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)

    assert not failures
    assert len(latencies) == CLIENTS * REQUESTS_PER_CLIENT

    p50 = _percentile(latencies, 0.50)
    p99 = _percentile(latencies, 0.99)

    start = time.perf_counter()
    _cold_pivot(store.directory)
    cold_s = time.perf_counter() - start

    # Recorded (no `speedup` field -> trend-visible, not trend-gated:
    # tail latency under thread contention is too jittery for a hard
    # cross-machine ratio), but sanity-bounded right here: even p99
    # under 8 hammering clients must beat one cold in-process query.
    perf(
        "serve.concurrent_clients",
        records=RECORDS,
        clients=CLIENTS,
        requests=len(latencies),
        p50_s=p50,
        p99_s=p99,
        cold_p50_s=cold_s,
    )
    assert p99 < cold_s, (
        f"concurrent cached p99 {p99 * 1e3:.2f} ms did not beat one cold "
        f"in-process query ({cold_s * 1e3:.2f} ms)"
    )
