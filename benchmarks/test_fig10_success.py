"""Regenerate Fig. 10: probability of success on the 256-qubit machine.

Shape assertions: Parallax achieves the highest (or tied-best) success on
nearly every benchmark, and its average improvement over both baselines is
positive (the paper reports +46% over Graphine and +28% over ELDI).
"""

import numpy as np
from conftest import run_once

from repro.experiments.fig10 import run_fig10


def test_fig10_success(benchmark, bench_set):
    table = run_once(benchmark, run_fig10, bench_set)
    print("\n" + table.format())

    graphine = np.array(table.column("graphine"), dtype=float)
    eldi = np.array(table.column("eldi"), dtype=float)
    parallax = np.array(table.column("parallax"), dtype=float)

    # Parallax is best or within 8% of best on every benchmark (the paper
    # itself concedes TFIM).
    best = np.maximum(graphine, eldi)
    assert np.all(parallax >= best * 0.92)

    # Positive average improvement where baselines are nonzero.
    mask = (graphine > 0) & (eldi > 0)
    gain_g = np.mean(parallax[mask] / graphine[mask] - 1.0)
    gain_e = np.mean(parallax[mask] / eldi[mask] - 1.0)
    print(f"mean success gain vs graphine: {gain_g:+.1%} (paper: +46%)")
    print(f"mean success gain vs eldi:     {gain_e:+.1%} (paper: +28%)")
    assert gain_g > 0.0
    assert gain_e > 0.0


def test_fig10_success_anticorrelates_with_cz(benchmark, bench_set):
    from repro.experiments.fig9 import run_fig9

    fig10 = run_once(benchmark, run_fig10, bench_set)
    fig9 = run_fig9(bench_set)
    for row9, row10 in zip(fig9.rows, fig10.rows):
        # Strictly more CZ gates for a baseline implies no higher success.
        if row9[1] > row9[3] * 1.05:
            assert row10[1] <= row10[3] * 1.05
