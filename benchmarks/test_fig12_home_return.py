"""Regenerate Fig. 12: the home-return ablation.

Shape assertions: on movement-heavy circuits (QV), returning AOD atoms home
after each layer is substantially faster because drift causes failed moves
and 100 us trap changes (the paper reports 40% lower runtime on average);
on movement-light circuits the two modes are within a modest factor.
"""

from conftest import run_once

from repro.experiments.fig12 import run_fig12


def test_fig12_home_return(benchmark, bench_set):
    benches = tuple(bench_set) + (("QV",) if "QV" not in bench_set else ())
    table = run_once(benchmark, run_fig12, benches)
    print("\n" + table.format())

    rows = {r[0]: r for r in table.rows}
    no_home_qv, home_qv = rows["QV"][1], rows["QV"][2]
    print(f"QV runtime: no-home {no_home_qv:.0f} us vs home {home_qv:.0f} us")
    assert home_qv < no_home_qv * 0.75

    for bench, row in rows.items():
        assert row[2] <= row[1] * 1.5, bench


def test_fig12_cz_counts_unchanged(benchmark):
    # The ablation must not change gate counts (paper: "no impact on the CZ
    # gate count").
    from repro.experiments.common import compile_one
    from repro.hardware.spec import HardwareSpec

    spec = HardwareSpec.atom_computing()

    def counts():
        with_home = compile_one("parallax", "ADV", spec, return_home=True)
        without = compile_one("parallax", "ADV", spec, return_home=False)
        return with_home, without

    with_home, without = run_once(benchmark, counts)
    assert with_home.num_cz == without.num_cz
    assert with_home.num_u3 == without.num_u3
