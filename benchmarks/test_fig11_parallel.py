"""Regenerate Fig. 11: total execution time vs. parallelization factor.

Shape assertions: execution time decreases roughly as 1/P for every
technique; the largest feasible factors match the paper's dense-tiling
maxima; and the best-factor time is a large reduction over serial (paper:
97% on average for Parallax).
"""

from conftest import run_once

from repro.core.parallel_shots import parallelization_factor
from repro.experiments.common import compile_one
from repro.experiments.fig11 import run_fig11
from repro.hardware.spec import HardwareSpec


def test_fig11_parallel_shots(benchmark, fig11_set):
    table = run_once(benchmark, run_fig11, fig11_set)
    print("\n" + table.format())

    by_bench: dict[str, list] = {}
    for row in table.rows:
        by_bench.setdefault(row[0], []).append(row)

    for bench, rows in by_bench.items():
        times = [r[4] for r in rows]  # parallax seconds
        factors = [r[1] for r in rows]
        # Monotone non-increasing in the factor.
        assert all(a >= b for a, b in zip(times, times[1:])), bench
        # Best factor cuts the serial time by at least ~10x when wide
        # parallelism is available.
        if factors[-1] >= 16:
            assert times[-1] <= times[0] / 10.0, bench


def test_fig11_paper_maxima(benchmark):
    # The exact Fig. 11 x-axis maxima on the 1,225-qubit Atom machine.
    expected = {"ADV": 121, "KNN": 49, "QV": 25, "SECA": 64, "SQRT": 49, "WST": 25}
    spec = HardwareSpec.atom_computing()

    def factors():
        return {
            bench: parallelization_factor(compile_one("parallax", bench, spec), spec)
            for bench in expected
        }

    got = run_once(benchmark, factors)
    print(f"\nmax parallelization factors: {got}")
    assert got == expected
