"""Micro-benchmarks of the compiler's components.

These time the individual pipeline stages (transpilation, placement,
discretization, routing, scheduling) so regressions in any stage are
visible independently of the figure-level sweeps.
"""

import numpy as np
import pytest

from repro.baselines.router import SwapRouter
from repro.benchcircuits import get_benchmark
from repro.circuit.dag import DependencyDAG
from repro.core.aod_selection import select_aod_qubits
from repro.core.machine import MachineState
from repro.core.scheduler import GateScheduler
from repro.hardware.grid import discretize_positions
from repro.hardware.spec import HardwareSpec
from repro.layout.graphine import generate_layout
from repro.layout.interaction_graph import build_interaction_graph
from repro.layout.placement import PlacementConfig, place_qubits
from repro.transpile.pipeline import transpile


@pytest.fixture(scope="module")
def spec():
    return HardwareSpec.quera_aquila()


@pytest.fixture(scope="module")
def qaoa_basis():
    return transpile(get_benchmark("QAOA"))


def test_perf_transpile_qaoa(benchmark):
    circuit = get_benchmark("QAOA")
    result = benchmark(transpile, circuit)
    assert result.count_ops().get("cz", 0) > 0


def test_perf_transpile_tfim(benchmark):
    circuit = get_benchmark("TFIM")
    result = benchmark(transpile, circuit)
    assert result.count_ops()["cz"] == 2540


def test_perf_spring_placement(benchmark, qaoa_basis):
    graph = build_interaction_graph(qaoa_basis)
    positions = benchmark(place_qubits, graph, PlacementConfig(method="spring"))
    assert positions.shape == (10, 2)


def test_perf_dual_annealing_placement(benchmark, qaoa_basis):
    graph = build_interaction_graph(qaoa_basis)
    config = PlacementConfig(method="dual_annealing", maxiter=10, seed=3)
    positions = benchmark.pedantic(
        place_qubits, args=(graph, config), rounds=1, iterations=1
    )
    assert positions.shape == (10, 2)


def test_perf_discretization(benchmark, spec):
    unit = np.random.default_rng(0).random((128, 2))
    positions, sites = benchmark(discretize_positions, unit, spec)
    assert len(set(sites)) == 128


def test_perf_dag_construction(benchmark, qaoa_basis):
    dag = benchmark(DependencyDAG, qaoa_basis)
    assert dag.num_remaining == len(qaoa_basis)


def test_perf_swap_routing(benchmark, qaoa_basis, spec):
    positions = np.array(
        [[(i % 16) * spec.grid_pitch_um, (i // 16) * spec.grid_pitch_um]
         for i in range(10)]
    )

    def route():
        return SwapRouter(positions, spec.grid_pitch_um * 1.5).route(qaoa_basis)

    routed = benchmark(route)
    assert routed.num_cz_expanded >= qaoa_basis.count_ops()["cz"]


def test_perf_full_parallax_schedule(benchmark, qaoa_basis, spec):
    layout = generate_layout(qaoa_basis)

    def schedule():
        state = MachineState(spec, layout)
        select_aod_qubits(qaoa_basis, state)
        return GateScheduler(qaoa_basis, state).run()

    stats = benchmark(schedule)
    assert sum(len(l.gates) for l in stats.layers) == len(qaoa_basis)
