"""Store scale-envelope gates: O(delta) publish and range-lease claims.

The acceptance bars for the scale envelope (PR 7), measured on a
10^5-record store:

- **incremental publish >= 5x faster** -- publishing a freshly sealed
  segment must cost one delta-log append (O(batch)), not a full manifest
  checkpoint rewrite (O(store)).  This is what keeps ``--seal`` workers'
  publication cost flat as a million-record sweep fills in.
- **>= 10x fewer lease metadata ops per evaluated scenario** -- claiming
  contiguous key ranges (``--lease-range``) amortizes one lease file's
  create/heartbeat/release over the whole range, instead of paying the
  full claim protocol per scenario.  Counted at the ``os``-level call
  boundary, filtered to the ``leases/`` directory, driving the real
  SweepStore lease API.

Alongside the speed gates, the parity gate asserts what makes them
trustworthy: merging the 10^5-record store (folding its delta log and
rewriting its segments into one fresh generation) must not change a single
analysis row.
"""

import hashlib
import io
import os
import shutil
import time

import pytest

from repro import __version__
from repro.sweeps import ResultTable, SweepStore, range_blocks
from repro.sweeps import segments as seg
from repro.sweeps.store import SCHEMA_VERSION

RECORDS = 100_000
PUBLISH_BATCH = 256
PUBLISH_GATE = 5.0
LEASE_KEYS = 4096
LEASE_RANGE = 128
LEASE_GATE = 10.0


def synth_record(i: int) -> tuple[str, dict]:
    """A schema-complete record shaped like real sweep output, already
    carrying the envelope fields ``put`` would add (so it can be packed
    into segments directly, skipping 10^5 loose-file writes)."""
    key = hashlib.sha256(f"perf-scale-{i}".encode()).hexdigest()
    return key, {
        "key": key,
        "schema_version": SCHEMA_VERSION,
        "engine_version": __version__,
        "scenario": {
            "benchmark": ("ADD", "QAOA", "MUL", "QFT")[i % 4],
            "technique": ("parallax", "graphine", "eldi")[i % 3],
            "shots": 1000,
            "seed": 17 * i + 3,
            "spec_name": "quera_aquila",
            "spec_overrides": {"cz_error": 0.0012 * (1 + i % 5)},
            "noise": {"include_readout": bool(i % 2)},
            "fingerprints": {
                "circuit": "c" * 64, "spec": "s" * 64, "config": "g" * 64,
            },
        },
        "result": {
            "num_cz": 100 + i % 37, "num_u3": 200 + i % 53, "num_ccz": i % 3,
            "num_swaps": i % 7, "num_moves": 40 + i % 11,
            "trap_change_events": i % 5, "num_layers": 20 + i % 13,
            "runtime_us": 500.0 + 0.25 * (i % 997),
        },
        "outcome": {
            "shots": 1000, "successes": 600 + i % 300,
            "gate_failures": 100 + i % 50, "movement_failures": 80 + i % 40,
            "decoherence_failures": 60 + i % 30, "readout_failures": i % 20,
            "success_rate": (600 + i % 300) / 1000.0,
            "stderr": 0.015 + 1e-5 * (i % 100),
        },
        "analytic_success": 0.62 + 1e-4 * (i % 1000),
    }


@pytest.fixture(scope="module")
def big_store(tmp_path_factory):
    """A 10^5-record generation-1 store plus one delta publication, built
    through the segment writer directly (packing is the subject under
    test; filling 10^5 loose files is not)."""
    directory = tmp_path_factory.mktemp("perf-scale") / "store"
    directory.mkdir()
    records = dict(synth_record(i) for i in range(RECORDS))
    ordered = sorted(records)
    entries: dict = {}
    columns: dict = {}
    namer = seg.generation_segment_namer(1)
    for start in range(0, RECORDS, SweepStore.DEFAULT_MERGE_TARGET):
        chunk = [records[k] for k in ordered[start : start + SweepStore.DEFAULT_MERGE_TARGET]]
        name, segment_entries, segment_columns = seg.write_segment(
            directory, chunk, namer=namer
        )
        for entry in segment_entries:
            entries[entry.key] = entry
        columns[name] = segment_columns
    manifest = seg.Manifest(
        entries=entries,
        segments=columns,
        schema_version=SCHEMA_VERSION,
        engine_version=__version__,
        generation=1,
        manifest_version=seg.MANIFEST_VERSION,
    )
    assert seg.write_manifest(directory, manifest)
    # One publication on top of the checkpoint, so readers replay a
    # non-empty delta log at scale.
    batch = dict(synth_record(RECORDS + i) for i in range(PUBLISH_BATCH))
    name, batch_entries, batch_columns = seg.write_segment(
        directory, [batch[k] for k in sorted(batch)]
    )
    assert seg.append_manifest_delta(
        directory, 1, name, batch_entries, batch_columns
    )
    store = SweepStore(directory)
    stats = store.stats()
    assert stats.sealed == RECORDS + PUBLISH_BATCH
    assert stats.deltas == 1
    return store, manifest


def _best_of(fn, rounds):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_incremental_publish_at_least_5x_faster_than_checkpoint(
    big_store, tmp_path, perf
):
    _, manifest = big_store
    scratch_delta = tmp_path / "delta"
    scratch_checkpoint = tmp_path / "checkpoint"
    scratch_delta.mkdir()
    scratch_checkpoint.mkdir()
    batches = iter(range(10**6, 10**7, 10**4))
    written = {"bytes": 0}
    real_write = seg.atomic_write_bytes

    def counted_write(path, data):
        written["bytes"] += len(data)
        return real_write(path, data)

    def publish_delta():
        base = next(batches)
        batch = dict(synth_record(base + i) for i in range(PUBLISH_BATCH))
        name, entries, columns = seg.write_segment(
            scratch_delta, [batch[k] for k in sorted(batch)]
        )
        log = scratch_delta / seg.MANIFEST_DIR_NAME / seg.delta_log_name(1)
        before = log.stat().st_size if log.exists() else 0
        assert seg.append_manifest_delta(
            scratch_delta, 1, name, entries, columns
        )
        written["bytes"] += log.stat().st_size - before

    def publish_checkpoint():
        # What every publication cost before the delta log: sealing the
        # same batch, then rewriting the full 10^5-entry manifest.
        base = next(batches)
        batch = dict(synth_record(base + i) for i in range(PUBLISH_BATCH))
        name, entries, columns = seg.write_segment(
            scratch_checkpoint, [batch[k] for k in sorted(batch)]
        )
        full = seg.Manifest(
            entries={**manifest.entries, **{e.key: e for e in entries}},
            segments={**manifest.segments, name: columns},
            schema_version=SCHEMA_VERSION,
            engine_version=__version__,
            generation=1,
            manifest_version=seg.MANIFEST_VERSION,
        )
        assert seg.write_manifest(scratch_checkpoint, full)

    publish_delta()  # warm both paths before measuring
    publish_checkpoint()

    # Walltime gate: 5x with a wide margin (measured ~25-40x locally; the
    # checkpoint side rewrites a ~12 MB manifest, the delta side appends
    # one fsynced line).
    t_delta = _best_of(publish_delta, rounds=3)
    t_checkpoint = _best_of(publish_checkpoint, rounds=3)
    walltime_speedup = t_checkpoint / t_delta

    # Trajectory gate: the bytes written per publish.  Deterministic for
    # fixed RECORDS/PUBLISH_BATCH (canonical JSON in, canonical JSON out),
    # so the trend gate never trips on a loaded runner's fsync latency,
    # while still measuring exactly the O(batch)-vs-O(store) claim.
    seg.atomic_write_bytes = counted_write
    try:
        written["bytes"] = 0
        publish_delta()
        bytes_delta = written["bytes"]
        written["bytes"] = 0
        publish_checkpoint()
        bytes_checkpoint = written["bytes"]
    finally:
        seg.atomic_write_bytes = real_write
    byte_ratio = bytes_checkpoint / bytes_delta

    perf(
        "store_scale.delta_publish_vs_checkpoint",
        records=RECORDS,
        batch=PUBLISH_BATCH,
        delta_s=t_delta,
        checkpoint_s=t_checkpoint,
        walltime_speedup=walltime_speedup,
        bytes_delta=bytes_delta,
        bytes_checkpoint=bytes_checkpoint,
        speedup=byte_ratio,
        gate=PUBLISH_GATE,
    )
    assert walltime_speedup >= PUBLISH_GATE, (
        f"delta publish only {walltime_speedup:.1f}x faster than a "
        f"checkpoint rewrite ({t_delta * 1e3:.1f} ms vs "
        f"{t_checkpoint * 1e3:.1f} ms for a {PUBLISH_BATCH}-record batch "
        f"over {RECORDS} records)"
    )
    assert byte_ratio >= PUBLISH_GATE, (
        f"delta publish writes only {byte_ratio:.1f}x fewer bytes than a "
        f"checkpoint rewrite ({bytes_delta} vs {bytes_checkpoint})"
    )


class _LeaseOpCounter:
    """Count ``os``-level filesystem calls that touch ``leases/``."""

    PATCHED = ("open", "stat", "rename", "link", "utime", "unlink", "mkdir")

    def __init__(self):
        self.count = 0
        self._originals = {}
        self._io_open = None

    def _wrap(self, fn):
        def counted(path, *args, **kwargs):
            if "leases" in str(path):
                self.count += 1
            return fn(path, *args, **kwargs)

        return counted

    def __enter__(self):
        for name in self.PATCHED:
            self._originals[name] = getattr(os, name)
            setattr(os, name, self._wrap(self._originals[name]))
        self._io_open = io.open
        io.open = self._wrap(self._io_open)
        return self

    def __exit__(self, *exc):
        for name, fn in self._originals.items():
            setattr(os, name, fn)
        io.open = self._io_open
        return False


def _claim_all(store: SweepStore, resources: list) -> None:
    """The worker claim pattern per resource: acquire, work, release."""
    for name in resources:
        assert store.acquire_lease(name, "bench-worker") == "acquired"
        store.release_lease(name, "bench-worker")


def test_range_leases_cut_metadata_ops_at_least_10x(tmp_path, perf):
    keys = [
        hashlib.sha256(f"lease-scale-{i}".encode()).hexdigest()
        for i in range(LEASE_KEYS)
    ]
    per_key_store = SweepStore(tmp_path / "per-key")
    ranged_store = SweepStore(tmp_path / "ranged")
    per_key = [name for name, _ in range_blocks(keys, 1)]
    ranged = [name for name, _ in range_blocks(keys, LEASE_RANGE)]
    assert len(per_key) == LEASE_KEYS
    assert len(ranged) == LEASE_KEYS // LEASE_RANGE

    with _LeaseOpCounter() as baseline:
        _claim_all(per_key_store, per_key)
    with _LeaseOpCounter() as amortized:
        _claim_all(ranged_store, ranged)

    ops_per_key = baseline.count / LEASE_KEYS
    ops_ranged = amortized.count / LEASE_KEYS
    assert ops_per_key > 0 and ops_ranged > 0
    reduction = ops_per_key / ops_ranged
    perf(
        "store_scale.range_lease_metadata_ops",
        scenarios=LEASE_KEYS,
        lease_range=LEASE_RANGE,
        ops_per_scenario_per_key=ops_per_key,
        ops_per_scenario_ranged=ops_ranged,
        speedup=reduction,
        gate=LEASE_GATE,
    )
    assert reduction >= LEASE_GATE, (
        f"range leases only cut lease metadata ops {reduction:.1f}x "
        f"({ops_per_key:.2f} -> {ops_ranged:.4f} ops/scenario at "
        f"lease_range={LEASE_RANGE})"
    )


def test_merge_at_scale_preserves_every_analysis_row(
    big_store, tmp_path, perf
):
    store, _ = big_store
    table_before = ResultTable.from_store(store)
    assert len(table_before) == RECORDS + PUBLISH_BATCH

    merged_dir = tmp_path / "merged"
    shutil.copytree(store.directory, merged_dir)
    report = SweepStore(merged_dir).merge()
    assert report.merged == RECORDS + PUBLISH_BATCH
    merged = SweepStore(merged_dir)
    stats = merged.stats()
    assert stats.deltas == 0 and stats.generation == 2

    table_after = ResultTable.from_store(merged)
    assert table_after.names == table_before.names
    assert table_after.rows == table_before.rows
    perf(
        "store_scale.merge_parity",
        records=RECORDS + PUBLISH_BATCH,
        segments_before=store.stats().segments,
        segments_after=stats.segments,
        identical=True,
    )
