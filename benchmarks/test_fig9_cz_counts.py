"""Regenerate Fig. 9: CZ gate counts per technique on the 256-qubit machine.

Shape assertions (matching the paper's claims):
- Parallax has the fewest CZ gates on every benchmark (zero SWAPs);
- averaged over the sweep, Parallax reduces CZ counts vs. both baselines
  (the paper reports -39% vs Graphine and -25% vs ELDI).
"""

import numpy as np
from conftest import run_once

from repro.experiments.fig9 import run_fig9


def test_fig9_cz_counts(benchmark, bench_set):
    table = run_once(benchmark, run_fig9, bench_set)
    print("\n" + table.format())

    graphine = np.array(table.column("graphine_cz"), dtype=float)
    eldi = np.array(table.column("eldi_cz"), dtype=float)
    parallax = np.array(table.column("parallax_cz"), dtype=float)

    # Parallax minimum everywhere.
    assert np.all(parallax <= graphine)
    assert np.all(parallax <= eldi)

    # Average reduction is substantial (paper: 39% / 25%).
    reduction_vs_graphine = np.mean(1.0 - parallax / graphine)
    reduction_vs_eldi = np.mean(1.0 - parallax / eldi)
    print(f"mean CZ reduction vs graphine: {reduction_vs_graphine:.1%} (paper: 39%)")
    print(f"mean CZ reduction vs eldi:     {reduction_vs_eldi:.1%} (paper: 25%)")
    assert reduction_vs_graphine > 0.10
    assert reduction_vs_eldi > 0.10


def test_fig9_low_connectivity_parity(benchmark):
    # TFIM (connectivity <= 2): Parallax shows little advantage over a
    # technique that needs no SWAPs there -- its count equals the base count
    # and baselines are within a modest factor.
    table = run_once(benchmark, run_fig9, ("TFIM",))
    print("\n" + table.format())
    row = table.rows[0]
    graphine_cz, eldi_cz, parallax_cz = row[1], row[2], row[3]
    assert parallax_cz <= eldi_cz <= parallax_cz * 2.0
