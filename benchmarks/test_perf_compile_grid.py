"""Whole-grid compile-path speedup gate (vectorized hot path, PR 6).

The gate compiles the full task list behind the default 108-scenario sweep
grid twice from cold caches:

- **vectorized**: the production path -- numpy candidate/violation kernels
  in the movement engine, batched scheduler blockade checks, hoisted
  placement objective arrays, fingerprint memoization, and in-flight
  deduplication of content-identical tasks;
- **reference**: the retained pre-vectorization path behind
  :func:`repro.utils.kernels.use_reference_kernels` -- scalar kernels,
  no memoization, no in-flight dedup (every task compiles independently,
  exactly like the seed's dispatch).

Two assertions: the vectorized path must be at least ``MIN_SPEEDUP``x
faster end to end, and every one of the 108 results must serialize
byte-identically between the two modes -- the speedup is inadmissible if
it changes a single compilation.  Timings are best-of-N so scheduler
noise cannot flake the gate, and the measurement is reported through
:func:`record_perf` for the committed perf trajectory
(``BENCH_6.json``, compared by ``tools/bench_trajectory.py`` in CI).
"""

import time

import pytest

from repro.core.serialize import dumps_result
from repro.experiments.common import (
    clear_caches,
    prepared_circuit,
    settings_config_factory,
)
from repro.pipeline.batch import CompileTask, compile_tasks
from repro.pipeline.cache import CompilationCache
from repro.sweeps.grid import SweepGrid
from repro.sweeps.runner import plan_sweep
from repro.utils.kernels import use_reference_kernels

#: The gated end-to-end speedup over the whole default grid.
MIN_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def grid_tasks():
    """One CompileTask per scenario of the default grid (duplicates kept).

    The per-scenario list -- not the deduplicated point list -- is the
    honest workload: the seed's dispatch compiled every scenario's point
    independently against a cold cache, and the in-flight dedup that
    collapses the duplicates is part of what this gate measures.
    """
    grid = SweepGrid.default()
    plan = plan_sweep(grid)
    factory = settings_config_factory(plan.settings)
    tasks = []
    for compile_id in plan.compile_ids:
        benchmark_name, technique, spec = plan.point_specs[compile_id]
        circuit = prepared_circuit(benchmark_name)
        tasks.append(
            CompileTask(
                technique, circuit, spec, factory(technique, circuit, spec)
            )
        )
    return tasks


def _compile_grid(tasks):
    """One cold-cache sequential compile of the whole task list."""
    clear_caches()
    return compile_tasks(tasks, workers=1, cache=CompilationCache())


def _best_of(fn, rounds):
    best_t, out = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if elapsed < best_t:
            best_t, out = elapsed, result
    return best_t, out


def test_grid_compile_speedup_and_bit_identity(grid_tasks, perf):
    _compile_grid(grid_tasks)  # warm numpy dispatch + circuit fingerprints
    t_vec, vec_results = _best_of(lambda: _compile_grid(grid_tasks), rounds=3)
    with use_reference_kernels():
        t_ref, ref_results = _best_of(
            lambda: _compile_grid(grid_tasks), rounds=2
        )

    assert len(vec_results) == len(ref_results) == len(grid_tasks)
    for vec, ref in zip(vec_results, ref_results):
        assert dumps_result(vec) == dumps_result(ref)  # byte-identical

    unique = len({id(result) for result in vec_results})
    speedup = t_ref / t_vec
    perf(
        "compile_grid.vectorized_vs_reference",
        tasks=len(grid_tasks),
        unique_points=unique,
        vectorized_s=t_vec,
        reference_s=t_ref,
        speedup=speedup,
        gate=MIN_SPEEDUP,
    )
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized grid compile only {speedup:.1f}x faster than the "
        f"reference path ({t_vec:.3f}s vs {t_ref:.3f}s; gate {MIN_SPEEDUP}x)"
    )


def test_grid_compile_timing(benchmark, grid_tasks):
    """pytest-benchmark visibility for the production path (one round)."""
    results = benchmark.pedantic(
        _compile_grid, args=(grid_tasks,), rounds=1, iterations=1
    )
    assert len(results) == len(grid_tasks)
