"""Ablation bench: shortest-path vs lookahead SWAP routing for baselines.

The baselines' SWAP counts determine their CZ overhead (3 CZ per SWAP); the
SABRE-style lookahead router is a strictly-stronger baseline, so showing
Parallax still wins against it strengthens the Fig. 9 conclusion.
"""

from conftest import run_once

from repro.baselines.eldi import EldiCompiler, EldiConfig
from repro.baselines.router import RouterConfig
from repro.core.compiler import ParallaxCompiler, ParallaxConfig
from repro.experiments.common import prepared_circuit
from repro.hardware.spec import HardwareSpec

BENCHES = ("QAOA", "QV", "SAT")


def test_ablation_router_strategy(benchmark):
    spec = HardwareSpec.quera_aquila()
    lookahead = RouterConfig(strategy="lookahead")

    def run():
        out = {}
        for bench in BENCHES:
            basis = prepared_circuit(bench)
            eldi_sp = EldiCompiler(spec, EldiConfig(transpile_input=False)).compile(basis)
            eldi_la = EldiCompiler(
                spec, EldiConfig(transpile_input=False, router=lookahead)
            ).compile(basis)
            parallax = ParallaxCompiler(
                spec, ParallaxConfig(transpile_input=False)
            ).compile(basis)
            out[bench] = (eldi_sp, eldi_la, parallax)
        return out

    results = run_once(benchmark, run)
    for bench, (sp, la, parallax) in results.items():
        print(
            f"\n{bench}: eldi shortest-path swaps={sp.num_swaps} cz={sp.num_cz} | "
            f"eldi lookahead swaps={la.num_swaps} cz={la.num_cz} | "
            f"parallax cz={parallax.num_cz}"
        )
        # Lookahead is never much worse, usually better.
        assert la.num_swaps <= sp.num_swaps * 1.1 + 2
        # Parallax beats even the strengthened baseline.
        assert parallax.num_cz <= la.num_cz
