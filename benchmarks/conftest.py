"""Shared fixtures for the benchmark harness.

Each ``test_figN_*.py`` / ``test_tableN_*.py`` module regenerates one table
or figure of the paper: it runs the corresponding experiment (timed by
pytest-benchmark), prints the same rows the paper reports, and asserts the
*shape* of the result (who wins, roughly by how much) rather than absolute
numbers, since the substrate is a simulator rather than the authors'
testbed.

Benchmarks default to the quick benchmark subset so a full
``pytest benchmarks/ --benchmark-only`` run stays in the minutes range.
Set ``REPRO_BENCH_FULL=1`` to sweep all 18 Table III workloads.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.common import ALL_BENCHMARKS, QUICK_BENCHMARKS

#: Benchmarks every figure module sweeps.
FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"
BENCH_SET: tuple[str, ...] = ALL_BENCHMARKS if FULL else QUICK_BENCHMARKS

#: Subset used by the movement/parallelization figures.
FIG11_SET: tuple[str, ...] = (
    ("ADV", "KNN", "QV", "SECA", "SQRT", "WST") if FULL else ("ADV", "SECA", "WST")
)


@pytest.fixture(scope="session")
def bench_set() -> tuple[str, ...]:
    return BENCH_SET


@pytest.fixture(scope="session")
def fig11_set() -> tuple[str, ...]:
    return FIG11_SET


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    Experiment runners memoize compilations, so multi-round timing would
    measure cache hits; one timed round reflects the real regeneration cost.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
