"""Shared fixtures for the benchmark harness.

Each ``test_figN_*.py`` / ``test_tableN_*.py`` module regenerates one table
or figure of the paper: it runs the corresponding experiment (timed by
pytest-benchmark), prints the same rows the paper reports, and asserts the
*shape* of the result (who wins, roughly by how much) rather than absolute
numbers, since the substrate is a simulator rather than the authors'
testbed.

Benchmarks default to the quick benchmark subset so a full
``pytest benchmarks/ --benchmark-only`` run stays in the minutes range.
Set ``REPRO_BENCH_FULL=1`` to sweep all 18 Table III workloads.

Perf trajectory: the speedup-gate modules (``test_perf_noisy_shots``,
``test_perf_store_load``) report their measured timings through
:func:`record_perf`; when ``PERF_JSON`` is set in the environment, the
session writes every entry to that path as machine-readable JSON.  CI's
``perf-trajectory`` job uploads the file (``BENCH_4.json``) as a workflow
artifact, so the perf numbers are tracked per-PR instead of living and
dying inside a log.
"""

from __future__ import annotations

import json
import os
import platform

import pytest

from repro.experiments.common import ALL_BENCHMARKS, QUICK_BENCHMARKS

_PERF_ENTRIES: list[dict] = []


def record_perf(name: str, **fields) -> None:
    """Log one perf measurement (seconds, speedups, sizes -- any scalars).

    Entries accumulate for the whole pytest session and are flushed to
    ``$PERF_JSON`` at exit; without the env var this is a no-op sink, so
    the gates stay dependency-free locally.
    """
    _PERF_ENTRIES.append({"name": name, **fields})


def pytest_sessionfinish(session, exitstatus):
    path = os.environ.get("PERF_JSON")
    if not path or not _PERF_ENTRIES:
        return
    from repro import __version__

    payload = {
        "schema_version": 1,
        "engine_version": __version__,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "exit_status": int(exitstatus),
        "entries": _PERF_ENTRIES,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

#: Benchmarks every figure module sweeps.
FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"
BENCH_SET: tuple[str, ...] = ALL_BENCHMARKS if FULL else QUICK_BENCHMARKS

#: Subset used by the movement/parallelization figures.
FIG11_SET: tuple[str, ...] = (
    ("ADV", "KNN", "QV", "SECA", "SQRT", "WST") if FULL else ("ADV", "SECA", "WST")
)


@pytest.fixture(scope="session")
def perf():
    """The :func:`record_perf` sink, as a fixture (no conftest imports)."""
    return record_perf


@pytest.fixture(scope="session")
def bench_set() -> tuple[str, ...]:
    return BENCH_SET


@pytest.fixture(scope="session")
def fig11_set() -> tuple[str, ...]:
    return FIG11_SET


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    Experiment runners memoize compilations, so multi-round timing would
    measure cache hits; one timed round reflects the real regeneration cost.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
