"""Ablation bench: native CCZ composition vs 6-CZ Toffoli decomposition.

Quantifies the GEYSER-orthogonality discussion: on Toffoli-heavy workloads
(SAT, SQRT, KNN), keeping three-qubit gates as native pulses cuts the
entangling-gate count and raises success probability.
"""

from conftest import run_once

from repro.benchcircuits import get_benchmark
from repro.core.compiler import ParallaxCompiler, ParallaxConfig
from repro.hardware.spec import HardwareSpec
from repro.noise import success_probability

TOFFOLI_HEAVY = ("SAT", "SQRT", "KNN")


def test_ablation_native_ccz(benchmark):
    spec = HardwareSpec.quera_aquila()

    def run():
        out = {}
        for bench in TOFFOLI_HEAVY:
            circuit = get_benchmark(bench)
            dec = ParallaxCompiler(spec).compile(circuit)
            nat = ParallaxCompiler(
                spec, ParallaxConfig(native_multiqubit=True)
            ).compile(circuit)
            out[bench] = (dec, nat)
        return out

    results = run_once(benchmark, run)
    for bench, (dec, nat) in results.items():
        p_dec = success_probability(dec)
        p_nat = success_probability(nat)
        print(
            f"\n{bench}: decomposed cz={dec.num_cz} p={p_dec:.4f} | "
            f"native cz={nat.num_cz} ccz={nat.num_ccz} p={p_nat:.4f}"
        )
        # Native composition reduces entangling operations...
        assert nat.num_cz + nat.num_ccz < dec.num_cz
        # ...and improves the success probability on Toffoli-heavy circuits.
        assert p_nat > p_dec
