"""Zero-copy read gate: mmap'd binary sidecars vs the JSON columnar path.

The acceptance bar for the zero-copy envelope (PR 8), measured on a
10^5-record store:

- **sidecar bulk load >= 5x faster** -- ``analysis_columns()`` over a
  store whose segments carry binary columnar sidecars must beat the same
  store read through its JSON columnar blocks by at least 5x, measured
  as *load + consume every numeric metric column*.  The sidecar path
  memory-maps each ``segment-*.cols`` file and serves null-free numeric
  columns as NumPy views over the mapping (no parse, no copy); the JSON
  path pays one ``json.loads`` per segment over megabytes of block.

Alongside the speed gate, the parity gates assert what makes it
trustworthy: both paths must produce identical aggregates, and the
sidecar path must actually serve ndarray views (if it silently degraded
to lists, the speedup would be measuring nothing).
"""

import hashlib
import time

import numpy as np
import pytest

from repro import __version__
from repro.sweeps import SweepStore
from repro.sweeps import segments as seg
from repro.sweeps.store import SCHEMA_VERSION

RECORDS = 100_000
GATE = 5.0
NUMERIC_COLUMNS = ("analytic_success", "success_rate", "runtime_us", "shots", "num_cz")


def synth_record(i: int) -> tuple[str, dict]:
    """A schema-complete record shaped like real sweep output, already
    carrying the envelope fields ``put`` would add (so it can be packed
    into segments directly, skipping 10^5 loose-file writes)."""
    key = hashlib.sha256(f"perf-mmap-{i}".encode()).hexdigest()
    return key, {
        "key": key,
        "schema_version": SCHEMA_VERSION,
        "engine_version": __version__,
        "scenario": {
            "benchmark": ("ADD", "QAOA", "MUL", "QFT")[i % 4],
            "technique": ("parallax", "graphine", "eldi")[i % 3],
            "shots": 1000,
            "seed": 17 * i + 3,
            "spec_name": "quera_aquila",
            "spec_overrides": {"cz_error": 0.0012 * (1 + i % 5)},
            "noise": {"include_readout": bool(i % 2)},
            "fingerprints": {
                "circuit": "c" * 64, "spec": "s" * 64, "config": "g" * 64,
            },
        },
        "result": {
            "num_cz": 100 + i % 37, "num_u3": 200 + i % 53, "num_ccz": i % 3,
            "num_swaps": i % 7, "num_moves": 40 + i % 11,
            "trap_change_events": i % 5, "num_layers": 20 + i % 13,
            "runtime_us": 500.0 + 0.25 * (i % 997),
        },
        "outcome": {
            "shots": 1000, "successes": 600 + i % 300,
            "gate_failures": 100 + i % 50, "movement_failures": 80 + i % 40,
            "decoherence_failures": 60 + i % 30, "readout_failures": i % 20,
            "success_rate": (600 + i % 300) / 1000.0,
            "stderr": 0.015 + 1e-5 * (i % 100),
        },
        "analytic_success": 0.62 + 1e-4 * (i % 1000),
    }


def _packed_store(directory, sidecars: bool) -> SweepStore:
    """One 10^5-record generation-1 store, sealed with or without binary
    sidecars -- same records, same segments, same manifest shape, so the
    only difference the benchmark can measure is the read path."""
    directory.mkdir()
    records = dict(synth_record(i) for i in range(RECORDS))
    ordered = sorted(records)
    entries: dict = {}
    columns: dict = {}
    namer = seg.generation_segment_namer(1)
    with seg.use_sidecars(sidecars):
        for start in range(0, RECORDS, SweepStore.DEFAULT_MERGE_TARGET):
            chunk = [
                records[k]
                for k in ordered[start : start + SweepStore.DEFAULT_MERGE_TARGET]
            ]
            name, segment_entries, segment_columns = seg.write_segment(
                directory, chunk, namer=namer
            )
            for entry in segment_entries:
                entries[entry.key] = entry
            columns[name] = segment_columns
    manifest = seg.Manifest(
        entries=entries,
        segments=columns,
        schema_version=SCHEMA_VERSION,
        engine_version=__version__,
        generation=1,
        manifest_version=seg.MANIFEST_VERSION,
    )
    assert seg.write_manifest(directory, manifest)
    return SweepStore(directory)


@pytest.fixture(scope="module")
def store_pair(tmp_path_factory):
    base = tmp_path_factory.mktemp("perf-mmap")
    sidecar_store = _packed_store(base / "sidecar", sidecars=True)
    json_store = _packed_store(base / "jsononly", sidecars=False)
    assert len(list((base / "sidecar").glob(seg.SIDECAR_PATTERN))) > 1
    assert list((base / "jsononly").glob(seg.SIDECAR_PATTERN)) == []
    return sidecar_store, json_store


def _best_of(fn, rounds):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _load_and_consume(store: SweepStore) -> float:
    """One query-layer read: bulk-load the store's analysis columns and
    aggregate every numeric metric column -- the work a serving layer
    does per cold query, whichever rung serves it."""
    names, columns = store.analysis_columns()
    by_name = dict(zip(names, columns))
    total = 0.0
    for name in NUMERIC_COLUMNS:
        column = by_name[name]
        if isinstance(column, np.ndarray):
            total += float(column.sum())
        else:
            total += float(sum(seg.materialize_column(column)))
    return total


def test_sidecar_bulk_load_at_least_5x_faster_than_json(store_pair, perf):
    sidecar_store, json_store = store_pair

    # Parity first: identical aggregates, or the speedup measures nothing.
    assert _load_and_consume(sidecar_store) == _load_and_consume(json_store)

    # The sidecar path must actually serve zero-copy ndarray views.
    names, columns = sidecar_store.analysis_columns()
    by_name = dict(zip(names, columns))
    for name in NUMERIC_COLUMNS:
        assert isinstance(by_name[name], np.ndarray), name

    t_sidecar = _best_of(lambda: _load_and_consume(sidecar_store), rounds=5)
    t_json = _best_of(lambda: _load_and_consume(json_store), rounds=3)
    speedup = t_json / t_sidecar
    perf(
        "store_mmap.sidecar_vs_json",
        records=RECORDS,
        segments=sidecar_store.stats().segments,
        sidecar_s=t_sidecar,
        json_s=t_json,
        speedup=speedup,
        gate=GATE,
    )
    assert speedup >= GATE, (
        f"mmap'd sidecar bulk load only {speedup:.1f}x faster than the "
        f"JSON columnar path ({t_sidecar * 1e3:.1f} ms vs "
        f"{t_json * 1e3:.1f} ms over {RECORDS} records)"
    )
