#!/usr/bin/env python
"""Offline approximation of the repo's ruff gate (see pyproject.toml).

CI runs the real, pinned ``ruff check`` (the ``lint`` job); this tool
exists for air-gapped development environments where ruff cannot be
installed.  It re-implements the *mechanical* subset of the configured
rule set -- unused/duplicated imports, comparison pitfalls, bare
excepts, trailing whitespace -- with Python's own ``ast`` and
``tokenize`` so a pre-push check needs nothing beyond the standard
library.  It is deliberately conservative: anything it flags, ruff
flags too; the reverse is not guaranteed, so a clean run here is
necessary but CI stays authoritative.

Usage::

    python tools/lint_local.py src tools benchmarks tests
"""

from __future__ import annotations

import ast
import sys
import tokenize
from pathlib import Path

#: Rules (by ruff code) this tool approximates.  Kept in sync with the
#: ``[tool.ruff.lint] select`` list in pyproject.toml.
APPROXIMATED = (
    "E401",  # multiple imports on one line
    "E711",  # comparison to None with ==/!=
    "E712",  # comparison to True/False with ==/!=
    "E722",  # bare except
    "E731",  # lambda assigned to a name
    "F401",  # imported but unused
    "F811",  # redefinition of an unused import
    "W291",  # trailing whitespace
    "W293",  # whitespace on blank line
    "W292",  # missing newline at end of file
)


class _ImportTracker(ast.NodeVisitor):
    """Collect module-scope import bindings and every name usage."""

    def __init__(self) -> None:
        self.imports: dict[str, tuple[int, str]] = {}
        self.used: set[str] = set()
        self.redefinitions: list[tuple[int, str]] = []

    def _bind(self, name: str, lineno: int, spelled: str) -> None:
        if name in self.imports:
            self.redefinitions.append((lineno, name))
        self.imports[name] = (lineno, spelled)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.partition(".")[0]
            # `import a.b` then `import a.c` both bind `a` -- distinct
            # submodule imports, not a redefinition (pyflakes semantics).
            if alias.asname is None and "." in alias.name:
                if bound not in self.imports:
                    self.imports[bound] = (node.lineno, alias.name)
                continue
            self._bind(bound, node.lineno, alias.name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "__future__":
            return  # never "unused": they act at compile time
        for alias in node.names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name
            # ``import X as X`` is ruff's documented re-export idiom.
            if alias.asname == alias.name:
                self.used.add(bound)
            self._bind(bound, node.lineno, alias.name)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.used.add(node.id)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self.generic_visit(node)


def _names_in_strings(tree: ast.Module) -> set[str]:
    """Names referenced by ``__all__`` entries and *string annotations*
    (with ``from __future__ import annotations``, ``"Callable[[], dict]"``
    is a string constant, but ruff still counts the usage)."""
    import re

    out: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            out.update(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", node.value))
    return out


def check_file(path: Path) -> list[str]:
    problems: list[str] = []
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:  # E9: hand the real message through
        return [f"{path}:{exc.lineno}: E999 {exc.msg}"]

    tracker = _ImportTracker()
    tracker.visit(tree)
    referenced = tracker.used | _names_in_strings(tree)
    for name, (lineno, spelled) in sorted(tracker.imports.items()):
        if name not in referenced and not name.startswith("_"):
            problems.append(
                f"{path}:{lineno}: F401 {spelled!r} imported but unused"
            )
    for lineno, name in tracker.redefinitions:
        if name not in referenced:
            problems.append(
                f"{path}:{lineno}: F811 redefinition of unused {name!r}"
            )

    for node in ast.walk(tree):
        if isinstance(node, ast.Compare):
            for op, comparator in zip(node.ops, node.comparators):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if isinstance(comparator, ast.Constant):
                    if comparator.value is None:
                        problems.append(
                            f"{path}:{node.lineno}: E711 comparison to None"
                        )
                    elif comparator.value is True or comparator.value is False:
                        problems.append(
                            f"{path}:{node.lineno}: E712 comparison to "
                            f"{comparator.value}"
                        )
        elif isinstance(node, ast.ExceptHandler) and node.type is None:
            problems.append(f"{path}:{node.lineno}: E722 bare except")
        elif isinstance(node, ast.Assign):
            if isinstance(node.value, ast.Lambda) and all(
                isinstance(t, ast.Name) for t in node.targets
            ):
                problems.append(
                    f"{path}:{node.lineno}: E731 lambda assigned to a name"
                )
    with path.open("rb") as handle:
        try:
            for token in tokenize.tokenize(handle.readline):
                if token.type == tokenize.OP and token.string == ";":
                    problems.append(
                        f"{path}:{token.start[0]}: E702 statement ends with "
                        "a semicolon"
                    )
        except tokenize.TokenizeError:
            pass

    lines = source.split("\n")
    for number, line in enumerate(lines, start=1):
        stripped = line.rstrip("\n")
        if stripped != stripped.rstrip():
            code = "W293" if not stripped.strip() else "W291"
            problems.append(f"{path}:{number}: {code} trailing whitespace")
    if source and not source.endswith("\n"):
        problems.append(f"{path}:{len(lines)}: W292 no newline at end of file")

    # E401: `import a, b` on one line.
    for node in ast.walk(tree):
        if isinstance(node, ast.Import) and len(node.names) > 1:
            problems.append(
                f"{path}:{node.lineno}: E401 multiple imports on one line"
            )
    return problems


def main(argv: list[str]) -> int:
    roots = [Path(arg) for arg in argv] or [Path("src")]
    files: list[Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
        else:
            files.extend(sorted(root.rglob("*.py")))
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    print(
        f"lint_local: checked {len(files)} files, "
        f"{len(problems)} problem(s) "
        f"(approximates: {', '.join(APPROXIMATED)})"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
