#!/usr/bin/env python3
"""Maintain and trend-gate the committed perf trajectory.

The speedup-gate benchmark modules write one machine-readable run file
(``$PERF_JSON``, see ``benchmarks/conftest.py``).  This tool turns those
runs into a *committed, trend-gated artifact*:

- ``append`` folds a fresh run file into a trajectory file as one
  per-PR snapshot (``BENCH_6.json`` is the committed trajectory)::

      python tools/bench_trajectory.py append \
          --run BENCH_RUN.json --trajectory BENCH_6.json --pr 6

- ``compare`` gates a fresh run against the latest committed snapshot
  and exits non-zero when any gated measurement regressed by more than
  ``--threshold`` (default 25%)::

      python tools/bench_trajectory.py compare \
          --run BENCH_RUN.json --trajectory BENCH_6.json

Only dimensionless **speedup ratios** are gated (every entry carrying a
``speedup`` field).  Absolute seconds are recorded for context but never
compared: CI runners and the machine that produced the committed
snapshot differ in raw speed, while a ratio of two timings taken on the
same box in the same process is hardware-portable.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

DEFAULT_THRESHOLD = 0.25


def _load(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def _run_entries(run: dict) -> list[dict]:
    entries = run.get("entries")
    if not isinstance(entries, list) or not entries:
        raise SystemExit(f"error: run file has no perf entries")
    return entries


def _gated(entries: list[dict]) -> dict[str, float]:
    """name -> speedup for every ratio-carrying entry."""
    return {
        e["name"]: float(e["speedup"])
        for e in entries
        if "speedup" in e and "name" in e
    }


def _append(args: argparse.Namespace) -> int:
    run = _load(args.run)
    try:
        trajectory = _load(args.trajectory)
    except FileNotFoundError:
        trajectory = {"schema_version": 1, "snapshots": []}
    snapshot = {
        "pr": args.pr,
        "recorded": time.strftime("%Y-%m-%d", time.gmtime()),
        "engine_version": run.get("engine_version"),
        "python": run.get("python"),
        "platform": run.get("platform"),
        "entries": _run_entries(run),
    }
    snapshots = [s for s in trajectory["snapshots"] if s.get("pr") != args.pr]
    snapshots.append(snapshot)
    snapshots.sort(key=lambda s: (s.get("pr") is None, s.get("pr")))
    trajectory["snapshots"] = snapshots
    with open(args.trajectory, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"appended PR {args.pr} snapshot ({len(snapshot['entries'])} entries, "
        f"{len(_gated(snapshot['entries']))} gated) to {args.trajectory}"
    )
    return 0


def _compare(args: argparse.Namespace) -> int:
    run = _load(args.run)
    trajectory = _load(args.trajectory)
    snapshots = trajectory.get("snapshots") or []
    if not snapshots:
        raise SystemExit(f"error: {args.trajectory} holds no snapshots")
    baseline = snapshots[-1]
    committed = _gated(baseline["entries"])
    fresh = _gated(_run_entries(run))
    if not committed:
        raise SystemExit("error: committed snapshot has no gated ratios")

    failures = []
    for name, want in sorted(committed.items()):
        got = fresh.get(name)
        if got is None:
            failures.append(f"{name}: gated ratio missing from fresh run")
            continue
        floor = want * (1.0 - args.threshold)
        status = "OK " if got >= floor else "FAIL"
        print(
            f"{status} {name}: fresh {got:.2f}x vs committed {want:.2f}x "
            f"(floor {floor:.2f}x)"
        )
        if got < floor:
            failures.append(
                f"{name}: {got:.2f}x is more than "
                f"{args.threshold:.0%} below the committed {want:.2f}x"
            )
    extra = sorted(set(fresh) - set(committed))
    if extra:
        print(f"note: ungated new ratios (append a snapshot): {', '.join(extra)}")
    if failures:
        print("PERF REGRESSION:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(
        f"perf trajectory OK: {len(committed)} gated ratios within "
        f"{args.threshold:.0%} of PR {baseline.get('pr')} snapshot"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python tools/bench_trajectory.py", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_append = sub.add_parser(
        "append", help="fold a fresh run file into the trajectory"
    )
    p_append.add_argument("--run", required=True, help="fresh $PERF_JSON file")
    p_append.add_argument(
        "--trajectory", required=True, help="trajectory file to update"
    )
    p_append.add_argument(
        "--pr", type=int, required=True,
        help="PR number this snapshot belongs to (replaces an existing "
        "snapshot for the same PR)",
    )
    p_append.set_defaults(func=_append)

    p_compare = sub.add_parser(
        "compare",
        help="gate a fresh run against the latest committed snapshot",
    )
    p_compare.add_argument("--run", required=True, help="fresh $PERF_JSON file")
    p_compare.add_argument(
        "--trajectory", required=True, help="committed trajectory file"
    )
    p_compare.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="allowed fractional regression per gated ratio "
        f"(default: {DEFAULT_THRESHOLD})",
    )
    p_compare.set_defaults(func=_compare)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
