#!/usr/bin/env python3
"""Execute every fenced ``bash``/``python`` snippet of a markdown file.

The CI docs job runs this against README.md so the documentation cannot
drift from the code: a snippet that stops working fails the build.

Rules:

- Only fences whose info string starts with ``bash`` or ``python`` are
  executed; every other language (``text``, ``yaml``, ...) is ignored.
- A fence marked ``skip-run`` (e.g. ```` ```bash skip-run ````) is listed
  but not executed -- for installation or illustrative-only commands.
- All snippets of one file run **sequentially in one shared scratch
  directory**, so a later snippet can analyze the store an earlier one
  created, exactly as a reader following the README top-to-bottom would.
- ``bash`` snippets run under ``bash -euo pipefail``; ``python`` snippets
  under this interpreter.  Both get ``PYTHONPATH`` pointing at the
  repository's ``src/`` (prepended), so the docs job needs no install
  step.

Usage::

    python tools/run_readme_snippets.py README.md [MORE.md ...]

Exit status is non-zero when any executed snippet fails; each failure
prints the snippet and its combined output.  The final line is a stable
machine-readable summary: ``SNIPPETS ran=N skipped=M failed=K``.
"""

from __future__ import annotations

import os
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
TIMEOUT_S = 600


@dataclass(frozen=True)
class Snippet:
    source: str
    line: int
    language: str
    skipped: bool
    body: str

    @property
    def label(self) -> str:
        first = next(
            (ln for ln in self.body.splitlines() if ln.strip()), "<empty>"
        )
        return f"{self.source}:{self.line} [{self.language}] {first[:60]}"


def extract_snippets(path: Path) -> list[Snippet]:
    """Parse fenced code blocks; tolerant of unknown languages."""
    snippets: list[Snippet] = []
    language = None
    skipped = False
    start = 0
    lines: list[str] = []
    for number, raw in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        stripped = raw.strip()
        if language is None:
            if stripped.startswith("```") and len(stripped) > 3:
                info = stripped[3:].split()
                language = info[0].lower()
                skipped = "skip-run" in info[1:]
                start = number
                lines = []
        elif stripped == "```":
            if language in ("bash", "sh", "python", "py"):
                snippets.append(
                    Snippet(
                        source=path.name,
                        line=start,
                        language="bash" if language in ("bash", "sh") else "python",
                        skipped=skipped,
                        body="\n".join(lines) + "\n",
                    )
                )
            language = None
        else:
            lines.append(raw)
    if language is not None:
        raise SystemExit(f"{path}: unterminated code fence opened at line {start}")
    return snippets


def run_snippet(snippet: Snippet, cwd: Path, env: dict) -> subprocess.CompletedProcess:
    if snippet.language == "bash":
        argv = ["bash", "-euo", "pipefail", "-c", snippet.body]
    else:
        argv = [sys.executable, "-c", snippet.body]
    return subprocess.run(
        argv,
        cwd=cwd,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        timeout=TIMEOUT_S,
    )


def main(argv: list[str] | None = None) -> int:
    import tempfile

    files = [Path(arg) for arg in (argv if argv is not None else sys.argv[1:])]
    if not files:
        files = [REPO_ROOT / "README.md"]

    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )

    ran = skipped = failed = 0
    for path in files:
        snippets = extract_snippets(path)
        print(f"{path}: {len(snippets)} executable-language snippet(s)")
        with tempfile.TemporaryDirectory(prefix="readme-snippets-") as scratch:
            for snippet in snippets:
                if snippet.skipped:
                    skipped += 1
                    print(f"  SKIP {snippet.label}")
                    continue
                result = run_snippet(snippet, Path(scratch), env)
                if result.returncode == 0:
                    ran += 1
                    print(f"  PASS {snippet.label}")
                else:
                    failed += 1
                    print(f"  FAIL {snippet.label} (exit {result.returncode})")
                    print("  ---- snippet " + "-" * 50)
                    for line in snippet.body.rstrip().splitlines():
                        print(f"  | {line}")
                    print("  ---- output " + "-" * 51)
                    for line in (result.stdout or "").rstrip().splitlines():
                        print(f"  | {line}")
                    print("  " + "-" * 63)
    print(f"SNIPPETS ran={ran} skipped={skipped} failed={failed}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
