"""Compare Parallax against the ELDI and Graphine baselines (Fig. 9/10 style).

Compiles a handful of Table III benchmarks with all three techniques on the
256-qubit machine and prints CZ counts, SWAP counts, runtimes, and success
probabilities side by side.

Run:  python examples/compare_techniques.py [BENCH ...]
"""

import sys

from repro.experiments.common import QUICK_BENCHMARKS, compile_one
from repro.hardware.spec import HardwareSpec
from repro.noise import success_probability
from repro.utils.tables import format_table


def main(benchmarks: list[str]) -> None:
    spec = HardwareSpec.quera_aquila()
    rows = []
    for bench in benchmarks:
        for tech in ("graphine", "eldi", "parallax"):
            result = compile_one(tech, bench, spec)
            rows.append(
                [
                    bench,
                    tech,
                    result.num_cz,
                    result.num_swaps,
                    round(result.runtime_us, 1),
                    f"{success_probability(result):.3e}",
                ]
            )
    print(
        format_table(
            ["benchmark", "technique", "cz", "swaps", "runtime_us", "success"],
            rows,
            title=f"Technique comparison on {spec.name}",
        )
    )


if __name__ == "__main__":
    args = [a.upper() for a in sys.argv[1:]] or list(QUICK_BENCHMARKS)
    main(args)
