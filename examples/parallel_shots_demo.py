"""Logical-shot parallelization demo (the paper's Fig. 8 / Fig. 11 idea).

Compiles the 9-qubit ADV benchmark for the 1,225-qubit Atom machine and
shows how replicating the circuit across the grid (replicas share AOD
rows/columns) divides the time to collect 8,000 shots.

Run:  python examples/parallel_shots_demo.py
"""

from repro.core.parallel_shots import parallelization_factor, plan_parallel_shots
from repro.experiments.common import compile_one
from repro.hardware.spec import HardwareSpec
from repro.utils.tables import format_table


def main() -> None:
    spec = HardwareSpec.atom_computing()
    result = compile_one("parallax", "ADV", spec)
    max_factor = parallelization_factor(result, spec)
    print(f"circuit footprint  : {result.footprint_sites} grid sites")
    print(f"mobile atoms       : {len(result.aod_qubits)}")
    print(f"max parallel copies: {max_factor}")
    print()
    plans = plan_parallel_shots(result, num_shots=8000, spec=spec)
    rows = [
        [plan.factor, plan.physical_shots, f"{plan.total_time_s:.4f}"]
        for plan in plans
    ]
    print(
        format_table(
            ["parallel copies", "physical shots", "total time (s)"],
            rows,
            title="8,000 logical shots of ADV on the 1,225-qubit machine",
        )
    )


if __name__ == "__main__":
    main()
