"""Define a custom neutral-atom machine and sweep its AOD size (Fig. 13 idea).

The hardware model is fully parameterized (the paper: "Our open-source
simulator allows for easy updates to technology parameters like AOD count
and atom movement speed").  This example builds a hypothetical 24x24
machine with faster transport, then sweeps the AOD row/column count.

Run:  python examples/custom_hardware.py
"""

from repro import HardwareSpec, ParallaxCompiler
from repro.benchcircuits import qaoa
from repro.utils.tables import format_table


def main() -> None:
    base = HardwareSpec(
        name="hypothetical-576",
        grid_rows=24,
        grid_cols=24,
        move_speed_um_per_us=110.0,   # 2x faster AOD transport
        trap_switch_time_us=50.0,     # faster trap changes
    )
    circuit = qaoa()
    rows = []
    for aod_count in (1, 5, 10, 20, 40):
        spec = base.with_aod_count(aod_count)
        result = ParallaxCompiler(spec).compile(circuit)
        rows.append(
            [
                aod_count,
                len(result.aod_qubits),
                result.num_moves,
                result.trap_change_events,
                round(result.runtime_us, 1),
            ]
        )
    print(
        format_table(
            ["aod rows/cols", "mobile atoms", "moves", "trap changes", "runtime_us"],
            rows,
            title=f"QAOA-10 on {base.name} (grid {base.grid_rows}x{base.grid_cols})",
        )
    )


if __name__ == "__main__":
    main()
