"""QASM workflow: parse OpenQASM 2.0, transpile, and compile.

Mirrors the paper's methodology: circuits arrive as QASM 2.0 text, get
transpiled to the {U3, CZ} basis, and are then compiled by Parallax.

Run:  python examples/qasm_workflow.py
"""

from repro import HardwareSpec, ParallaxCompiler
from repro.qasm import parse_qasm, to_qasm
from repro.transpile import transpile

BELL_PLUS = """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
gate entangle(theta) a, b {
  h a;
  cx a, b;
  rz(theta) b;
}
h q[0];
cx q[0], q[1];
entangle(pi/4) q[2], q[3];
ccx q[0], q[1], q[2];
barrier q;
measure q -> c;
"""


def main() -> None:
    circuit = parse_qasm(BELL_PLUS)
    print(f"parsed {circuit.num_qubits} qubits, {len(circuit)} operations")
    print("gate histogram:", circuit.count_ops())

    basis = transpile(circuit)
    print("\nafter transpilation to {u3, cz}:", basis.count_ops())

    result = ParallaxCompiler(HardwareSpec.quera_aquila()).compile(basis)
    print(f"\ncompiled: {result.num_cz} CZ, {result.num_swaps} SWAPs, "
          f"{result.num_layers} layers, {result.runtime_us:.1f} us")

    print("\nround-tripped QASM of the transpiled circuit (first 8 lines):")
    print("\n".join(to_qasm(basis).splitlines()[:8]))


if __name__ == "__main__":
    main()
