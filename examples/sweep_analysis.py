"""Grid -> sharded engine -> crossover report, end to end.

The question the paper's Fig. 10 begs: *at what CZ error rate does one
technique overtake another?*  This example answers it with the unified
results layer:

1. declare a :class:`~repro.sweeps.grid.SweepGrid` sweeping ``cz_error``
   across a 16x range around the Table II value;
2. run it through :func:`~repro.sweeps.runner.run_sweep` with both phases
   sharded (``workers`` compiles, ``eval_workers`` Monte Carlo shards --
   records are bit-identical for any value of either, and a rerun with the
   same store resumes instead of recomputing);
3. load the store into a :class:`~repro.sweeps.analysis.ResultTable` and
   ask for marginals, the crossover report, and a CSV dump.

Run:  python examples/sweep_analysis.py [BENCH] [STORE_DIR]
"""

import sys
import tempfile

from repro.sweeps import ResultTable, SweepGrid, SweepStore, run_sweep
from repro.sweeps.analysis import render_store_summary


def main(bench: str, store_dir: str) -> None:
    grid = SweepGrid(
        benchmarks=(bench,),
        techniques=("parallax", "graphine", "eldi"),
        spec_axes={
            "cz_error": (0.0012, 0.0024, 0.0048, 0.0096, 0.0192),
        },
        shots=20_000,  # the multinomial fast path makes big shot counts free
    )
    store = SweepStore(store_dir)
    report = run_sweep(
        grid, store, resume=True, workers=2, eval_workers=4, log=print
    )
    print(
        f"\n{report.scenarios} scenarios "
        f"({report.computed} computed, {report.resumed} resumed, "
        f"{report.compilations} compilations)\n"
    )

    table = ResultTable.from_store(store)

    # The full summary: marginals, detected axes, crossover report.
    print(render_store_summary(table, metric="success_rate"))

    # Or ask targeted questions directly:
    marginal = table.marginal(
        value="success_rate", over="cz_error", group_by=("technique",)
    )
    print()
    print(marginal.render(title=f"{bench}: empirical success vs cz_error"))

    for crossing in table.crossovers(axis="cz_error", value="success_rate"):
        print(f"\n=> {crossing.describe()}")

    csv_path = f"{store_dir}/flat.csv"
    with open(csv_path, "w", encoding="utf-8") as handle:
        handle.write(table.to_csv())
    print(f"\nflat rows written to {csv_path}")


if __name__ == "__main__":
    main(
        sys.argv[1].upper() if len(sys.argv) > 1 else "ADD",
        sys.argv[2] if len(sys.argv) > 2 else tempfile.mkdtemp(prefix="sweep-"),
    )
