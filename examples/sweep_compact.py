"""Run -> compact -> analyze: the packed segment store, end to end.

A sweep store starts life as one JSON file per scenario -- perfect for
resume (atomic writes, no journal, safe under parallel workers), terrible
for loading a million records.  :meth:`SweepStore.compact` seals finished
records into immutable, checksummed segment files behind an atomically
swapped manifest; after that:

- ``--resume`` still skips every finished scenario, byte-for-byte;
- ``ResultTable.from_store`` bulk-reads each segment's columnar block
  (one read + one parse per segment) instead of opening every record --
  ~10x+ faster at 10^4 records, gated in
  ``benchmarks/test_perf_store_load.py``;
- the analysis output is *identical*: this script asserts the CSV bytes
  match before and after compaction.

Run:  python examples/sweep_compact.py [BENCH] [STORE_DIR]
"""

import sys
import tempfile

from repro.sweeps import ResultTable, SweepGrid, SweepStore, run_sweep


def main(bench: str, store_dir: str) -> None:
    grid = SweepGrid(
        benchmarks=(bench,),
        techniques=("parallax", "graphine"),
        spec_axes={"cz_error": (0.0024, 0.0048, 0.0096)},
        noise_axes={"include_readout": (False, True)},
        shots=5_000,
    )

    # 1. Run (resumable: a rerun of this script skips finished scenarios).
    store = SweepStore(store_dir)
    report = run_sweep(grid, store, resume=True, workers=2, eval_workers=2)
    print(report.summary_line)
    print(f"before compaction: {store.stats().describe()}")
    csv_loose = ResultTable.from_store(store).to_csv()

    # 2. Compact: seal the loose records into a packed segment.  The call
    #    is idempotent -- rerunning it (or crashing halfway and rerunning)
    #    never duplicates or loses a record.
    compaction = store.compact()
    print(
        f"compacted: sealed={compaction.sealed} deduped={compaction.deduped} "
        f"segment={compaction.segment}"
    )
    print(f"after compaction:  {store.stats().describe()}")

    # 3. Analyze the packed store -- same table, loaded the fast way.
    packed = SweepStore(store_dir)  # fresh instance: reads via the manifest
    table = ResultTable.from_store(packed)
    assert table.to_csv() == csv_loose, "packed analysis must be identical"
    print(f"\npacked load is byte-identical ({len(table)} rows); marginal:\n")
    print(
        table.marginal(
            value="success_rate", over="cz_error", group_by=("technique",)
        ).render(title=f"{bench}: empirical success vs cz_error")
    )

    # 4. Resume still works on the packed store: everything is served from
    #    the segments, nothing is recomputed.
    again = run_sweep(grid, SweepStore(store_dir), resume=True)
    print(again.summary_line)
    assert again.computed == 0, "packed store must resume byte-for-byte"


if __name__ == "__main__":
    main(
        sys.argv[1].upper() if len(sys.argv) > 1 else "ADD",
        sys.argv[2] if len(sys.argv) > 2 else tempfile.mkdtemp(prefix="sweep-"),
    )
