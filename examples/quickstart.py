"""Quickstart: compile one circuit with Parallax and inspect the result.

Builds the three-qubit Fredkin circuit from the paper's Fig. 1, compiles it
for a QuEra Aquila-like 256-qubit machine, and prints the headline numbers
(CZ count, zero SWAPs, runtime, estimated success probability).

Run:  python examples/quickstart.py
"""

from repro import HardwareSpec, ParallaxCompiler, QuantumCircuit
from repro.noise import success_probability


def main() -> None:
    # The Fredkin (controlled-SWAP) circuit of Fig. 1.
    circuit = QuantumCircuit(3, name="fredkin")
    circuit.h(1)
    circuit.cswap(0, 1, 2)
    circuit.h(1)

    spec = HardwareSpec.quera_aquila()
    compiler = ParallaxCompiler(spec)
    result = compiler.compile(circuit)

    print(f"machine               : {spec.name} ({spec.grid_rows}x{spec.grid_cols} sites)")
    print(f"technique             : {result.technique}")
    print(f"CZ gates              : {result.num_cz}")
    print(f"U3 gates              : {result.num_u3}")
    print(f"SWAP gates            : {result.num_swaps}  (always zero for Parallax)")
    print(f"parallel layers       : {result.num_layers}")
    print(f"AOD (mobile) qubits   : {list(result.aod_qubits)}")
    print(f"interaction radius    : {result.interaction_radius_um:.2f} um")
    print(f"blockade radius       : {result.blockade_radius_um:.2f} um")
    print(f"circuit runtime       : {result.runtime_us:.1f} us")
    print(f"est. success prob.    : {success_probability(result):.4f}")


if __name__ == "__main__":
    main()
