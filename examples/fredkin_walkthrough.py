"""Walk through Parallax's four steps on the Fredkin circuit (Fig. 4).

Shows, for the paper's running example, what each compilation stage
produces: the Graphine layout and interaction radius (Step 1), discretized
grid positions (Step 2), the AOD qubit selection (Step 3), and the layer /
movement schedule (Step 4, Fig. 7's home vs. mobile configurations).

Run:  python examples/fredkin_walkthrough.py
"""

from repro import HardwareSpec, QuantumCircuit
from repro.core.aod_selection import select_aod_qubits
from repro.core.machine import MachineState
from repro.core.scheduler import GateScheduler
from repro.layout.graphine import generate_layout
from repro.transpile import transpile


def main() -> None:
    circuit = QuantumCircuit(3, name="fredkin")
    circuit.cswap(0, 1, 2)
    basis = transpile(circuit)
    print(f"Fredkin transpiled: {basis.count_ops()}\n")

    spec = HardwareSpec.quera_aquila()

    print("STEP 1: Graphine layout (unit square)")
    layout = generate_layout(basis)
    for q, (x, y) in enumerate(layout.unit_positions):
        print(f"  Q{q}: ({x:.3f}, {y:.3f})")
    print(f"  interaction radius (unit space): {layout.interaction_radius_unit:.3f}\n")

    print("STEP 2: discretization onto the 16x16 grid")
    state = MachineState(spec, layout)
    for q in range(state.num_qubits):
        row, col = state.sites[q]
        x, y = state.positions[q]
        print(f"  Q{q}: site (row {row}, col {col}) -> ({x:.1f}, {y:.1f}) um")
    print(f"  interaction radius: {state.interaction_radius:.2f} um, "
          f"blockade radius: {state.blockade_radius:.2f} um\n")

    print("STEP 3: AOD qubit selection")
    selection = select_aod_qubits(basis, state)
    for q in range(state.num_qubits):
        where = "AOD (mobile)" if state.is_mobile(q) else "SLM (static)"
        print(f"  Q{q}: weight {selection.weights[q]:.3f} -> {where}")
    print()

    print("STEP 4: gate and movement scheduling (Algorithm 1)")
    scheduler = GateScheduler(basis, state)
    stats = scheduler.run()
    for i, layer in enumerate(stats.layers):
        gate_text = ", ".join(str(g) for g in layer.gates)
        extras = []
        if layer.move_distance_um > 0:
            extras.append(f"move {layer.move_distance_um:.1f} um")
        if layer.trap_changes:
            extras.append(f"{layer.trap_changes} trap change(s)")
        suffix = f"  [{'; '.join(extras)}]" if extras else ""
        print(f"  layer {i + 1:2d}: {gate_text}{suffix}")
    print(f"\ntotal: {len(stats.layers)} layers, {stats.num_moves} moves, "
          f"{stats.trap_changes} trap changes, {stats.total_time_us:.1f} us")


if __name__ == "__main__":
    main()
