"""Native multi-qubit gate extension (GEYSER-style composition).

The paper's background highlights that neutral atoms can execute
multi-qubit gates directly, and names GEYSER's gate composition as
orthogonal to Parallax.  This example compiles Toffoli-heavy benchmarks
both ways: three-qubit gates decomposed into six CZ pulses vs. kept as one
native CCZ pulse, and compares entangling-gate counts and success.

Run:  python examples/native_multiqubit.py
"""

from repro.benchcircuits import grover_sat, grover_sqrt, knn_swap_test
from repro.core.compiler import ParallaxCompiler, ParallaxConfig
from repro.hardware.spec import HardwareSpec
from repro.noise import success_probability
from repro.utils.tables import format_table


def main() -> None:
    spec = HardwareSpec.quera_aquila()
    decomposed = ParallaxCompiler(spec)
    native = ParallaxCompiler(spec, ParallaxConfig(native_multiqubit=True))

    rows = []
    for circuit in (grover_sat(), grover_sqrt(), knn_swap_test()):
        dec = decomposed.compile(circuit)
        nat = native.compile(circuit)
        rows.append([
            circuit.name, "6-CZ Toffoli", dec.num_cz, dec.num_ccz,
            f"{success_probability(dec):.3f}",
        ])
        rows.append([
            circuit.name, "native CCZ", nat.num_cz, nat.num_ccz,
            f"{success_probability(nat):.3f}",
        ])
    print(
        format_table(
            ["benchmark", "mode", "cz", "ccz", "success"],
            rows,
            title=f"Toffoli decomposition vs native CCZ on {spec.name}",
        )
    )


if __name__ == "__main__":
    main()
