"""Noise study: analytic vs Monte Carlo success, with channel attribution.

Compiles a benchmark with all three techniques, then samples 20,000 noisy
shots each and shows where the failures come from (gate errors vs movement
vs decoherence), next to the closed-form success estimate of Fig. 10.

Run:  python examples/noise_study.py [BENCH]
"""

import sys

from repro.experiments.common import compile_one
from repro.hardware.spec import HardwareSpec
from repro.noise import success_probability
from repro.sim import NoisyShotSimulator
from repro.utils.tables import format_table


def main(bench: str) -> None:
    spec = HardwareSpec.quera_aquila()
    rows = []
    for tech in ("graphine", "eldi", "parallax"):
        result = compile_one(tech, bench, spec)
        outcome = NoisyShotSimulator(result, seed=1).run(shots=20_000)
        rows.append(
            [
                tech,
                f"{success_probability(result):.4f}",
                f"{outcome.success_rate:.4f}",
                outcome.gate_failures,
                outcome.movement_failures,
                outcome.decoherence_failures,
            ]
        )
    print(
        format_table(
            ["technique", "analytic", "monte-carlo", "gate fails",
             "movement fails", "decoherence fails"],
            rows,
            title=f"{bench} on {spec.name}: 20,000 noisy shots per technique",
        )
    )


if __name__ == "__main__":
    main(sys.argv[1].upper() if len(sys.argv) > 1 else "QAOA")
