"""Hardware sweep: how the Fig. 10 picture moves as the machine improves.

Declares a small scenario grid -- one benchmark, all three techniques, the
CZ error rate swept from 4x worse to 4x better than Table II, T2 halved and
nominal -- and runs it through `repro.sweeps`: unique compilations are
deduplicated (error rates never change a schedule, so the whole sweep costs
three compilations), every scenario is sampled by the vectorized noisy-shot
engine, and records land in a resumable on-disk store.

Run:  python examples/hardware_sweep.py [BENCH] [STORE_DIR]

Rerunning with the same STORE_DIR resumes instead of recomputing.
"""

import sys
import tempfile

from repro.sweeps import SweepGrid, SweepStore, run_sweep
from repro.utils.tables import format_table


def main(bench: str, store_dir: str) -> None:
    grid = SweepGrid(
        benchmarks=(bench,),
        techniques=("parallax", "graphine", "eldi"),
        spec_axes={
            "cz_error": (0.0012, 0.0024, 0.0048, 0.0096, 0.0192),
            "t2_us": (0.745e6, 1.49e6),
        },
        shots=4000,
    )
    report = run_sweep(grid, SweepStore(store_dir), resume=True, log=print)

    rows = []
    for record in report.records:
        scenario = record["scenario"]
        outcome = record["outcome"]
        rows.append(
            [
                scenario["technique"],
                scenario["spec_overrides"]["cz_error"],
                scenario["spec_overrides"]["t2_us"] / 1e6,
                f"{record['analytic_success']:.4f}",
                f"{outcome['success_rate']:.4f} +/- {outcome['stderr']:.4f}",
            ]
        )
    print(
        format_table(
            ["technique", "cz_error", "t2_s", "analytic", "empirical"],
            rows,
            title=f"{bench}: {report.scenarios} scenarios "
            f"({report.compilations} compilations, {report.resumed} resumed)",
        )
    )


if __name__ == "__main__":
    main(
        sys.argv[1].upper() if len(sys.argv) > 1 else "ADD",
        sys.argv[2] if len(sys.argv) > 2 else tempfile.mkdtemp(prefix="sweep-"),
    )
