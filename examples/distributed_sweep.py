"""Distributed work-stealing sweep workers sharing one store.

Three demonstrations of :mod:`repro.sweeps.distributed` on one grid:

1. a single-process reference run (``run_sweep``);
2. a spawn-and-join fleet (``run_sweep(distributed=True, workers=2)``):
   N worker processes claim pending scenario keys through atomically
   created lease files in the store (``leases/<key>.lease``), evaluate
   them, and exit when the grid is complete -- no coordinator, no shared
   state beyond the store directory;
3. crash recovery: a lease left behind by a "SIGKILLed" worker (here:
   simply written with an ancient heartbeat) is reclaimed by a
   replacement worker after the TTL.

After each phase the script asserts the store is **byte-identical** to
the reference -- the distributed layer's core guarantee: records are pure
functions of their scenario content, so no worker count, claim
interleaving, or crash/restart history can change a single byte.

On a cluster, skip :func:`run_distributed` and start one worker per host
against a shared filesystem instead::

    python -m repro.sweeps worker /shared/store --preset default --shots 5000

Run:  python examples/distributed_sweep.py
"""

import hashlib
import os
import tempfile
import time
from pathlib import Path

from repro.sweeps import SweepGrid, SweepStore, run_sweep
from repro.sweeps.distributed import run_worker
from repro.sweeps.runner import plan_sweep


def store_digest(directory) -> dict:
    return {
        path.name: hashlib.sha256(path.read_bytes()).hexdigest()
        for path in sorted(Path(directory).glob("*.json"))
    }


def main() -> None:
    grid = SweepGrid(
        benchmarks=("ADD",),
        techniques=("parallax", "graphine"),
        spec_axes={"cz_error": (0.0024, 0.0048, 0.0096)},
        shots=2_000,
    )

    with tempfile.TemporaryDirectory() as tmp:
        # 1. Single-process reference.
        reference = run_sweep(grid, SweepStore(f"{tmp}/ref"))
        print(f"reference: {reference.summary_line}")

        # 2. Two spawned claim-loop workers over one fresh store.
        fleet_store = SweepStore(f"{tmp}/fleet")
        report = run_sweep(
            grid, fleet_store, distributed=True, workers=2, log=print
        )
        print(f"fleet:     {report.summary_line}")
        assert store_digest(f"{tmp}/ref") == store_digest(f"{tmp}/fleet")
        print("fleet store is byte-identical to the reference")

        # 3. Crash recovery: a store missing its last records, with a
        # stale lease on one of them (what a SIGKILLed worker leaves).
        crash_store = SweepStore(f"{tmp}/crash")
        run_sweep(grid, crash_store, limit=4)
        plan = plan_sweep(grid)
        assert crash_store.acquire_lease(plan.keys[4], "victim") == "acquired"
        ancient = time.time() - 3600.0
        os.utime(crash_store.lease_path(plan.keys[4]), (ancient, ancient))

        heir = run_worker(grid, crash_store, owner="heir", ttl_s=60.0)
        print(
            f"heir:      {heir.summary_line}"
        )
        assert heir.reclaimed == 1, "expected to reclaim the victim's lease"
        assert store_digest(f"{tmp}/ref") == store_digest(f"{tmp}/crash")
        print("post-crash store is byte-identical to the reference")


if __name__ == "__main__":
    main()
