"""Tests for repro.core.machine."""

import numpy as np
import pytest

from repro.core.machine import MachineState
from repro.hardware.atom import TrapType
from repro.hardware.spec import HardwareSpec
from repro.layout.graphine import GraphineLayout


def make_layout(unit_positions, radius=0.3):
    return GraphineLayout(
        unit_positions=np.asarray(unit_positions, dtype=float),
        interaction_radius_unit=radius,
    )


@pytest.fixture
def spec():
    return HardwareSpec.quera_aquila()


class TestConstruction:
    def test_all_atoms_start_in_slm(self, spec):
        state = MachineState(spec, make_layout([[0.1, 0.1], [0.9, 0.9]]))
        assert state.slm.num_occupied == 2
        assert all(a.trap is TrapType.SLM for a in state.atoms)

    def test_positions_array_matches_atoms(self, spec):
        state = MachineState(spec, make_layout([[0.2, 0.3], [0.7, 0.6]]))
        for q in range(2):
            np.testing.assert_allclose(state.positions[q], state.atoms[q].position)

    def test_radius_scaled_to_physical(self, spec):
        state = MachineState(spec, make_layout([[0.0, 0.0], [1.0, 1.0]], radius=0.5))
        w, _ = spec.extent_um
        assert state.interaction_radius == pytest.approx(0.5 * w)

    def test_radius_clamped_to_pitch(self, spec):
        # A tiny unit radius must still span adjacent grid sites.
        state = MachineState(spec, make_layout([[0.0, 0.0], [0.1, 0.0]], radius=1e-4))
        assert state.interaction_radius >= spec.grid_pitch_um

    def test_blockade_is_2_5x(self, spec):
        state = MachineState(spec, make_layout([[0.0, 0.0], [1.0, 1.0]]))
        assert state.blockade_radius == pytest.approx(2.5 * state.interaction_radius)

    def test_too_many_qubits_rejected(self, spec):
        unit = np.random.default_rng(0).random((257, 2))
        with pytest.raises(ValueError, match="only 256 sites"):
            MachineState(spec, make_layout(unit))

    def test_separation_ok_after_discretization(self, spec):
        unit = np.random.default_rng(1).random((50, 2))
        state = MachineState(spec, make_layout(unit))
        assert state.separation_ok()


class TestQueries:
    def test_distance(self, spec):
        state = MachineState(spec, make_layout([[0.0, 0.0], [1.0, 0.0]]))
        w, _ = spec.extent_um
        assert state.distance(0, 1) == pytest.approx(w)

    def test_in_interaction_range(self, spec):
        state = MachineState(spec, make_layout([[0.0, 0.0], [0.05, 0.0], [1.0, 1.0]]))
        assert state.in_interaction_range(0, 1)
        assert not state.in_interaction_range(0, 2)

    def test_set_position_syncs(self, spec):
        state = MachineState(spec, make_layout([[0.5, 0.5]]))
        state.set_position(0, np.array([1.0, 2.0]))
        np.testing.assert_allclose(state.positions[0], [1.0, 2.0])
        np.testing.assert_allclose(state.atoms[0].position, [1.0, 2.0])


class TestTrapTransfer:
    def test_transfer_to_aod(self, spec):
        state = MachineState(spec, make_layout([[0.2, 0.2], [0.8, 0.8]]))
        state.transfer_to_aod(0, row=0, col=0)
        assert state.is_mobile(0)
        assert not state.is_mobile(1)
        assert state.slm.num_occupied == 1
        assert state.aod.holds(0)

    def test_transfer_keeps_position(self, spec):
        state = MachineState(spec, make_layout([[0.2, 0.2]]))
        before = state.positions[0].copy()
        state.transfer_to_aod(0, 0, 0)
        np.testing.assert_allclose(state.positions[0], before)

    def test_double_transfer_rejected(self, spec):
        state = MachineState(spec, make_layout([[0.2, 0.2]]))
        state.transfer_to_aod(0, 0, 0)
        with pytest.raises(ValueError, match="not in the SLM"):
            state.transfer_to_aod(0, 1, 1)

    def test_mobile_qubits_listing(self, spec):
        state = MachineState(spec, make_layout([[0.1, 0.1], [0.5, 0.5], [0.9, 0.9]]))
        state.transfer_to_aod(1, 0, 0)
        assert state.mobile_qubits() == [1]
        assert state.static_positions().shape == (2, 2)
