"""Tests for repro.qasm.corpus: scanning, ids, registry, sweep plumbing."""

import os
import warnings

import pytest

from repro.benchcircuits.io import export_benchmark_suite, suite_workload_ids
from repro.benchcircuits.registry import get_benchmark
from repro.qasm.corpus import (
    CORPUS_ENV_VAR,
    activate_corpus,
    clear_corpus_registry,
    register_corpus,
    registered_workloads,
    resolve_workload,
    scan_corpus,
    workload_id,
)

GOOD = """OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[0];
cx q[0], q[1];
"""

BAD = "OPENQASM 2.0;\nqreg q[2;\n"


@pytest.fixture(autouse=True)
def _clean_registry():
    """Each test gets a fresh registry and an untouched env var."""
    saved = os.environ.pop(CORPUS_ENV_VAR, None)
    clear_corpus_registry()
    yield
    clear_corpus_registry()
    if saved is None:
        os.environ.pop(CORPUS_ENV_VAR, None)
    else:
        os.environ[CORPUS_ENV_VAR] = saved


def make_corpus(tmp_path, files):
    directory = tmp_path / "corpus"
    directory.mkdir(exist_ok=True)
    for name, text in files.items():
        target = directory / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text)
    return str(directory)


class TestWorkloadId:
    def test_stable_and_content_derived(self):
        a = workload_id("bell", GOOD)
        assert a == workload_id("bell", GOOD)
        assert a.startswith("BELL-")
        assert a != workload_id("bell", GOOD + "\n")
        assert a != workload_id("other", GOOD)

    def test_uppercase_and_sanitized(self):
        wid = workload_id("my circuit-v2.final", GOOD)
        stem, _, digest = wid.rpartition("-")
        assert stem == "MY_CIRCUIT_V2_FINAL"
        assert len(digest) == 8
        assert wid == wid.upper()

    def test_degenerate_stem_falls_back(self):
        assert workload_id("...", GOOD).startswith("WORKLOAD-")


class TestScanCorpus:
    def test_scan_validates_and_fingerprints(self, tmp_path):
        directory = make_corpus(tmp_path, {"bell.qasm": GOOD})
        corpus = scan_corpus(directory)
        assert len(corpus.workloads) == 1
        (w,) = corpus.workloads
        assert w.workload_id.startswith("BELL-")
        assert w.num_qubits == 2
        assert w.num_gates == 2
        assert len(w.checksum) == 64

    def test_skip_with_warning_contract(self, tmp_path):
        directory = make_corpus(
            tmp_path, {"good.qasm": GOOD, "broken.qasm": BAD}
        )
        with pytest.warns(RuntimeWarning, match="corpus: skipped broken.qasm"):
            corpus = scan_corpus(directory)
        assert len(corpus.workloads) == 1
        assert len(corpus.skipped) == 1
        name, reason = corpus.skipped[0]
        assert name == "broken.qasm"
        assert "line 2" in reason

    def test_summary_line_contract(self, tmp_path):
        directory = make_corpus(
            tmp_path, {"good.qasm": GOOD, "broken.qasm": BAD}
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            corpus = scan_corpus(directory)
        assert corpus.summary_line == (
            f"CORPUS dir={directory} workloads=1 skipped=1"
        )

    def test_deterministic_order(self, tmp_path):
        directory = make_corpus(
            tmp_path,
            {"z.qasm": GOOD, "a.qasm": GOOD, "sub/m.qasm": GOOD},
        )
        corpus = scan_corpus(directory)
        relative = [
            os.path.relpath(w.path, directory).replace(os.sep, "/")
            for w in corpus.workloads
        ]
        assert relative == ["a.qasm", "sub/m.qasm", "z.qasm"]

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(ValueError, match="does not exist"):
            scan_corpus(str(tmp_path / "nope"))

    def test_no_matches_raises(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ValueError, match="no"):
            scan_corpus(str(empty))

    def test_non_utf8_file_skipped(self, tmp_path):
        directory = make_corpus(tmp_path, {"good.qasm": GOOD})
        (tmp_path / "corpus" / "binary.qasm").write_bytes(b"\xff\xfe\x00")
        with pytest.warns(RuntimeWarning, match="binary.qasm"):
            corpus = scan_corpus(directory)
        assert len(corpus.workloads) == 1
        assert corpus.skipped[0][0] == "binary.qasm"


class TestRegistryResolution:
    def test_register_and_resolve(self, tmp_path):
        directory = make_corpus(tmp_path, {"bell.qasm": GOOD})
        corpus = register_corpus(directory)
        (wid,) = corpus.workload_ids
        circuit = resolve_workload(wid)
        assert circuit.num_qubits == 2
        assert circuit.name == wid
        # Case-insensitive, like grid benchmark names.
        assert resolve_workload(wid.lower()) is circuit

    def test_get_benchmark_falls_through_to_corpus(self, tmp_path):
        directory = make_corpus(tmp_path, {"bell.qasm": GOOD})
        corpus = register_corpus(directory)
        (wid,) = corpus.workload_ids
        assert get_benchmark(wid).num_qubits == 2
        # Registry acronyms still win.
        assert get_benchmark("QAOA").num_qubits == 10

    def test_unknown_workload_raises_keyerror(self):
        with pytest.raises(KeyError, match="corpus"):
            resolve_workload("NOPE-DEADBEEF")
        with pytest.raises(KeyError, match="corpus"):
            get_benchmark("NOPE-DEADBEEF")

    def test_activate_exports_env_for_spawned_workers(self, tmp_path):
        directory = make_corpus(tmp_path, {"bell.qasm": GOOD})
        corpus = activate_corpus(directory)
        (wid,) = corpus.workload_ids
        assert os.path.abspath(directory) in os.environ[CORPUS_ENV_VAR].split(
            os.pathsep
        )
        # A "fresh process": clear the in-process registry, resolution
        # falls back to the env var exactly like a spawned worker does.
        clear_corpus_registry()
        assert resolve_workload(wid).num_qubits == 2

    def test_activate_is_idempotent_in_env(self, tmp_path):
        directory = make_corpus(tmp_path, {"bell.qasm": GOOD})
        activate_corpus(directory)
        activate_corpus(directory)
        entries = os.environ[CORPUS_ENV_VAR].split(os.pathsep)
        assert entries.count(os.path.abspath(directory)) == 1

    def test_vanished_env_dir_tolerated(self, tmp_path):
        os.environ[CORPUS_ENV_VAR] = str(tmp_path / "gone")
        with pytest.raises(KeyError):
            resolve_workload("ANY-00000000")

    def test_registered_workloads_snapshot(self, tmp_path):
        directory = make_corpus(tmp_path, {"bell.qasm": GOOD})
        corpus = register_corpus(directory)
        snapshot = registered_workloads()
        assert set(snapshot) == set(corpus.workload_ids)


class TestSuiteExportIntegration:
    def test_exported_suite_scans_cleanly(self, tmp_path):
        directory = str(tmp_path / "suite")
        export_benchmark_suite(directory, benchmarks=["QAOA", "ADD"])
        corpus = scan_corpus(directory)
        assert len(corpus.workloads) == 2
        assert corpus.skipped == ()

    def test_suite_workload_ids_match_scan(self, tmp_path):
        directory = str(tmp_path / "suite")
        export_benchmark_suite(directory, benchmarks=["QAOA", "ADD"])
        mapping = suite_workload_ids(directory)
        corpus = scan_corpus(directory)
        assert sorted(mapping.values()) == sorted(corpus.workload_ids)
        assert set(mapping) == {"QAOA", "ADD"}

    def test_corpus_copy_of_registry_benchmark_is_equivalent(self, tmp_path):
        directory = str(tmp_path / "suite")
        export_benchmark_suite(directory, benchmarks=["QAOA"])
        corpus = register_corpus(directory)
        (wid,) = corpus.workload_ids
        via_corpus = resolve_workload(wid)
        via_registry = get_benchmark("QAOA")
        assert via_corpus.num_qubits == via_registry.num_qubits
        assert [g.name for g in via_corpus] == [g.name for g in via_registry]
