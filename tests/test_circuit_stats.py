"""Tests for repro.circuit.stats."""

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.stats import compute_stats, interaction_counts


class TestInteractionCounts:
    def test_counts_cz_multiplicity(self):
        c = QuantumCircuit(3).cz(0, 1).cz(1, 0).cz(1, 2)
        counts = interaction_counts(c)
        assert counts[(0, 1)] == 2
        assert counts[(1, 2)] == 1

    def test_keys_sorted(self):
        c = QuantumCircuit(3).cz(2, 0)
        assert list(interaction_counts(c)) == [(0, 2)]

    def test_three_qubit_gate_counts_all_pairs(self):
        c = QuantumCircuit(3).ccx(0, 1, 2)
        counts = interaction_counts(c)
        assert counts == {(0, 1): 1, (0, 2): 1, (1, 2): 1}

    def test_one_qubit_gates_ignored(self):
        c = QuantumCircuit(2).h(0).h(1)
        assert interaction_counts(c) == {}


class TestComputeStats:
    def test_basic_counts(self):
        c = QuantumCircuit(3).h(0).cz(0, 1).cz(1, 2).h(2)
        stats = compute_stats(c)
        assert stats.num_qubits == 3
        assert stats.num_cz == 2
        assert stats.num_1q == 2
        assert stats.num_gates == 4

    def test_degree_metrics(self):
        # Star: qubit 0 interacts with 1, 2, 3.
        c = QuantumCircuit(4).cz(0, 1).cz(0, 2).cz(0, 3)
        stats = compute_stats(c)
        assert stats.max_degree == 3
        assert stats.mean_degree == (3 + 1 + 1 + 1) / 4

    def test_connectivity_alias(self):
        c = QuantumCircuit(2).cz(0, 1)
        stats = compute_stats(c)
        assert stats.connectivity == stats.mean_degree

    def test_tfim_low_connectivity(self):
        # The paper singles out TFIM (chain) as connectivity <= 2.
        from repro.benchcircuits import tfim

        stats = compute_stats(tfim(num_qubits=16, steps=2))
        assert stats.max_degree <= 2

    def test_layers_and_depth_consistent(self):
        c = QuantumCircuit(2).h(0).cz(0, 1).h(1)
        stats = compute_stats(c)
        assert stats.num_layers == stats.depth == 3

    def test_barriers_excluded(self):
        c = QuantumCircuit(2).h(0).add("barrier", (0,))
        stats = compute_stats(c)
        assert stats.num_gates == 1
