"""Tests for repro.pipeline.fingerprint and repro.pipeline.cache."""

import dataclasses

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.core.compiler import ParallaxCompiler, ParallaxConfig
from repro.hardware.spec import HardwareSpec
from repro.layout.placement import PlacementConfig
from repro.pipeline.cache import CompilationCache
from repro.pipeline.fingerprint import (
    cache_key,
    fingerprint_circuit,
    fingerprint_config,
    fingerprint_spec,
)


def bell(name="bell"):
    return QuantumCircuit(2, name).h(0).cx(0, 1)


@pytest.fixture(scope="module")
def spec():
    return HardwareSpec.quera_aquila()


@pytest.fixture(scope="module")
def result(spec):
    return ParallaxCompiler(spec).compile(bell())


class TestFingerprints:
    def test_circuit_fingerprint_content_addressed(self):
        assert fingerprint_circuit(bell()) == fingerprint_circuit(bell())

    def test_circuit_fingerprint_sees_gates(self):
        other = bell().z(1)
        assert fingerprint_circuit(bell()) != fingerprint_circuit(other)

    def test_circuit_fingerprint_sees_params(self):
        a = QuantumCircuit(1).rx(0, 0.5)
        b = QuantumCircuit(1).rx(0, 0.5000001)
        assert fingerprint_circuit(a) != fingerprint_circuit(b)

    def test_spec_fingerprint_covers_every_field(self, spec):
        # The seed cache keyed only (name, aod_rows, aod_cols); the
        # fingerprint must change when ANY field changes.
        base = fingerprint_spec(spec)
        for field in dataclasses.fields(spec):
            value = getattr(spec, field.name)
            if isinstance(value, bool) or field.name == "name":
                bumped = dataclasses.replace(spec, **{field.name: "x"})
            elif isinstance(value, int):
                bumped = dataclasses.replace(spec, **{field.name: value + 1})
            else:
                bumped = dataclasses.replace(spec, **{field.name: value * 1.5})
            assert fingerprint_spec(bumped) != base, field.name

    def test_config_fingerprint_distinguishes_types(self):
        from repro.baselines.eldi import EldiConfig

        assert fingerprint_config(ParallaxConfig()) != fingerprint_config(EldiConfig())

    def test_config_fingerprint_sees_nested_changes(self):
        a = ParallaxConfig(placement=PlacementConfig(seed=7))
        b = ParallaxConfig(placement=PlacementConfig(seed=8))
        assert fingerprint_config(a) != fingerprint_config(b)

    def test_cache_key_technique_lowered(self, spec):
        key = cache_key("PARALLAX", bell(), spec, None)
        assert key.technique == "parallax"

    def test_cache_key_stamped_with_code_version(self, spec, monkeypatch):
        # A version bump must invalidate persistent entries: identical
        # inputs compiled by different code versions get different keys.
        import repro

        old = cache_key("parallax", bell(), spec, None)
        assert old.version == repro.__version__
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        new = cache_key("parallax", bell(), spec, None)
        assert new != old
        assert new.digest() != old.digest()


class TestCompilationCache:
    def test_miss_then_hit(self, spec, result):
        cache = CompilationCache()
        assert cache.lookup("parallax", bell(), spec, None) is None
        cache.store("parallax", bell(), spec, None, result)
        assert cache.lookup("parallax", bell(), spec, None) is result
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_config_change_busts_key(self, spec, result):
        cache = CompilationCache()
        cache.store("parallax", bell(), spec, ParallaxConfig(), result)
        other = ParallaxConfig(placement=PlacementConfig(seed=123))
        assert cache.lookup("parallax", bell(), spec, other) is None

    def test_spec_change_busts_key(self, spec, result):
        cache = CompilationCache()
        cache.store("parallax", bell(), spec, None, result)
        tweaked = dataclasses.replace(spec, cz_error=spec.cz_error * 2)
        assert cache.lookup("parallax", bell(), tweaked, None) is None

    def test_technique_distinguishes_entries(self, spec, result):
        cache = CompilationCache()
        cache.store("parallax", bell(), spec, None, result)
        assert cache.lookup("eldi", bell(), spec, None) is None

    def test_clear(self, spec, result):
        cache = CompilationCache()
        cache.store("parallax", bell(), spec, None, result)
        cache.clear()
        assert len(cache) == 0
        assert cache.lookup("parallax", bell(), spec, None) is None


class TestDiskBackend:
    def test_round_trips_through_disk(self, tmp_path, spec, result):
        directory = tmp_path / "cache"
        writer = CompilationCache(directory)
        key = writer.store("parallax", bell(), spec, None, result)
        assert writer._path(key).exists()

        reader = CompilationCache(directory)  # fresh memory, same disk
        loaded = reader.lookup("parallax", bell(), spec, None)
        assert loaded is not None
        assert loaded.num_cz == result.num_cz
        assert loaded.runtime_us == pytest.approx(result.runtime_us)
        assert reader.stats.disk_hits == 1

    def test_second_lookup_served_from_memory(self, tmp_path, spec, result):
        directory = tmp_path / "cache"
        CompilationCache(directory).store("parallax", bell(), spec, None, result)
        reader = CompilationCache(directory)
        reader.lookup("parallax", bell(), spec, None)
        reader.lookup("parallax", bell(), spec, None)
        assert reader.stats.hits == 2
        assert reader.stats.disk_hits == 1  # only the first touched disk

    def test_corrupt_entry_is_a_miss(self, tmp_path, spec, result):
        directory = tmp_path / "cache"
        writer = CompilationCache(directory)
        key = writer.store("parallax", bell(), spec, None, result)
        writer._path(key).write_text("{not json")
        reader = CompilationCache(directory)
        assert reader.lookup("parallax", bell(), spec, None) is None

    def test_clear_disk(self, tmp_path, spec, result):
        directory = tmp_path / "cache"
        writer = CompilationCache(directory)
        writer.store("parallax", bell(), spec, None, result)
        writer.clear(disk=True)
        assert not list(directory.glob("*.json"))
