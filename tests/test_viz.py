"""Tests for repro.viz: ASCII renderers."""

import numpy as np
import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.core.compiler import ParallaxCompiler
from repro.core.machine import MachineState
from repro.hardware.spec import HardwareSpec
from repro.layout.graphine import GraphineLayout
from repro.viz import draw_circuit, draw_layers, draw_machine


class TestDrawCircuit:
    def test_wire_per_qubit(self):
        text = draw_circuit(QuantumCircuit(3).h(0))
        lines = text.splitlines()
        assert lines[0].startswith("q0 :")
        assert sum(1 for l in lines if l.lstrip().startswith("q")) == 3

    def test_single_qubit_gate_label(self):
        text = draw_circuit(QuantumCircuit(1).h(0))
        assert "H" in text

    def test_cz_connector(self):
        text = draw_circuit(QuantumCircuit(3).cz(0, 2))
        lines = text.splitlines()
        # Vertical bar appears on the intermediate connector rows.
        assert any("|" in l for l in lines)
        assert text.count("o") == 2

    def test_truncation_marker(self):
        c = QuantumCircuit(1)
        for _ in range(100):
            c.h(0)
        text = draw_circuit(c, max_layers=5)
        assert "..." in text

    def test_parallel_gates_same_column(self):
        text = draw_circuit(QuantumCircuit(2).h(0).h(1))
        q0_line = text.splitlines()[0]
        q1_line = text.splitlines()[2]
        assert q0_line.index("H") == q1_line.index("H")


class TestDrawMachine:
    @pytest.fixture
    def state(self):
        layout = GraphineLayout(
            unit_positions=np.array([[0.0, 0.0], [1.0, 1.0], [0.5, 0.5]]),
            interaction_radius_unit=0.3,
        )
        return MachineState(HardwareSpec.quera_aquila(), layout)

    def test_slm_atoms_marked(self, state):
        text = draw_machine(state)
        assert "[0]" in text and "[1]" in text and "[2]" in text

    def test_aod_atoms_marked(self, state):
        state.transfer_to_aod(2, 0, 0)
        text = draw_machine(state)
        assert "(2)" in text
        assert "[2]" not in text

    def test_grid_dimensions(self, state):
        lines = draw_machine(state).splitlines()
        # 16 rows + 1 header line.
        assert len(lines) == 17

    def test_anonymous_mode(self, state):
        text = draw_machine(state, show_indices=False)
        assert "[s]" in text


class TestDrawLayers:
    def test_schedule_render(self):
        c = QuantumCircuit(3)
        c.cswap(0, 1, 2)
        result = ParallaxCompiler(HardwareSpec.quera_aquila()).compile(c)
        text = draw_layers(result)
        assert "parallax" in text
        assert "L   1" in text

    def test_truncation(self):
        c = QuantumCircuit(3)
        c.cswap(0, 1, 2)
        result = ParallaxCompiler(HardwareSpec.quera_aquila()).compile(c)
        text = draw_layers(result, max_layers=2)
        assert "more layers" in text
