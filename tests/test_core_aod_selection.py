"""Tests for repro.core.aod_selection (Step 3)."""

import numpy as np
import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.core.aod_selection import (
    AODSelection,
    qubit_weights,
    resolve_shared_coords,
    select_aod_qubits,
)
from repro.core.machine import MachineState
from repro.hardware.spec import HardwareSpec
from repro.layout.graphine import GraphineLayout


def make_state(unit_positions, radius=0.1, spec=None):
    spec = spec or HardwareSpec.quera_aquila()
    layout = GraphineLayout(
        unit_positions=np.asarray(unit_positions, dtype=float),
        interaction_radius_unit=radius,
    )
    return MachineState(spec, layout)


class TestResolveSharedCoords:
    def test_distinct_coords_with_gap_unchanged(self):
        coords = np.array([0.0, 5.0, 10.0])
        np.testing.assert_allclose(resolve_shared_coords(coords, 1.0), coords)

    def test_duplicates_nudged_up(self):
        out = resolve_shared_coords(np.array([5.0, 5.0, 5.0]), 1.0)
        assert sorted(out.tolist()) == [5.0, 6.0, 7.0]

    def test_order_preserved(self):
        out = resolve_shared_coords(np.array([3.0, 1.0, 3.0]), 1.0)
        # Input index order preserved; values adjusted.
        assert out[1] == 1.0
        assert out[0] != out[2]

    def test_gap_enforced_pairwise(self):
        out = resolve_shared_coords(np.array([0.0, 0.4, 0.8]), 1.0)
        sorted_out = np.sort(out)
        assert np.all(np.diff(sorted_out) >= 1.0 - 1e-12)

    def test_empty(self):
        assert resolve_shared_coords(np.array([]), 1.0).size == 0


class TestQubitWeights:
    def test_out_of_range_dominates(self):
        # Q0-Q1 adjacent; Q2 far away interacting with Q0.
        c = QuantumCircuit(3).cz(0, 1).cz(0, 2)
        state = make_state([[0.0, 0.0], [0.05, 0.0], [1.0, 1.0]], radius=0.1)
        weights = qubit_weights(c, state)
        assert weights[2] > weights[1]
        assert weights[0] > weights[1]

    def test_no_interactions_zero_weight(self):
        c = QuantumCircuit(2).h(0).h(1)
        state = make_state([[0.0, 0.0], [1.0, 1.0]])
        assert np.all(qubit_weights(c, state) == 0.0)

    def test_all_in_range_uses_interference_tiebreak(self):
        # Three CZ pairs packed together in one layer: blockade interference
        # gives small nonzero weights even with nothing out of range.
        c = QuantumCircuit(4).cz(0, 1).cz(2, 3)
        state = make_state(
            [[0.0, 0.0], [0.07, 0.0], [0.0, 0.07], [0.07, 0.07]], radius=1.5
        )
        weights = qubit_weights(c, state)
        assert np.all(weights <= 0.011)
        assert np.any(weights > 0.0)


class TestSelectAodQubits:
    def test_selection_transfers_atoms(self):
        c = QuantumCircuit(3).cz(0, 2)
        state = make_state([[0.0, 0.0], [0.5, 0.5], [1.0, 1.0]], radius=0.1)
        selection = select_aod_qubits(c, state)
        assert len(selection.qubits) >= 1
        for q in selection.qubits:
            assert state.is_mobile(q)

    def test_zero_weight_qubits_not_selected(self):
        c = QuantumCircuit(3).cz(0, 1)
        state = make_state([[0.0, 0.0], [0.05, 0.0], [0.9, 0.9]], radius=0.2)
        selection = select_aod_qubits(c, state)
        assert 2 not in selection.qubits

    def test_capacity_respected(self):
        # 8 qubits all pairwise-interacting across the grid, capacity 3.
        c = QuantumCircuit(8)
        for a in range(8):
            for b in range(a + 1, 8):
                c.cz(a, b)
        spec = HardwareSpec.quera_aquila(aod_count=3)
        unit = np.random.default_rng(0).random((8, 2))
        state = make_state(unit, radius=0.05, spec=spec)
        selection = select_aod_qubits(c, state)
        assert len(selection.qubits) <= 3

    def test_max_atoms_cap(self):
        c = QuantumCircuit(4)
        for a in range(4):
            for b in range(a + 1, 4):
                c.cz(a, b)
        unit = np.random.default_rng(1).random((4, 2))
        state = make_state(unit, radius=0.05)
        selection = select_aod_qubits(c, state, max_atoms=1)
        assert len(selection.qubits) == 1

    def test_one_atom_per_row_and_column(self):
        c = QuantumCircuit(6)
        for a in range(6):
            for b in range(a + 1, 6):
                c.cz(a, b)
        unit = np.random.default_rng(2).random((6, 2))
        state = make_state(unit, radius=0.05)
        select_aod_qubits(c, state)
        aod = state.aod
        for row_atoms in aod.row_atoms:
            assert len(row_atoms) <= 1
        for col_atoms in aod.col_atoms:
            assert len(col_atoms) <= 1

    def test_aod_lines_strictly_ordered(self):
        c = QuantumCircuit(5)
        for a in range(5):
            for b in range(a + 1, 5):
                c.cz(a, b)
        # Qubits sharing grid rows/columns force coordinate nudging.
        unit = np.array([[0.0, 0.0], [0.5, 0.0], [1.0, 0.0], [0.0, 0.5], [0.0, 1.0]])
        state = make_state(unit, radius=0.05)
        select_aod_qubits(c, state)
        row_y = state.aod.row_y[~np.isnan(state.aod.row_y)]
        col_x = state.aod.col_x[~np.isnan(state.aod.col_x)]
        assert np.all(np.diff(row_y) > 0)
        assert np.all(np.diff(col_x) > 0)

    def test_home_positions_updated(self):
        c = QuantumCircuit(2).cz(0, 1)
        state = make_state([[0.0, 0.0], [1.0, 1.0]], radius=0.05)
        selection = select_aod_qubits(c, state)
        for q in selection.qubits:
            np.testing.assert_allclose(state.atoms[q].home, state.positions[q])

    def test_ranked_by_weight(self):
        c = QuantumCircuit(3)
        for _ in range(5):
            c.cz(0, 2)  # 0 and 2 are far apart: both heavily out-of-range
        c.cz(0, 1)
        state = make_state([[0.0, 0.0], [0.05, 0.0], [1.0, 1.0]], radius=0.1)
        selection = select_aod_qubits(c, state)
        weights = selection.weights
        ranked = list(selection.qubits)
        assert all(
            weights[ranked[i]] >= weights[ranked[i + 1]] for i in range(len(ranked) - 1)
        )
