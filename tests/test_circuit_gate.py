"""Tests for repro.circuit.gate."""

import pytest

from repro.circuit.gate import Gate, GATE_ARITY, is_one_qubit, is_two_qubit


class TestGateConstruction:
    def test_name_lowercased(self):
        assert Gate("CZ", (0, 1)).name == "cz"

    def test_qubits_coerced_to_ints(self):
        gate = Gate("cz", (0.0, 1.0))
        assert gate.qubits == (0, 1)
        assert all(isinstance(q, int) for q in gate.qubits)

    def test_params_coerced_to_floats(self):
        gate = Gate("u3", (0,), (1, 2, 3))
        assert gate.params == (1.0, 2.0, 3.0)

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError, match="expects 2"):
            Gate("cz", (0,))

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Gate("cz", (1, 1))

    def test_negative_qubit_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            Gate("h", (-1,))

    def test_wrong_param_count_rejected(self):
        with pytest.raises(ValueError, match="parameter"):
            Gate("u3", (0,), (1.0,))

    def test_unparametrized_gate_rejects_params(self):
        with pytest.raises(ValueError, match="parameter"):
            Gate("h", (0,), (0.5,))

    def test_unknown_gate_allowed(self):
        # The IR is open to unknown names (e.g. future extensions); arity
        # validation only applies to known gates.
        gate = Gate("mystery", (0, 1, 2, 3))
        assert gate.num_qubits == 4

    def test_hashable_and_equal(self):
        a = Gate("cz", (0, 1))
        b = Gate("cz", (0, 1))
        assert a == b and hash(a) == hash(b)

    def test_inequality_on_params(self):
        assert Gate("rz", (0,), (0.1,)) != Gate("rz", (0,), (0.2,))


class TestGateHelpers:
    def test_remapped(self):
        gate = Gate("cz", (0, 2)).remapped({0: 5, 2: 7})
        assert gate.qubits == (5, 7)

    def test_shifted(self):
        assert Gate("cz", (1, 2)).shifted(10).qubits == (11, 12)

    def test_str_with_params(self):
        text = str(Gate("u3", (3,), (0.5, 0.25, 0.125)))
        assert "u3" in text and "0.5" in text and "[3]" in text

    def test_str_without_params(self):
        assert str(Gate("cz", (0, 1))) == "cz [0, 1]"

    def test_predicates(self):
        assert is_two_qubit(Gate("cz", (0, 1)))
        assert is_one_qubit(Gate("h", (0,)))
        assert not is_two_qubit(Gate("ccx", (0, 1, 2)))

    def test_arity_table_consistent(self):
        assert GATE_ARITY["cz"] == 2
        assert GATE_ARITY["ccx"] == 3
        assert GATE_ARITY["barrier"] is None
