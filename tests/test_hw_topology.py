"""Tests for repro.hardware.topology."""

import networkx as nx
import numpy as np
import pytest

from repro.hardware.topology import (
    blockade_conflict_graph,
    is_connected_at_radius,
    max_parallel_two_qubit_gates,
    unit_disk_graph,
)


def line(n, spacing=1.0):
    return np.array([[i * spacing, 0.0] for i in range(n)], dtype=float)


class TestUnitDiskGraph:
    def test_chain_edges(self):
        g = unit_disk_graph(line(4), 1.2)
        assert set(g.edges) == {(0, 1), (1, 2), (2, 3)}

    def test_larger_radius_adds_edges(self):
        g = unit_disk_graph(line(4), 2.2)
        assert (0, 2) in g.edges

    def test_empty(self):
        g = unit_disk_graph(np.zeros((0, 2)), 1.0)
        assert g.number_of_nodes() == 0


class TestConnectivity:
    def test_connected_chain(self):
        assert is_connected_at_radius(line(5), 1.1)

    def test_disconnected_below_spacing(self):
        assert not is_connected_at_radius(line(5), 0.9)

    def test_single_point_connected(self):
        assert is_connected_at_radius(np.array([[0.0, 0.0]]), 0.1)

    def test_matches_minimal_radius(self):
        from repro.layout.radius import minimal_connected_radius

        rng = np.random.default_rng(2)
        pos = rng.random((12, 2)) * 10
        r = minimal_connected_radius(pos)
        assert is_connected_at_radius(pos, r)
        assert not is_connected_at_radius(pos, r * 0.99)


class TestBlockadeConflicts:
    def test_adjacent_gates_conflict(self):
        positions = line(4)
        pairs = [(0, 1), (2, 3)]
        g = blockade_conflict_graph(positions, pairs, blockade_radius=1.5)
        assert (0, 1) in g.edges

    def test_distant_gates_free(self):
        positions = np.array([[0, 0], [1, 0], [50, 0], [51, 0]], dtype=float)
        pairs = [(0, 1), (2, 3)]
        g = blockade_conflict_graph(positions, pairs, blockade_radius=2.0)
        assert g.number_of_edges() == 0

    def test_parallelism_bound(self):
        # Four well-separated gates: all parallel.
        positions = np.array(
            [[0, 0], [1, 0], [50, 0], [51, 0], [0, 50], [1, 50], [50, 50], [51, 50]],
            dtype=float,
        )
        pairs = [(0, 1), (2, 3), (4, 5), (6, 7)]
        assert max_parallel_two_qubit_gates(positions, pairs, 2.0) == 4

    def test_full_conflict_serializes(self):
        positions = line(6)
        pairs = [(0, 1), (2, 3), (4, 5)]
        assert max_parallel_two_qubit_gates(positions, pairs, 100.0) == 1

    def test_greedy_respects_conflicts(self):
        rng = np.random.default_rng(3)
        positions = rng.random((10, 2)) * 20
        pairs = [(0, 1), (2, 3), (4, 5), (6, 7), (8, 9)]
        blockade = 5.0
        count = max_parallel_two_qubit_gates(positions, pairs, blockade)
        assert 1 <= count <= len(pairs)
