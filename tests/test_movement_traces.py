"""Tests for movement trace recording and replay."""

import numpy as np
import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.core.compiler import ParallaxCompiler, ParallaxConfig
from repro.core.scheduler import SchedulerConfig
from repro.hardware.spec import HardwareSpec


def movement_heavy_circuit():
    c = QuantumCircuit(8, "heavy")
    for _ in range(3):
        for a in range(8):
            for b in range(a + 1, 8):
                c.cz(a, b)
        for q in range(8):
            c.h(q)
    return c


@pytest.fixture(scope="module")
def result():
    return ParallaxCompiler(HardwareSpec.quera_aquila()).compile(
        movement_heavy_circuit()
    )


class TestTraces:
    def test_moving_layers_have_traces(self, result):
        moving = [l for l in result.layers if l.move_distance_um > 0]
        assert moving, "circuit must exercise movement"
        for layer in moving:
            assert layer.line_moves

    def test_static_layers_have_no_traces(self, result):
        for layer in result.layers:
            if layer.move_distance_um == 0:
                assert layer.line_moves == ()

    def test_trace_records_are_well_formed(self, result):
        for layer in result.layers:
            for kind, index, old, new in layer.line_moves:
                assert kind in ("row", "col")
                assert index >= 0
                assert old != new

    def test_trace_distances_bound_layer_distance(self, result):
        # The layer's move_distance is the max cumulative per-line distance,
        # which must equal what the trace reconstructs.
        for layer in result.layers:
            per_line: dict[tuple[str, int], float] = {}
            for kind, index, old, new in layer.line_moves:
                key = (kind, index)
                per_line[key] = per_line.get(key, 0.0) + abs(new - old)
            reconstructed = max(per_line.values(), default=0.0)
            assert reconstructed == pytest.approx(layer.move_distance_um)

    def test_trace_replay_is_contiguous_per_line(self, result):
        # Each line's successive trace records chain: next old == last new.
        for layer in result.layers:
            last: dict[tuple[str, int], float] = {}
            for kind, index, old, new in layer.line_moves:
                key = (kind, index)
                if key in last:
                    assert old == pytest.approx(last[key])
                last[key] = new

    def test_failed_moves_leave_no_trace(self):
        # With a zero recursion budget every move fails and rolls back.
        config = ParallaxConfig(scheduler=SchedulerConfig(recursion_limit=0))
        result = ParallaxCompiler(HardwareSpec.quera_aquila(), config).compile(
            movement_heavy_circuit()
        )
        for layer in result.layers:
            assert layer.line_moves == ()
            assert layer.move_distance_um == 0.0
