"""Tests for repro.pipeline.registry: technique lookup by name."""

import pytest

from repro.baselines.eldi import EldiCompiler
from repro.baselines.graphine_compiler import GraphineCompiler
from repro.core.compiler import ParallaxCompiler
from repro.hardware.spec import HardwareSpec
from repro.pipeline.compiler_base import Compiler, StagedCompiler
from repro.pipeline.registry import (
    CompilerRegistry,
    available_techniques,
    create_compiler,
    get_compiler,
)


class TestGlobalRegistry:
    def test_builtins_registered(self):
        assert available_techniques() == ("eldi", "graphine", "parallax")

    def test_lookup_returns_classes(self):
        assert get_compiler("parallax") is ParallaxCompiler
        assert get_compiler("eldi") is EldiCompiler
        assert get_compiler("graphine") is GraphineCompiler

    def test_lookup_case_insensitive(self):
        assert get_compiler("PARALLAX") is ParallaxCompiler

    def test_unknown_technique_errors(self):
        with pytest.raises(ValueError, match="unknown technique"):
            get_compiler("magic")

    def test_unknown_error_lists_choices(self):
        with pytest.raises(ValueError, match="parallax"):
            get_compiler("magic")

    def test_create_instantiates(self):
        spec = HardwareSpec.quera_aquila()
        compiler = create_compiler("eldi", spec)
        assert isinstance(compiler, EldiCompiler)
        assert compiler.spec is spec

    def test_compilers_satisfy_protocol(self):
        spec = HardwareSpec.quera_aquila()
        for name in available_techniques():
            assert isinstance(create_compiler(name, spec), Compiler)


class TestCustomRegistry:
    def test_decorator_registers_by_technique_attribute(self):
        registry = CompilerRegistry()

        @registry.register()
        class Dummy(StagedCompiler):
            technique = "dummy"

        assert registry.get("dummy") is Dummy
        assert "dummy" in registry
        assert len(registry) == 1

    def test_explicit_name_overrides_attribute(self):
        registry = CompilerRegistry()

        @registry.register("other")
        class Dummy(StagedCompiler):
            technique = "dummy"

        assert registry.get("other") is Dummy
        with pytest.raises(ValueError):
            registry.get("dummy")

    def test_missing_name_rejected(self):
        registry = CompilerRegistry()
        with pytest.raises(ValueError, match="no technique name"):
            registry.register()(type("Anon", (StagedCompiler,), {}))

    def test_conflicting_registration_rejected(self):
        registry = CompilerRegistry()

        @registry.register()
        class First(StagedCompiler):
            technique = "clash"

        with pytest.raises(ValueError, match="already registered"):
            @registry.register()
            class Second(StagedCompiler):
                technique = "clash"

    def test_reregistering_same_class_is_noop(self):
        registry = CompilerRegistry()

        @registry.register()
        class Stable(StagedCompiler):
            technique = "stable"

        assert registry.register()(Stable) is Stable
        assert len(registry) == 1

    def test_iteration_sorted(self):
        registry = CompilerRegistry()
        for name in ("zeta", "alpha"):
            registry.register(name)(type(name.title(), (StagedCompiler,), {"technique": name}))
        assert list(registry) == ["alpha", "zeta"]


class TestMakeConfig:
    def test_filters_to_consumed_knobs(self):
        from repro.core.scheduler import SchedulerConfig
        from repro.layout.placement import PlacementConfig

        placement = PlacementConfig(seed=99)
        scheduler = SchedulerConfig(seed=42, return_home=False)
        eldi = EldiCompiler.make_config(
            placement=placement, scheduler=scheduler, transpile_input=False
        )
        assert not hasattr(eldi, "placement")
        assert eldi.transpile_input is False

        graphine = GraphineCompiler.make_config(
            placement=placement, scheduler=scheduler, transpile_input=False
        )
        assert graphine.placement == placement
        assert not hasattr(graphine, "scheduler")

        parallax = ParallaxCompiler.make_config(
            placement=placement, scheduler=scheduler, transpile_input=False
        )
        assert parallax.placement == placement
        assert parallax.scheduler == scheduler

    def test_none_values_fall_back_to_defaults(self):
        config = ParallaxCompiler.make_config(placement=None, scheduler=None)
        assert config == ParallaxCompiler.default_config()
