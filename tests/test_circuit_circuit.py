"""Tests for repro.circuit.circuit."""

import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Gate


class TestConstruction:
    def test_rejects_nonpositive_qubits(self):
        with pytest.raises(ValueError):
            QuantumCircuit(0)

    def test_len_and_iter(self):
        c = QuantumCircuit(2).h(0).cz(0, 1)
        assert len(c) == 2
        assert [g.name for g in c] == ["h", "cz"]

    def test_getitem(self):
        c = QuantumCircuit(2).h(0).cz(0, 1)
        assert c[1].name == "cz"

    def test_append_validates_range(self):
        c = QuantumCircuit(2)
        with pytest.raises(ValueError, match="outside range"):
            c.append(Gate("h", (2,)))

    def test_builders_chain(self):
        c = QuantumCircuit(3)
        out = c.h(0).cx(0, 1).rz(1, 0.3).ccx(0, 1, 2)
        assert out is c
        assert len(c) == 4

    def test_equality(self):
        a = QuantumCircuit(2).h(0)
        b = QuantumCircuit(2).h(0)
        assert a == b
        assert a != QuantumCircuit(2).h(1)
        assert a != QuantumCircuit(3).h(0)


class TestDerivedViews:
    def test_copy_is_independent(self):
        a = QuantumCircuit(2).h(0)
        b = a.copy()
        b.cz(0, 1)
        assert len(a) == 1 and len(b) == 2

    def test_without_drops_names(self):
        c = QuantumCircuit(2).h(0).add("barrier", (0,)).cz(0, 1)
        stripped = c.without({"barrier"})
        assert [g.name for g in stripped] == ["h", "cz"]

    def test_count_ops(self):
        c = QuantumCircuit(3).h(0).h(1).cz(0, 1).cz(1, 2)
        assert c.count_ops() == {"h": 2, "cz": 2}

    def test_two_qubit_gates(self):
        c = QuantumCircuit(3).h(0).cz(0, 1).cx(1, 2)
        assert [g.name for g in c.two_qubit_gates()] == ["cz", "cx"]

    def test_used_qubits(self):
        c = QuantumCircuit(5).cz(1, 3)
        assert c.used_qubits() == {1, 3}

    def test_depth_serial_gates(self):
        c = QuantumCircuit(1).h(0).h(0).h(0)
        assert c.depth() == 3

    def test_depth_parallel_gates(self):
        c = QuantumCircuit(2).h(0).h(1)
        assert c.depth() == 1

    def test_depth_two_qubit_serializes(self):
        c = QuantumCircuit(2).h(0).cz(0, 1).h(1)
        assert c.depth() == 3

    def test_depth_ignores_barriers(self):
        c = QuantumCircuit(2).h(0).add("barrier", (0,)).h(0)
        assert c.depth() == 2

    def test_depth_empty(self):
        assert QuantumCircuit(4).depth() == 0

    def test_repr_mentions_name_and_sizes(self):
        c = QuantumCircuit(3, name="demo").h(0)
        text = repr(c)
        assert "demo" in text and "3" in text and "1" in text
