"""Stress and failure-injection tests for the movement engine and scheduler.

These exercise the pathological geometries the paper's recursion limit and
trap-change fallbacks exist for: crowded AOD neighborhoods, blocking
chains, circuits with every atom mobile, tiny machines.
"""

import numpy as np
import pytest

from repro.circuit.circuit import QuantumCircuit
from repro.core.aod_selection import select_aod_qubits
from repro.core.compiler import ParallaxCompiler, ParallaxConfig
from repro.core.machine import MachineState
from repro.core.movement import MovementEngine, MoveFailure
from repro.core.scheduler import GateScheduler, SchedulerConfig
from repro.hardware.spec import HardwareSpec
from repro.layout.graphine import GraphineLayout
from repro.transpile import transpile


def build_state(unit_positions, aod_qubits, radius=0.15, spec=None):
    """MachineState with ``aod_qubits`` mobile, nudging shared coordinates
    exactly like :func:`select_aod_qubits` does (one atom per line)."""
    from repro.core.aod_selection import resolve_shared_coords

    spec = spec or HardwareSpec.quera_aquila()
    layout = GraphineLayout(
        unit_positions=np.asarray(unit_positions, dtype=float),
        interaction_radius_unit=radius,
    )
    state = MachineState(spec, layout)
    order_y = sorted(aod_qubits, key=lambda q: (state.positions[q][1], q))
    order_x = sorted(aod_qubits, key=lambda q: (state.positions[q][0], q))
    gap = state.aod.line_gap
    new_ys = resolve_shared_coords(
        np.array([state.positions[q][1] for q in order_y]), gap
    )
    new_xs = resolve_shared_coords(
        np.array([state.positions[q][0] for q in order_x]), gap
    )
    for q in aod_qubits:
        y = float(new_ys[order_y.index(q)])
        x = float(new_xs[order_x.index(q)])
        state.set_position(q, np.array([x, y]))
        state.transfer_to_aod(q, order_y.index(q), order_x.index(q))
        state.atoms[q].home = state.positions[q].copy()
    return state


class TestCrowdedMoves:
    def test_move_through_aod_crowd(self):
        # Five mobile atoms clustered near the target; mover must push
        # through without violating separation or ordering.
        cluster = [[0.80 + 0.04 * i, 0.80 + 0.04 * j] for i in range(2) for j in range(2)]
        unit = [[0.05, 0.05], [0.9, 0.9], *cluster]
        aod = [0, 2, 3, 4, 5]
        state = build_state(unit, aod)
        engine = MovementEngine(state)
        engine.begin_layer()
        engine.move_into_range(0, 1)
        assert state.in_interaction_range(0, 1)
        assert state.separation_ok()
        row_y = state.aod.row_y[~np.isnan(state.aod.row_y)]
        assert np.all(np.diff(row_y) > 0)

    def test_sequential_moves_all_layers_consistent(self):
        unit = [[0.1, 0.1], [0.9, 0.9], [0.5, 0.1], [0.1, 0.5]]
        state = build_state(unit, [0, 2, 3])
        engine = MovementEngine(state)
        for target in (1, 1, 1):
            for mover in (0, 2, 3):
                engine.begin_layer()
                try:
                    engine.move_into_range(mover, target)
                except MoveFailure:
                    continue
                assert state.separation_ok()
                engine.return_home()

    def test_move_to_every_corner(self):
        unit = [[0.5, 0.5], [0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]]
        state = build_state(unit, [0])
        engine = MovementEngine(state)
        for target in (1, 2, 3, 4):
            engine.begin_layer()
            engine.move_into_range(0, target)
            assert state.in_interaction_range(0, target)
            engine.return_home()
            np.testing.assert_allclose(state.positions[0], state.atoms[0].home)


class TestSchedulerStress:
    def test_all_to_all_circuit_completes(self):
        n = 12
        c = QuantumCircuit(n, "dense")
        for a in range(n):
            for b in range(a + 1, n):
                c.cz(a, b)
        result = ParallaxCompiler(HardwareSpec.quera_aquila()).compile(c)
        assert result.num_cz == n * (n - 1) // 2
        assert result.num_swaps == 0

    def test_tiny_machine(self):
        spec = HardwareSpec(name="tiny-9", grid_rows=3, grid_cols=3,
                            aod_rows=2, aod_cols=2)
        c = QuantumCircuit(4)
        c.cz(0, 1).cz(1, 2).cz(2, 3).cz(3, 0).cz(0, 2).cz(1, 3)
        result = ParallaxCompiler(spec).compile(c)
        assert result.num_cz == 6

    def test_single_aod_line_machine(self):
        spec = HardwareSpec.quera_aquila(aod_count=1)
        c = QuantumCircuit(6)
        for a in range(6):
            for b in range(a + 1, 6):
                c.cz(a, b)
        result = ParallaxCompiler(spec).compile(c)
        assert len(result.aod_qubits) <= 1
        assert result.num_cz == 15

    def test_zero_recursion_budget_forces_trap_changes(self):
        config = ParallaxConfig(
            scheduler=SchedulerConfig(recursion_limit=0)
        )
        c = QuantumCircuit(6)
        for a in range(6):
            for b in range(a + 1, 6):
                c.cz(a, b)
        result = ParallaxCompiler(HardwareSpec.quera_aquila(), config).compile(c)
        # Every attempted move fails, so moves never succeed...
        assert result.num_moves == 0
        # ...but the circuit still compiles, via trap changes.
        assert result.num_cz == 15

    def test_deep_serial_circuit(self):
        c = QuantumCircuit(2, "ping-pong")
        for i in range(200):
            c.cz(0, 1)
            c.h(0)
        result = ParallaxCompiler(HardwareSpec.quera_aquila()).compile(c)
        scheduled = sum(len(l.gates) for l in result.layers)
        assert scheduled == result.num_cz + result.num_u3

    def test_idle_qubits_tolerated(self):
        c = QuantumCircuit(30)
        c.cz(0, 29)
        result = ParallaxCompiler(HardwareSpec.quera_aquila()).compile(c)
        assert result.num_cz == 1

    def test_u3_only_circuit(self):
        c = QuantumCircuit(5)
        for q in range(5):
            c.h(q)
        result = ParallaxCompiler(HardwareSpec.quera_aquila()).compile(c)
        assert result.num_cz == 0
        assert result.num_layers >= 1


class TestDeterminism:
    """Golden determinism: identical inputs give identical outputs."""

    def test_compile_twice_identical(self):
        c = QuantumCircuit(5)
        for a in range(4):
            c.cz(a, a + 1)
            c.h(a)
        spec = HardwareSpec.quera_aquila()
        a_result = ParallaxCompiler(spec).compile(c)
        b_result = ParallaxCompiler(spec).compile(c)
        assert a_result.runtime_us == b_result.runtime_us
        assert a_result.num_layers == b_result.num_layers
        assert [len(l.gates) for l in a_result.layers] == [
            len(l.gates) for l in b_result.layers
        ]

    def test_scheduler_seed_changes_only_tie_breaks(self):
        c = transpile(QuantumCircuit(4).cz(0, 1).cz(2, 3).cz(0, 2).cz(1, 3))
        spec = HardwareSpec.quera_aquila()
        results = []
        for seed in (1, 2):
            config = ParallaxConfig(
                scheduler=SchedulerConfig(seed=seed), transpile_input=False
            )
            results.append(ParallaxCompiler(spec, config).compile(c))
        # Gate counts are invariant under the shuffle seed.
        assert results[0].num_cz == results[1].num_cz
        assert results[0].num_u3 == results[1].num_u3
